package powerrchol

import (
	"hash"
	"hash/fnv"
	"math"

	"powerrchol/internal/graph"
)

// Fingerprinting: stable 64-bit identities for systems, solver
// configurations and solutions. The hashes are FNV-64a over fixed
// little-endian encodings, so they are reproducible across processes,
// architectures and releases — the property the determinism golden suite
// (testdata/seedstate.golden) and the pgserved prepared-factor cache both
// rely on. They are identity keys, not cryptographic digests: use them to
// recognize a grid or a configuration, not to authenticate one.

// fpWriter accumulates fixed-width little-endian words into an FNV-64a
// state. One scratch buffer, no allocation per field.
type fpWriter struct {
	h   hash.Hash64
	buf [8]byte
}

func newFPWriter() *fpWriter { return &fpWriter{h: fnv.New64a()} }

func (w *fpWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(v >> (8 * i))
	}
	w.h.Write(w.buf[:])
}

func (w *fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *fpWriter) i64(v int)     { w.u64(uint64(int64(v))) }
func (w *fpWriter) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}
func (w *fpWriter) tag(s string) { w.h.Write([]byte(s)) }

// FingerprintVector hashes the exact bit patterns of a float64 vector:
// FNV-64a over each element's little-endian encoding. Two vectors
// fingerprint equal iff they are bitwise identical, which is what the
// determinism suite pins its seed→result golden to and what the service
// soak tests compare served solutions against their one-shot referees
// with.
func FingerprintVector(x []float64) uint64 {
	w := newFPWriter()
	for _, v := range x {
		w.f64(v)
	}
	return w.h.Sum64()
}

// FingerprintSystem hashes an SDDM as stored: the dimension, every edge
// (endpoints and weight bits) in storage order, and the diagonal-surplus
// bits. It is a storage fingerprint, not a canonical form — the same
// mathematical matrix assembled in a different edge order hashes
// differently — which is exactly the right identity for a prepared-factor
// cache, where the factorization consumes the stored order.
func FingerprintSystem(sys *graph.SDDM) uint64 {
	w := newFPWriter()
	w.tag("powerrchol-system/1")
	w.i64(sys.N())
	w.i64(sys.G.M())
	for _, e := range sys.G.Edges {
		w.i64(e.U)
		w.i64(e.V)
		w.f64(e.W)
	}
	for _, d := range sys.D {
		w.f64(d)
	}
	return w.h.Sum64()
}

// Fingerprint returns the identity of a prepared solver before building
// it: the system fingerprint combined with every option that can change
// what NewSolver constructs or what Solve returns. Options are normalized
// first (zero values resolve to their documented defaults), so
// Options{} and Options{Tol: 1e-6, MaxIter: 500} fingerprint equal.
//
// Workers is deliberately excluded: the parallel kernels are bitwise
// identical to the serial ones, so solvers differing only in Workers are
// interchangeable — and a cache should treat them as one entry.
func Fingerprint(sys *graph.SDDM, opt Options) uint64 {
	o := opt
	// Normalization cannot fail in a way that matters here: invalid
	// options produce a well-defined hash and NewSolver rejects them
	// before any cache could admit the entry.
	_ = o.validate()
	w := newFPWriter()
	w.tag("powerrchol-solver/1")
	w.u64(FingerprintSystem(sys))
	w.i64(int(o.Method))
	w.i64(int(o.Ordering))
	w.i64(int(o.Transform))
	w.f64(o.Tol)
	w.i64(o.MaxIter)
	w.u64(o.Seed)
	w.i64(o.Buckets)
	w.i64(o.Samples)
	w.f64(o.HeavyFactor)
	w.f64(o.RecoverFrac)
	w.f64(o.DropTol)
	w.f64(o.MergeFactor)
	w.i64(int(o.CompactIndex))
	w.i64(o.Retry.MaxAttempts)
	w.b(o.Retry.Escalate)
	return w.h.Sum64()
}

// Fingerprint reports the identity of this prepared solver — the
// Fingerprint(sys, opt) value of the system and options it was built
// from, computed once at construction. Equal fingerprints mean bitwise
// interchangeable solvers (same setup stream, same solve results), the
// key contract of the pgserved prepared-factor cache.
func (s *Solver) Fingerprint() uint64 { return s.fingerprint }
