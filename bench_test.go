package powerrchol

// One testing.B benchmark per paper table/figure, plus microbenchmarks of
// the kernels the paper's complexity claims rest on. The full printed
// tables come from cmd/benchtab; these benches time the representative
// configuration of each experiment so regressions show up in
// `go test -bench=.`. benchScale keeps cases small enough for CI; raise
// it (and use cmd/benchtab) for paper-scale measurements.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"powerrchol/internal/cases"
	"powerrchol/internal/core"
	"powerrchol/internal/order"
	"powerrchol/internal/rng"
)

const benchScale = 0.35

var (
	problemCache = map[string]*cases.Problem{}
	problemMu    sync.Mutex
)

func benchProblem(b *testing.B, name string) *cases.Problem {
	b.Helper()
	problemMu.Lock()
	defer problemMu.Unlock()
	if p, ok := problemCache[name]; ok {
		return p
	}
	c, err := cases.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := c.Build(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	problemCache[name] = p
	return p
}

func benchSolve(b *testing.B, caseName string, opt Options) {
	b.Helper()
	p := benchProblem(b, caseName)
	opt.Tol = 1e-6
	opt.MaxIter = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(p.Sys, p.B, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Iterations), "pcg-iters")
			b.ReportMetric(res.Timings.Total().Seconds()/(float64(p.NNZ())/1e6), "s/Mnnz")
		}
	}
}

// --- Table 1: LT-RChol vs original RChol (both AMD-ordered) ---

func BenchmarkTable1_RChol_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodRChol, Seed: 7})
}

func BenchmarkTable1_LTRChol_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodLTRChol, Ordering: OrderAMD, Seed: 7})
}

func BenchmarkTable1_RChol_thupg6(b *testing.B) {
	benchSolve(b, "thupg6", Options{Method: MethodRChol, Seed: 7})
}

func BenchmarkTable1_LTRChol_thupg6(b *testing.B) {
	benchSolve(b, "thupg6", Options{Method: MethodLTRChol, Ordering: OrderAMD, Seed: 7})
}

// --- Table 2: reordering strategies for LT-RChol ---

func BenchmarkTable2_OrderAMD_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodLTRChol, Ordering: OrderAMD, Seed: 7})
}

func BenchmarkTable2_OrderNatural_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodLTRChol, Ordering: OrderNatural, Seed: 7})
}

func BenchmarkTable2_OrderAlg4_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodPowerRChol, Seed: 7})
}

// --- Table 3: PowerRChol vs feGRASS / feGRASS-IChol / AMG on power grids ---

func BenchmarkTable3_FeGRASS_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodFeGRASS})
}

func BenchmarkTable3_FeGRASSIChol_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodFeGRASSIChol})
}

func BenchmarkTable3_AMG_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodAMG})
}

func BenchmarkTable3_PowerRChol_thupg1(b *testing.B) {
	benchSolve(b, "thupg1", Options{Method: MethodPowerRChol, Seed: 7})
}

// --- Table 4: other SDDM classes ---

func BenchmarkTable4_PowerRChol_comDBLP(b *testing.B) {
	benchSolve(b, "com-DBLP", Options{Method: MethodPowerRChol, Seed: 7})
}

func BenchmarkTable4_RChol_comDBLP(b *testing.B) {
	benchSolve(b, "com-DBLP", Options{Method: MethodRChol, Seed: 7})
}

func BenchmarkTable4_FeGRASS_comDBLP(b *testing.B) {
	benchSolve(b, "com-DBLP", Options{Method: MethodFeGRASS})
}

func BenchmarkTable4_PowerRChol_ecology2(b *testing.B) {
	benchSolve(b, "ecology2", Options{Method: MethodPowerRChol, Seed: 7})
}

func BenchmarkTable4_AMG_ecology2(b *testing.B) {
	benchSolve(b, "ecology2", Options{Method: MethodAMG})
}

// --- Figure 1: PowerRChol vs PowerRush ---

func BenchmarkFig1_PowerRush_thupg2(b *testing.B) {
	benchSolve(b, "thupg2", Options{Method: MethodPowerRush})
}

func BenchmarkFig1_PowerRChol_thupg2(b *testing.B) {
	benchSolve(b, "thupg2", Options{Method: MethodPowerRChol, Seed: 7})
}

// --- Figure 2: tolerance sweep on thupg1 ---

func BenchmarkFig2_Tolerance(b *testing.B) {
	p := benchProblem(b, "thupg1")
	for _, tol := range []float64{1e-3, 1e-6, 1e-9} {
		b.Run(fmt.Sprintf("tol=%.0e", tol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p.Sys, p.B, Options{
					Method: MethodPowerRChol, Tol: tol, MaxIter: 2000, Seed: 7,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 3: time per million nonzeros across case classes ---

func BenchmarkFig3_PowerRChol_thupg10(b *testing.B) {
	benchSolve(b, "thupg10", Options{Method: MethodPowerRChol, Seed: 7})
}

func BenchmarkFig3_PowerRChol_comYoutube(b *testing.B) {
	benchSolve(b, "com-Youtube", Options{Method: MethodPowerRChol, Seed: 7})
}

// --- Batch throughput: the multi-load-pattern workload ---

// BenchmarkSolveBatch reports batch throughput (solves/sec) on an
// ibmpg-style grid at 1, 4 and NumCPU workers, so the scaling of the
// concurrent solve path shows up in the bench trajectory. On a
// multi-core machine the 4-worker line should sit well above the
// 1-worker line; batch results are bit-identical either way.
func BenchmarkSolveBatch(b *testing.B) {
	p := benchProblem(b, "ibmpg6")
	const batchSize = 16
	r := rng.New(17)
	rhs := make([][]float64, batchSize)
	for k := range rhs {
		v := make([]float64, len(p.B))
		for i := range v {
			v[i] = p.B[i] * (0.5 + r.Float64())
		}
		rhs[k] = v
	}
	workerSet := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		workerSet = append(workerSet, n)
	}
	for _, workers := range workerSet {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			solver, err := NewSolver(p.Sys, Options{
				Method: MethodPowerRChol, Tol: 1e-6, MaxIter: 500, Seed: 7, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveBatch(rhs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "solves/sec")
		})
	}
}

// --- Kernel microbenchmarks backing the complexity claims ---

func BenchmarkKernel_FactorizeRChol(b *testing.B) {
	p := benchProblem(b, "thupg2")
	perm := order.AMD(p.Sys.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := core.Factorize(p.Sys, perm, core.Options{Variant: core.VariantRChol, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(f.NNZ()), "factor-nnz")
		}
	}
}

func BenchmarkKernel_FactorizeLT(b *testing.B) {
	p := benchProblem(b, "thupg2")
	perm := order.AMD(p.Sys.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := core.Factorize(p.Sys, perm, core.Options{Variant: core.VariantLT, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(f.NNZ()), "factor-nnz")
		}
	}
}

func BenchmarkKernel_OrderAMD(b *testing.B) {
	p := benchProblem(b, "thupg2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.AMD(p.Sys.G)
	}
}

func BenchmarkKernel_OrderAlg4(b *testing.B) {
	p := benchProblem(b, "thupg2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.Alg4(p.Sys.G, 0, nil)
	}
}

func BenchmarkKernel_SpMV(b *testing.B) {
	p := benchProblem(b, "thupg2")
	a := p.Sys.ToCSC()
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	r := rng.New(1)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkKernel_TriangularSolves(b *testing.B) {
	p := benchProblem(b, "thupg2")
	f, err := core.Factorize(p.Sys, order.Alg4(p.Sys.G, 0, nil), core.Options{Variant: core.VariantLT, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	z := make([]float64, p.Sys.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Apply(z, p.B)
	}
}

func BenchmarkKernel_LocateAscending(b *testing.B) {
	const n = 4096
	r := rng.New(3)
	a := make([]float64, n)
	t := make([]float64, n)
	acc := 0.0
	for i := range a {
		acc += r.Float64()
		a[i] = acc
	}
	tv := 0.0
	for i := range t {
		tv += r.Float64() * acc / n
		t[i] = tv
	}
	out := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LocateAscending(a, t, out)
	}
}
