GO ?= go

.PHONY: all check build test vet lint lint-list lint-sarif lint-summaries optcheck optcheck-build optcheck-diff race fuzz soak load study-smoke bench bench-json bench-json-smoke cover tables examples clean

all: check

# check is the default CI gate: tier-1 build+tests, vet, pglint, the
# compiler-diagnostics contract gate (pgoptcheck), the race detector over
# the short case set, a short-budget fuzz pass, and a short-horizon
# pgstudy run of both workload studies.
check: build vet lint optcheck test race fuzz study-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# pglint is the in-repo determinism/numerical-safety/concurrency analyzer
# suite (internal/lint, DESIGN.md §9): banned ambient randomness/time,
# map-order-dependent iteration, exact float comparison, sync.Pool leaks,
# severed error chains, context flow, hot-loop allocations, goroutine
# leaks, pooled-buffer escapes, mutex discipline, atomic/plain access
# mixes, determinism taint, and blocking goroutine sends — the last four
# exchanging cross-package function summaries as go vet analysis facts.
# The build is unconditional but cheap:
# Go's build cache makes an unchanged rebuild a near no-op, and pglint
# answers `go vet`'s -V=full probe with a hash of its own binary, so vet's
# result cache stays correct across rebuilds without Makefile-side
# dependency tracking.
PGLINT := bin/pglint

.PHONY: pglint-build
pglint-build:
	$(GO) build -o $(PGLINT) ./cmd/pglint

lint: pglint-build
	$(GO) vet -vettool=$(abspath $(PGLINT)) ./...

# lint-list prints every finding without failing the build: the triage
# view for judging a new analyzer or sweeping after a big refactor.
lint-list: pglint-build
	-$(GO) vet -vettool=$(abspath $(PGLINT)) ./...

# lint-sarif runs pglint in driver mode: SARIF 2.1.0 report for GitHub
# code scanning plus the checked-in baseline gate — findings already in
# .pglint-baseline.json are reported but do not fail the build; new ones
# do. Refresh the baseline (after triage, deliberately) with
# `bin/pglint -sarif -update-baseline`.
lint-sarif: pglint-build
	./$(PGLINT) -sarif -o pglint.sarif -baseline .pglint-baseline.json ./...

# lint-summaries warms go vet's per-package result cache — including the
# serialized pgfacts function summaries (.vetx files) the
# concurrency/determinism analyzers exchange — over the library packages.
# CI runs it as its own step before lint-sarif so the fact files are
# built once per run and show up as a distinct, cacheable timing; locally
# it is never needed (make lint does the same work and caches it).
lint-summaries: pglint-build
	$(GO) vet -vettool=$(abspath $(PGLINT)) ./internal/... ./cmd/...

# pgoptcheck is the compiler-diagnostics contract gate (internal/lint/
# optcheck, DESIGN.md §13): it compiles the hot kernel packages with
# -gcflags='-m=2 -d=ssa/check_bce/debug=1', parses the bounds-check,
# escape-analysis and inlining diagnostics, and fails on any finding not
# sanctioned (with its site count) by .pgopt-baseline.json. The go
# command replays the diagnostics from the build cache on unchanged
# rebuilds, so repeated runs cost a cache probe, not a recompile.
PGOPTCHECK := bin/pgoptcheck

optcheck-build:
	$(GO) build -o $(PGOPTCHECK) ./cmd/pgoptcheck

optcheck: optcheck-build
	./$(PGOPTCHECK) -o pgopt.sarif -baseline .pgopt-baseline.json

# optcheck-diff prints the full reconciliation against the baseline —
# new, grown, improved and fixed entries — the PR-review view. Tighten a
# shrunken baseline deliberately with `bin/pgoptcheck -update-baseline`.
optcheck-diff: optcheck-build
	./$(PGOPTCHECK) -diff -o '' -baseline .pgopt-baseline.json

test:
	$(GO) test ./...

# Quick mode skips the multi-second suite-level claim checks.
test-short:
	$(GO) test -short ./...

# race runs the tier-1 tests under the race detector with the short case
# set. The concurrency suite (concurrency_test.go, determinism_test.go)
# exercises SolveBatch and concurrent preconditioner Apply across every
# method, so scratch-sharing bugs surface here.
race:
	$(GO) test -race -short ./...

# Short-budget native fuzzing of the input boundaries: Matrix Market
# parsing, SDDM construction, and factor deserialization. Each target runs
# a few seconds — enough for regressions, not a soak; raise FUZZTIME for a
# longer hunt.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzReadMatrixMarket$$' -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzIndexConvert$$' -fuzztime=$(FUZZTIME) ./internal/sparse
	$(GO) test -run='^$$' -fuzz='^FuzzSplitCSC$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzReadFactor$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzParseDirective$$' -fuzztime=$(FUZZTIME) ./internal/lint/directive
	$(GO) test -run='^$$' -fuzz='^FuzzParseOptDirective$$' -fuzztime=$(FUZZTIME) ./internal/lint/optcheck
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeSolveRequest$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeSystemRequest$$' -fuzztime=$(FUZZTIME) ./internal/serve

# soak runs the solve-service chaos suite under the race detector with a
# stretched duration: fault-injected factorizations and preconditioners,
# cancelled/slow/garbage clients, and overload, with every 200 response
# checked bitwise against a one-shot Solve referee and a goroutine-leak
# gate at shutdown. SOAKTIME is per scenario. The test-binary flag must
# come after the package path: go test stops its own flag parsing at the
# first flag it does not recognize, and everything after it — including
# the package path — becomes test-binary arguments for the *current
# directory's* package.
SOAKTIME ?= 10s
soak:
	$(GO) test -race -run='^TestSoak' -v ./internal/serve -soak=$(SOAKTIME)

# study-smoke runs both pgstudy workload studies at short horizons on a
# generated grid: a 30-step transient (asserting the factorize-once
# amortization path end to end) and a 16-sample Monte Carlo with
# open-circuit failures and load jitter (exercising fingerprint-grouped
# preparation reuse). Seconds of wall time; exits non-zero on any solve
# failure.
study-smoke:
	$(GO) run ./cmd/pgstudy transient -nx 24 -ny 24 -steps 30
	$(GO) run ./cmd/pgstudy mc -nx 24 -ny 24 -samples 16 -failcands 4 -failprob 0.25

# load is a quick in-process pgload run at 2x admission capacity: watch
# the shed rate engage while p99 stays bounded.
load:
	$(GO) run ./cmd/pgload -clients 16 -duration 5s -nx 48 -ny 48 -max-inflight 4 -max-queue 8

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json records one machine-readable point of the performance
# trajectory: every registered method × case × index width, with
# per-stage timings, allocation totals, peak heap and process RSS
# (cmd/pgbench). BENCH_POINT numbers the point (BENCH_<n>.json, one per
# growth step, committed); BENCH_SCALE trades fidelity for wall time —
# 0.35 runs the full grid in well under a minute on a laptop.
BENCH_POINT ?= 10
BENCH_SCALE ?= 0.35
bench-json:
	$(GO) run ./cmd/pgbench -point $(BENCH_POINT) -scale $(BENCH_SCALE) -o BENCH_$(BENCH_POINT).json

# bench-json-smoke is the CI gate: one case, two methods, both index
# widths, validated by piping through the JSON decoder of the golden
# schema test (go test ./cmd/pgbench) beforehand.
bench-json-smoke:
	$(GO) run ./cmd/pgbench -point 0 -scale 0.1 -cases ibmpg3 -methods powerrchol,direct -o /tmp/pgbench-smoke.json
	$(GO) test ./cmd/pgbench

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper at full scale.
tables:
	$(GO) run ./cmd/benchtab -scale 1.0 all ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/irdrop
	$(GO) run ./examples/thermal3d
	$(GO) run ./examples/labelprop
	$(GO) run ./examples/transient
	$(GO) run ./examples/sddsolve

clean:
	rm -f cover.out test_output.txt bench_output.txt pglint.sarif pgopt.sarif
	rm -rf bin
