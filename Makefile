GO ?= go

.PHONY: all build test vet bench cover tables examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick mode skips the multi-second suite-level claim checks.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper at full scale.
tables:
	$(GO) run ./cmd/benchtab -scale 1.0 all ablations

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/irdrop
	$(GO) run ./examples/thermal3d
	$(GO) run ./examples/labelprop
	$(GO) run ./examples/transient
	$(GO) run ./examples/sddsolve

clean:
	rm -f cover.out test_output.txt bench_output.txt
