package powerrchol

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

// mixedSignSDD builds an SDD test matrix with both off-diagonal signs.
func mixedSignSDD(r *rng.Rand, n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 6*n)
	offSum := make([]float64, n)
	for k := 0; k < 3*n; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		v := r.Float64()*2 - 1
		coo.AddSym(i, j, v)
		offSum[i] += math.Abs(v)
		offSum[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, offSum[i]+0.2+r.Float64())
	}
	return coo.ToCSC()
}

func TestSolveSDDMatchesDenseReference(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%25) + 2
		r := rng.New(seed)
		a := mixedSignSDD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}
		res, err := SolveSDD(a, b, Options{Tol: 1e-12, MaxIter: 2000})
		if err != nil || !res.Converged {
			return false
		}
		want, err := testmat.DenseSolveSPD(a.Dense(), b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Logf("x[%d] = %g, want %g", i, res.X[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveSDDWithEveryRCholMethod(t *testing.T) {
	r := rng.New(8)
	a := mixedSignSDD(r, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	want, err := testmat.DenseSolveSPD(a.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodPowerRChol, MethodRChol, MethodDirect} {
		res, err := SolveSDD(a, b, Options{Method: m, Tol: 1e-11, MaxIter: 2000})
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Errorf("%v: x[%d] = %g, want %g", m, i, res.X[i], want[i])
				break
			}
		}
	}
}

func TestSolveSDDValidates(t *testing.T) {
	a := mixedSignSDD(rng.New(1), 5)
	if _, err := SolveSDD(a, make([]float64, 3), Options{}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
	// an SDDM input also works through the SDD path (no positive entries)
	s := testmat.GridSDDM(5, 5)
	b := make([]float64, 25)
	b[3] = 1
	res, err := SolveSDD(s.ToCSC(), b, Options{Tol: 1e-10})
	if err != nil || !res.Converged {
		t.Fatalf("SDDM via SDD path failed: %v", err)
	}
}
