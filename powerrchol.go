// Package powerrchol is an SDDM / power-grid solver library reproducing
// "PowerRChol: Efficient Power Grid Analysis Based on Fast Randomized
// Cholesky Factorization" (Liu & Yu, DAC 2024).
//
// The headline solver, MethodPowerRChol, combines the linear-time
// randomized Cholesky factorization LT-RChol (paper Alg. 3) with the
// randomized-factorization-oriented reordering of Alg. 4, used as a
// preconditioner for conjugate gradients. The package also implements
// every baseline of the paper's evaluation — the original RChol, feGRASS
// and feGRASS-IChol spectral-sparsifier solvers, an aggregation AMG
// (PowerRush's core), PowerRush's resistor-merging trick, and a complete
// sparse Cholesky direct solver — behind one Solve call.
//
// Every method is a composition of three pipeline stages — an optional
// system transform (sparsify/contract), a fill-reducing ordering, and a
// factorizer — assembled by internal/pipeline from a per-method registry.
// Options.Transform overrides the transform stage independently of the
// method, so combinations the paper's baselines keep separate (a
// feGRASS-sparsified LT-RChol, PowerRush contraction over a randomized
// preconditioner) are one field away.
//
// Quick start:
//
//	sys, _ := graph.SplitCSC(a, 1e-12)         // A = L_G + D
//	res, _ := powerrchol.Solve(sys, b, powerrchol.Options{})
//	fmt.Println(res.Iterations, res.Residual)
package powerrchol

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"powerrchol/internal/core"
	"powerrchol/internal/graph"
	"powerrchol/internal/pcg"
	"powerrchol/internal/pipeline"
	"powerrchol/internal/sparse"
)

// Method selects the solver pipeline. It aliases the pipeline registry's
// key type: the registry (internal/pipeline) is the single source of
// truth for what each method composes.
type Method = pipeline.Method

const (
	// MethodPowerRChol is the paper's contribution: Alg. 4 reordering +
	// LT-RChol (Alg. 3) preconditioned CG. The default.
	MethodPowerRChol = pipeline.MethodPowerRChol
	// MethodRChol is the original RChol baseline [3]: AMD reordering +
	// Alg. 1 preconditioned CG (ordering overridable via Options.Ordering).
	MethodRChol = pipeline.MethodRChol
	// MethodLTRChol is LT-RChol under a selectable ordering (defaults to
	// AMD, the Table 1 configuration).
	MethodLTRChol = pipeline.MethodLTRChol
	// MethodFeGRASS is the feGRASS-PCG baseline [11]: spectral sparsifier
	// (2%|V| off-tree edges) factorized completely under AMD.
	MethodFeGRASS = pipeline.MethodFeGRASS
	// MethodFeGRASSIChol is the feGRASS-IChol baseline [9]: 50%|V|
	// off-tree edges recovered, incomplete Cholesky with drop tol 8.5e-6.
	MethodFeGRASSIChol = pipeline.MethodFeGRASSIChol
	// MethodAMG is the aggregation-AMG preconditioned CG inside
	// PowerRush [14].
	MethodAMG = pipeline.MethodAMG
	// MethodPowerRush is AMG-PCG plus the merge-small-resistors trick.
	MethodPowerRush = pipeline.MethodPowerRush
	// MethodDirect is a complete sparse Cholesky (AMD-ordered) solve.
	MethodDirect = pipeline.MethodDirect
	// MethodJacobi is diagonally preconditioned CG, a weak reference point.
	MethodJacobi = pipeline.MethodJacobi
	// MethodSSOR is symmetric-successive-over-relaxation preconditioned
	// CG: zero setup cost, between Jacobi and the factorization methods.
	MethodSSOR = pipeline.MethodSSOR
)

// MethodByName resolves the CLI spelling of a method.
func MethodByName(name string) (Method, error) { return pipeline.MethodByName(name) }

// MethodInfo is one row of the method registry: the stage composition a
// method resolves to (default transform, ordering, factorizer), whether
// it runs the recovery ladder, and whether the amortized Solver
// front-end supports it.
type MethodInfo = pipeline.MethodInfo

// Methods returns the method registry as a table sorted by Method
// value — the single source of truth CLIs and docs derive their method
// listings from.
func Methods() []MethodInfo { return pipeline.Methods() }

// Ordering selects the fill-reducing permutation for the randomized and
// direct factorizations.
type Ordering = pipeline.Ordering

const (
	// OrderDefault picks the method's paper configuration: Alg. 4 for
	// PowerRChol, AMD for RChol/LT-RChol/Direct.
	OrderDefault = pipeline.OrderDefault
	// OrderAlg4 is the paper's LT-RChol-oriented reordering.
	OrderAlg4 = pipeline.OrderAlg4
	// OrderAMD is approximate minimum degree.
	OrderAMD = pipeline.OrderAMD
	// OrderNatural keeps the input order.
	OrderNatural = pipeline.OrderNatural
	// OrderRCM is reverse Cuthill-McKee.
	OrderRCM = pipeline.OrderRCM
	// OrderND is BFS-separator nested dissection.
	OrderND = pipeline.OrderND
)

// Transform selects the optional sparsify/contract stage that runs
// before ordering and factorization, independently of the method's
// factorizer. The zero value keeps each method's paper configuration.
type Transform = pipeline.Transform

const (
	// TransformDefault is the method's own paper configuration: feGRASS
	// sparsification for the feGRASS methods, resistor-merge contraction
	// for PowerRush, none elsewhere.
	TransformDefault = pipeline.TransformDefault
	// TransformNone disables the method's transform stage.
	TransformNone = pipeline.TransformNone
	// TransformFeGRASS feeds the factorizer a feGRASS spectral sparsifier
	// of the system; PCG still iterates on the original.
	TransformFeGRASS = pipeline.TransformFeGRASS
	// TransformMerge contracts small resistors (PowerRush's trick) before
	// every later stage; PCG iterates on the contracted system and the
	// solution is expanded back to the original nodes. Not supported by
	// NewSolver (the contraction changes the unknowns).
	TransformMerge = pipeline.TransformMerge
)

// TransformByName resolves the CLI spelling of a transform stage.
func TransformByName(name string) (Transform, error) { return pipeline.TransformByName(name) }

// IndexMode selects the index width of the solver's factor and
// iteration-matrix storage. At paper scale (1e7+ nodes) the index
// arrays rival the float64 values in memory; compact (int32) storage
// halves them. Index width never changes solve results: every compact
// kernel performs the identical floating-point operations in the
// identical order as its wide counterpart.
type IndexMode = sparse.IndexMode

const (
	// IndexWide is the default 64-bit index storage, byte-for-byte the
	// behaviour of every earlier revision.
	IndexWide = sparse.IndexWide
	// IndexCompact requires int32 index storage; a system or factor
	// past the 2^31-entry boundary fails with an error wrapping
	// ErrIndexOverflow instead of silently widening.
	IndexCompact = sparse.IndexCompact
	// IndexAuto uses int32 storage when the problem fits and falls back
	// to wide storage when it does not.
	IndexAuto = sparse.IndexAuto
)

// ErrIndexOverflow reports a matrix or factor whose dimensions or entry
// count exceed compact (int32) index storage; returned (wrapped) by
// solves configured with IndexCompact on systems past the 2^31 boundary.
var ErrIndexOverflow = sparse.ErrIndexOverflow

// RetryPolicy governs the bounded recovery ladder of the randomized
// pipeline; see the pipeline definition for the full contract. The zero
// value disables recovery.
type RetryPolicy = pipeline.RetryPolicy

// Options configure a solve. The zero value runs PowerRChol at the
// paper's defaults (tol 1e-6, 500 iteration cap).
type Options struct {
	Method   Method
	Ordering Ordering
	// Transform overrides the sparsify/contract stage of the pipeline.
	// The zero value (TransformDefault) keeps the method's paper
	// configuration; see Transform for the compositions this unlocks.
	Transform Transform
	Tol       float64 // relative residual target; default 1e-6
	MaxIter   int     // default 500 (the paper's divergence cutoff)
	Seed      uint64  // randomized factorization seed; retry rungs also derive their ordering tie-break stream from it

	// Buckets overrides the LT-RChol counting-sort resolution (default 256).
	Buckets int
	// Samples sets the RChol-k sample count per elimination (default 1);
	// higher values trade a denser factor for fewer PCG iterations.
	Samples int
	// HeavyFactor overrides Alg. 4's heavy-edge threshold (default 10).
	HeavyFactor float64
	// RecoverFrac overrides the feGRASS off-tree recovery budget.
	RecoverFrac float64
	// DropTol overrides the feGRASS-IChol drop tolerance.
	DropTol float64
	// MergeFactor overrides the PowerRush contraction threshold.
	MergeFactor float64
	// Workers enables goroutine parallelism when > 1. The paper's
	// experiments are single-core; this is an opt-in extension.
	//
	// In the one-shot Solve API it parallelizes the PCG kernels of a
	// single solve: row-partitioned SpMV, level-scheduled triangular
	// solves, and blocked vector reductions (the reductions use a fixed
	// block size, so results are reproducible for a given Workers value
	// but may differ in the last bits from the serial path).
	//
	// In the amortized Solver API it sizes the SolveBatch worker pool
	// (0 means runtime.NumCPU()) and level-schedules the factor's
	// triangular solves; every individual solve stays bitwise identical
	// to the serial path regardless of Workers.
	Workers int

	// CompactIndex selects int32 index storage for the factor and the
	// iteration matrix (default IndexWide — the historical layout).
	// IndexCompact halves index memory and fails past the 2^31-entry
	// boundary; IndexAuto falls back to wide storage instead. Solve
	// results are bitwise identical across index modes.
	CompactIndex IndexMode

	// Retry is the automatic recovery policy. The zero value disables
	// recovery (single attempt — today's behaviour); see RetryPolicy.
	Retry RetryPolicy

	// Hooks intercepts the per-attempt setup pipeline for deterministic
	// fault injection; always nil in production. See FaultHooks for the
	// sealing contract.
	Hooks *FaultHooks
}

// FaultHooks intercepts each setup attempt for deterministic fault
// injection (internal/faultinject drives these in the recovery and
// service soak suites). The hook signatures name internal packages, so
// only this module's own code can populate a non-zero value — the field
// is exported solely so the chaos tests outside this package (the
// pgserved soak in internal/serve) can walk faults through a running
// service. Production callers leave Options.Hooks nil.
type FaultHooks struct {
	// FactorOpts rewrites the core factorization options of an attempt.
	FactorOpts func(attempt int, o core.Options) core.Options
	// WrapPrecond wraps the preconditioner built by an attempt.
	WrapPrecond func(attempt int, m pcg.Preconditioner) pcg.Preconditioner
}

// Detection defaults used while recovery is enabled: PCG must halve its
// best residual every 50 iterations and never exceed 10⁴× the best seen.
// Well within what a healthy preconditioned run does, far outside what a
// broken one can fake.
const (
	defaultStagnationWindow = 50
	defaultStagnationFactor = 0.5
	defaultDivergenceFactor = 1e4
)

// validate normalizes the zero-value defaults and rejects out-of-range
// settings up front, before any reordering or factorization work. Every
// public entry point (Solve*, NewSolver) funnels through it.
func (o *Options) validate() error {
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	switch {
	case math.IsNaN(o.Tol) || o.Tol <= 0:
		return fmt.Errorf("powerrchol: Tol %g is not a positive tolerance", o.Tol)
	case o.MaxIter < 0:
		return fmt.Errorf("powerrchol: negative MaxIter %d", o.MaxIter)
	case o.Workers < 0:
		return fmt.Errorf("powerrchol: negative Workers %d", o.Workers)
	case o.Buckets < 0:
		return fmt.Errorf("powerrchol: negative Buckets %d", o.Buckets)
	case o.Samples < 0:
		return fmt.Errorf("powerrchol: negative Samples %d", o.Samples)
	case o.Retry.MaxAttempts < 0:
		return fmt.Errorf("powerrchol: negative Retry.MaxAttempts %d", o.Retry.MaxAttempts)
	case math.IsNaN(o.HeavyFactor) || o.HeavyFactor < 0:
		return fmt.Errorf("powerrchol: HeavyFactor %g is not a valid threshold", o.HeavyFactor)
	case o.CompactIndex < IndexWide || o.CompactIndex > IndexAuto:
		return fmt.Errorf("powerrchol: unknown CompactIndex mode %v", o.CompactIndex)
	}
	return nil
}

// pipelineConfig maps the public Options onto the setup pipeline's
// Config. prepared marks the amortized Solver front-end, which rejects
// contraction-bearing plans.
func (o Options) pipelineConfig(prepared bool) pipeline.Config {
	cfg := pipeline.Config{
		Method:       o.Method,
		Ordering:     o.Ordering,
		Transform:    o.Transform,
		Seed:         o.Seed,
		Buckets:      o.Buckets,
		Samples:      o.Samples,
		HeavyFactor:  o.HeavyFactor,
		RecoverFrac:  o.RecoverFrac,
		DropTol:      o.DropTol,
		MergeFactor:  o.MergeFactor,
		Workers:      o.Workers,
		CompactIndex: o.CompactIndex,
		Retry:        o.Retry,
		Prepared:     prepared,
	}
	if o.Hooks != nil {
		cfg.FactorOpts = o.Hooks.FactorOpts
		cfg.WrapPrecond = o.Hooks.WrapPrecond
	}
	return cfg
}

// pcgOptions assembles the iteration options for one solve attempt.
// Stagnation/divergence detection is armed only while recovery is
// enabled, so a plain solve keeps exactly today's error surface.
func (o Options) pcgOptions(ctx context.Context, workers int) pcg.Options {
	p := pcg.Options{Tol: o.Tol, MaxIter: o.MaxIter, Workers: workers, Ctx: ctx}
	if o.Retry.MaxAttempts > 1 {
		p.StagnationWindow = defaultStagnationWindow
		p.StagnationFactor = defaultStagnationFactor
		p.DivergenceFactor = defaultDivergenceFactor
	}
	return p
}

// Timings breaks the total solution time into the paper's phases:
// T_r (reordering), T_f (preconditioner construction/factorization) and
// T_i (PCG iteration).
type Timings struct {
	Reorder   time.Duration
	Factorize time.Duration
	Iterate   time.Duration
}

// Total is T_tot = T_r + T_f + T_i.
func (t Timings) Total() time.Duration { return t.Reorder + t.Factorize + t.Iterate }

// Result reports a completed solve. On an early stop (iteration cap,
// stagnation, divergence, cancellation) X is the best iterate seen, not
// the last one.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
	History    []float64
	// FactorNNZ is |L| (0 for AMG-family methods).
	FactorNNZ int
	// FactorIndexBytes is the factor's index-array footprint in bytes
	// (column pointers + row indices) — halved by the compact index
	// modes; 0 for the matrix-free preconditioners.
	FactorIndexBytes int
	// MemoryBytes estimates the solver-state footprint of this solve:
	// factor values + indices, iteration-matrix storage and solve
	// scratch, by the same formula Solver.MemoryBytes uses — so the
	// pgbench trajectory reports the number the pgserved cache budgets
	// against. 0 when the solve never assembled an iteration matrix.
	MemoryBytes int
	Timings     Timings
	// BestIteration is the iteration that produced X. It equals
	// Iterations on converged runs; on capped, stagnated or cancelled
	// runs X is the best iterate seen, not the last.
	BestIteration int
	// Attempts is the recovery-ladder diagnostic trail: one entry per
	// attempt, failures first. Empty when recovery is disabled and the
	// single attempt succeeded.
	Attempts []Attempt
}

// Solve solves Sys·x = b with the selected method.
func Solve(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	return SolveContext(context.Background(), sys, b, opt)
}

// SolveContext is Solve under a context: a cancelled or expired ctx
// aborts the setup pipeline (transform, ordering and factorization all
// poll it) and the PCG iteration (checked every iteration) promptly,
// returning an error wrapping context.Canceled or
// context.DeadlineExceeded.
func SolveContext(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	if len(b) != sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), sys.N())
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := pipeline.NewRunner(sys, opt.pipelineConfig(false))
	if err != nil {
		return nil, err
	}
	return solvePipeline(ctx, r, sys, b, opt)
}

// SolveCSC is Solve for a matrix already assembled in CSC form; the
// matrix must be a valid SDDM (both triangles stored).
func SolveCSC(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	sys, err := graph.SplitCSC(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return Solve(sys, b, opt)
}

// SolveSDD solves A·x = b for a general symmetric diagonally dominant
// matrix with positive diagonal — positive off-diagonals allowed — by the
// Gremban double-cover reduction to an SDDM of twice the size (the same
// extension RChol [3] uses). Iteration counts and timings refer to the
// doubled system.
func SolveSDD(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), a.Rows)
	}
	sys, err := graph.ReduceSDD(a, 1e-12)
	if err != nil {
		return nil, err
	}
	res, err := Solve(sys, graph.DoubleRHS(b), opt)
	if res != nil && res.X != nil {
		res.X = graph.RecoverSDD(res.X)
	}
	return res, err
}

// solvePipeline is the one-shot iteration driver shared by every method:
// walk the Runner's plan, run the iteration phase (or the exact direct
// apply) on each setup, and translate the outcome into the historical
// result/error shape — SolveError wrapping and Attempt trails for ladder
// (randomized) plans, raw errors elsewhere, ctx errors always unwrapped.
func solvePipeline(ctx context.Context, r *pipeline.Runner, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	for {
		setup, err := r.Next(ctx)
		if err != nil {
			if ctxDone(err) || !r.Ladder() {
				return nil, err
			}
			return nil, &SolveError{Attempts: r.Trail(), Last: err}
		}
		res := &Result{FactorNNZ: setup.FactorNNZ, FactorIndexBytes: setup.FactorIndexBytes}
		res.Timings.Reorder = setup.Reorder
		res.Timings.Factorize = setup.Factorize

		rhs := b
		if setup.Fold != nil {
			rhs = setup.Fold(b)
		}

		if setup.Exact {
			// Complete factorization of the iterated system: one apply is
			// the solve, no iteration phase (and no assembled iteration
			// matrix in the footprint).
			res.MemoryBytes = solverMemoryBytes(setup.Sys.N(), 0, 0, setup.FactorNNZ, setup.FactorIndexBytes)
			t0 := time.Now()
			x := make([]float64, setup.Sys.N())
			setup.M.Apply(x, rhs)
			if setup.Expand != nil {
				x = setup.Expand(x)
			}
			res.Timings.Iterate = time.Since(t0)
			res.X = x
			res.Converged = true
			res.Residual = relativeResidual(sys, x, b)
			res.Attempts = r.Succeed(res.Iterations, res.Residual)
			return res, nil
		}

		t0 := time.Now()
		// Assembling the CSC once is faster than edge-list SpMV per
		// iteration; with Workers > 1 the product runs row-parallel over a
		// CSR copy, and under a compact index mode the matrix drops to
		// int32 indices (bitwise-identical products).
		mul, matNNZ, matIdxBytes, merr := iterationMul(setup.Sys.ToCSC(), opt)
		if merr != nil {
			return nil, merr
		}
		res.MemoryBytes = solverMemoryBytes(setup.Sys.N(), matNNZ, matIdxBytes, setup.FactorNNZ, setup.FactorIndexBytes)
		pres, perr := pcg.SolveOp(setup.Sys.N(), mul, rhs, setup.M, opt.pcgOptions(ctx, opt.Workers))
		res.Timings.Iterate = time.Since(t0)
		if pres != nil {
			fill(res, pres)
			if setup.Expand != nil && pres.X != nil {
				res.X = setup.Expand(pres.X)
			}
		}
		if perr == nil && !res.Converged {
			perr = notConverged(opt, res)
		}
		if perr == nil {
			res.Attempts = r.Succeed(res.Iterations, res.Residual)
			return res, nil
		}
		if ctxDone(perr) {
			return res, perr
		}
		if r.FailSolve(perr, res.Iterations, res.Residual) {
			continue
		}
		if !r.Ladder() {
			return res, perr
		}
		if errors.Is(perr, ErrNotConverged) {
			// The cap was reached without a detected failure: retrying the
			// same slow-but-healthy solve would only double the bill.
			// Return the partial result with its trail.
			res.Attempts = r.Trail()
			return res, perr
		}
		return res, &SolveError{Attempts: r.Trail(), Last: perr}
	}
}

func ctxDone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// solverMemoryBytes is the one formula behind both Solver.MemoryBytes
// and Result.MemoryBytes: float64 values of the iteration matrix and the
// factor (8 bytes each), their index arrays as actually stored, plus a
// scratch estimate — the n-length work vectors one solve draws (PCG's
// x/r/z/p/Ap and the factor Apply's pooled buffer).
func solverMemoryBytes(n, matNNZ, matIndexBytes, factorNNZ, factorIndexBytes int) int {
	const scratchVectors = 6
	return 8*(matNNZ+factorNNZ) + matIndexBytes + factorIndexBytes + scratchVectors*8*n
}

// iterationMul builds the SpMV closure the iteration phase multiplies
// with, honoring the index-mode and worker settings, and reports the
// entry count and index bytes of the storage it settled on (feeding the
// Result.MemoryBytes estimate). Compact and wide operators are bitwise
// identical; an overflowing IndexCompact request is the only error.
func iterationMul(a *sparse.CSC, opt Options) (func(y, x []float64), int, int, error) {
	if opt.CompactIndex != IndexWide {
		a32, err := sparse.CompactCSC(a)
		switch {
		case err == nil:
			if opt.Workers > 1 {
				csr := a32.ToCSR()
				workers := opt.Workers
				return func(y, x []float64) { csr.MulVecParallel(y, x, workers) }, a32.NNZ(), a32.IndexBytes(), nil
			}
			return a32.MulVec, a32.NNZ(), a32.IndexBytes(), nil
		case opt.CompactIndex == IndexCompact:
			return nil, 0, 0, err
		}
		// IndexAuto past the boundary: fall through to wide storage.
	}
	if opt.Workers > 1 {
		csr := a.ToCSR()
		workers := opt.Workers
		return func(y, x []float64) { csr.MulVecParallel(y, x, workers) }, a.NNZ(), a.IndexBytes(), nil
	}
	return a.MulVec, a.NNZ(), a.IndexBytes(), nil
}

// notConverged builds the typed iteration-cap error for a populated
// partial result.
func notConverged(opt Options, res *Result) error {
	return &NotConvergedError{
		Method:     opt.Method,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Tol:        opt.Tol,
	}
}

func fill(res *Result, p *pcg.Result) {
	res.X = p.X
	res.Iterations = p.Iterations
	res.Residual = p.Residual
	res.Converged = p.Converged
	res.History = p.History
	res.BestIteration = p.BestIteration
}

func relativeResidual(sys *graph.SDDM, x, b []float64) float64 {
	y := make([]float64, sys.N())
	sys.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	nb := sparse.Norm2(b)
	if nb == 0 {
		return 0
	}
	return sparse.Norm2(y) / nb
}
