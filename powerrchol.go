// Package powerrchol is an SDDM / power-grid solver library reproducing
// "PowerRChol: Efficient Power Grid Analysis Based on Fast Randomized
// Cholesky Factorization" (Liu & Yu, DAC 2024).
//
// The headline solver, MethodPowerRChol, combines the linear-time
// randomized Cholesky factorization LT-RChol (paper Alg. 3) with the
// randomized-factorization-oriented reordering of Alg. 4, used as a
// preconditioner for conjugate gradients. The package also implements
// every baseline of the paper's evaluation — the original RChol, feGRASS
// and feGRASS-IChol spectral-sparsifier solvers, an aggregation AMG
// (PowerRush's core), PowerRush's resistor-merging trick, and a complete
// sparse Cholesky direct solver — behind one Solve call.
//
// Quick start:
//
//	sys, _ := graph.SplitCSC(a, 1e-12)         // A = L_G + D
//	res, _ := powerrchol.Solve(sys, b, powerrchol.Options{})
//	fmt.Println(res.Iterations, res.Residual)
package powerrchol

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"powerrchol/internal/amg"
	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/graph"
	"powerrchol/internal/ichol"
	"powerrchol/internal/merge"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// Method selects the solver pipeline.
type Method int

const (
	// MethodPowerRChol is the paper's contribution: Alg. 4 reordering +
	// LT-RChol (Alg. 3) preconditioned CG. The default.
	MethodPowerRChol Method = iota
	// MethodRChol is the original RChol baseline [3]: AMD reordering +
	// Alg. 1 preconditioned CG (ordering overridable via Options.Ordering).
	MethodRChol
	// MethodLTRChol is LT-RChol under a selectable ordering (defaults to
	// AMD, the Table 1 configuration).
	MethodLTRChol
	// MethodFeGRASS is the feGRASS-PCG baseline [11]: spectral sparsifier
	// (2%|V| off-tree edges) factorized completely under AMD.
	MethodFeGRASS
	// MethodFeGRASSIChol is the feGRASS-IChol baseline [9]: 50%|V|
	// off-tree edges recovered, incomplete Cholesky with drop tol 8.5e-6.
	MethodFeGRASSIChol
	// MethodAMG is the aggregation-AMG preconditioned CG inside
	// PowerRush [14].
	MethodAMG
	// MethodPowerRush is AMG-PCG plus the merge-small-resistors trick.
	MethodPowerRush
	// MethodDirect is a complete sparse Cholesky (AMD-ordered) solve.
	MethodDirect
	// MethodJacobi is diagonally preconditioned CG, a weak reference point.
	MethodJacobi
	// MethodSSOR is symmetric-successive-over-relaxation preconditioned
	// CG: zero setup cost, between Jacobi and the factorization methods.
	MethodSSOR
)

var methodNames = map[Method]string{
	MethodPowerRChol:   "powerrchol",
	MethodRChol:        "rchol",
	MethodLTRChol:      "lt-rchol",
	MethodFeGRASS:      "fegrass",
	MethodFeGRASSIChol: "fegrass-ichol",
	MethodAMG:          "amg",
	MethodPowerRush:    "powerrush",
	MethodDirect:       "direct",
	MethodJacobi:       "jacobi",
	MethodSSOR:         "ssor",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// MethodByName resolves the CLI spelling of a method.
func MethodByName(name string) (Method, error) {
	for m, s := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("powerrchol: unknown method %q", name)
}

// Ordering selects the fill-reducing permutation for the randomized and
// direct factorizations.
type Ordering int

const (
	// OrderDefault picks the method's paper configuration: Alg. 4 for
	// PowerRChol, AMD for RChol/LT-RChol/Direct.
	OrderDefault Ordering = iota
	// OrderAlg4 is the paper's LT-RChol-oriented reordering.
	OrderAlg4
	// OrderAMD is approximate minimum degree.
	OrderAMD
	// OrderNatural keeps the input order.
	OrderNatural
	// OrderRCM is reverse Cuthill-McKee.
	OrderRCM
	// OrderND is BFS-separator nested dissection.
	OrderND
)

func (o Ordering) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderAlg4:
		return "alg4"
	case OrderAMD:
		return "amd"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderND:
		return "nd"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Options configure a solve. The zero value runs PowerRChol at the
// paper's defaults (tol 1e-6, 500 iteration cap).
type Options struct {
	Method   Method
	Ordering Ordering
	Tol      float64 // relative residual target; default 1e-6
	MaxIter  int     // default 500 (the paper's divergence cutoff)
	Seed     uint64  // randomized factorization seed; retry rungs also derive their ordering tie-break stream from it

	// Buckets overrides the LT-RChol counting-sort resolution (default 256).
	Buckets int
	// Samples sets the RChol-k sample count per elimination (default 1);
	// higher values trade a denser factor for fewer PCG iterations.
	Samples int
	// HeavyFactor overrides Alg. 4's heavy-edge threshold (default 10).
	HeavyFactor float64
	// RecoverFrac overrides the feGRASS off-tree recovery budget.
	RecoverFrac float64
	// DropTol overrides the feGRASS-IChol drop tolerance.
	DropTol float64
	// MergeFactor overrides the PowerRush contraction threshold.
	MergeFactor float64
	// Workers enables goroutine parallelism when > 1. The paper's
	// experiments are single-core; this is an opt-in extension.
	//
	// In the one-shot Solve API it parallelizes the PCG kernels of a
	// single solve: row-partitioned SpMV, level-scheduled triangular
	// solves, and blocked vector reductions (the reductions use a fixed
	// block size, so results are reproducible for a given Workers value
	// but may differ in the last bits from the serial path).
	//
	// In the amortized Solver API it sizes the SolveBatch worker pool
	// (0 means runtime.NumCPU()) and level-schedules the factor's
	// triangular solves; every individual solve stays bitwise identical
	// to the serial path regardless of Workers.
	Workers int

	// Retry is the automatic recovery policy. The zero value disables
	// recovery (single attempt — today's behaviour); see RetryPolicy.
	Retry RetryPolicy

	// hooks intercepts the per-attempt pipeline for deterministic fault
	// injection. Settable only from tests in this package (recovery
	// tests wire in internal/faultinject here); always nil in production.
	hooks *faultHooks
}

// RetryPolicy governs the bounded recovery ladder of the randomized
// pipeline. A randomized factorization is only good in expectation: a bad
// draw, a near-singular grid or a stalled PCG run can fail a single
// attempt even though the next one would succeed. When MaxAttempts > 1,
// a failed attempt (factorization breakdown, indefinite preconditioner,
// detected stagnation or divergence) is retried with a reseeded
// factorization and, with Escalate, walked down the ladder
// LT-RChol → RChol → direct Cholesky. Recovery never changes the result
// of an attempt that succeeds: the first attempt is bitwise identical to
// a solve with recovery disabled.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of attempts, the first
	// included. 0 or 1 means a single attempt (no recovery).
	MaxAttempts int
	// Escalate lets the later attempts switch methods down the ladder
	// (LT-RChol → RChol → direct Cholesky) instead of only reseeding.
	Escalate bool
}

// faultHooks intercepts each recovery attempt, for deterministic fault
// injection in tests (see internal/faultinject and recovery_test.go).
type faultHooks struct {
	// factorOpts rewrites the core factorization options of an attempt.
	factorOpts func(attempt int, o core.Options) core.Options
	// wrapPrecond wraps the preconditioner built by an attempt.
	wrapPrecond func(attempt int, m pcg.Preconditioner) pcg.Preconditioner
}

// Detection defaults used while recovery is enabled: PCG must halve its
// best residual every 50 iterations and never exceed 10⁴× the best seen.
// Well within what a healthy preconditioned run does, far outside what a
// broken one can fake.
const (
	defaultStagnationWindow = 50
	defaultStagnationFactor = 0.5
	defaultDivergenceFactor = 1e4
)

// validate normalizes the zero-value defaults and rejects out-of-range
// settings up front, before any reordering or factorization work. Every
// public entry point (Solve*, NewSolver) funnels through it.
func (o *Options) validate() error {
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	switch {
	case math.IsNaN(o.Tol) || o.Tol <= 0:
		return fmt.Errorf("powerrchol: Tol %g is not a positive tolerance", o.Tol)
	case o.MaxIter < 0:
		return fmt.Errorf("powerrchol: negative MaxIter %d", o.MaxIter)
	case o.Workers < 0:
		return fmt.Errorf("powerrchol: negative Workers %d", o.Workers)
	case o.Buckets < 0:
		return fmt.Errorf("powerrchol: negative Buckets %d", o.Buckets)
	case o.Samples < 0:
		return fmt.Errorf("powerrchol: negative Samples %d", o.Samples)
	case o.Retry.MaxAttempts < 0:
		return fmt.Errorf("powerrchol: negative Retry.MaxAttempts %d", o.Retry.MaxAttempts)
	case math.IsNaN(o.HeavyFactor) || o.HeavyFactor < 0:
		return fmt.Errorf("powerrchol: HeavyFactor %g is not a valid threshold", o.HeavyFactor)
	}
	return nil
}

// pcgOptions assembles the iteration options for one solve attempt.
// Stagnation/divergence detection is armed only while recovery is
// enabled, so a plain solve keeps exactly today's error surface.
func (o Options) pcgOptions(ctx context.Context, workers int) pcg.Options {
	p := pcg.Options{Tol: o.Tol, MaxIter: o.MaxIter, Workers: workers, Ctx: ctx}
	if o.Retry.MaxAttempts > 1 {
		p.StagnationWindow = defaultStagnationWindow
		p.StagnationFactor = defaultStagnationFactor
		p.DivergenceFactor = defaultDivergenceFactor
	}
	return p
}

// Timings breaks the total solution time into the paper's phases:
// T_r (reordering), T_f (preconditioner construction/factorization) and
// T_i (PCG iteration).
type Timings struct {
	Reorder   time.Duration
	Factorize time.Duration
	Iterate   time.Duration
}

// Total is T_tot = T_r + T_f + T_i.
func (t Timings) Total() time.Duration { return t.Reorder + t.Factorize + t.Iterate }

// Result reports a completed solve. On an early stop (iteration cap,
// stagnation, divergence, cancellation) X is the best iterate seen, not
// the last one.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
	History    []float64
	// FactorNNZ is |L| (0 for AMG-family methods).
	FactorNNZ int
	Timings   Timings
	// BestIteration is the iteration that produced X. It equals
	// Iterations on converged runs; on capped, stagnated or cancelled
	// runs X is the best iterate seen, not the last.
	BestIteration int
	// Attempts is the recovery-ladder diagnostic trail: one entry per
	// attempt, failures first. Empty when recovery is disabled and the
	// single attempt succeeded.
	Attempts []Attempt
}

// Solve solves Sys·x = b with the selected method.
func Solve(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	return SolveContext(context.Background(), sys, b, opt)
}

// SolveContext is Solve under a context: a cancelled or expired ctx
// aborts both the factorization (checked every few thousand pivots) and
// the PCG iteration (checked every iteration) promptly, returning an
// error wrapping context.Canceled or context.DeadlineExceeded.
func SolveContext(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	if len(b) != sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), sys.N())
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	switch opt.Method {
	case MethodPowerRChol, MethodRChol, MethodLTRChol:
		return solveRandomized(ctx, sys, b, opt)
	case MethodFeGRASS, MethodFeGRASSIChol:
		return solveFeGRASS(ctx, sys, b, opt)
	case MethodAMG:
		return solveAMG(ctx, sys, b, opt, nil)
	case MethodPowerRush:
		c := merge.Contract(sys, opt.MergeFactor)
		return solveAMG(ctx, c.System, c.FoldRHS(b), opt, c)
	case MethodDirect:
		return solveDirect(ctx, sys, b, opt)
	case MethodJacobi, MethodSSOR:
		return solveStationary(ctx, sys, b, opt)
	}
	return nil, fmt.Errorf("powerrchol: unknown method %v", opt.Method)
}

// SolveCSC is Solve for a matrix already assembled in CSC form; the
// matrix must be a valid SDDM (both triangles stored).
func SolveCSC(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	sys, err := graph.SplitCSC(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return Solve(sys, b, opt)
}

// SolveSDD solves A·x = b for a general symmetric diagonally dominant
// matrix with positive diagonal — positive off-diagonals allowed — by the
// Gremban double-cover reduction to an SDDM of twice the size (the same
// extension RChol [3] uses). Iteration counts and timings refer to the
// doubled system.
func SolveSDD(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), a.Rows)
	}
	sys, err := graph.ReduceSDD(a, 1e-12)
	if err != nil {
		return nil, err
	}
	res, err := Solve(sys, graph.DoubleRHS(b), opt)
	if res != nil && res.X != nil {
		res.X = graph.RecoverSDD(res.X)
	}
	return res, err
}

// buildOrdering computes the requested permutation. tie, when non-nil,
// seeds Alg. 4's tie-break shuffle (see order.Alg4); every other ordering
// is fully deterministic and ignores it.
func buildOrdering(sys *graph.SDDM, o Ordering, heavyFactor float64, tie *rng.Rand) []int {
	switch o {
	case OrderAlg4:
		return order.Alg4(sys.G, heavyFactor, tie)
	case OrderAMD:
		return order.AMD(sys.G)
	case OrderRCM:
		return order.RCM(sys.G)
	case OrderND:
		return order.ND(sys.G)
	case OrderNatural:
		return nil
	}
	return nil
}

// rung is one step of the recovery ladder: a concrete factorization
// configuration for a solve attempt.
type rung struct {
	method   Method
	ordering Ordering
	variant  core.Variant
	direct   bool // complete Cholesky instead of a randomized factor
	seed     uint64
}

// reseed derives the factorization seed for retry attempt k (k = 0 is
// the caller's own seed). The golden-ratio stride gives splitmix64
// independent streams.
func reseed(seed uint64, k int) uint64 {
	return seed + uint64(k)*0x9e3779b97f4a7c15
}

// orderTieSalt decorrelates the ordering tie-break stream from the
// factorization's sampling stream when both derive from the same attempt
// seed ("order" in ASCII).
const orderTieSalt = 0x6f72646572

// orderTieRng derives the Alg. 4 tie-break generator for ladder attempt
// k. The first attempt is nil: it keeps the paper's deterministic
// counting-sort ties, so a single-attempt solve is bit-identical to the
// historical behaviour. Retry rungs shuffle ties on a seeded stream of
// their own, so a retry does not replay the exact elimination order that
// just failed — while staying fully replayable from Options.Seed.
func orderTieRng(seed uint64, attempt int) *rng.Rand {
	if attempt == 0 {
		return nil
	}
	return rng.New(seed ^ orderTieSalt)
}

// baseRung resolves the requested randomized method to its paper
// configuration (the exact logic Solve has always used).
func baseRung(opt Options) rung {
	rg := rung{method: opt.Method, ordering: opt.Ordering, variant: core.VariantLT, seed: opt.Seed}
	switch opt.Method {
	case MethodPowerRChol:
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAlg4
		}
	case MethodRChol:
		rg.variant = core.VariantRChol
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAMD
		}
	case MethodLTRChol:
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAMD
		}
	}
	return rg
}

// attemptPlan lays out the recovery ladder for the randomized pipeline,
// truncated to Retry.MaxAttempts. Without Escalate every retry is a
// reseed of the requested configuration. With Escalate the ladder is
// reseed → RChol (skipped if that is already the requested method) →
// direct Cholesky, the strongest and only deterministic rung.
func attemptPlan(opt Options) []rung {
	max := opt.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	base := baseRung(opt)
	plan := []rung{base}
	if !opt.Retry.Escalate {
		for k := 1; k < max; k++ {
			r := base
			r.seed = reseed(opt.Seed, k)
			plan = append(plan, r)
		}
		return plan
	}
	r := base
	r.seed = reseed(opt.Seed, 1)
	plan = append(plan, r)
	if base.variant != core.VariantRChol {
		plan = append(plan, rung{
			method: MethodRChol, ordering: OrderAMD,
			variant: core.VariantRChol, seed: reseed(opt.Seed, 2),
		})
	}
	plan = append(plan, rung{method: MethodDirect, ordering: OrderAMD, direct: true})
	if len(plan) > max {
		plan = plan[:max]
	}
	return plan
}

// recoverable reports whether a failed attempt should fall through to
// the next ladder rung: factorization breakdown, an indefinite operator
// or preconditioner (including NaN propagation), and detected
// stagnation or divergence all qualify. Cancellation and plain
// running-out-of-iterations do not.
func recoverable(err error) bool {
	return errors.Is(err, core.ErrBreakdown) ||
		errors.Is(err, pcg.ErrIndefinite) ||
		errors.Is(err, pcg.ErrStagnated) ||
		errors.Is(err, pcg.ErrDiverged)
}

func ctxDone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func solveRandomized(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	plan := attemptPlan(opt)
	var trail []Attempt
	for i, rg := range plan {
		res := &Result{}
		t0 := time.Now()
		perm := buildOrdering(sys, rg.ordering, opt.HeavyFactor, orderTieRng(rg.seed, i))
		res.Timings.Reorder = time.Since(t0)

		t0 = time.Now()
		var f *core.Factor
		var err error
		if rg.direct {
			f, err = chol.FactorizeContext(ctx, sys.ToCSC(), perm)
		} else {
			copt := core.Options{
				Variant: rg.variant,
				Buckets: opt.Buckets,
				Seed:    rg.seed,
				Samples: opt.Samples,
				Ctx:     ctx,
			}
			if opt.hooks != nil && opt.hooks.factorOpts != nil {
				copt = opt.hooks.factorOpts(i, copt)
			}
			f, err = core.Factorize(sys, perm, copt)
		}
		att := Attempt{Method: rg.method, Ordering: rg.ordering, Seed: rg.seed}
		if err != nil {
			if ctxDone(err) {
				return nil, err
			}
			att.Err = err.Error()
			trail = append(trail, att)
			if i < len(plan)-1 && recoverable(err) {
				continue
			}
			return nil, &SolveError{Attempts: trail, Last: err}
		}
		res.Timings.Factorize = time.Since(t0)
		res.FactorNNZ = f.NNZ()
		if opt.Workers > 1 {
			f.Parallelize(opt.Workers)
		}
		var m pcg.Preconditioner = f
		if opt.hooks != nil && opt.hooks.wrapPrecond != nil {
			m = opt.hooks.wrapPrecond(i, m)
		}

		res, err = runPCG(ctx, sys, b, m, opt, res)
		if res != nil {
			att.Iterations = res.Iterations
			att.Residual = res.Residual
		}
		if err == nil {
			if len(trail) > 0 || opt.Retry.MaxAttempts > 1 {
				res.Attempts = append(trail, att)
			}
			return res, nil
		}
		if ctxDone(err) {
			return res, err
		}
		att.Err = err.Error()
		trail = append(trail, att)
		if i < len(plan)-1 && recoverable(err) {
			continue
		}
		if errors.Is(err, ErrNotConverged) {
			// The cap was reached without a detected failure: retrying the
			// same slow-but-healthy solve would only double the bill.
			// Return the partial result with its trail.
			res.Attempts = trail
			return res, err
		}
		return res, &SolveError{Attempts: trail, Last: err}
	}
	panic("powerrchol: empty attempt plan") // unreachable: plan always has ≥ 1 rung
}

func solveFeGRASS(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	frac := opt.RecoverFrac
	if frac == 0 {
		if opt.Method == MethodFeGRASSIChol {
			frac = fegrass.IcholRecoverFrac
		} else {
			frac = fegrass.DefaultRecoverFrac
		}
	}
	res := &Result{}
	t0 := time.Now()
	sp, err := fegrass.Sparsify(sys, frac)
	if err != nil {
		return nil, err
	}
	perm := order.AMD(sp.G)
	res.Timings.Reorder = time.Since(t0) // sparsification + ordering

	t0 = time.Now()
	var f *core.Factor
	if opt.Method == MethodFeGRASSIChol {
		f, err = ichol.Factorize(sp.ToCSC(), perm, ichol.Options{DropTol: opt.DropTol})
	} else {
		f, err = chol.FactorizeContext(ctx, sp.ToCSC(), perm)
	}
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	res.FactorNNZ = f.NNZ()
	if opt.Workers > 1 {
		f.Parallelize(opt.Workers)
	}

	return runPCG(ctx, sys, b, f, opt, res)
}

func solveAMG(ctx context.Context, sys *graph.SDDM, b []float64, opt Options, c *merge.Contraction) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	a := sys.ToCSC()
	p, err := amg.New(a, amg.Options{})
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)

	t0 = time.Now()
	pres, err := pcg.Solve(a, b, p, pcg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Ctx: ctx})
	res.Timings.Iterate = time.Since(t0)
	if pres != nil {
		fill(res, pres)
		if c != nil && pres.X != nil {
			res.X = c.Expand(pres.X)
		}
	}
	if err != nil {
		return res, err
	}
	if !res.Converged {
		return res, notConverged(opt, res)
	}
	return res, nil
}

func solveDirect(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	perm := buildOrdering(sys, orderOrAMD(opt.Ordering), opt.HeavyFactor, nil)
	res.Timings.Reorder = time.Since(t0)

	t0 = time.Now()
	f, err := chol.FactorizeContext(ctx, sys.ToCSC(), perm)
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	res.FactorNNZ = f.NNZ()
	if opt.Workers > 1 {
		f.Parallelize(opt.Workers)
	}

	t0 = time.Now()
	x := make([]float64, sys.N())
	f.Apply(x, b)
	res.Timings.Iterate = time.Since(t0)
	res.X = x
	res.Converged = true
	res.Residual = relativeResidual(sys, x, b)
	return res, nil
}

func orderOrAMD(o Ordering) Ordering {
	if o == OrderDefault {
		return OrderAMD
	}
	return o
}

func solveStationary(ctx context.Context, sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	a := sys.ToCSC()
	var j pcg.Preconditioner
	var err error
	if opt.Method == MethodSSOR {
		j, err = pcg.NewSSOR(a, 0)
	} else {
		j, err = pcg.NewJacobi(a)
	}
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	t0 = time.Now()
	pres, err := pcg.Solve(a, b, j, pcg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Ctx: ctx})
	res.Timings.Iterate = time.Since(t0)
	if pres != nil {
		fill(res, pres)
	}
	if err != nil {
		return res, err
	}
	if !res.Converged {
		return res, notConverged(opt, res)
	}
	return res, nil
}

func runPCG(ctx context.Context, sys *graph.SDDM, b []float64, m pcg.Preconditioner, opt Options, res *Result) (*Result, error) {
	t0 := time.Now()
	// Assembling the CSC once is faster than edge-list SpMV per iteration;
	// with Workers > 1 the product runs row-parallel over a CSR copy.
	a := sys.ToCSC()
	mul := func(y, x []float64) { a.MulVec(y, x) }
	if opt.Workers > 1 {
		csr := a.ToCSR()
		workers := opt.Workers
		mul = func(y, x []float64) { csr.MulVecParallel(y, x, workers) }
	}
	pres, err := pcg.SolveOp(sys.N(), mul, b, m, opt.pcgOptions(ctx, opt.Workers))
	res.Timings.Iterate = time.Since(t0)
	if pres != nil {
		fill(res, pres)
	}
	if err != nil {
		return res, err
	}
	if !res.Converged {
		return res, notConverged(opt, res)
	}
	return res, nil
}

// notConverged builds the typed iteration-cap error for a populated
// partial result.
func notConverged(opt Options, res *Result) error {
	return &NotConvergedError{
		Method:     opt.Method,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Tol:        opt.Tol,
	}
}

func fill(res *Result, p *pcg.Result) {
	res.X = p.X
	res.Iterations = p.Iterations
	res.Residual = p.Residual
	res.Converged = p.Converged
	res.History = p.History
	res.BestIteration = p.BestIteration
}

func relativeResidual(sys *graph.SDDM, x, b []float64) float64 {
	y := make([]float64, sys.N())
	sys.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	nb := sparse.Norm2(b)
	if nb == 0 {
		return 0
	}
	return sparse.Norm2(y) / nb
}
