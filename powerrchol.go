// Package powerrchol is an SDDM / power-grid solver library reproducing
// "PowerRChol: Efficient Power Grid Analysis Based on Fast Randomized
// Cholesky Factorization" (Liu & Yu, DAC 2024).
//
// The headline solver, MethodPowerRChol, combines the linear-time
// randomized Cholesky factorization LT-RChol (paper Alg. 3) with the
// randomized-factorization-oriented reordering of Alg. 4, used as a
// preconditioner for conjugate gradients. The package also implements
// every baseline of the paper's evaluation — the original RChol, feGRASS
// and feGRASS-IChol spectral-sparsifier solvers, an aggregation AMG
// (PowerRush's core), PowerRush's resistor-merging trick, and a complete
// sparse Cholesky direct solver — behind one Solve call.
//
// Quick start:
//
//	sys, _ := graph.SplitCSC(a, 1e-12)         // A = L_G + D
//	res, _ := powerrchol.Solve(sys, b, powerrchol.Options{})
//	fmt.Println(res.Iterations, res.Residual)
package powerrchol

import (
	"errors"
	"fmt"
	"time"

	"powerrchol/internal/amg"
	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/graph"
	"powerrchol/internal/ichol"
	"powerrchol/internal/merge"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/sparse"
)

// Method selects the solver pipeline.
type Method int

const (
	// MethodPowerRChol is the paper's contribution: Alg. 4 reordering +
	// LT-RChol (Alg. 3) preconditioned CG. The default.
	MethodPowerRChol Method = iota
	// MethodRChol is the original RChol baseline [3]: AMD reordering +
	// Alg. 1 preconditioned CG (ordering overridable via Options.Ordering).
	MethodRChol
	// MethodLTRChol is LT-RChol under a selectable ordering (defaults to
	// AMD, the Table 1 configuration).
	MethodLTRChol
	// MethodFeGRASS is the feGRASS-PCG baseline [11]: spectral sparsifier
	// (2%|V| off-tree edges) factorized completely under AMD.
	MethodFeGRASS
	// MethodFeGRASSIChol is the feGRASS-IChol baseline [9]: 50%|V|
	// off-tree edges recovered, incomplete Cholesky with drop tol 8.5e-6.
	MethodFeGRASSIChol
	// MethodAMG is the aggregation-AMG preconditioned CG inside
	// PowerRush [14].
	MethodAMG
	// MethodPowerRush is AMG-PCG plus the merge-small-resistors trick.
	MethodPowerRush
	// MethodDirect is a complete sparse Cholesky (AMD-ordered) solve.
	MethodDirect
	// MethodJacobi is diagonally preconditioned CG, a weak reference point.
	MethodJacobi
	// MethodSSOR is symmetric-successive-over-relaxation preconditioned
	// CG: zero setup cost, between Jacobi and the factorization methods.
	MethodSSOR
)

var methodNames = map[Method]string{
	MethodPowerRChol:   "powerrchol",
	MethodRChol:        "rchol",
	MethodLTRChol:      "lt-rchol",
	MethodFeGRASS:      "fegrass",
	MethodFeGRASSIChol: "fegrass-ichol",
	MethodAMG:          "amg",
	MethodPowerRush:    "powerrush",
	MethodDirect:       "direct",
	MethodJacobi:       "jacobi",
	MethodSSOR:         "ssor",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// MethodByName resolves the CLI spelling of a method.
func MethodByName(name string) (Method, error) {
	for m, s := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("powerrchol: unknown method %q", name)
}

// Ordering selects the fill-reducing permutation for the randomized and
// direct factorizations.
type Ordering int

const (
	// OrderDefault picks the method's paper configuration: Alg. 4 for
	// PowerRChol, AMD for RChol/LT-RChol/Direct.
	OrderDefault Ordering = iota
	// OrderAlg4 is the paper's LT-RChol-oriented reordering.
	OrderAlg4
	// OrderAMD is approximate minimum degree.
	OrderAMD
	// OrderNatural keeps the input order.
	OrderNatural
	// OrderRCM is reverse Cuthill-McKee.
	OrderRCM
	// OrderND is BFS-separator nested dissection.
	OrderND
)

func (o Ordering) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderAlg4:
		return "alg4"
	case OrderAMD:
		return "amd"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderND:
		return "nd"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Options configure a solve. The zero value runs PowerRChol at the
// paper's defaults (tol 1e-6, 500 iteration cap).
type Options struct {
	Method   Method
	Ordering Ordering
	Tol      float64 // relative residual target; default 1e-6
	MaxIter  int     // default 500 (the paper's divergence cutoff)
	Seed     uint64  // randomized factorization seed

	// Buckets overrides the LT-RChol counting-sort resolution (default 256).
	Buckets int
	// Samples sets the RChol-k sample count per elimination (default 1);
	// higher values trade a denser factor for fewer PCG iterations.
	Samples int
	// HeavyFactor overrides Alg. 4's heavy-edge threshold (default 10).
	HeavyFactor float64
	// RecoverFrac overrides the feGRASS off-tree recovery budget.
	RecoverFrac float64
	// DropTol overrides the feGRASS-IChol drop tolerance.
	DropTol float64
	// MergeFactor overrides the PowerRush contraction threshold.
	MergeFactor float64
	// Workers enables goroutine parallelism when > 1. The paper's
	// experiments are single-core; this is an opt-in extension.
	//
	// In the one-shot Solve API it parallelizes the PCG kernels of a
	// single solve: row-partitioned SpMV, level-scheduled triangular
	// solves, and blocked vector reductions (the reductions use a fixed
	// block size, so results are reproducible for a given Workers value
	// but may differ in the last bits from the serial path).
	//
	// In the amortized Solver API it sizes the SolveBatch worker pool
	// (0 means runtime.NumCPU()) and level-schedules the factor's
	// triangular solves; every individual solve stays bitwise identical
	// to the serial path regardless of Workers.
	Workers int
}

// Timings breaks the total solution time into the paper's phases:
// T_r (reordering), T_f (preconditioner construction/factorization) and
// T_i (PCG iteration).
type Timings struct {
	Reorder   time.Duration
	Factorize time.Duration
	Iterate   time.Duration
}

// Total is T_tot = T_r + T_f + T_i.
func (t Timings) Total() time.Duration { return t.Reorder + t.Factorize + t.Iterate }

// Result reports a completed solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
	History    []float64
	// FactorNNZ is |L| (0 for AMG-family methods).
	FactorNNZ int
	Timings   Timings
}

// ErrNotConverged is returned when the iteration cap is reached; the
// Result is still populated so callers can inspect the partial solve.
var ErrNotConverged = errors.New("powerrchol: PCG did not converge within the iteration limit")

// Solve solves Sys·x = b with the selected method.
func Solve(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	if len(b) != sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), sys.N())
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	switch opt.Method {
	case MethodPowerRChol, MethodRChol, MethodLTRChol:
		return solveRandomized(sys, b, opt)
	case MethodFeGRASS, MethodFeGRASSIChol:
		return solveFeGRASS(sys, b, opt)
	case MethodAMG:
		return solveAMG(sys, b, opt, nil)
	case MethodPowerRush:
		c := merge.Contract(sys, opt.MergeFactor)
		return solveAMG(c.System, c.FoldRHS(b), opt, c)
	case MethodDirect:
		return solveDirect(sys, b, opt)
	case MethodJacobi, MethodSSOR:
		return solveStationary(sys, b, opt)
	}
	return nil, fmt.Errorf("powerrchol: unknown method %v", opt.Method)
}

// SolveCSC is Solve for a matrix already assembled in CSC form; the
// matrix must be a valid SDDM (both triangles stored).
func SolveCSC(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	sys, err := graph.SplitCSC(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return Solve(sys, b, opt)
}

// SolveSDD solves A·x = b for a general symmetric diagonally dominant
// matrix with positive diagonal — positive off-diagonals allowed — by the
// Gremban double-cover reduction to an SDDM of twice the size (the same
// extension RChol [3] uses). Iteration counts and timings refer to the
// doubled system.
func SolveSDD(a *sparse.CSC, b []float64, opt Options) (*Result, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), a.Rows)
	}
	sys, err := graph.ReduceSDD(a, 1e-12)
	if err != nil {
		return nil, err
	}
	res, err := Solve(sys, graph.DoubleRHS(b), opt)
	if res != nil && res.X != nil {
		res.X = graph.RecoverSDD(res.X)
	}
	return res, err
}

func buildOrdering(sys *graph.SDDM, o Ordering, heavyFactor float64) []int {
	switch o {
	case OrderAlg4:
		return order.Alg4(sys.G, heavyFactor)
	case OrderAMD:
		return order.AMD(sys.G)
	case OrderRCM:
		return order.RCM(sys.G)
	case OrderND:
		return order.ND(sys.G)
	case OrderNatural:
		return nil
	}
	return nil
}

func solveRandomized(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	variant := core.VariantLT
	ordering := opt.Ordering
	switch opt.Method {
	case MethodPowerRChol:
		if ordering == OrderDefault {
			ordering = OrderAlg4
		}
	case MethodRChol:
		variant = core.VariantRChol
		if ordering == OrderDefault {
			ordering = OrderAMD
		}
	case MethodLTRChol:
		if ordering == OrderDefault {
			ordering = OrderAMD
		}
	}

	res := &Result{}
	t0 := time.Now()
	perm := buildOrdering(sys, ordering, opt.HeavyFactor)
	res.Timings.Reorder = time.Since(t0)

	t0 = time.Now()
	f, err := core.Factorize(sys, perm, core.Options{
		Variant: variant,
		Buckets: opt.Buckets,
		Seed:    opt.Seed,
		Samples: opt.Samples,
	})
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	res.FactorNNZ = f.NNZ()
	if opt.Workers > 1 {
		f.Parallelize(opt.Workers)
	}

	return runPCG(sys, b, f, opt, res, nil)
}

func solveFeGRASS(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	frac := opt.RecoverFrac
	if frac == 0 {
		if opt.Method == MethodFeGRASSIChol {
			frac = fegrass.IcholRecoverFrac
		} else {
			frac = fegrass.DefaultRecoverFrac
		}
	}
	res := &Result{}
	t0 := time.Now()
	sp, err := fegrass.Sparsify(sys, frac)
	if err != nil {
		return nil, err
	}
	perm := order.AMD(sp.G)
	res.Timings.Reorder = time.Since(t0) // sparsification + ordering

	t0 = time.Now()
	var f *core.Factor
	if opt.Method == MethodFeGRASSIChol {
		f, err = ichol.Factorize(sp.ToCSC(), perm, ichol.Options{DropTol: opt.DropTol})
	} else {
		f, err = chol.Factorize(sp.ToCSC(), perm)
	}
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	res.FactorNNZ = f.NNZ()
	if opt.Workers > 1 {
		f.Parallelize(opt.Workers)
	}

	return runPCG(sys, b, f, opt, res, nil)
}

func solveAMG(sys *graph.SDDM, b []float64, opt Options, c *merge.Contraction) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	a := sys.ToCSC()
	p, err := amg.New(a, amg.Options{})
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)

	t0 = time.Now()
	pres, err := pcg.Solve(a, b, p, pcg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if c != nil {
		res.X = c.Expand(pres.X)
	}
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

func solveDirect(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	perm := buildOrdering(sys, orderOrAMD(opt.Ordering), opt.HeavyFactor)
	res.Timings.Reorder = time.Since(t0)

	t0 = time.Now()
	f, err := chol.Factorize(sys.ToCSC(), perm)
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	res.FactorNNZ = f.NNZ()
	if opt.Workers > 1 {
		f.Parallelize(opt.Workers)
	}

	t0 = time.Now()
	x := make([]float64, sys.N())
	f.Apply(x, b)
	res.Timings.Iterate = time.Since(t0)
	res.X = x
	res.Converged = true
	res.Residual = relativeResidual(sys, x, b)
	return res, nil
}

func orderOrAMD(o Ordering) Ordering {
	if o == OrderDefault {
		return OrderAMD
	}
	return o
}

func solveStationary(sys *graph.SDDM, b []float64, opt Options) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	a := sys.ToCSC()
	var j pcg.Preconditioner
	var err error
	if opt.Method == MethodSSOR {
		j, err = pcg.NewSSOR(a, 0)
	} else {
		j, err = pcg.NewJacobi(a)
	}
	if err != nil {
		return nil, err
	}
	res.Timings.Factorize = time.Since(t0)
	t0 = time.Now()
	pres, err := pcg.Solve(a, b, j, pcg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

func runPCG(sys *graph.SDDM, b []float64, m pcg.Preconditioner, opt Options, res *Result, _ interface{}) (*Result, error) {
	t0 := time.Now()
	// Assembling the CSC once is faster than edge-list SpMV per iteration;
	// with Workers > 1 the product runs row-parallel over a CSR copy.
	a := sys.ToCSC()
	mul := func(y, x []float64) { a.MulVec(y, x) }
	if opt.Workers > 1 {
		csr := a.ToCSR()
		workers := opt.Workers
		mul = func(y, x []float64) { csr.MulVecParallel(y, x, workers) }
	}
	pres, err := pcg.SolveOp(sys.N(), mul, b, m, pcg.Options{Tol: opt.Tol, MaxIter: opt.MaxIter, Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

func fill(res *Result, p *pcg.Result) {
	res.X = p.X
	res.Iterations = p.Iterations
	res.Residual = p.Residual
	res.Converged = p.Converged
	res.History = p.History
}

func relativeResidual(sys *graph.SDDM, x, b []float64) float64 {
	y := make([]float64, sys.N())
	sys.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	nb := sparse.Norm2(b)
	if nb == 0 {
		return 0
	}
	return sparse.Norm2(y) / nb
}
