package faultinject

import (
	"math"
	"testing"

	"powerrchol/internal/pcg"
)

func TestPivotHooks(t *testing.T) {
	neg := NegativePivot(3)
	if got := neg(3, 2.5); got != -2.5 {
		t.Fatalf("NegativePivot at the step: got %g", got)
	}
	if got := neg(2, 2.5); got != 2.5 {
		t.Fatalf("NegativePivot off the step: got %g", got)
	}
	nan := NaNPivot(0)
	if got := nan(0, 1); !math.IsNaN(got) {
		t.Fatalf("NaNPivot at the step: got %g", got)
	}
	if got := nan(1, 1); got != 1 {
		t.Fatalf("NaNPivot off the step: got %g", got)
	}
}

func TestPreconditionerModes(t *testing.T) {
	r := []float64{1, -2, 3}
	z := make([]float64, 3)

	ind := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeIndefinite}
	ind.Apply(z, r)
	for i := range z {
		if z[i] != -r[i] {
			t.Fatalf("ModeIndefinite: z=%v", z)
		}
	}
	if ind.Calls() != 1 {
		t.Fatalf("Calls = %d, want 1", ind.Calls())
	}

	nan := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeNaN}
	nan.Apply(z, r)
	if !math.IsNaN(z[0]) {
		t.Fatalf("ModeNaN: z=%v", z)
	}

	// After delays the corruption.
	late := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeIndefinite, After: 1}
	late.Apply(z, r)
	for i := range z {
		if z[i] != r[i] {
			t.Fatalf("After=1 corrupted the first call: z=%v", z)
		}
	}
	late.Apply(z, r)
	if z[0] != -r[0] {
		t.Fatalf("After=1 did not corrupt the second call: z=%v", z)
	}
}

func TestStagnateIsDeterministicAndPositive(t *testing.T) {
	r := []float64{0.3, -1.2, 0.8, 2.1}
	z1 := make([]float64, 4)
	z2 := make([]float64, 4)
	a := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeStagnate, Seed: 7}
	b := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeStagnate, Seed: 7}
	for call := 0; call < 5; call++ {
		a.Apply(z1, r)
		b.Apply(z2, r)
		dot := 0.0
		for i := range z1 {
			if z1[i] != z2[i] {
				t.Fatalf("call %d: same seed, different noise", call)
			}
			dot += z1[i] * r[i]
		}
		if dot <= 0 {
			t.Fatalf("call %d: r'z = %g, want > 0 (must not trip the indefiniteness guard)", call, dot)
		}
	}
}

// TestPreconditionerCountWindow: Count bounds the corruption to
// [After, After+Count) — the transient-garbage model the service soak
// tests heal from.
func TestPreconditionerCountWindow(t *testing.T) {
	r := []float64{1, -2, 3}
	z := make([]float64, 3)
	p := &Preconditioner{Inner: pcg.Identity{}, Mode: ModeIndefinite, After: 1, Count: 2}
	expect := func(call int, corrupted bool) {
		t.Helper()
		p.Apply(z, r)
		got := z[0] == -r[0]
		if got != corrupted {
			t.Fatalf("call %d: corrupted=%v, want %v", call, got, corrupted)
		}
	}
	expect(0, false)
	expect(1, true)
	expect(2, true)
	expect(3, false) // window exhausted: the fault is transient
	expect(4, false)
}
