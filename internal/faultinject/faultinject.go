// Package faultinject provides deterministic, seed-driven fault
// injectors for testing the solver's recovery ladder. The randomized
// factorizations fail with probability too low to observe in a test
// suite — and a test that waits for a natural breakdown proves nothing
// about the recovery path. These wrappers force each failure mode on
// demand, reproducibly:
//
//   - pivot perturbation (via core.Options.PivotPerturb) forces
//     factorization breakdown or NaN propagation at a chosen
//     elimination step;
//   - a Preconditioner wrapper corrupts Apply to force PCG
//     indefiniteness, NaN propagation, or stagnation.
//
// Everything is driven by explicit seeds and counters: the same
// injector run twice produces the same corruption, so recovery tests
// are replayable and race-detector clean (call counters are atomic).
package faultinject

import (
	"math"
	"sync/atomic"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
)

// NegativePivot returns a core.Options.PivotPerturb hook that replaces
// the pivot at elimination step `step` with a negative value, forcing
// core.ErrBreakdown exactly there.
func NegativePivot(step int) func(k int, pivot float64) float64 {
	return func(k int, pivot float64) float64 {
		if k == step {
			return -pivot
		}
		return pivot
	}
}

// NaNPivot returns a PivotPerturb hook that poisons the pivot at
// elimination step `step` with NaN, modelling numerical garbage flowing
// into the elimination.
func NaNPivot(step int) func(k int, pivot float64) float64 {
	return func(k int, pivot float64) float64 {
		if k == step {
			return math.NaN()
		}
		return pivot
	}
}

// Mode selects how the Preconditioner wrapper corrupts Apply.
type Mode int

const (
	// ModeIndefinite flips the sign of the preconditioned residual, so
	// rᵀz < 0 and PCG reports ErrIndefinite on the next iteration.
	ModeIndefinite Mode = iota
	// ModeNaN plants a NaN in the preconditioned residual; PCG's NaN
	// guards report ErrIndefinite.
	ModeNaN
	// ModeStagnate replaces the preconditioned residual with a
	// deterministic pseudo-random direction (sign-corrected so rᵀz > 0
	// keeps CG formally alive). Each line search still reduces the
	// A-norm error, but only by O(1/n) per step, so the residual stalls
	// and the stagnation detector fires.
	ModeStagnate
)

// Preconditioner wraps an inner pcg.Preconditioner and corrupts Apply
// according to Mode, starting with call number After (0-based). It is
// safe for concurrent use if the inner preconditioner is.
type Preconditioner struct {
	Inner pcg.Preconditioner
	Mode  Mode
	// After is the first Apply call (0-based) to corrupt; earlier calls
	// pass through untouched.
	After int
	// Count bounds the corruption window: only calls in
	// [After, After+Count) are corrupted, modelling transient numerical
	// garbage a robust service must ride out and then recover from. 0
	// means unbounded — every call from After on is corrupted, the
	// historical behaviour.
	Count int
	// Seed drives ModeStagnate's deterministic noise.
	Seed uint64

	calls atomic.Int64
}

// Calls reports how many times Apply has run — test assertions use it
// to confirm the injector actually fired.
func (p *Preconditioner) Calls() int { return int(p.calls.Load()) }

// Apply implements pcg.Preconditioner.
func (p *Preconditioner) Apply(z, r []float64) {
	call := int(p.calls.Add(1)) - 1
	p.Inner.Apply(z, r)
	if call < p.After || (p.Count > 0 && call >= p.After+p.Count) {
		return
	}
	switch p.Mode {
	case ModeIndefinite:
		for i := range z {
			z[i] = -r[i]
		}
	case ModeNaN:
		if len(z) > 0 {
			z[0] = math.NaN()
		}
	case ModeStagnate:
		// Deterministic per-call noise direction, sign-corrected against r.
		rnd := rng.New(p.Seed + uint64(call)*0x9e3779b97f4a7c15)
		dot := 0.0
		for i := range z {
			z[i] = rnd.Float64() - 0.5
			dot += z[i] * r[i]
		}
		if dot < 0 {
			for i := range z {
				z[i] = -z[i]
			}
		}
	}
}
