package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open = %g out of (0,1)", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance %g, want ~1/12", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v]++
	}
	for i, c := range seen {
		if c == 0 {
			t.Errorf("value %d never produced", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %g, want ~1", variance)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
