// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomized algorithm in this repository.
//
// All randomized factorizations must be reproducible from a seed so that
// experiments can be replayed and failures bisected; the stdlib's global
// rand source is deliberately avoided.
package rng

import "math"

// Rand is a splitmix64-based generator. The zero value is a valid generator
// seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// mix64 is the splitmix64 output function: a bijective avalanche mix,
// used to derive well-separated substream states.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns an independent generator for substream i of seed. The
// substream state is a full avalanche mix of (seed, i), so neighbouring
// indices produce uncorrelated streams and Stream(seed, i) never
// collides with the raw New(seed) sequence in practice. This is the
// split-stream primitive parallel samplers rely on: give sample i its
// own Stream(seed, i) and its draws are a pure function of (seed, i),
// independent of scheduling, worker count, or how many draws other
// samples consumed.
func Stream(seed, i uint64) *Rand {
	return &Rand{state: mix64(seed + 0x9e3779b97f4a7c15*(i+1))}
}

// Uint64 returns the next pseudo-random 64-bit value (splitmix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value uniformly distributed in the half-open
// interval [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a value uniformly distributed in the open interval
// (0, 1); it never returns exactly 0, which several sampling routines rely
// on to guarantee strict inequalities.
func (r *Rand) Float64Open() float64 {
	for {
		v := r.Float64()
		if v != 0 {
			return v
		}
	}
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1)
// using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
