package session

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"powerrchol"
)

// ErrBatcherStopped reports a submit against a stopped batcher (the
// entry was evicted or the server is draining). Callers fall back to a
// direct solve or re-resolve the cache.
var ErrBatcherStopped = errors.New("session: batcher stopped")

// Batcher aggregates concurrent single-RHS solve requests against one
// prepared session into Ensemble windows. A window closes when it
// reaches its width bound or its delay bound, whichever first; the
// knobs come from a callback so a degradation ladder can narrow them
// per window without restarting the dispatcher. Batching is purely an
// amortization: every response is bitwise identical to a one-shot
// Solver.Solve of the same right-hand side (the SolveBatch contract),
// which the serve soak test asserts end to end.
//
// Lifecycle: Start spawns one dispatcher goroutine, tied to the ctx the
// owner passes (its lifetime context). Stop — or that ctx ending —
// terminates the dispatcher after the in-flight window completes;
// submissions after that fail fast with ErrBatcherStopped. Every
// submitted request gets exactly one response: the response channel is
// buffered and owned by the dispatcher, so an abandoned client can
// never block the dispatch loop.
type Batcher struct {
	sess *Session
	// knobs returns the current (maxWidth, maxDelay) window bounds.
	knobs   func() (int, time.Duration)
	onBatch func(width int)

	reqs    chan *solveReq
	stopped chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup

	batches atomic.Int64
	widths  atomic.Int64
}

type solveReq struct {
	ctx  context.Context
	b    []float64
	resp chan solveResp
}

type solveResp struct {
	res   *powerrchol.Result
	err   error
	width int // the batch width this response was served in
}

// NewBatcher builds a batcher over sess. knobs must be non-nil and
// safe for concurrent use; it is consulted once per window. onBatch, if
// non-nil, observes each dispatched window's width (the serve layer
// feeds its service-wide metrics this way, surviving batcher eviction).
func NewBatcher(sess *Session, knobs func() (int, time.Duration), onBatch func(width int)) *Batcher {
	return &Batcher{
		sess:    sess,
		knobs:   knobs,
		onBatch: onBatch,
		reqs:    make(chan *solveReq),
		stopped: make(chan struct{}),
	}
}

// Session returns the prepared session this batcher dispatches against.
func (bt *Batcher) Session() *Session { return bt.sess }

// Start launches the dispatcher under ctx, the owner's lifetime
// context. It must be called exactly once, before the first Submit.
func (bt *Batcher) Start(ctx context.Context) {
	bt.wg.Add(1)
	go func() {
		defer bt.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-bt.stopped:
				return
			case first := <-bt.reqs:
				//pglint:hotalloc per-window setup (timer, ctx, member list) is amortized over the whole batch it dispatches
				bt.runWindow(ctx, first)
			}
		}
	}()
}

// Stop terminates the dispatcher after any in-flight window and waits
// for it. Safe to call more than once and concurrently with Submit.
func (bt *Batcher) Stop() {
	bt.stop.Do(func() { close(bt.stopped) })
	bt.wg.Wait()
}

// Batches and BatchedRHS report the dispatched window count and the
// right-hand sides they carried.
func (bt *Batcher) Batches() int64    { return bt.batches.Load() }
func (bt *Batcher) BatchedRHS() int64 { return bt.widths.Load() }

// Submit solves one right-hand side through the next micro-batch
// window, blocking until the response, the request ctx ending, or the
// batcher stopping.
func (bt *Batcher) Submit(ctx context.Context, b []float64) (*powerrchol.Result, int, error) {
	req := &solveReq{ctx: ctx, b: b, resp: make(chan solveResp, 1)}
	select {
	case bt.reqs <- req:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-bt.stopped:
		return nil, 0, ErrBatcherStopped
	}
	// Once accepted, the dispatcher guarantees exactly one (buffered)
	// response, so abandoning on ctx.Done leaks nothing.
	select {
	case resp := <-req.resp:
		return resp.res, resp.width, resp.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// runWindow collects one batch starting from first and solves it.
func (bt *Batcher) runWindow(ctx context.Context, first *solveReq) {
	width, delay := bt.knobs()
	if width < 1 {
		width = 1
	}
	members := make([]*solveReq, 1, width)
	members[0] = first
	if width > 1 && delay > 0 {
		timer := time.NewTimer(delay)
	collect:
		for len(members) < width {
			select {
			case r := <-bt.reqs:
				//pglint:hotalloc capacity is reserved at the width knob above; the append never grows
				members = append(members, r)
			case <-timer.C:
				break collect
			case <-ctx.Done():
				break collect
			}
		}
		timer.Stop()
	}
	bt.solve(ctx, members)
}

// solve runs the collected window. Members whose context already ended
// are answered immediately and excluded; the batch itself runs under a
// context that is cancelled once every remaining member's context has
// ended — one client hanging up never aborts its batch peers, but a
// batch nobody is waiting for stops burning iterations.
func (bt *Batcher) solve(ctx context.Context, members []*solveReq) {
	live := members[:0]
	for _, m := range members {
		if err := m.ctx.Err(); err != nil {
			m.resp <- solveResp{err: err}
			continue
		}
		live = append(live, m) //pglint:hotalloc in-place filter over members[:0], never grows past the window width
	}
	if len(live) == 0 {
		return
	}
	bt.batches.Add(1)
	bt.widths.Add(int64(len(live)))
	if bt.onBatch != nil {
		bt.onBatch(len(live))
	}

	batchCtx, cancel := context.WithCancel(ctx)
	watchDone := make(chan struct{})
	var gone atomic.Int64
	for _, m := range live {
		//pglint:hotalloc one watcher goroutine per batch member, bounded by the MaxBatch knob
		go func(mctx context.Context) {
			select {
			case <-mctx.Done():
				if gone.Add(1) == int64(len(live)) {
					cancel()
				}
			case <-watchDone:
			}
		}(m.ctx)
	}

	if len(live) == 1 {
		// A lone request skips the batch machinery: same solve path,
		// same bits, one less indirection.
		res, err := bt.sess.Solve(batchCtx, live[0].b)
		live[0].resp <- solveResp{res: res, err: err, width: 1}
	} else {
		rhs := make([][]float64, len(live))
		for i, m := range live {
			rhs[i] = m.b
		}
		results, err := bt.sess.Ensemble(batchCtx, rhs)
		errs := batchErrs(err, len(live))
		for i, m := range live {
			m.resp <- solveResp{res: results[i], err: errs[i], width: len(live)}
		}
	}
	close(watchDone)
	cancel()
}

// batchErrs explodes an Ensemble error into per-member errors: a
// *powerrchol.BatchError maps index-by-index, anything else applies to
// every member.
func batchErrs(err error, n int) []error {
	out := make([]error, n)
	if err == nil {
		return out
	}
	var be *powerrchol.BatchError
	if errors.As(err, &be) && len(be.Errs) == n {
		copy(out, be.Errs)
		return out
	}
	for i := range out {
		out[i] = err
	}
	return out
}
