// Package session makes "many solves against one prepared factor" a
// first-class concept. The paper's DC analysis is a single solve, but
// every workload that rewards PowerRChol's cheap, strong preconditioner
// is many-solve: transient simulation turns each timestep into a new
// right-hand side against a fixed SDDM, Monte Carlo what-if studies
// solve perturbation ensembles, and the serve daemon streams arbitrary
// client RHS at one cached factor. This package owns the RHS-stream
// machinery those consumers share:
//
//   - Session: a prepared-solver handle (one factorization, many solves)
//     with the one-shot passthrough (Solve), the independent-ensemble
//     fan-out (Ensemble, the SolveBatchContext worker pool), and the
//     dependent-stream walker (Sequence, warm-started step solves for
//     transient integration).
//   - Batcher: the micro-batching dispatcher the serve layer aggregates
//     concurrent single-RHS requests with (moved here from
//     internal/serve, which now consumes it).
//
// Contracts inherited from the Solver: everything is ctx-cancellable,
// errors keep the typed taxonomy (SolveError, BatchError,
// NotConvergedError), and cold-start answers are bitwise identical to a
// one-shot Solver.Solve of the same right-hand side regardless of
// batching, ensemble width or worker count. Warm-started Sequence steps
// are the one deliberate exception: they start PCG from the previous
// step's solution (SolveFromContext), which changes the iterate path —
// deterministically, as a pure function of (system, options, RHS
// stream), so transient waveforms stay bitwise replayable per seed.
package session

import (
	"context"
	"sync/atomic"

	"powerrchol"
	"powerrchol/internal/graph"
)

// prepares counts factorizations performed through this package — the
// observable the "a transient study factorizes once for N steps" test
// asserts on. Telemetry, not synchronization: reads race benignly with
// concurrent prepares.
var prepares atomic.Int64

// Prepares reports the number of solver preparations (factorizations)
// this package has performed since process start.
func Prepares() int64 { return prepares.Load() }

// Session is a prepared-solver handle: the reordering and factorization
// are spent once, then amortized over any mix of one-shot solves,
// independent ensembles and dependent sequences. Like the Solver it
// wraps, a Session is immutable after construction and safe for
// concurrent use (Sequences are the per-stream exception — each
// Sequence is a single-goroutine walker).
type Session struct {
	solver *powerrchol.Solver
	sys    *graph.SDDM
}

// Prepare factorizes sys once under ctx and returns the session that
// amortizes it. It is NewSolverContext plus the preparation accounting
// workload tests assert factorize-once contracts against.
func Prepare(ctx context.Context, sys *graph.SDDM, opt powerrchol.Options) (*Session, error) {
	solver, err := powerrchol.NewSolverContext(ctx, sys, opt)
	if err != nil {
		return nil, err
	}
	prepares.Add(1)
	return &Session{solver: solver, sys: sys}, nil
}

// PrepareFromPlan is Prepare with a precompiled solver plan: the method
// registry resolution and recovery-ladder rung layout are shared across
// every system prepared from the same plan — the Monte Carlo path, where
// fingerprint-distinct samples reuse one plan while fingerprint-identical
// samples reuse whole sessions.
func PrepareFromPlan(ctx context.Context, sys *graph.SDDM, plan *powerrchol.SolverPlan) (*Session, error) {
	solver, err := powerrchol.NewSolverFromPlan(ctx, sys, plan)
	if err != nil {
		return nil, err
	}
	prepares.Add(1)
	return &Session{solver: solver, sys: sys}, nil
}

// Wrap adopts an already-built solver (the serve layer builds its own,
// with ladder-degraded options, through its single-flight cache). The
// preparation is not re-counted: it happened wherever the solver was
// built.
func Wrap(solver *powerrchol.Solver) *Session {
	return &Session{solver: solver}
}

// Solver exposes the underlying prepared solver (fingerprint, memory
// accounting, setup timings).
func (s *Session) Solver() *powerrchol.Solver { return s.solver }

// N reports the system dimension.
func (s *Session) N() int { return s.solver.N() }

// Solve runs one right-hand side — the one-shot passthrough, bitwise
// identical to Solver.Solve.
func (s *Session) Solve(ctx context.Context, b []float64) (*powerrchol.Result, error) {
	return s.solver.SolveContext(ctx, b)
}

// Ensemble solves independent right-hand sides across the prepared
// solver's bounded worker pool (SolveBatchContext): the Monte Carlo
// shape. Every member result is bitwise identical to a one-shot Solve
// of the same RHS, for every worker count; failures surface as a
// *powerrchol.BatchError indexed per member.
func (s *Session) Ensemble(ctx context.Context, rhs [][]float64) ([]*powerrchol.Result, error) {
	return s.solver.SolveBatchContext(ctx, rhs)
}

// Sequence opens a dependent-RHS stream: step t+1's right-hand side may
// depend on step t's solution (the backward-Euler transient shape). With
// warm true each step starts PCG from the previous solution, which
// typically saves a third or more of the iterations across transient
// steps; with warm false every step is a cold start, bitwise identical
// to one-shot solves. A Sequence is a single-goroutine walker; open one
// per stream.
func (s *Session) Sequence(warm bool) *Sequence {
	return &Sequence{s: s, warm: warm}
}

// Sequence walks dependent right-hand sides against one prepared factor.
type Sequence struct {
	s     *Session
	warm  bool
	x     []float64 // previous step's solution (nil before the first step)
	steps int
	iters int
}

// Step solves the next right-hand side in the stream. On success the
// solution becomes the next step's warm start (when the sequence is
// warm); on failure the stream state is unchanged, so a caller may retry
// or abandon.
func (q *Sequence) Step(ctx context.Context, b []float64) (*powerrchol.Result, error) {
	var res *powerrchol.Result
	var err error
	if q.warm && q.x != nil {
		res, err = q.s.solver.SolveFromContext(ctx, b, q.x)
	} else {
		res, err = q.s.solver.SolveContext(ctx, b)
	}
	if err != nil {
		return res, err
	}
	q.x = res.X
	q.steps++
	q.iters += res.Iterations
	return res, nil
}

// Steps reports how many steps have completed.
func (q *Sequence) Steps() int { return q.steps }

// TotalIterations reports the PCG iterations summed over completed steps.
func (q *Sequence) TotalIterations() int { return q.iters }

// X returns the most recent solution (nil before the first completed
// step). The slice is the live warm-start state; callers must not
// mutate it.
func (q *Sequence) X() []float64 { return q.x }
