package session

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"powerrchol"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func testOptions() powerrchol.Options {
	return powerrchol.Options{Method: powerrchol.MethodLTRChol, Seed: 7, Tol: 1e-10}
}

// testRHS builds a deterministic right-hand side of length n.
func testRHS(n int, seed uint64) []float64 {
	r := rng.New(seed)
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	return b
}

func newTestSession(t *testing.T) *Session {
	t.Helper()
	sys := testmat.GridSDDM(12, 12)
	sess, err := Prepare(context.Background(), sys, testOptions())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return sess
}

func staticKnobs(width int, window time.Duration) func() (int, time.Duration) {
	return func() (int, time.Duration) { return width, window }
}

// TestBatcherBitwiseEqualsSolve is the batching contract: answers served
// through a micro-batch window are bit-for-bit the answers of one-shot
// solves on the same solver.
func TestBatcherBitwiseEqualsSolve(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bt := NewBatcher(sess, staticKnobs(8, 20*time.Millisecond), nil)
	bt.Start(ctx)
	defer bt.Stop()

	const k = 6
	n := 12 * 12
	var wg sync.WaitGroup
	got := make([][]float64, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := bt.Submit(ctx, testRHS(n, uint64(100+i)))
			if err == nil {
				got[i] = res.X
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		ref, err := sess.Solver().Solve(testRHS(n, uint64(100+i)))
		if err != nil {
			t.Fatalf("referee %d: %v", i, err)
		}
		for j := range ref.X {
			if math.Float64bits(got[i][j]) != math.Float64bits(ref.X[j]) {
				t.Fatalf("request %d: batched X[%d]=%g != one-shot %g", i, j, got[i][j], ref.X[j])
			}
		}
	}
	if bt.BatchedRHS() != k {
		t.Fatalf("batched RHS = %d, want %d", bt.BatchedRHS(), k)
	}
	if bt.Batches() >= k {
		t.Logf("no aggregation happened (%d windows for %d requests) — timing-dependent, not fatal", bt.Batches(), k)
	}
}

func TestBatcherStopRejectsSubmits(t *testing.T) {
	sess := newTestSession(t)
	ctx := context.Background()
	bt := NewBatcher(sess, staticKnobs(4, time.Millisecond), nil)
	bt.Start(ctx)
	bt.Stop()
	_, _, err := bt.Submit(ctx, testRHS(12*12, 1))
	if !errors.Is(err, ErrBatcherStopped) {
		t.Fatalf("submit after stop = %v, want ErrBatcherStopped", err)
	}
	bt.Stop() // idempotent
}

func TestBatcherPreCancelledMember(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bt := NewBatcher(sess, staticKnobs(4, 50*time.Millisecond), nil)
	bt.Start(ctx)
	defer bt.Stop()

	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, _, err := bt.Submit(dead, testRHS(12*12, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit = %v, want Canceled", err)
	}
	// A live request still gets served after the dead one.
	if _, _, err := bt.Submit(ctx, testRHS(12*12, 3)); err != nil {
		t.Fatalf("live submit after cancelled one: %v", err)
	}
}

// TestBatcherMidBatchCancellation cancels one member while its batch is
// being collected; the peer must still get its (bitwise-correct) answer.
func TestBatcherMidBatchCancellation(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bt := NewBatcher(sess, staticKnobs(4, 100*time.Millisecond), nil)
	bt.Start(ctx)
	defer bt.Stop()

	n := 12 * 12
	memberCtx, memberCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var cancelledErr error
	go func() {
		defer wg.Done()
		_, _, cancelledErr = bt.Submit(memberCtx, testRHS(n, 10))
	}()
	// Give the first submit time to open the collection window, then
	// cancel it and submit a second member into the same window.
	time.Sleep(10 * time.Millisecond)
	memberCancel()
	res, _, err := bt.Submit(ctx, testRHS(n, 11))
	if err != nil {
		t.Fatalf("surviving member: %v", err)
	}
	wg.Wait()
	if cancelledErr == nil {
		// The cancelled member may have been answered before the cancel
		// landed — both outcomes are legal; the invariant is it got
		// exactly one response and the survivor's answer is right.
		t.Log("cancelled member was served before cancellation landed")
	}
	ref, err := sess.Solver().Solve(testRHS(n, 11))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref.X {
		if math.Float64bits(res.X[j]) != math.Float64bits(ref.X[j]) {
			t.Fatalf("survivor X[%d] differs from one-shot referee", j)
		}
	}
}

func TestBatcherDispatcherDiesWithContext(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	bt := NewBatcher(sess, staticKnobs(4, time.Millisecond), nil)
	bt.Start(ctx)
	cancel()
	// After the lifetime ctx ends the dispatcher exits; Stop must not
	// hang waiting for it.
	done := make(chan struct{})
	go func() { bt.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung after lifetime context cancellation")
	}
}
