package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Index-width abstraction. The factor of a 1e7-node mesh carries a few
// hundred million stored entries, and at that scale the index arrays —
// not the float64 values — dominate the footprint: RChol-style factors
// run ~8-9 nnz/column, so the 8-byte RowIdx entries of the wide layout
// cost as much as the values themselves. CSC32/CSR32 are the same
// storage layouts with 4-byte indices, halving index bytes/nnz, with
// overflow-checked conversions that fail loudly at the 2^31 boundary
// instead of wrapping.
//
// Kernel contract: every compact kernel (MulVec, the triangular solves,
// TriSolver32) performs the identical floating-point operations in the
// identical order as its wide counterpart, so switching index width
// never changes a solve's bits. The equivalence suite at the repo root
// pins this for every registered method.

// MaxIndex32 is the largest dimension or entry count representable in
// compact (int32) index storage.
const MaxIndex32 = math.MaxInt32

// IndexMode selects the index width of factor and matrix storage.
type IndexMode int

const (
	// IndexWide is the default: 64-bit (int) index storage, the seed
	// behavior of every earlier revision.
	IndexWide IndexMode = iota
	// IndexCompact requires int32 index storage and fails with an error
	// wrapping ErrIndexOverflow when dimensions or entry counts exceed
	// the 2^31 boundary.
	IndexCompact
	// IndexAuto uses int32 storage when the problem fits and silently
	// widens (mid-build if necessary) when it does not.
	IndexAuto
)

func (m IndexMode) String() string {
	switch m {
	case IndexWide:
		return "wide"
	case IndexCompact:
		return "compact"
	case IndexAuto:
		return "auto"
	}
	return fmt.Sprintf("IndexMode(%d)", int(m))
}

// ErrIndexOverflow reports a matrix whose dimensions or entry count
// exceed compact (int32) index storage. Callers selecting compact
// storage explicitly receive it wrapped with the offending size.
var ErrIndexOverflow = errors.New("sparse: matrix exceeds int32 index range")

// FitsInt32 reports whether a matrix with the given dimensions and
// stored entry count can use compact index storage.
func FitsInt32(rows, cols, nnz int) bool {
	return rows >= 0 && cols >= 0 && nnz >= 0 &&
		rows <= MaxIndex32 && cols <= MaxIndex32 && nnz <= MaxIndex32
}

// CompactIndexSlice converts a wide index slice to int32, failing with
// ErrIndexOverflow on the first value outside [0, 2^31). It is the
// overflow-checked conversion underlying every wide→compact path.
func CompactIndexSlice(dst []int32, src []int) ([]int32, error) {
	if cap(dst) < len(src) {
		dst = make([]int32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		if v < 0 || v > MaxIndex32 {
			return nil, fmt.Errorf("%w: index %d at position %d", ErrIndexOverflow, v, i)
		}
		dst[i] = int32(v)
	}
	return dst, nil
}

// WidenIndexSlice converts a compact index slice back to the wide
// layout. Compact indices are always in range, so it cannot fail.
func WidenIndexSlice(dst []int, src []int32) []int {
	if cap(dst) < len(src) {
		dst = make([]int, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = int(v)
	}
	return dst
}

// CSC32 is a sparse matrix in compressed sparse column format with
// compact (int32) index storage: the memory-diet twin of CSC. The
// float64 values and all structural conventions (0-based, sorted rows
// within a column unless a producer documents otherwise) are identical.
type CSC32 struct {
	Rows, Cols int
	ColPtr     []int32 // length Cols+1
	RowIdx     []int32 // length nnz
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSC32) NNZ() int { return int(a.ColPtr[a.Cols]) }

// IndexBytes returns the bytes spent on index storage (ColPtr+RowIdx),
// the quantity the compact layout halves. Diagnostic use.
func (a *CSC32) IndexBytes() int { return 4 * (len(a.ColPtr) + len(a.RowIdx)) }

// IndexBytes is the wide counterpart of CSC32.IndexBytes.
func (a *CSC) IndexBytes() int {
	const w = 8 // int is 8 bytes on every platform this repo targets
	return w * (len(a.ColPtr) + len(a.RowIdx))
}

// CompactCSC converts a to compact index storage. It fails with an
// error wrapping ErrIndexOverflow when the dimensions or entry count
// exceed int32 range. The input is not modified; for a conversion that
// releases the wide arrays as it goes, convert column-pointer and
// row-index slices separately with CompactIndexSlice.
func CompactCSC(a *CSC) (*CSC32, error) {
	// Dimensions first: NNZ() indexes ColPtr[Cols], which a matrix with
	// an out-of-range Cols header may not even have.
	if !FitsInt32(a.Rows, a.Cols, 0) {
		return nil, fmt.Errorf("%w: %dx%d", ErrIndexOverflow, a.Rows, a.Cols)
	}
	if !FitsInt32(a.Rows, a.Cols, a.NNZ()) {
		return nil, fmt.Errorf("%w: %dx%d with %d entries", ErrIndexOverflow, a.Rows, a.Cols, a.NNZ())
	}
	cp, err := CompactIndexSlice(nil, a.ColPtr)
	if err != nil {
		return nil, err
	}
	ri, err := CompactIndexSlice(nil, a.RowIdx)
	if err != nil {
		return nil, err
	}
	return &CSC32{Rows: a.Rows, Cols: a.Cols, ColPtr: cp, RowIdx: ri, Val: a.Val}, nil
}

// Wide converts a back to wide index storage. The value slice is
// shared, not copied.
func (a *CSC32) Wide() *CSC {
	return &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: WidenIndexSlice(nil, a.ColPtr),
		RowIdx: WidenIndexSlice(nil, a.RowIdx),
		Val:    a.Val,
	}
}

// At returns the value at (i, j), for tests and small matrices.
func (a *CSC32) At(i, j int) float64 {
	lo, hi := int(a.ColPtr[j]), int(a.ColPtr[j+1])
	k := sort.Search(hi-lo, func(k int) bool { return int(a.RowIdx[lo+k]) >= i })
	if k < hi-lo && int(a.RowIdx[lo+k]) == i {
		return a.Val[lo+k]
	}
	return 0
}

// Check validates the same structural invariants as CSC.Check.
func (a *CSC32) Check() error {
	if len(a.ColPtr) != a.Cols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.Cols+1)
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: ColPtr[0] = %d, want 0", a.ColPtr[0])
	}
	nnz := a.NNZ()
	if len(a.RowIdx) != nnz || len(a.Val) != nnz {
		return fmt.Errorf("sparse: index/value arrays have length %d/%d, want %d",
			len(a.RowIdx), len(a.Val), nnz)
	}
	for j := 0; j < a.Cols; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: column %d has negative length", j)
		}
		prev := int32(-1)
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i < 0 || int(i) >= a.Rows {
				return fmt.Errorf("sparse: row index %d out of range in column %d", i, j)
			}
			if i <= prev {
				return fmt.Errorf("sparse: unsorted or duplicate row index %d in column %d", i, j)
			}
			prev = i
			if math.IsNaN(a.Val[p]) || math.IsInf(a.Val[p], 0) {
				return fmt.Errorf("sparse: non-finite value at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// MulVec computes y = A·x; same operation order as CSC.MulVec, so the
// result is bitwise identical to the wide kernel.
func (a *CSC32) MulVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			y[a.RowIdx[p]] += a.Val[p] * xj
		}
	}
}

// MulVecTrans computes y = Aᵀ·x in gather form, bitwise identical to
// CSC.MulVecTrans.
func (a *CSC32) MulVecTrans(y, x []float64) {
	for j := 0; j < a.Cols; j++ {
		var s float64
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * x[a.RowIdx[p]]
		}
		y[j] = s
	}
}

// ToCSR converts to compact CSR storage, same construction as CSC.ToCSR.
func (a *CSC32) ToCSR() *CSR32 {
	t := &CSR32{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int32, a.Rows+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, i := range a.RowIdx {
		t.RowPtr[i+1]++
	}
	for i := 0; i < a.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr[:a.Rows]...)
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			q := next[i]
			next[i]++
			t.ColIdx[q] = int32(j)
			t.Val[q] = a.Val[p]
		}
	}
	return t
}

// CSR32 is the compact-index compressed sparse row matrix.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the stored entry count.
func (a *CSR32) NNZ() int { return int(a.RowPtr[a.Rows]) }

// MulVec computes y = A·x row by row, bitwise identical to CSR.MulVec.
func (a *CSR32) MulVec(y, x []float64) {
	for i := 0; i < a.Rows; i++ {
		var s float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.Val[p] * x[a.ColIdx[p]]
		}
		y[i] = s
	}
}
