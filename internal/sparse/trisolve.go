package sparse

// The triangular solves in this file are the inner kernel of every
// factorization-based preconditioner: applying M⁻¹ = L⁻ᵀ·L⁻¹ costs one
// forward and one backward solve per PCG iteration.

// LowerSolve solves L·x = b in place (x aliases b on entry) for a lower
// triangular matrix stored in CSC with the diagonal as the FIRST entry of
// each column. This layout is produced by all factorizations in this
// repository.
func LowerSolve(l *CSC, x []float64) {
	for j := 0; j < l.Cols; j++ {
		p := l.ColPtr[j]
		end := l.ColPtr[j+1]
		xj := x[j] / l.Val[p]
		x[j] = xj
		for p++; p < end; p++ {
			x[l.RowIdx[p]] -= l.Val[p] * xj
		}
	}
}

// LowerTransposeSolve solves Lᵀ·x = b in place for the same storage layout
// as LowerSolve (lower triangular CSC, diagonal first per column). Row i of
// Lᵀ is column i of L, so the backward substitution is a per-column dot
// product.
func LowerTransposeSolve(l *CSC, x []float64) {
	for j := l.Cols - 1; j >= 0; j-- {
		p := l.ColPtr[j]
		end := l.ColPtr[j+1]
		sum := x[j]
		for q := p + 1; q < end; q++ {
			sum -= l.Val[q] * x[l.RowIdx[q]]
		}
		x[j] = sum / l.Val[p]
	}
}

// UpperSolve solves U·x = b in place for an upper triangular CSC matrix
// with the diagonal as the LAST entry of each column.
func UpperSolve(u *CSC, x []float64) {
	for j := u.Cols - 1; j >= 0; j-- {
		end := u.ColPtr[j+1] - 1
		xj := x[j] / u.Val[end]
		x[j] = xj
		for p := u.ColPtr[j]; p < end; p++ {
			x[u.RowIdx[p]] -= u.Val[p] * xj
		}
	}
}
