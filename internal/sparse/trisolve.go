package sparse

// The triangular solves in this file are the inner kernel of every
// factorization-based preconditioner: applying M⁻¹ = L⁻ᵀ·L⁻¹ costs one
// forward and one backward solve per PCG iteration.
//
// Each kernel walks the column pointer without re-indexing it: CSC
// column pointers are contiguous, so one column's end is the next
// column's start, and the walk carries that value across iterations
// (forward solves range over colPtr[1:n+1], backward solves carry end
// downward). Together with hoisting the column window into a pair of
// equal-length slices, this proves every index except the
// data-dependent gather/scatter through the row indices in bounds
// (pgoptcheck rule bce; DESIGN.md §13). None of the restructuring
// reorders a floating-point operation, so every solve stays bitwise
// identical to its pre-hint form.

// LowerSolve solves L·x = b in place (x aliases b on entry) for a lower
// triangular matrix stored in CSC with the diagonal as the FIRST entry of
// each column. This layout is produced by all factorizations in this
// repository.
//
//pgopt:noescape applied once per PCG iteration; must not heap-allocate on the solve path
func LowerSolve(l *CSC, x []float64) {
	n := l.Cols
	x = x[:n]
	p := l.ColPtr[0]
	for j, end := range l.ColPtr[1 : n+1 : n+1] {
		xj := x[j] / l.Val[p]
		x[j] = xj
		rows := l.RowIdx[p+1 : end]
		vals := l.Val[p+1 : end]
		vals = vals[:len(rows)]
		for k, i := range rows {
			x[i] -= vals[k] * xj
		}
		p = end
	}
}

// LowerTransposeSolve solves Lᵀ·x = b in place for the same storage layout
// as LowerSolve (lower triangular CSC, diagonal first per column). Row i of
// Lᵀ is column i of L, so the backward substitution is a per-column dot
// product.
//
//pgopt:noescape applied once per PCG iteration; must not heap-allocate on the solve path
func LowerTransposeSolve(l *CSC, x []float64) {
	n := l.Cols
	x = x[:n]
	colPtr := l.ColPtr
	end := colPtr[n]
	for j := n - 1; j >= 0; j-- {
		p := colPtr[j]
		sum := x[j]
		rows := l.RowIdx[p+1 : end]
		vals := l.Val[p+1 : end]
		vals = vals[:len(rows)]
		for k := range vals {
			sum -= vals[k] * x[rows[k]]
		}
		x[j] = sum / l.Val[p]
		end = p
	}
}

// UpperSolve solves U·x = b in place for an upper triangular CSC matrix
// with the diagonal as the LAST entry of each column.
//
//pgopt:noescape backward-substitution twin of LowerSolve, same per-iteration budget
func UpperSolve(u *CSC, x []float64) {
	n := u.Cols
	x = x[:n]
	colPtr := u.ColPtr
	end := colPtr[n]
	for j := n - 1; j >= 0; j-- {
		p := colPtr[j]
		xj := x[j] / u.Val[end-1]
		x[j] = xj
		rows := u.RowIdx[p : end-1]
		vals := u.Val[p : end-1]
		vals = vals[:len(rows)]
		for k, i := range rows {
			x[i] -= vals[k] * xj
		}
		end = p
	}
}
