package sparse

import "sync"

// CSR is a compressed sparse row matrix. For matrix-vector products CSR
// beats CSC on modern hardware: each output element is a contiguous dot
// product (no scatter), and rows partition trivially across goroutines.
// The paper's experiments are single-core; parallel products are an
// opt-in extension (see Options.Workers in the facade).
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// ToCSR converts a CSC matrix to CSR. For a symmetric matrix this equals
// a transpose-free relabeling; for general matrices it is an explicit
// transpose of the storage, preserving the operator.
func (a *CSC) ToCSR() *CSR {
	t := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, i := range a.RowIdx {
		t.RowPtr[i+1]++
	}
	for i := 0; i < a.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:a.Rows]...)
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			q := next[i]
			next[i]++
			t.ColIdx[q] = j
			t.Val[q] = a.Val[p]
		}
	}
	return t
}

// NNZ returns the stored entry count.
func (a *CSR) NNZ() int { return a.RowPtr[a.Rows] }

// MulVec computes y = A·x row by row. The row-pointer walk carries each
// row's end into the next iteration and ranges over the per-row window,
// so only the data-dependent x gather keeps a bounds check (pgoptcheck
// rule bce); the accumulation order is unchanged.
//
//pgopt:noescape one SpMV per PCG iteration; scratch-free by design
func (a *CSR) MulVec(y, x []float64) {
	n := a.Rows
	y = y[:n]
	p := a.RowPtr[0]
	for i, end := range a.RowPtr[1 : n+1 : n+1] {
		cols := a.ColIdx[p:end]
		vals := a.Val[p:end]
		vals = vals[:len(cols)]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
		p = end
	}
}

// MulVecParallel computes y = A·x with rows partitioned across `workers`
// goroutines, balanced by nonzero count rather than row count so skewed
// matrices (power-law graphs) do not serialize on their hub rows.
func (a *CSR) MulVecParallel(y, x []float64, workers int) {
	if workers <= 1 || a.Rows < 4*workers {
		a.MulVec(y, x)
		return
	}
	bp := getBounds(workers + 1)
	bounds := *bp
	nnzPartitionInto(bounds, a.RowPtr, a.Rows, workers)
	rowPtr, colIdx, val := a.RowPtr, a.ColIdx, a.Val
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait
		go func(lo, hi int) {
			defer wg.Done()
			ys := y[lo:hi]
			p := rowPtr[lo]
			for i, end := range rowPtr[lo+1 : hi+1] {
				cols := colIdx[p:end]
				vals := val[p:end]
				vals = vals[:len(cols)]
				var s float64
				for k, c := range cols {
					s += vals[k] * x[c]
				}
				ys[i] = s
				p = end
			}
		}(lo, hi)
	}
	wg.Wait()
	putBounds(bp)
}

// partition returns workers+1 row boundaries with roughly equal nonzeros
// per slice. Allocating convenience form of nnzPartitionInto (tests and
// diagnostics; the solve path uses the pooled in-place variant).
func (a *CSR) partition(workers int) []int {
	bounds := make([]int, workers+1)
	nnzPartitionInto(bounds, a.RowPtr, a.Rows, workers)
	return bounds
}
