package sparse

import (
	"testing"

	"powerrchol/internal/rng"
)

// Serial-kernel microbenchmarks for the pgoptcheck sweep: these are the
// innermost loops the compiler-diagnostics contract (DESIGN.md §13)
// guards, benchmarked without goroutine scheduling noise so a
// reintroduced bounds check or heap escape moves ns/op directly.

func benchLower(b *testing.B) (*CSC, []float64, []float64) {
	b.Helper()
	r := rng.New(11)
	l := randLower(r, 20000, 8)
	x := randVec(r, 20000)
	work := make([]float64, 20000)
	return l, x, work
}

func BenchmarkLowerSolve(b *testing.B) {
	l, x, work := benchLower(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		LowerSolve(l, work)
	}
}

func BenchmarkLowerTransposeSolve(b *testing.B) {
	l, x, work := benchLower(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		LowerTransposeSolve(l, work)
	}
}

func BenchmarkLowerSolve32(b *testing.B) {
	l, x, work := benchLower(b)
	l32, err := CompactCSC(l)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		LowerSolve32(l32, work)
	}
}

func BenchmarkLowerTransposeSolve32(b *testing.B) {
	l, x, work := benchLower(b)
	l32, err := CompactCSC(l)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		LowerTransposeSolve32(l32, work)
	}
}

func BenchmarkTriSolver32LowerSolve(b *testing.B) {
	l, x, work := benchLower(b)
	l32, err := CompactCSC(l)
	if err != nil {
		b.Fatal(err)
	}
	t := NewTriSolver32(l32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		t.LowerSolve(work, benchWorkers)
	}
}

func BenchmarkCSRMulVec(b *testing.B) {
	a := benchCSR(b)
	x := randVec(rng.New(12), a.Cols)
	y := make([]float64, a.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkDot(b *testing.B) {
	r := rng.New(13)
	x := randVec(r, 1<<16)
	y := randVec(r, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	r := rng.New(14)
	x := randVec(r, 1<<16)
	y := randVec(r, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(y, 0.5, x)
	}
}
