package sparse

import (
	"math"
	"testing"

	"powerrchol/internal/rng"
)

// Property tests for the parallel kernels: every parallel op must agree
// with its serial counterpart — bitwise where the implementation
// guarantees it (axpy, SpMV, triangular solves), to rounding otherwise
// (blocked reductions) — including the below-threshold serial fallback
// and the n=0 / n=1 edge cases.

func randVec(r *rng.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

// randLower builds a random lower-triangular factor in the repository's
// diag-first CSC layout, with off-diagonal rows deliberately left in the
// unsorted order the randomized factorizations produce.
func randLower(r *rng.Rand, n, extraPerCol int) *CSC {
	l := &CSC{Rows: n, Cols: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		l.RowIdx = append(l.RowIdx, j)
		l.Val = append(l.Val, 1+r.Float64()) // diag in [1,2): well conditioned
		seen := map[int]bool{j: true}
		for k := 0; k < extraPerCol && j+1 < n; k++ {
			i := j + 1 + int(r.Uint64()%uint64(n-j-1))
			if seen[i] {
				continue
			}
			seen[i] = true
			l.RowIdx = append(l.RowIdx, i)
			l.Val = append(l.Val, 0.5*(2*r.Float64()-1))
		}
		l.ColPtr[j+1] = len(l.RowIdx)
	}
	return l
}

func randCSC(r *rng.Rand, rows, cols, nnz int) *CSC {
	coo := NewCOO(rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		coo.Add(int(r.Uint64()%uint64(rows)), int(r.Uint64()%uint64(cols)), 2*r.Float64()-1)
	}
	return coo.ToCSC()
}

func bitwiseEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d = %v, serial %v (not bitwise equal)", what, i, got[i], want[i])
		}
	}
}

func TestDotParMatchesSerial(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{0, 1, 2, 100, ParThreshold - 1, ParThreshold, ParThreshold + 3, 3 * ParThreshold} {
		x, y := randVec(r, n), randVec(r, n)
		want := Dot(x, y)
		for _, w := range []int{1, 2, 4, 7} {
			got := DotPar(x, y, w)
			scale := math.Abs(want) + float64(n) + 1
			if math.Abs(got-want) > 1e-12*scale {
				t.Fatalf("DotPar(n=%d, workers=%d) = %v, serial %v", n, w, got, want)
			}
		}
		// determinism: identical bits for every parallel worker count
		if n >= ParThreshold {
			ref := DotPar(x, y, 2)
			for _, w := range []int{3, 4, 8, 16} {
				if got := DotPar(x, y, w); math.Float64bits(got) != math.Float64bits(ref) {
					t.Fatalf("DotPar(n=%d) differs between workers=2 and workers=%d: %v vs %v", n, w, ref, got)
				}
			}
		}
	}
}

func TestNorm2ParMatchesSerial(t *testing.T) {
	r := rng.New(12)
	for _, n := range []int{0, 1, 100, ParThreshold, 2*ParThreshold + 17} {
		x := randVec(r, n)
		want := Norm2(x)
		for _, w := range []int{1, 3, 8} {
			got := Norm2Par(x, w)
			if math.Abs(got-want) > 1e-12*(want+1) {
				t.Fatalf("Norm2Par(n=%d, workers=%d) = %v, serial %v", n, w, got, want)
			}
		}
	}
}

func TestAxpyParBitwiseEqualsSerial(t *testing.T) {
	r := rng.New(13)
	for _, n := range []int{0, 1, 100, ParThreshold, 2 * ParThreshold} {
		x := randVec(r, n)
		y0 := randVec(r, n)
		want := append([]float64(nil), y0...)
		Axpy(want, 0.37, x)
		for _, w := range []int{1, 2, 5, 16} {
			got := append([]float64(nil), y0...)
			AxpyPar(got, 0.37, x, w)
			bitwiseEqual(t, "AxpyPar", got, want)
		}
	}
}

func TestMulVecParallelBitwiseEqualsSerial(t *testing.T) {
	r := rng.New(14)
	for _, n := range []int{1, 50, 900} {
		a := randCSC(r, n, n, 6*n).ToCSR()
		x := randVec(r, n)
		want := make([]float64, n)
		a.MulVec(want, x)
		for _, w := range []int{1, 2, 4, 9} {
			got := make([]float64, n)
			a.MulVecParallel(got, x, w)
			bitwiseEqual(t, "MulVecParallel", got, want)
		}
	}
}

func TestMulVecTransParallelBitwiseEqualsSerial(t *testing.T) {
	r := rng.New(15)
	for _, nnzScale := range []int{2, 40} { // below and above ParThreshold
		n := 500
		a := randCSC(r, n, n, nnzScale*n)
		x := randVec(r, n)
		want := make([]float64, n)
		a.MulVecTrans(want, x)
		for _, w := range []int{1, 2, 4, 9} {
			got := make([]float64, n)
			a.MulVecTransParallel(got, x, w)
			bitwiseEqual(t, "MulVecTransParallel", got, want)
		}
		// cross-check the gather form against the scatter form on Aᵀ
		ref := make([]float64, n)
		a.Transpose().MulVec(ref, x)
		for i := range ref {
			if math.Abs(ref[i]-want[i]) > 1e-12*(math.Abs(ref[i])+1) {
				t.Fatalf("MulVecTrans disagrees with Transpose().MulVec at %d: %v vs %v", i, want[i], ref[i])
			}
		}
	}
}

func TestTriSolverBitwiseEqualsSerial(t *testing.T) {
	r := rng.New(16)
	// Sizes straddle ParThreshold: small ones exercise the serial
	// fallback inside the TriSolver methods, the large one the true
	// level-scheduled parallel path.
	for _, n := range []int{0, 1, 2, 37, 400, ParThreshold + 513} {
		l := randLower(r, n, 4)
		ts := NewTriSolver(l)
		b := randVec(r, n)

		want := append([]float64(nil), b...)
		LowerSolve(l, want)
		for _, w := range []int{1, 2, 4, 8} {
			got := append([]float64(nil), b...)
			ts.LowerSolve(got, w)
			bitwiseEqual(t, "TriSolver.LowerSolve", got, want)
		}

		wantT := append([]float64(nil), b...)
		LowerTransposeSolve(l, wantT)
		for _, w := range []int{1, 2, 4, 8} {
			got := append([]float64(nil), b...)
			ts.LowerTransposeSolve(got, w)
			bitwiseEqual(t, "TriSolver.LowerTransposeSolve", got, wantT)
		}
	}
}

func TestTriSolverSolvesTheSystem(t *testing.T) {
	r := rng.New(17)
	n := ParThreshold + 100
	l := randLower(r, n, 3)
	ts := NewTriSolver(l)
	x := randVec(r, n)

	// b = L·x, solve, compare
	b := make([]float64, n)
	l.MulVec(b, x)
	ts.LowerSolve(b, 4)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-9*(math.Abs(x[i])+1) {
			t.Fatalf("LowerSolve wrong at %d: %v want %v", i, b[i], x[i])
		}
	}

	if lv := ts.Levels(); lv < 1 || lv > n {
		t.Fatalf("implausible level count %d for n=%d", lv, n)
	}
}
