package sparse

import "fmt"

// CSCBuilder assembles a CSC matrix directly from per-column entry
// counts, without the intermediate COO triplet copy: the caller runs one
// counting pass, then positions each entry with Set, and Finish sorts
// and duplicate-merges the columns in place. Peak memory is the final
// arrays (plus the counting slice), roughly half of the COO route —
// which is why the streaming grid/netlist/MatrixMarket ingest paths are
// built on it.
//
// Determinism contract: Set places entries within a column in call
// order, exactly as COO.ToCSC's counting scatter does, and Finish runs
// the same compressColumns tail. A builder fed entries in the same order
// as a COO accumulator therefore produces a bit-identical matrix.
type CSCBuilder struct {
	a    *CSC
	next []int
}

// NewCSCBuilder prepares a rows×cols builder. colCounts[j] must be the
// exact number of Set calls column j will receive (duplicates included;
// they are merged by Finish).
func NewCSCBuilder(rows, cols int, colCounts []int) (*CSCBuilder, error) {
	if len(colCounts) != cols {
		return nil, fmt.Errorf("sparse: colCounts has length %d, want %d", len(colCounts), cols)
	}
	colPtr := make([]int, cols+1)
	for j, c := range colCounts {
		if c < 0 {
			return nil, fmt.Errorf("sparse: negative count %d for column %d", c, j)
		}
		colPtr[j+1] = colPtr[j] + c
	}
	nnz := colPtr[cols]
	b := &CSCBuilder{
		a: &CSC{
			Rows:   rows,
			Cols:   cols,
			ColPtr: colPtr,
			RowIdx: make([]int, nnz),
			Val:    make([]float64, nnz),
		},
		next: make([]int, cols),
	}
	copy(b.next, colPtr[:cols])
	return b, nil
}

// Set positions the entry (i, j, v). It panics on an out-of-range index
// or when column j's declared count is exceeded — both are programming
// errors of the counting pass, not data errors.
func (b *CSCBuilder) Set(i, j int, v float64) {
	if i < 0 || i >= b.a.Rows || j < 0 || j >= b.a.Cols {
		panic(fmt.Sprintf("sparse: builder index (%d,%d) out of range %dx%d", i, j, b.a.Rows, b.a.Cols))
	}
	q := b.next[j]
	if q >= b.a.ColPtr[j+1] {
		panic(fmt.Sprintf("sparse: column %d received more entries than counted", j))
	}
	b.next[j] = q + 1
	b.a.RowIdx[q] = i
	b.a.Val[q] = v
}

// Finish validates that every counted slot was filled, sorts each
// column by row index, merges duplicates (summing values) and returns
// the matrix. The builder must not be used afterwards.
func (b *CSCBuilder) Finish() (*CSC, error) {
	for j := 0; j < b.a.Cols; j++ {
		if b.next[j] != b.a.ColPtr[j+1] {
			return nil, fmt.Errorf("sparse: column %d got %d of %d counted entries",
				j, b.next[j]-b.a.ColPtr[j], b.a.ColPtr[j+1]-b.a.ColPtr[j])
		}
	}
	compressColumns(b.a)
	a := b.a
	b.a, b.next = nil, nil
	return a, nil
}
