package sparse

import "sync"

// Level-scheduled parallel triangular solves. A triangular solve looks
// inherently sequential, but its dependency graph is the sparsity
// structure of L: unknown j waits only on the unknowns appearing in row j
// of L. Grouping unknowns into levels (all dependencies in strictly
// earlier levels) exposes the parallelism; within a level every unknown
// is computed independently in gather form, so there are no scatter races
// and no atomic operations.
//
// Determinism: each unknown is accumulated serially in a fixed order —
// ascending column order for the forward solve (matching the scatter
// order of LowerSolve) and storage order for the transpose solve
// (matching LowerTransposeSolve) — so both parallel solves are bitwise
// identical to their serial counterparts for every worker count.

// TriSolver precomputes the level schedule and a row-major (CSR) copy of
// a lower-triangular factor L stored diag-first in CSC, enabling
// parallel forward and transpose solves. The struct is read-only after
// NewTriSolver and safe for concurrent use.
type TriSolver struct {
	l *CSC // the factor; transpose solves gather from it directly

	// CSR of L for the forward gather solve. Rows are sorted by column
	// ascending; the diagonal entry is therefore last in each row.
	rowPtr []int
	colIdx []int
	val    []float64

	fOrder, fPtr []int // forward levels: rows fOrder[fPtr[k]:fPtr[k+1]]
	bOrder, bPtr []int // backward (transpose) levels, same encoding

	// minParallel: levels smaller than this run serially; spawning
	// goroutines for a handful of rows costs more than it saves.
	minParallel int
}

// NewTriSolver builds the level schedule for the lower-triangular CSC
// factor l (diagonal first in each column, as produced by every
// factorization in this repository).
func NewTriSolver(l *CSC) *TriSolver {
	n := l.Cols
	t := &TriSolver{l: l, minParallel: 256}

	csr := l.ToCSR()
	t.rowPtr, t.colIdx, t.val = csr.RowPtr, csr.ColIdx, csr.Val

	// Forward levels: lev[j] = 1 + max lev[i] over entries i<j of row j.
	// Scanning columns ascending visits every dependency edge (i -> j,
	// i < j) after lev[i] is final.
	lev := make([]int, n)
	maxLev := 0
	for i := 0; i < n; i++ {
		li := lev[i] + 1
		for p := l.ColPtr[i] + 1; p < l.ColPtr[i+1]; p++ {
			if j := l.RowIdx[p]; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[i] > maxLev {
			maxLev = lev[i]
		}
	}
	t.fOrder, t.fPtr = levelSort(lev, maxLev)

	// Backward levels for Lᵀ·x = b: unknown j depends on the entries
	// i > j of column j, so scan columns descending.
	for i := range lev {
		lev[i] = 0
	}
	maxLev = 0
	for j := n - 1; j >= 0; j-- {
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			if li := lev[l.RowIdx[p]] + 1; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[j] > maxLev {
			maxLev = lev[j]
		}
	}
	t.bOrder, t.bPtr = levelSort(lev, maxLev)
	return t
}

// levelSort buckets indices by level, preserving ascending index order
// within a level, and returns the ordering plus level boundaries.
func levelSort(lev []int, maxLev int) (order, ptr []int) {
	n := len(lev)
	ptr = make([]int, maxLev+2)
	for _, l := range lev {
		ptr[l+1]++
	}
	for l := 0; l <= maxLev; l++ {
		ptr[l+1] += ptr[l]
	}
	order = make([]int, n)
	next := append([]int(nil), ptr[:maxLev+1]...)
	for i, l := range lev {
		order[next[l]] = i
		next[l]++
	}
	return order, ptr
}

// Levels reports the depth of the forward schedule (a parallelism
// diagnostic: n/Levels is the average available width).
func (t *TriSolver) Levels() int { return len(t.fPtr) - 1 }

// LowerSolve solves L·x = b in place, level by level across `workers`
// goroutines. Bitwise identical to sparse.LowerSolve.
func (t *TriSolver) LowerSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerSolve(t.l, x)
		return
	}
	rowPtr, colIdx, val := t.rowPtr, t.colIdx, t.val
	runLevels(t.fOrder, t.fPtr, t.minParallel, workers, func(j int) {
		p := rowPtr[j]
		end := rowPtr[j+1] - 1 // diagonal is last (rows sorted by column)
		cols := colIdx[p:end]
		vals := val[p:end]
		vals = vals[:len(cols)]
		s := x[j]
		for k, c := range cols {
			s -= vals[k] * x[c]
		}
		x[j] = s / val[end]
	})
}

// LowerTransposeSolve solves Lᵀ·x = b in place, level by level across
// `workers` goroutines. Bitwise identical to sparse.LowerTransposeSolve.
func (t *TriSolver) LowerTransposeSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerTransposeSolve(t.l, x)
		return
	}
	colPtr, rowIdx, val := t.l.ColPtr, t.l.RowIdx, t.l.Val
	runLevels(t.bOrder, t.bPtr, t.minParallel, workers, func(j int) {
		p := colPtr[j]
		end := colPtr[j+1]
		rows := rowIdx[p+1 : end]
		vals := val[p+1 : end]
		vals = vals[:len(rows)]
		s := x[j]
		for k := range vals {
			s -= vals[k] * x[rows[k]]
		}
		x[j] = s / val[p]
	})
}

// runLevels executes solve(j) for every j in order, one level at a
// time; rows within a level are independent and split across workers.
// It is the scheduling engine shared by TriSolver and TriSolver32 —
// the schedule never touches index storage, so both widths reuse it.
//
// Workers are spawned once per call — on the first level wide enough to
// parallelize — and retired by closing the job channel after the last
// level, instead of spawning fresh goroutines (and their closures) for
// every level. A factor's schedule commonly has hundreds of levels, so
// this turns O(levels × workers) goroutine launches per solve into
// O(workers). Which worker executes which part is scheduling-dependent,
// but parts never split a row and each row is accumulated serially in a
// fixed order, so the result stays bitwise identical to the serial solve.
func runLevels(order, ptr []int, minParallel, workers int, solve func(j int)) {
	var jobs chan []int
	var wg sync.WaitGroup
	worker := func(jobs <-chan []int) {
		for part := range jobs {
			for _, j := range part {
				solve(j)
			}
			wg.Done()
		}
	}
	for k := 0; k+1 < len(ptr); k++ {
		rows := order[ptr[k]:ptr[k+1]]
		if len(rows) < minParallel {
			for _, j := range rows {
				solve(j)
			}
			continue
		}
		if jobs == nil {
			jobs = make(chan []int, workers)
			for w := 0; w < workers; w++ {
				go worker(jobs)
			}
		}
		nw := workers
		if nw > len(rows) {
			nw = len(rows)
		}
		for w := 0; w < nw; w++ {
			lo := len(rows) * w / nw
			hi := len(rows) * (w + 1) / nw
			if lo >= hi {
				continue
			}
			wg.Add(1)
			jobs <- rows[lo:hi]
		}
		// The per-level barrier: every part of level k finishes before any
		// row of level k+1 starts — that is the level schedule's contract.
		wg.Wait()
	}
	if jobs != nil {
		close(jobs)
	}
}
