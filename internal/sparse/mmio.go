package sparse

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Matrix Market I/O for the "matrix coordinate real general|symmetric"
// subset, which covers every matrix this repository reads or writes.
// Symmetric files store the lower triangle; the readers mirror it so
// the returned CSC holds both triangles, matching the package convention.
//
// Two readers share one parser: ReadMatrixMarket accumulates COO
// triplets from a stream, ReadMatrixMarketFile makes two passes over a
// file (count, then fill) so the triplet copy is never materialized —
// the ingest-side half of the paper-scale memory diet. Both funnel every
// entry through the same scan code and the same column sort/merge tail,
// so they produce byte-identical matrices.

// mmHeader is the parsed banner and size line of a Matrix Market file.
type mmHeader struct {
	rows, cols, nnz    int
	pattern, symmetric bool
}

// readMMHeader parses the banner and size line.
func readMMHeader(br *bufio.Reader) (mmHeader, error) {
	var h mmHeader
	header, err := br.ReadString('\n')
	if err != nil {
		return h, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return h, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return h, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", fields[2])
	}
	if fields[3] != "real" && fields[3] != "integer" && fields[3] != "pattern" {
		return h, fmt.Errorf("sparse: unsupported MatrixMarket field %q", fields[3])
	}
	h.pattern = fields[3] == "pattern"
	switch fields[4] {
	case "general":
	case "symmetric":
		h.symmetric = true
	default:
		return h, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", fields[4])
	}

	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return h, fmt.Errorf("sparse: missing MatrixMarket size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &h.rows, &h.cols, &h.nnz); err != nil {
			return h, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if h.rows < 0 || h.cols < 0 || h.nnz < 0 {
		return h, fmt.Errorf("sparse: negative MatrixMarket size %d %d %d", h.rows, h.cols, h.nnz)
	}
	if h.symmetric && h.rows != h.cols {
		// The mirrored entry (j,i) of a non-square "symmetric" file would
		// land out of range.
		return h, fmt.Errorf("sparse: symmetric MatrixMarket matrix is %dx%d, not square", h.rows, h.cols)
	}
	return h, nil
}

// scanMMEntries streams the data section, invoking emit for every
// stored entry (0-based) and, for symmetric files, its mirror — the
// exact call sequence the historical COO accumulator saw, which is what
// keeps every consumer byte-identical.
func scanMMEntries(br *bufio.Reader, h mmHeader, emit func(i, j int, v float64)) error {
	for k := 0; k < h.nnz; {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			f := strings.Fields(trimmed)
			if len(f) < 2 {
				return fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
			}
			i, err1 := strconv.Atoi(f[0])
			j, err2 := strconv.Atoi(f[1])
			v := 1.0
			var err3 error
			if !h.pattern {
				if len(f) < 3 {
					return fmt.Errorf("sparse: missing value in entry %q", trimmed)
				}
				v, err3 = strconv.ParseFloat(f[2], 64)
			}
			if err1 != nil || err2 != nil || err3 != nil {
				return fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
			}
			if i < 1 || i > h.rows || j < 1 || j > h.cols {
				return fmt.Errorf("sparse: MatrixMarket entry (%d,%d) out of range", i, j)
			}
			emit(i-1, j-1, v)
			if h.symmetric && i != j {
				emit(j-1, i-1, v)
			}
			k++
		}
		if err != nil {
			if err == io.EOF && k == h.nnz {
				break
			}
			if err == io.EOF {
				return fmt.Errorf("sparse: MatrixMarket file truncated: got %d of %d entries", k, h.nnz)
			}
			return err
		}
	}
	return nil
}

// ReadMatrixMarket parses a Matrix Market stream.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readMMHeader(br)
	if err != nil {
		return nil, err
	}
	// Cap the pre-allocation: the header's nnz is a claim, not data. The
	// triplet slices grow with the entries actually read, so a forged
	// count fails at the truncation check instead of exhausting memory.
	coo := NewCOO(h.rows, h.cols, min(h.nnz, 1<<20)*2)
	err = scanMMEntries(br, h, func(i, j int, v float64) {
		//pglint:hotalloc matrix ingest, runs once per file; COO capacity is reserved from the header nnz
		coo.Add(i, j, v)
	})
	if err != nil {
		return nil, err
	}
	return coo.ToCSC(), nil
}

// ReadMatrixMarketFile parses a Matrix Market file in two streaming
// passes: the first counts entries per column, the second fills the
// exactly-sized CSC arrays directly. Peak memory is the final matrix
// plus one counting slice — the COO triplet copy ReadMatrixMarket holds
// next to the result is never built. The output is byte-identical to
// ReadMatrixMarket on the same file (same entry order, same column
// sort/merge tail).
func ReadMatrixMarketFile(path string) (*CSC, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<20)
	h, err := readMMHeader(br)
	if err != nil {
		return nil, err
	}
	counts := make([]int, h.cols)
	if err := scanMMEntries(br, h, func(_, j int, _ float64) {
		counts[j]++
	}); err != nil {
		return nil, err
	}

	b, err := NewCSCBuilder(h.rows, h.cols, counts)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	br.Reset(f)
	// Re-parse the header so the entry scan starts at the data section;
	// the file cannot have changed shape between passes we control.
	h2, err := readMMHeader(br)
	if err != nil {
		return nil, err
	}
	if h2 != h {
		return nil, fmt.Errorf("sparse: %s changed between passes", path)
	}
	if err := scanMMEntries(br, h, b.Set); err != nil {
		return nil, err
	}
	return b.Finish()
}

// WriteMatrixMarket writes a in "coordinate real" format. If symmetric is
// true only the lower triangle is emitted with the symmetric header (the
// caller asserts the matrix is symmetric).
func WriteMatrixMarket(w io.Writer, a *CSC, symmetric bool) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	kind := "general"
	if symmetric {
		kind = "symmetric"
	}
	nnz := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if !symmetric || a.RowIdx[p] >= j {
				nnz++
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n%d %d %d\n",
		kind, a.Rows, a.Cols, nnz); err != nil {
		return err
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if symmetric && i < j {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, a.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
