package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O for the "matrix coordinate real general|symmetric"
// subset, which covers every matrix this repository reads or writes.
// Symmetric files store the lower triangle; ReadMatrixMarket mirrors it so
// the returned CSC holds both triangles, matching the package convention.

// ReadMatrixMarket parses a Matrix Market stream.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", fields[2])
	}
	if fields[3] != "real" && fields[3] != "integer" && fields[3] != "pattern" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", fields[3])
	}
	pattern := fields[3] == "pattern"
	symmetric := false
	switch fields[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", fields[4])
	}

	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing MatrixMarket size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket size %d %d %d", rows, cols, nnz)
	}
	if symmetric && rows != cols {
		// The mirrored entry (j,i) of a non-square "symmetric" file would
		// land out of range.
		return nil, fmt.Errorf("sparse: symmetric MatrixMarket matrix is %dx%d, not square", rows, cols)
	}

	// Cap the pre-allocation: the header's nnz is a claim, not data. The
	// triplet slices grow with the entries actually read, so a forged
	// count fails at the truncation check instead of exhausting memory.
	coo := NewCOO(rows, cols, min(nnz, 1<<20)*2)
	for k := 0; k < nnz; {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			f := strings.Fields(trimmed)
			if len(f) < 2 {
				return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
			}
			i, err1 := strconv.Atoi(f[0])
			j, err2 := strconv.Atoi(f[1])
			v := 1.0
			var err3 error
			if !pattern {
				if len(f) < 3 {
					return nil, fmt.Errorf("sparse: missing value in entry %q", trimmed)
				}
				v, err3 = strconv.ParseFloat(f[2], 64)
			}
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
			}
			if i < 1 || i > rows || j < 1 || j > cols {
				return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) out of range", i, j)
			}
			//pglint:hotalloc matrix ingest, runs once per file; COO capacity is reserved from the header nnz
			coo.Add(i-1, j-1, v)
			if symmetric && i != j {
				//pglint:hotalloc mirrored entry of the symmetric ingest above
				coo.Add(j-1, i-1, v)
			}
			k++
		}
		if err != nil {
			if err == io.EOF && k == nnz {
				break
			}
			if err == io.EOF {
				return nil, fmt.Errorf("sparse: MatrixMarket file truncated: got %d of %d entries", k, nnz)
			}
			return nil, err
		}
	}
	return coo.ToCSC(), nil
}

// WriteMatrixMarket writes a in "coordinate real" format. If symmetric is
// true only the lower triangle is emitted with the symmetric header (the
// caller asserts the matrix is symmetric).
func WriteMatrixMarket(w io.Writer, a *CSC, symmetric bool) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	kind := "general"
	if symmetric {
		kind = "symmetric"
	}
	nnz := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if !symmetric || a.RowIdx[p] >= j {
				nnz++
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n%d %d %d\n",
		kind, a.Rows, a.Cols, nnz); err != nil {
		return err
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if symmetric && i < j {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, a.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
