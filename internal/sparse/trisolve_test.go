package sparse

import (
	"math"
	"testing"

	"powerrchol/internal/rng"
)

func TestUpperSolveAgainstDense(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(20)
		// upper triangular with diagonal last per column (sorted order)
		coo := NewCOO(n, n, 3*n)
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				if r.Float64() < 0.3 {
					coo.Add(i, j, r.Float64()-0.5)
				}
			}
			coo.Add(j, j, 1+r.Float64())
		}
		u := coo.ToCSC()
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}
		x := append([]float64(nil), b...)
		UpperSolve(u, x)
		y := make([]float64, n)
		u.MulVec(y, x)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-10 {
				t.Fatalf("UpperSolve residual %g at %d", y[i]-b[i], i)
			}
		}
	}
}

// UpperSolve(Lᵀ) must agree with LowerTransposeSolve(L).
func TestUpperSolveConsistentWithTransposeSolve(t *testing.T) {
	r := rng.New(23)
	n := 15
	coo := NewCOO(n, n, 3*n)
	for j := 0; j < n; j++ {
		coo.Add(j, j, 1+r.Float64())
		for i := j + 1; i < n; i++ {
			if r.Float64() < 0.3 {
				coo.Add(i, j, r.Float64()-0.5)
			}
		}
	}
	l := coo.ToCSC()
	u := l.Transpose()
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64()
	}
	x1 := append([]float64(nil), b...)
	LowerTransposeSolve(l, x1)
	x2 := append([]float64(nil), b...)
	UpperSolve(u, x2)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-12 {
			t.Fatalf("solves disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}
