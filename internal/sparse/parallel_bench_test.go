package sparse

import (
	"testing"

	"powerrchol/internal/rng"
)

// Microbenchmarks for the parallel kernels, sized so the parallel path
// (not the serial fallback) is exercised. The interesting column is
// allocs/op: these kernels sit inside every PCG iteration, so per-call
// partition scratch, reduction partials, or per-level goroutine spawns
// show up here long before they move a wall-clock benchmark.

const benchWorkers = 4

func benchCSR(b *testing.B) *CSR {
	b.Helper()
	r := rng.New(1)
	return randCSC(r, 20000, 20000, 200000).ToCSR()
}

func BenchmarkMulVecParallel(b *testing.B) {
	a := benchCSR(b)
	x := randVec(rng.New(2), a.Cols)
	y := make([]float64, a.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecParallel(y, x, benchWorkers)
	}
}

func BenchmarkMulVecTransParallel(b *testing.B) {
	r := rng.New(3)
	a := randCSC(r, 20000, 20000, 200000)
	x := randVec(r, a.Rows)
	y := make([]float64, a.Cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecTransParallel(y, x, benchWorkers)
	}
}

func BenchmarkDotPar(b *testing.B) {
	r := rng.New(4)
	x := randVec(r, 1<<20)
	y := randVec(r, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = DotPar(x, y, benchWorkers)
	}
}

var sink float64

func BenchmarkTriSolverLowerSolve(b *testing.B) {
	r := rng.New(5)
	l := randLower(r, 20000, 8)
	t := NewTriSolver(l)
	x := randVec(r, 20000)
	work := make([]float64, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		t.LowerSolve(work, benchWorkers)
	}
}
