package sparse

import (
	"math"
	"sync"
	"sync/atomic"
)

// Parallel vector kernels. Two rules keep them predictable:
//
//  1. Results are deterministic for ANY worker count. Element-wise ops
//     (axpy) are bitwise identical to their serial counterparts.
//     Reductions (dot, norm) accumulate fixed-size blocks and fold the
//     partial sums in block order, so the summation tree depends only on
//     the vector length — never on scheduling or on `workers`.
//  2. Below ParThreshold (or with workers <= 1) every kernel falls back
//     to the serial implementation, so small problems keep the serial
//     fast path and zero goroutine overhead.

// ParThreshold is the vector length below which the parallel kernels run
// serially: under ~8k elements the work per element (a few ns) cannot
// amortize goroutine handoff.
const ParThreshold = 8192

// parBlock is the reduction block size. It is a fixed constant — NOT
// derived from the worker count — so blocked reductions are reproducible
// across machines and worker settings.
const parBlock = 4096

// parRange runs fn over [0,n) split into `workers` contiguous chunks and
// waits for completion. fn must not have cross-chunk dependencies.
func parRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parBlocks computes partial[b] = reduce(block b) for ceil(n/parBlock)
// blocks, with workers claiming blocks from an atomic counter, and
// returns the partial sums folded in ascending block order.
func parBlocks(n, workers int, blockSum func(lo, hi int) float64) float64 {
	nb := (n + parBlock - 1) / parBlock
	partial := make([]float64, nb)
	var next int64
	var wg sync.WaitGroup
	if workers > nb {
		workers = nb
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nb {
					return
				}
				lo := b * parBlock
				hi := lo + parBlock
				if hi > n {
					hi = n
				}
				partial[b] = blockSum(lo, hi)
			}
		}()
	}
	wg.Wait()
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// DotPar returns xᵀ·y using up to `workers` goroutines. With workers <= 1
// or short vectors it equals Dot bitwise; above the threshold it uses the
// deterministic blocked summation described at the top of this file.
func DotPar(x, y []float64, workers int) float64 {
	if workers <= 1 || len(x) < ParThreshold {
		return Dot(x, y)
	}
	return parBlocks(len(x), workers, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		return s
	})
}

// Norm2Par returns ‖x‖₂ using up to `workers` goroutines, with the same
// fallback and determinism rules as DotPar.
func Norm2Par(x []float64, workers int) float64 {
	if workers <= 1 || len(x) < ParThreshold {
		return Norm2(x)
	}
	return math.Sqrt(parBlocks(len(x), workers, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * x[i]
		}
		return s
	}))
}

// AxpyPar computes y += alpha·x using up to `workers` goroutines. The
// operation is element-wise, so the result is bitwise identical to Axpy
// for every worker count.
func AxpyPar(y []float64, alpha float64, x []float64, workers int) {
	if workers <= 1 || len(x) < ParThreshold {
		Axpy(y, alpha, x)
		return
	}
	parRange(len(x), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// MulVecTrans computes y = Aᵀ·x in gather form: y[j] is the dot product
// of column j with x. For a symmetric matrix this equals A·x, which is
// how the solvers use it — the gather form has no scatter races, so it
// row-partitions trivially (see MulVecTransParallel).
func (a *CSC) MulVecTrans(y, x []float64) {
	for j := 0; j < a.Cols; j++ {
		var s float64
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * x[a.RowIdx[p]]
		}
		y[j] = s
	}
}

// MulVecTransParallel computes y = Aᵀ·x with output entries partitioned
// across `workers` goroutines, balanced by nonzero count. Each y[j] is
// accumulated serially in storage order, so the result is bitwise
// identical to MulVecTrans for every worker count. For symmetric
// matrices (both triangles stored) this is a race-free parallel A·x.
func (a *CSC) MulVecTransParallel(y, x []float64, workers int) {
	if workers <= 1 || a.NNZ() < ParThreshold {
		a.MulVecTrans(y, x)
		return
	}
	bounds := nnzPartition(a.ColPtr, a.Cols, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				var s float64
				for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
					s += a.Val[p] * x[a.RowIdx[p]]
				}
				y[j] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}

// nnzPartition returns workers+1 boundaries over [0,n) with roughly equal
// stored entries per slice, given the cumulative-entry pointer ptr.
func nnzPartition(ptr []int, n, workers int) []int {
	bounds := make([]int, workers+1)
	nnz := ptr[n]
	at := 0
	for w := 1; w < workers; w++ {
		target := nnz * w / workers
		for at < n && ptr[at] < target {
			at++
		}
		bounds[w] = at
	}
	bounds[workers] = n
	return bounds
}
