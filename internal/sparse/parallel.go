package sparse

import (
	"math"
	"sync"
	"sync/atomic"
)

// Parallel vector kernels. Two rules keep them predictable:
//
//  1. Results are deterministic for ANY worker count. Element-wise ops
//     (axpy) are bitwise identical to their serial counterparts.
//     Reductions (dot, norm) accumulate fixed-size blocks and fold the
//     partial sums in block order, so the summation tree depends only on
//     the vector length — never on scheduling or on `workers`.
//  2. Below ParThreshold (or with workers <= 1) every kernel falls back
//     to the serial implementation, so small problems keep the serial
//     fast path and zero goroutine overhead.

// ParThreshold is the vector length below which the parallel kernels run
// serially: under ~8k elements the work per element (a few ns) cannot
// amortize goroutine handoff.
const ParThreshold = 8192

// parBlock is the reduction block size. It is a fixed constant — NOT
// derived from the worker count — so blocked reductions are reproducible
// across machines and worker settings.
const parBlock = 4096

// Pooled scratch for the parallel kernels. The partition bounds and the
// reduction partial sums are tiny, but DotPar/Norm2Par and the parallel
// SpMVs sit on the per-iteration PCG path: a make per call is an
// allocation per iteration per kernel, which is exactly the churn the
// hotalloc contract bans from these packages. Pools store pointers to
// slice headers so checking in and out does not itself allocate.
var (
	boundsPool  = sync.Pool{New: func() interface{} { b := make([]int, 0, 64); return &b }}
	partialPool = sync.Pool{New: func() interface{} { p := make([]float64, 0, 256); return &p }}
)

// getBounds checks a []int of length n out of boundsPool.
func getBounds(n int) *[]int {
	//pglint:pool-escapes checkout helper: the caller owns the slice and recycles it via putBounds after wg.Wait
	bp := boundsPool.Get().(*[]int)
	if cap(*bp) < n {
		*bp = make([]int, n)
	}
	*bp = (*bp)[:n]
	//pglint:poolescape checkout helper: ownership transfers to the caller, which calls putBounds after its goroutines are fenced
	return bp
}

func putBounds(bp *[]int) { boundsPool.Put(bp) }

// parRange runs fn over [0,n) split into `workers` contiguous chunks and
// waits for completion. fn must not have cross-chunk dependencies.
func parRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parBlocks computes partial[b] = reduce(block b) for ceil(n/parBlock)
// blocks, with workers claiming blocks from an atomic counter, and
// returns the partial sums folded in ascending block order.
func parBlocks(n, workers int, blockSum func(lo, hi int) float64) float64 {
	nb := (n + parBlock - 1) / parBlock
	pp := partialPool.Get().(*[]float64)
	if cap(*pp) < nb {
		*pp = make([]float64, nb)
	}
	// Every block index < nb is claimed and written exactly once below, so
	// the recycled slice needs no zeroing.
	partial := (*pp)[:nb]
	var next int64
	var wg sync.WaitGroup
	if workers > nb {
		workers = nb
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait //pglint:poolescape workers write partial and are fenced by wg.Wait before the slice is folded and recycled
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nb {
					return
				}
				lo := b * parBlock
				hi := lo + parBlock
				if hi > n {
					hi = n
				}
				partial[b] = blockSum(lo, hi)
			}
		}()
	}
	wg.Wait()
	var s float64
	for _, v := range partial {
		s += v
	}
	partialPool.Put(pp)
	return s
}

// DotPar returns xᵀ·y using up to `workers` goroutines. With workers <= 1
// or short vectors it equals Dot bitwise; above the threshold it uses the
// deterministic blocked summation described at the top of this file.
func DotPar(x, y []float64, workers int) float64 {
	if workers <= 1 || len(x) < ParThreshold {
		return Dot(x, y)
	}
	return parBlocks(len(x), workers, func(lo, hi int) float64 {
		xs := x[lo:hi]
		ys := y[lo:hi]
		ys = ys[:len(xs)]
		var s float64
		for i, v := range xs {
			s += v * ys[i]
		}
		return s
	})
}

// Norm2Par returns ‖x‖₂ using up to `workers` goroutines, with the same
// fallback and determinism rules as DotPar.
func Norm2Par(x []float64, workers int) float64 {
	if workers <= 1 || len(x) < ParThreshold {
		return Norm2(x)
	}
	return math.Sqrt(parBlocks(len(x), workers, func(lo, hi int) float64 {
		var s float64
		for _, v := range x[lo:hi] {
			s += v * v
		}
		return s
	}))
}

// AxpyPar computes y += alpha·x using up to `workers` goroutines. The
// operation is element-wise, so the result is bitwise identical to Axpy
// for every worker count.
func AxpyPar(y []float64, alpha float64, x []float64, workers int) {
	if workers <= 1 || len(x) < ParThreshold {
		Axpy(y, alpha, x)
		return
	}
	parRange(len(x), workers, func(lo, hi int) {
		ys := y[lo:hi]
		xs := x[lo:hi]
		xs = xs[:len(ys)]
		for i, v := range xs {
			ys[i] += alpha * v
		}
	})
}

// MulVecTrans computes y = Aᵀ·x in gather form: y[j] is the dot product
// of column j with x. For a symmetric matrix this equals A·x, which is
// how the solvers use it — the gather form has no scatter races, so it
// row-partitions trivially (see MulVecTransParallel).
//pgopt:noescape gather-form SpMV on the per-iteration path
func (a *CSC) MulVecTrans(y, x []float64) {
	n := a.Cols
	y = y[:n]
	p := a.ColPtr[0]
	for j, end := range a.ColPtr[1 : n+1 : n+1] {
		rows := a.RowIdx[p:end]
		vals := a.Val[p:end]
		vals = vals[:len(rows)]
		var s float64
		for k, i := range rows {
			s += vals[k] * x[i]
		}
		y[j] = s
		p = end
	}
}

// MulVecTransParallel computes y = Aᵀ·x with output entries partitioned
// across `workers` goroutines, balanced by nonzero count. Each y[j] is
// accumulated serially in storage order, so the result is bitwise
// identical to MulVecTrans for every worker count. For symmetric
// matrices (both triangles stored) this is a race-free parallel A·x.
func (a *CSC) MulVecTransParallel(y, x []float64, workers int) {
	if workers <= 1 || a.NNZ() < ParThreshold {
		a.MulVecTrans(y, x)
		return
	}
	bp := getBounds(workers + 1)
	bounds := *bp
	nnzPartitionInto(bounds, a.ColPtr, a.Cols, workers)
	colPtr, rowIdx, val := a.ColPtr, a.RowIdx, a.Val
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait
		go func(lo, hi int) {
			defer wg.Done()
			ys := y[lo:hi]
			p := colPtr[lo]
			for j, end := range colPtr[lo+1 : hi+1] {
				rows := rowIdx[p:end]
				vals := val[p:end]
				vals = vals[:len(rows)]
				var s float64
				for k, i := range rows {
					s += vals[k] * x[i]
				}
				ys[j] = s
				p = end
			}
		}(lo, hi)
	}
	wg.Wait()
	putBounds(bp)
}

// nnzPartitionInto fills bounds (length workers+1) with boundaries over
// [0,n) carrying roughly equal stored entries per slice, given the
// cumulative-entry pointer ptr. It fills in place rather than returning a
// fresh slice so callers on the per-iteration PCG path can reuse pooled
// scratch.
func nnzPartitionInto(bounds, ptr []int, n, workers int) {
	bounds = bounds[: workers+1 : workers+1]
	ptr = ptr[: n+1 : n+1]
	bounds[0] = 0
	nnz := ptr[n]
	at := 0
	for w := 1; w < workers; w++ {
		target := nnz * w / workers
		for at < n && ptr[at] < target {
			at++
		}
		bounds[w] = at
	}
	bounds[workers] = n
}
