package sparse

import "sync"

// Parallel kernels for the compact-index storage, mirroring csr.go and
// parallel.go: same partitioning, same per-row serial accumulation, so
// every result is bitwise identical to the corresponding wide kernel
// for every worker count.

// MulVecParallel computes y = A·x with rows partitioned across
// `workers` goroutines, balanced by nonzero count. Bitwise identical to
// CSR.MulVecParallel (and to the serial MulVec).
func (a *CSR32) MulVecParallel(y, x []float64, workers int) {
	if workers <= 1 || a.Rows < 4*workers {
		a.MulVec(y, x)
		return
	}
	bp := getBounds(workers + 1)
	bounds := *bp
	nnzPartitionInto32(bounds, a.RowPtr, a.Rows, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var s float64
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					s += a.Val[p] * x[a.ColIdx[p]]
				}
				y[i] = s
			}
		}(lo, hi)
	}
	wg.Wait()
	putBounds(bp)
}

// MulVecTransParallel computes y = Aᵀ·x with output entries partitioned
// across `workers` goroutines; bitwise identical to the wide
// CSC.MulVecTransParallel. For symmetric matrices this is a race-free
// parallel A·x.
func (a *CSC32) MulVecTransParallel(y, x []float64, workers int) {
	if workers <= 1 || a.NNZ() < ParThreshold {
		a.MulVecTrans(y, x)
		return
	}
	bp := getBounds(workers + 1)
	bounds := *bp
	nnzPartitionInto32(bounds, a.ColPtr, a.Cols, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//pglint:hotalloc one closure per worker per call, bounded by the worker count, fenced by wg.Wait
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				var s float64
				for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
					s += a.Val[p] * x[a.RowIdx[p]]
				}
				y[j] = s
			}
		}(lo, hi)
	}
	wg.Wait()
	putBounds(bp)
}

// nnzPartitionInto32 is nnzPartitionInto for compact cumulative-entry
// pointers. Same boundaries as the wide version for identical inputs.
func nnzPartitionInto32(bounds []int, ptr []int32, n, workers int) {
	bounds[0] = 0
	nnz := int(ptr[n])
	at := 0
	for w := 1; w < workers; w++ {
		target := nnz * w / workers
		for at < n && int(ptr[at]) < target {
			at++
		}
		bounds[w] = at
	}
	bounds[workers] = n
}
