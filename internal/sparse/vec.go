package sparse

import "math"

// Small dense-vector helpers shared by the iterative solvers. They are
// deliberately plain loops: at the sizes this repository targets the
// kernels are memory bound and the compiler vectorizes them adequately.
// Each pairwise kernel reslices its second operand to the ranged
// length, so the per-element partner access carries no bounds check
// (pgoptcheck rule bce) — a length mismatch still panics, merely at the
// reslice instead of mid-loop.

// Dot returns xᵀ·y.
//
//pgopt:inline,noescape called per PCG iteration and from every partial-sum worker
func Dot(x, y []float64) float64 {
	y = y[:len(x)]
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
//
//pgopt:inline,noescape called per PCG iteration for the residual test
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Axpy computes y += alpha·x.
//
//pgopt:inline,noescape called twice per PCG iteration and from every blocked worker
func Axpy(y []float64, alpha float64, x []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
