package sparse

import "math"

// Small dense-vector helpers shared by the iterative solvers. They are
// deliberately plain loops: at the sizes this repository targets the
// kernels are memory bound and the compiler vectorizes them adequately.

// Dot returns xᵀ·y.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Axpy computes y += alpha·x.
func Axpy(y []float64, alpha float64, x []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
