// Package sparse implements the compressed sparse column (CSC) matrix
// format and the kernel operations the solvers in this repository are
// built on: sparse matrix-vector products, symmetric permutation,
// triangular solves and Matrix Market I/O.
//
// Conventions: indices are 0-based, matrices are stored column-major
// (ColPtr/RowIdx/Val), and symmetric matrices are stored with BOTH
// triangles unless a function documents otherwise. Row indices within a
// column are kept sorted by every constructor in this package.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSC is a sparse matrix in compressed sparse column format.
type CSC struct {
	Rows, Cols int
	ColPtr     []int // length Cols+1
	RowIdx     []int // length nnz
	Val        []float64
}

// NewCSC allocates an empty Rows x Cols matrix with capacity for nnz
// entries (length zero RowIdx/Val).
func NewCSC(rows, cols, nnz int) *CSC {
	return &CSC{
		Rows:   rows,
		Cols:   cols,
		ColPtr: make([]int, cols+1),
		RowIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return a.ColPtr[a.Cols] }

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// At returns the value at (i, j), using binary search within column j.
// It is intended for tests and small matrices, not inner loops.
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := sort.SearchInts(a.RowIdx[lo:hi], i)
	if k < hi-lo && a.RowIdx[lo+k] == i {
		return a.Val[lo+k]
	}
	return 0
}

// Check validates structural invariants: monotone column pointers,
// in-range sorted row indices and finite values. It returns a descriptive
// error on the first violation.
func (a *CSC) Check() error {
	if len(a.ColPtr) != a.Cols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.Cols+1)
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: ColPtr[0] = %d, want 0", a.ColPtr[0])
	}
	nnz := a.ColPtr[a.Cols]
	if len(a.RowIdx) != nnz || len(a.Val) != nnz {
		return fmt.Errorf("sparse: index/value arrays have length %d/%d, want %d",
			len(a.RowIdx), len(a.Val), nnz)
	}
	for j := 0; j < a.Cols; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: column %d has negative length", j)
		}
		prev := -1
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i < 0 || i >= a.Rows {
				return fmt.Errorf("sparse: row index %d out of range in column %d", i, j)
			}
			if i <= prev {
				return fmt.Errorf("sparse: unsorted or duplicate row index %d in column %d", i, j)
			}
			prev = i
			if math.IsNaN(a.Val[p]) || math.IsInf(a.Val[p], 0) {
				return fmt.Errorf("sparse: non-finite value at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// IsSymmetric reports whether a equals its transpose up to tol
// (absolute, element-wise). Quadratic in nnz per column; test use only.
func (a *CSC) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if math.Abs(a.Val[p]-a.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dense expands a into a dense row-major matrix. Test use only.
func (a *CSC) Dense() [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		//pglint:hotalloc test-only dense expansion, never on a solve path
		d[i] = make([]float64, a.Cols)
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			d[a.RowIdx[p]][j] = a.Val[p]
		}
	}
	return d
}

// Transpose returns a new matrix equal to aᵀ, with sorted columns.
func (a *CSC) Transpose() *CSC {
	t := &CSC{
		Rows:   a.Cols,
		Cols:   a.Rows,
		ColPtr: make([]int, a.Rows+1),
		RowIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	// Count entries per row of a (= per column of t).
	for _, i := range a.RowIdx {
		t.ColPtr[i+1]++
	}
	for j := 0; j < t.Cols; j++ {
		t.ColPtr[j+1] += t.ColPtr[j]
	}
	next := append([]int(nil), t.ColPtr...)
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			q := next[i]
			next[i]++
			t.RowIdx[q] = j
			t.Val[q] = a.Val[p]
		}
	}
	return t
}

// MulVec computes y = A·x. len(x) must be Cols and len(y) must be Rows.
// The column walk carries each column's end into the next iteration and
// scatters from a hoisted window, leaving only the data-dependent y
// scatter checked (pgoptcheck rule bce).
//
//pgopt:noescape scatter-form SpMV used by residual checks and tests
func (a *CSC) MulVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	n := a.Cols
	x = x[:n]
	p := a.ColPtr[0]
	for j, end := range a.ColPtr[1 : n+1 : n+1] {
		xj := x[j]
		if xj == 0 {
			p = end
			continue
		}
		rows := a.RowIdx[p:end]
		vals := a.Val[p:end]
		vals = vals[:len(rows)]
		for k, i := range rows {
			y[i] += vals[k] * xj
		}
		p = end
	}
}

// MulVecAdd computes y += alpha·A·x without zeroing y first.
//
//pgopt:noescape fused update form of MulVec, same walk
func (a *CSC) MulVecAdd(y []float64, alpha float64, x []float64) {
	n := a.Cols
	x = x[:n]
	p := a.ColPtr[0]
	for j, end := range a.ColPtr[1 : n+1 : n+1] {
		axj := alpha * x[j]
		if axj == 0 {
			p = end
			continue
		}
		rows := a.RowIdx[p:end]
		vals := a.Val[p:end]
		vals = vals[:len(rows)]
		for k, i := range rows {
			y[i] += vals[k] * axj
		}
		p = end
	}
}

// Diag extracts the main diagonal into a fresh slice.
func (a *CSC) Diag() []float64 {
	n := a.Cols
	if a.Rows < n {
		n = a.Rows
	}
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if a.RowIdx[p] == j {
				d[j] = a.Val[p]
				break
			}
		}
	}
	return d
}
