package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format (triplet) matrix builder. Duplicate entries
// are summed when converting to CSC, matching Matrix Market semantics.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty triplet accumulator with capacity for nnz entries.
func NewCOO(rows, cols, nnz int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		I:    make([]int, 0, nnz),
		J:    make([]int, 0, nnz),
		V:    make([]float64, 0, nnz),
	}
}

// Add appends the triplet (i, j, v). Zero values are kept so that explicit
// structural zeros survive a round-trip; call ToCSC to sum duplicates.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends (i, j, v) and, when i != j, also (j, i, v). It is the
// natural builder for symmetric matrices stored with both triangles.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated triplets (before duplicate
// summing).
func (c *COO) NNZ() int { return len(c.I) }

// ToCSC converts the triplets to CSC, summing duplicates and sorting row
// indices within each column. Entries that sum exactly to zero are kept
// (pattern-preserving); use DropZeros on the result to remove them.
func (c *COO) ToCSC() *CSC {
	nnz := len(c.I)
	a := &CSC{
		Rows:   c.Rows,
		Cols:   c.Cols,
		ColPtr: make([]int, c.Cols+1),
		RowIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	// Counting pass per column.
	for _, j := range c.J {
		a.ColPtr[j+1]++
	}
	for j := 0; j < c.Cols; j++ {
		a.ColPtr[j+1] += a.ColPtr[j]
	}
	next := append([]int(nil), a.ColPtr...)
	for k := 0; k < nnz; k++ {
		j := c.J[k]
		q := next[j]
		next[j]++
		a.RowIdx[q] = c.I[k]
		a.Val[q] = c.V[k]
	}
	compressColumns(a)
	return a
}

// compressColumns is the shared tail of every CSC constructor: entries
// are already grouped by column per a.ColPtr but unsorted within each
// column and possibly duplicated. It sorts each column by row index and
// merges duplicates in place (summing values, Matrix Market semantics),
// trimming a's arrays to the merged entry count. Every builder that
// positions entries in the same pre-sort arrangement and then calls this
// one function produces bit-identical matrices — the property the
// streaming ingest paths rely on.
func compressColumns(a *CSC) {
	out := 0
	colStart := make([]int, a.Cols+1)
	// One sorter reused across columns: boxing a fresh colSorter into the
	// sort.Interface per column costs an allocation per column, which at
	// 1e7 columns is the difference between assembly being allocation-flat
	// and not (the graph package's allocation regression test pins this).
	seg := &colSorter{}
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		seg.rows, seg.vals = a.RowIdx[lo:hi], a.Val[lo:hi]
		sort.Sort(seg)
		colStart[j] = out
		for p := lo; p < hi; p++ {
			if out > colStart[j] && a.RowIdx[out-1] == a.RowIdx[p] {
				a.Val[out-1] += a.Val[p]
			} else {
				a.RowIdx[out] = a.RowIdx[p]
				a.Val[out] = a.Val[p]
				out++
			}
		}
	}
	colStart[a.Cols] = out
	a.ColPtr = colStart
	a.RowIdx = a.RowIdx[:out]
	a.Val = a.Val[:out]
}

type colSorter struct {
	rows []int
	vals []float64
}

func (s colSorter) Len() int           { return len(s.rows) }
func (s colSorter) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s colSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// DropZeros removes entries with |v| <= tol in place and returns a.
func (a *CSC) DropZeros(tol float64) *CSC {
	out := 0
	start := 0
	for j := 0; j < a.Cols; j++ {
		end := a.ColPtr[j+1]
		a.ColPtr[j] = out
		for p := start; p < end; p++ {
			if a.Val[p] > tol || a.Val[p] < -tol {
				a.RowIdx[out] = a.RowIdx[p]
				a.Val[out] = a.Val[p]
				out++
			}
		}
		start = end
	}
	a.ColPtr[a.Cols] = out
	a.RowIdx = a.RowIdx[:out]
	a.Val = a.Val[:out]
	return a
}
