package sparse

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
)

func randomCOO(r *rng.Rand, n, nnz int) *COO {
	c := NewCOO(n, n, nnz)
	for k := 0; k < nnz; k++ {
		c.Add(r.Intn(n), r.Intn(n), r.Float64()*2-1)
	}
	return c
}

func TestCOOToCSCSumsDuplicates(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.Add(1, 2, 1.5)
	c.Add(1, 2, 2.5)
	c.Add(0, 0, 1)
	c.Add(2, 1, -3)
	a := c.ToCSC()
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if got := a.At(1, 2); got != 4.0 {
		t.Errorf("duplicate sum: got %g, want 4", got)
	}
	if got := a.At(0, 0); got != 1.0 {
		t.Errorf("At(0,0) = %g, want 1", got)
	}
	if got := a.At(2, 1); got != -3.0 {
		t.Errorf("At(2,1) = %g, want -3", got)
	}
	if a.NNZ() != 3 {
		t.Errorf("nnz = %d, want 3", a.NNZ())
	}
}

func TestCSCCheckCatchesCorruption(t *testing.T) {
	c := NewCOO(3, 3, 2)
	c.Add(0, 0, 1)
	c.Add(2, 2, 1)
	a := c.ToCSC()
	if err := a.Check(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	a.RowIdx[0] = 5
	if err := a.Check(); err == nil {
		t.Error("out-of-range row index not detected")
	}
	a.RowIdx[0] = 0
	a.Val[0] = math.NaN()
	if err := a.Check(); err == nil {
		t.Error("NaN value not detected")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(20)
		a := randomCOO(r, n, 3*n).ToCSC()
		tt := a.Transpose().Transpose()
		if a.NNZ() != tt.NNZ() {
			t.Fatalf("nnz changed: %d -> %d", a.NNZ(), tt.NNZ())
		}
		for j := 0; j < n; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				if tt.RowIdx[p] != a.RowIdx[p] || tt.Val[p] != a.Val[p] {
					t.Fatalf("transpose not an involution at col %d", j)
				}
			}
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	r := rng.New(3)
	a := randomCOO(r, 9, 25).ToCSC()
	at := a.Transpose()
	for j := 0; j < 9; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if got := at.At(j, i); got != a.Val[p] {
				t.Fatalf("At^T(%d,%d) = %g, want %g", j, i, got, a.Val[p])
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(15)
		a := randomCOO(r, n, 2*n).ToCSC()
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*4 - 2
		}
		y := make([]float64, n)
		a.MulVec(y, x)
		d := a.Dense()
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12 {
				t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want)
			}
		}
		// MulVecAdd with alpha=-1 must cancel.
		a.MulVecAdd(y, -1, x)
		for i := range y {
			if math.Abs(y[i]) > 1e-12 {
				t.Fatalf("MulVecAdd cancel failed at %d: %g", i, y[i])
			}
		}
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(20)
		c := NewCOO(n, n, 4*n)
		for k := 0; k < 2*n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			v := r.Float64()
			c.Add(i, j, v)
			if i != j {
				c.Add(j, i, v)
			}
		}
		a := c.ToCSC()
		perm := r.Perm(n)
		b := PermuteSym(a, perm)
		// B[new_i][new_j] == A[perm[new_i]][perm[new_j]]
		for nj := 0; nj < n; nj++ {
			for p := b.ColPtr[nj]; p < b.ColPtr[nj+1]; p++ {
				ni := b.RowIdx[p]
				if want := a.At(perm[ni], perm[nj]); math.Abs(b.Val[p]-want) > 1e-14 {
					t.Fatalf("PermuteSym(%d,%d) = %g, want %g", ni, nj, b.Val[p], want)
				}
			}
		}
		// round trip with the inverse permutation
		back := PermuteSym(b, InvPerm(perm))
		for j := 0; j < n; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				if math.Abs(back.At(a.RowIdx[p], j)-a.Val[p]) > 1e-14 {
					t.Fatal("PermuteSym round trip mismatch")
				}
			}
		}
	}
}

func TestInvPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := rng.New(seed).Perm(n)
		inv := InvPerm(p)
		for i := 0; i < n; i++ {
			if p[inv[i]] != i || inv[p[i]] != i {
				return false
			}
		}
		return CheckPerm(p, n) == nil && CheckPerm(inv, n) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckPermRejectsBad(t *testing.T) {
	if err := CheckPerm([]int{0, 1, 1}, 3); err == nil {
		t.Error("duplicate not rejected")
	}
	if err := CheckPerm([]int{0, 3, 1}, 3); err == nil {
		t.Error("out of range not rejected")
	}
	if err := CheckPerm([]int{0, 1}, 3); err == nil {
		t.Error("short permutation not rejected")
	}
}

func TestLowerSolveAgainstDense(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(20)
		// Build a well-conditioned lower-triangular matrix, diag first.
		coo := NewCOO(n, n, 3*n)
		for j := 0; j < n; j++ {
			coo.Add(j, j, 1+r.Float64())
			for i := j + 1; i < n; i++ {
				if r.Float64() < 0.3 {
					coo.Add(i, j, r.Float64()-0.5)
				}
			}
		}
		l := coo.ToCSC() // sorted => diag first per column
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}
		x := append([]float64(nil), b...)
		LowerSolve(l, x)
		// check L x = b
		y := make([]float64, n)
		l.MulVec(y, x)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-10 {
				t.Fatalf("LowerSolve residual %g at %d", y[i]-b[i], i)
			}
		}
		// transpose solve
		xt := append([]float64(nil), b...)
		LowerTransposeSolve(l, xt)
		lt := l.Transpose()
		lt.MulVec(y, xt)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-10 {
				t.Fatalf("LowerTransposeSolve residual %g at %d", y[i]-b[i], i)
			}
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	r := rng.New(23)
	a := randomCOO(r, 12, 40).ToCSC().DropZeros(0)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, false); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			b.Rows, b.Cols, b.NNZ(), a.Rows, a.Cols, a.NNZ())
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if got := b.At(a.RowIdx[p], j); math.Abs(got-a.Val[p]) > 1e-15 {
				t.Fatalf("round trip value mismatch at (%d,%d)", a.RowIdx[p], j)
			}
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	// symmetric writer emits the lower triangle; reader mirrors it back
	c := NewCOO(3, 3, 5)
	c.AddSym(0, 1, -2)
	c.AddSym(1, 2, -3)
	c.Add(0, 0, 5)
	c.Add(1, 1, 6)
	c.Add(2, 2, 7)
	a := c.ToCSC()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, true); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsSymmetric(0) {
		t.Fatal("read-back matrix not symmetric")
	}
	if b.At(1, 0) != -2 || b.At(0, 1) != -2 || b.At(2, 2) != 7 {
		t.Fatal("symmetric round trip values wrong")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
	} {
		if _, err := ReadMatrixMarket(bytes.NewBufferString(src)); err == nil {
			t.Errorf("accepted invalid input %q", src)
		}
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Errorf("NormInf = %g, want 4", NormInf(x))
	}
	y := []float64{1, 1}
	if Dot(x, y) != -1 {
		t.Errorf("Dot = %g, want -1", Dot(x, y))
	}
	Axpy(y, 2, x) // y = {7, -7}
	if y[0] != 7 || y[1] != -7 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(y, 0.5)
	if y[0] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
	Zero(y)
	if y[0] != 0 || y[1] != 0 {
		t.Errorf("Zero = %v", y)
	}
}

func TestDropZeros(t *testing.T) {
	c := NewCOO(2, 2, 3)
	c.Add(0, 0, 1e-20)
	c.Add(1, 1, 2)
	c.Add(0, 1, -1e-20)
	a := c.ToCSC().DropZeros(1e-15)
	if a.NNZ() != 1 || a.At(1, 1) != 2 {
		t.Fatalf("DropZeros kept %d entries", a.NNZ())
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := rng.New(41)
	a := randomCOO(r, 8, 20).ToCSC()
	b := a.Clone()
	b.Val[0] = 123456
	b.RowIdx[0] = 7
	if a.Val[0] == 123456 || a.RowIdx[0] == 7 && a.Val[0] == 123456 {
		t.Fatal("Clone shares storage")
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatal("Clone changed shape")
	}
}

func TestDiag(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.Add(0, 0, 5)
	c.Add(2, 2, -1)
	c.Add(0, 1, 9)
	d := c.ToCSC().Diag()
	if d[0] != 5 || d[1] != 0 || d[2] != -1 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestNewCSCAndNNZ(t *testing.T) {
	a := NewCSC(4, 5, 10)
	if a.Rows != 4 || a.Cols != 5 || a.NNZ() != 0 {
		t.Fatalf("NewCSC shape wrong: %+v", a)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	c := NewCOO(2, 2, 1)
	c.Add(0, 0, 1)
	if c.NNZ() != 1 {
		t.Fatal("COO.NNZ wrong")
	}
}

func TestPermuteVecHelpers(t *testing.T) {
	x := []float64{10, 20, 30}
	perm := []int{2, 0, 1} // new i <- old perm[i]
	y := PermuteVec(x, perm)
	if y[0] != 30 || y[1] != 10 || y[2] != 20 {
		t.Fatalf("PermuteVec = %v", y)
	}
	z := make([]float64, 3)
	UnpermuteVecInto(z, y, perm)
	for i := range x {
		if z[i] != x[i] {
			t.Fatalf("UnpermuteVecInto = %v", z)
		}
	}
	id := IdentityPerm(3)
	for i, v := range id {
		if v != i {
			t.Fatal("IdentityPerm wrong")
		}
	}
	w := make([]float64, 3)
	Copy(w, x)
	if w[2] != 30 {
		t.Fatal("Copy wrong")
	}
}
