package sparse

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"powerrchol/internal/rng"
)

// Streaming-ingest suite: ReadMatrixMarketFile's two-pass path must be
// byte-identical to the in-memory COO path on every file both accept,
// and the builder underneath it must allocate only the final matrix.

// assertSameCSC asserts full byte identity: same shape, same index
// arrays, same value bits.
func assertSameCSC(t *testing.T, what string, want, got *CSC) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if len(got.ColPtr) != len(want.ColPtr) || len(got.RowIdx) != len(want.RowIdx) || len(got.Val) != len(want.Val) {
		t.Fatalf("%s: array lengths differ", what)
	}
	for j := range want.ColPtr {
		if got.ColPtr[j] != want.ColPtr[j] {
			t.Fatalf("%s: ColPtr[%d] = %d, want %d", what, j, got.ColPtr[j], want.ColPtr[j])
		}
	}
	for p := range want.RowIdx {
		if got.RowIdx[p] != want.RowIdx[p] {
			t.Fatalf("%s: RowIdx[%d] = %d, want %d", what, p, got.RowIdx[p], want.RowIdx[p])
		}
		if math.Float64bits(got.Val[p]) != math.Float64bits(want.Val[p]) {
			t.Fatalf("%s: Val[%d] bits %x, want %x", what, p,
				math.Float64bits(got.Val[p]), math.Float64bits(want.Val[p]))
		}
	}
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadMatrixMarketFileMatchesInMemory: general and symmetric files,
// including duplicate entries the column-merge tail coalesces, must
// come out byte-identical through both readers.
func TestReadMatrixMarketFileMatchesInMemory(t *testing.T) {
	r := rng.New(41)

	// General rectangular with duplicates and comment noise.
	var buf bytes.Buffer
	buf.WriteString("%%MatrixMarket matrix coordinate real general\n")
	buf.WriteString("% generated for the streaming-identity test\n")
	rows, cols, entries := 30, 20, 200
	buf.WriteString("30 20 200\n")
	for k := 0; k < entries; k++ {
		i, j := 1+r.Intn(rows), 1+r.Intn(cols)
		v := r.Float64()*2 - 1
		writeEntry(&buf, i, j, v)
	}
	checkBothReaders(t, "general", buf.Bytes())

	// Symmetric: lower triangle stored, mirrored by the scanner.
	buf.Reset()
	buf.WriteString("%%MatrixMarket matrix coordinate real symmetric\n")
	n, se := 25, 120
	buf.WriteString("25 25 120\n")
	for k := 0; k < se; k++ {
		i, j := 1+r.Intn(n), 1+r.Intn(n)
		if i < j {
			i, j = j, i
		}
		writeEntry(&buf, i, j, r.Float64())
	}
	checkBothReaders(t, "symmetric", buf.Bytes())

	// Pattern: implicit unit values.
	buf.Reset()
	buf.WriteString("%%MatrixMarket matrix coordinate pattern general\n5 5 3\n1 1\n3 2\n5 5\n")
	checkBothReaders(t, "pattern", buf.Bytes())

	// Round trip through the writer, which emits a canonical layout.
	a := randomCSC(40, 40, 0.15, r)
	buf.Reset()
	if err := WriteMatrixMarket(&buf, a, false); err != nil {
		t.Fatal(err)
	}
	checkBothReaders(t, "writer round trip", buf.Bytes())
}

func writeEntry(buf *bytes.Buffer, i, j int, v float64) {
	fmt.Fprintf(buf, "%d %d %.17g\n", i, j, v)
}

func checkBothReaders(t *testing.T, what string, data []byte) {
	t.Helper()
	inMemory, err := ReadMatrixMarket(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("%s: in-memory reader: %v", what, err)
	}
	streamed, err := ReadMatrixMarketFile(writeTemp(t, data))
	if err != nil {
		t.Fatalf("%s: streaming reader: %v", what, err)
	}
	assertSameCSC(t, what, inMemory, streamed)

	// The streaming reader's arrays are sized by the counting pass to
	// the raw entry count (duplicate merging may then shrink len below
	// cap) — exactly the sizing the COO route produces. A cap beyond
	// the in-memory reader's means a growth path sneaked back in.
	if cap(streamed.RowIdx) > cap(inMemory.RowIdx) || cap(streamed.Val) > cap(inMemory.Val) {
		t.Errorf("%s: streamed arrays overallocated: cap %d/%d, in-memory cap %d/%d", what,
			cap(streamed.RowIdx), cap(streamed.Val), cap(inMemory.RowIdx), cap(inMemory.Val))
	}
}

// TestReadMatrixMarketFileErrors: the streaming reader must reject what
// the in-memory reader rejects — truncation, out-of-range entries, bad
// headers — with an error, never a panic or a half-built matrix.
func TestReadMatrixMarketFileErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"missing file header", "garbage\n"},
		{"truncated", "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"negative size", "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1.0\n"},
		{"bad entry", "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n"},
	} {
		if _, err := ReadMatrixMarketFile(writeTemp(t, []byte(tc.data))); err == nil {
			t.Errorf("%s: streaming reader accepted bad input", tc.name)
		}
	}
	if _, err := ReadMatrixMarketFile(filepath.Join(t.TempDir(), "absent.mtx")); err == nil {
		t.Errorf("missing file accepted")
	}
}

// TestCSCBuilderMatchesCOO: entries placed through the builder in file
// order must produce the identical bytes the COO accumulator produces —
// the shared compressColumns tail plus identical pre-sort placement
// order is the whole byte-identity argument.
func TestCSCBuilderMatchesCOO(t *testing.T) {
	r := rng.New(43)
	rows, cols := 35, 28
	type entry struct {
		i, j int
		v    float64
	}
	entries := make([]entry, 300)
	counts := make([]int, cols)
	for k := range entries {
		e := entry{r.Intn(rows), r.Intn(cols), r.Float64()*2 - 1}
		entries[k] = e
		counts[e.j]++
	}

	coo := NewCOO(rows, cols, len(entries))
	for _, e := range entries {
		coo.Add(e.i, e.j, e.v)
	}
	want := coo.ToCSC()

	b, err := NewCSCBuilder(rows, cols, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b.Set(e.i, e.j, e.v)
	}
	got, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertSameCSC(t, "builder vs COO", want, got)
}

// TestCSCBuilderRejectsMisuse: under-filled columns fail Finish, and
// over-filled or out-of-range placements panic immediately (programmer
// errors, not data errors).
func TestCSCBuilderRejectsMisuse(t *testing.T) {
	if _, err := NewCSCBuilder(2, 2, []int{1}); err == nil {
		t.Errorf("short counts accepted")
	}
	if _, err := NewCSCBuilder(2, 2, []int{1, -1}); err == nil {
		t.Errorf("negative count accepted")
	}
	b, err := NewCSCBuilder(2, 2, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Set(0, 0, 1)
	if _, err := b.Finish(); err == nil {
		t.Errorf("under-filled builder finished")
	}

	b2, err := NewCSCBuilder(2, 2, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b2.Set(0, 0, 1)
	mustPanic(t, "overcount", func() { b2.Set(1, 0, 2) })
	mustPanic(t, "row range", func() { b2.Set(5, 1, 1) })
	mustPanic(t, "col range", func() { b2.Set(0, 9, 1) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	fn()
}
