package sparse

import (
	"errors"
	"math"
	"testing"

	"powerrchol/internal/rng"
)

// Overflow-boundary tables for the index conversion layer: the 2^31
// boundary must be exact (2^31-1 converts, 2^31 fails), and negative
// sizes must never slip through as "fitting".

func TestFitsInt32Boundaries(t *testing.T) {
	tests := []struct {
		name            string
		rows, cols, nnz int
		want            bool
	}{
		{"empty", 0, 0, 0, true},
		{"small", 10, 10, 40, true},
		{"nnz at boundary", 100, 100, MaxIndex32, true},
		{"nnz just over", 100, 100, MaxIndex32 + 1, false},
		{"rows at boundary", MaxIndex32, 1, 0, true},
		{"rows just over", MaxIndex32 + 1, 1, 0, false},
		{"cols just over", 1, MaxIndex32 + 1, 0, false},
		{"negative rows", -1, 10, 0, false},
		{"negative cols", 10, -1, 0, false},
		{"negative nnz", 10, 10, -1, false},
	}
	for _, tc := range tests {
		if got := FitsInt32(tc.rows, tc.cols, tc.nnz); got != tc.want {
			t.Errorf("%s: FitsInt32(%d, %d, %d) = %v, want %v",
				tc.name, tc.rows, tc.cols, tc.nnz, got, tc.want)
		}
	}
}

func TestCompactIndexSliceBoundaries(t *testing.T) {
	tests := []struct {
		name string
		src  []int
		ok   bool
	}{
		{"nil", nil, true},
		{"empty", []int{}, true},
		{"in range", []int{0, 1, 2, MaxIndex32 - 1, MaxIndex32}, true},
		{"just over", []int{0, MaxIndex32 + 1}, false},
		{"far over", []int{1 << 40}, false},
		{"negative", []int{0, -1, 2}, false},
	}
	for _, tc := range tests {
		got, err := CompactIndexSlice(nil, tc.src)
		if tc.ok != (err == nil) {
			t.Errorf("%s: CompactIndexSlice err = %v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrIndexOverflow) {
				t.Errorf("%s: error %v does not wrap ErrIndexOverflow", tc.name, err)
			}
			continue
		}
		if len(got) != len(tc.src) {
			t.Errorf("%s: got length %d, want %d", tc.name, len(got), len(tc.src))
			continue
		}
		back := WidenIndexSlice(nil, got)
		for i := range tc.src {
			if back[i] != tc.src[i] {
				t.Errorf("%s: round trip lost %d at %d (got %d)", tc.name, tc.src[i], i, back[i])
			}
		}
	}
}

// TestCompactIndexSliceReusesDst pins the in-place contract: a dst with
// enough capacity is reused (no allocation on the hot conversion path),
// a short one is replaced.
func TestCompactIndexSliceReusesDst(t *testing.T) {
	src := []int{3, 1, 4, 1, 5}
	dst := make([]int32, 0, 8)
	got, err := CompactIndexSlice(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Errorf("conversion did not reuse dst's backing array")
	}
	short := make([]int32, 0, 2)
	got, err = CompactIndexSlice(short, src)
	if err != nil || len(got) != len(src) {
		t.Fatalf("short-dst conversion: got %v, %v", got, err)
	}
}

// TestCompactCSCOverflow drives CompactCSC past each boundary with
// synthetic headers (the arrays stay tiny — what matters is the check
// firing before any allocation sized by the bogus dimensions).
func TestCompactCSCOverflow(t *testing.T) {
	tiny := &CSC{Rows: 2, Cols: 1, ColPtr: []int{0, 1}, RowIdx: []int{1}, Val: []float64{1}}
	if _, err := CompactCSC(tiny); err != nil {
		t.Fatalf("in-range matrix rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		a    *CSC
	}{
		{"rows over", &CSC{Rows: MaxIndex32 + 1, Cols: 1, ColPtr: []int{0, 1}, RowIdx: []int{1}, Val: []float64{1}}},
		{"cols over", &CSC{Rows: 2, Cols: MaxIndex32 + 1, ColPtr: []int{0, 1}, RowIdx: []int{1}, Val: []float64{1}}},
		{"nnz over", &CSC{Rows: 2, Cols: 1, ColPtr: []int{0, MaxIndex32 + 1}, RowIdx: []int{1}, Val: []float64{1}}},
		{"negative rows", &CSC{Rows: -2, Cols: 1, ColPtr: []int{0, 1}, RowIdx: []int{1}, Val: []float64{1}}},
	} {
		if _, err := CompactCSC(tc.a); !errors.Is(err, ErrIndexOverflow) {
			t.Errorf("%s: err = %v, want ErrIndexOverflow", tc.name, err)
		}
	}
}

// randomCSC builds a dense-ish random rectangular matrix for the kernel
// identity checks.
func randomCSC(rows, cols int, density float64, r *rng.Rand) *CSC {
	coo := NewCOO(rows, cols, rows*cols/2)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			if r.Float64() < density {
				coo.Add(i, j, r.Float64()*2-1)
			}
		}
	}
	return coo.ToCSC()
}

// TestCompactCSCKernelsBitwise: the compact kernels must reproduce the
// wide ones bit for bit — MulVec, MulVecTrans, the CSR product after
// conversion, and element access.
func TestCompactCSCKernelsBitwise(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 5; trial++ {
		rows, cols := 5+r.Intn(40), 5+r.Intn(40)
		a := randomCSC(rows, cols, 0.2, r)
		a32, err := CompactCSC(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := a32.Check(); err != nil {
			t.Fatalf("compact matrix invalid: %v", err)
		}
		if a32.NNZ() != a.NNZ() {
			t.Fatalf("nnz %d != %d", a32.NNZ(), a.NNZ())
		}
		if w, c := a.IndexBytes(), a32.IndexBytes(); w != 2*c {
			t.Fatalf("index bytes not halved: wide %d, compact %d", w, c)
		}

		x := make([]float64, cols)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		xt := make([]float64, rows)
		for i := range xt {
			xt[i] = r.Float64()*2 - 1
		}
		yw, yc := make([]float64, rows), make([]float64, rows)
		a.MulVec(yw, x)
		a32.MulVec(yc, x)
		assertSameBits(t, "MulVec", yw, yc)

		tw, tc_ := make([]float64, cols), make([]float64, cols)
		a.MulVecTrans(tw, xt)
		a32.MulVecTrans(tc_, xt)
		assertSameBits(t, "MulVecTrans", tw, tc_)

		rw, rc := make([]float64, rows), make([]float64, rows)
		a.ToCSR().MulVec(rw, x)
		a32.ToCSR().MulVec(rc, x)
		assertSameBits(t, "ToCSR().MulVec", rw, rc)

		for k := 0; k < 20; k++ {
			i, j := r.Intn(rows), r.Intn(cols)
			if wv, cv := a.At(i, j), a32.At(i, j); wv != cv { //pglint:float-exact identical storage must read back identical bits
				t.Fatalf("At(%d,%d): wide %g, compact %g", i, j, wv, cv)
			}
		}

		wide := a32.Wide()
		for j := 0; j <= cols; j++ {
			if wide.ColPtr[j] != a.ColPtr[j] {
				t.Fatalf("Wide() ColPtr[%d] = %d, want %d", j, wide.ColPtr[j], a.ColPtr[j])
			}
		}
		for p := range a.RowIdx {
			if wide.RowIdx[p] != a.RowIdx[p] {
				t.Fatalf("Wide() RowIdx[%d] = %d, want %d", p, wide.RowIdx[p], a.RowIdx[p])
			}
		}
	}
}

// randomLowerCSC builds a unit-ish lower-triangular factor with the
// diag-first column layout the factor kernels expect.
func randomLowerCSC(n int, r *rng.Rand) *CSC {
	coo := NewCOO(n, n, 4*n)
	for j := 0; j < n; j++ {
		coo.Add(j, j, 1+r.Float64())
		for i := j + 1; i < n; i++ {
			if r.Float64() < 0.25 {
				coo.Add(i, j, r.Float64()-0.5)
			}
		}
	}
	return coo.ToCSC()
}

// TestTriSolve32Bitwise: the compact triangular kernels — plain
// LowerSolve32/LowerTransposeSolve32 and the level-scheduled
// TriSolver32, serial and parallel — must all reproduce the wide
// kernels bit for bit.
func TestTriSolve32Bitwise(t *testing.T) {
	r := rng.New(37)
	for _, n := range []int{1, 7, 40, 150} {
		l := randomLowerCSC(n, r)
		l32, err := CompactCSC(l)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}

		xw := append([]float64(nil), b...)
		LowerSolve(l, xw)
		xc := append([]float64(nil), b...)
		LowerSolve32(l32, xc)
		assertSameBits(t, "LowerSolve32", xw, xc)

		tw := append([]float64(nil), b...)
		LowerTransposeSolve(l, tw)
		tc := append([]float64(nil), b...)
		LowerTransposeSolve32(l32, tc)
		assertSameBits(t, "LowerTransposeSolve32", tw, tc)

		ts := NewTriSolver(l)
		ts32 := NewTriSolver32(l32)
		if ts.Levels() != ts32.Levels() {
			t.Fatalf("n=%d: level counts differ: wide %d, compact %d", n, ts.Levels(), ts32.Levels())
		}
		for _, workers := range []int{1, 4} {
			fw := append([]float64(nil), b...)
			ts.LowerSolve(fw, workers)
			fc := append([]float64(nil), b...)
			ts32.LowerSolve(fc, workers)
			assertSameBits(t, "TriSolver32.LowerSolve", fw, fc)
			assertSameBits(t, "TriSolver32.LowerSolve vs plain", xw, fc)

			bw := append([]float64(nil), b...)
			ts.LowerTransposeSolve(bw, workers)
			bc := append([]float64(nil), b...)
			ts32.LowerTransposeSolve(bc, workers)
			assertSameBits(t, "TriSolver32.LowerTransposeSolve", bw, bc)
			assertSameBits(t, "TriSolver32.LowerTransposeSolve vs plain", tw, bc)
		}
	}
}

// assertSameBits fails on the first element whose bit pattern differs —
// the unit-level form of the repo's bitwise determinism contract.
func assertSameBits(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: bit drift at %d: %x vs %x (%g vs %g)",
				what, i, math.Float64bits(want[i]), math.Float64bits(got[i]), want[i], got[i])
		}
	}
}
