package sparse

import (
	"bytes"
	"testing"
)

// FuzzReadMatrixMarket: the Matrix Market reader must never panic, and
// any accepted matrix must pass the structural validator and survive a
// write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 -3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("garbage\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ReadMatrixMarket(bytes.NewBufferString(src))
		if err != nil {
			return
		}
		if err := a.Check(); err != nil {
			t.Fatalf("accepted matrix fails Check: %v\ninput %q", err, src)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a, false); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		b, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape")
		}
	})
}
