package sparse

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzReadMatrixMarket: the Matrix Market reader must never panic, and
// any accepted matrix must pass the structural validator and survive a
// write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 -3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("garbage\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ReadMatrixMarket(bytes.NewBufferString(src))
		if err != nil {
			return
		}
		if err := a.Check(); err != nil {
			t.Fatalf("accepted matrix fails Check: %v\ninput %q", err, src)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a, false); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		b, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzIndexConvert: differential check of the wide→compact index
// conversion at the 2^31 boundary. The fuzzer's bytes are decoded as
// int64 index values; CompactIndexSlice must accept exactly the slices
// whose every value lies in [0, 2^31), wrap ErrIndexOverflow otherwise,
// and round-trip accepted slices through WidenIndexSlice losslessly.
func FuzzIndexConvert(f *testing.F) {
	seed := func(vals ...int64) []byte {
		buf := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
		return buf
	}
	f.Add(seed())
	f.Add(seed(0, 1, 2, 3))
	f.Add(seed(MaxIndex32))
	f.Add(seed(MaxIndex32 + 1))
	f.Add(seed(0, MaxIndex32, -1))
	f.Add(seed(1 << 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := make([]int, len(data)/8)
		ok := true
		for i := range src {
			v := int64(binary.LittleEndian.Uint64(data[8*i:]))
			src[i] = int(v)
			if v < 0 || v > MaxIndex32 {
				ok = false
			}
		}
		got, err := CompactIndexSlice(nil, src)
		if ok != (err == nil) {
			t.Fatalf("CompactIndexSlice(%v) err = %v, want ok=%v", src, err, ok)
		}
		if err != nil {
			if !errors.Is(err, ErrIndexOverflow) {
				t.Fatalf("error %v does not wrap ErrIndexOverflow", err)
			}
			return
		}
		back := WidenIndexSlice(nil, got)
		if len(back) != len(src) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(src))
		}
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("round trip lost %d at %d (got %d)", src[i], i, back[i])
			}
		}
	})
}
