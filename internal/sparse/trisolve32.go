package sparse

// Triangular solves over compact-index (int32) factor storage. Each
// kernel performs the identical floating-point operations in the
// identical order as its wide counterpart in trisolve.go /
// trisolve_par.go, so a compact factor solves to the same bits as the
// wide factor it mirrors.

// LowerSolve32 solves L·x = b in place for a lower triangular CSC32
// with the diagonal first in each column. Bitwise identical to
// LowerSolve on the widened matrix, and walks the column pointer the
// same way: one column's end is the next column's start, so the walk
// carries it instead of re-indexing ColPtr (pgoptcheck rule bce).
//
//pgopt:noescape compact-factor forward solve, once per PCG iteration
func LowerSolve32(l *CSC32, x []float64) {
	n := l.Cols
	x = x[:n]
	p := l.ColPtr[0]
	for j, end := range l.ColPtr[1 : n+1 : n+1] {
		xj := x[j] / l.Val[p]
		x[j] = xj
		rows := l.RowIdx[p+1 : end]
		vals := l.Val[p+1 : end]
		vals = vals[:len(rows)]
		for k, i := range rows {
			x[i] -= vals[k] * xj
		}
		p = end
	}
}

// LowerTransposeSolve32 solves Lᵀ·x = b in place for the same layout;
// bitwise identical to LowerTransposeSolve on the widened matrix.
//
//pgopt:noescape compact-factor backward solve, once per PCG iteration
func LowerTransposeSolve32(l *CSC32, x []float64) {
	n := l.Cols
	x = x[:n]
	colPtr := l.ColPtr
	end := colPtr[n]
	for j := n - 1; j >= 0; j-- {
		p := colPtr[j]
		sum := x[j]
		rows := l.RowIdx[p+1 : end]
		vals := l.Val[p+1 : end]
		vals = vals[:len(rows)]
		for k := range vals {
			sum -= vals[k] * x[rows[k]]
		}
		x[j] = sum / l.Val[p]
		end = p
	}
}

// TriSolver32 is the level-scheduled parallel triangular solver for
// compact factors: the int32 twin of TriSolver, with the same level
// schedule (levels depend only on structure, not index width) and the
// same per-row serial accumulation, hence bitwise-identical solves.
type TriSolver32 struct {
	l *CSC32

	rowPtr []int32 // CSR of L; rows sorted by column, diagonal last
	colIdx []int32
	val    []float64

	fOrder, fPtr []int
	bOrder, bPtr []int

	minParallel int
}

// NewTriSolver32 builds the level schedule for the compact
// lower-triangular factor l (diagonal first in each column).
func NewTriSolver32(l *CSC32) *TriSolver32 {
	n := l.Cols
	t := &TriSolver32{l: l, minParallel: 256}

	csr := l.ToCSR()
	t.rowPtr, t.colIdx, t.val = csr.RowPtr, csr.ColIdx, csr.Val

	lev := make([]int, n)
	maxLev := 0
	for i := 0; i < n; i++ {
		li := lev[i] + 1
		for p := l.ColPtr[i] + 1; p < l.ColPtr[i+1]; p++ {
			if j := l.RowIdx[p]; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[i] > maxLev {
			maxLev = lev[i]
		}
	}
	t.fOrder, t.fPtr = levelSort(lev, maxLev)

	for i := range lev {
		lev[i] = 0
	}
	maxLev = 0
	for j := n - 1; j >= 0; j-- {
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			if li := lev[l.RowIdx[p]] + 1; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[j] > maxLev {
			maxLev = lev[j]
		}
	}
	t.bOrder, t.bPtr = levelSort(lev, maxLev)
	return t
}

// Levels reports the depth of the forward schedule.
func (t *TriSolver32) Levels() int { return len(t.fPtr) - 1 }

// LowerSolve solves L·x = b in place, level by level across `workers`
// goroutines. Bitwise identical to LowerSolve32.
func (t *TriSolver32) LowerSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerSolve32(t.l, x)
		return
	}
	rowPtr, colIdx, val := t.rowPtr, t.colIdx, t.val
	runLevels(t.fOrder, t.fPtr, t.minParallel, workers, func(j int) {
		p := rowPtr[j]
		end := rowPtr[j+1] - 1 // diagonal is last (rows sorted by column)
		cols := colIdx[p:end]
		vals := val[p:end]
		vals = vals[:len(cols)]
		s := x[j]
		for k, c := range cols {
			s -= vals[k] * x[c]
		}
		x[j] = s / val[end]
	})
}

// LowerTransposeSolve solves Lᵀ·x = b in place, level by level across
// `workers` goroutines. Bitwise identical to LowerTransposeSolve32.
func (t *TriSolver32) LowerTransposeSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerTransposeSolve32(t.l, x)
		return
	}
	colPtr, rowIdx, val := t.l.ColPtr, t.l.RowIdx, t.l.Val
	runLevels(t.bOrder, t.bPtr, t.minParallel, workers, func(j int) {
		p := colPtr[j]
		end := colPtr[j+1]
		rows := rowIdx[p+1 : end]
		vals := val[p+1 : end]
		vals = vals[:len(rows)]
		s := x[j]
		for k := range vals {
			s -= vals[k] * x[rows[k]]
		}
		x[j] = s / val[p]
	})
}
