package sparse

// Triangular solves over compact-index (int32) factor storage. Each
// kernel performs the identical floating-point operations in the
// identical order as its wide counterpart in trisolve.go /
// trisolve_par.go, so a compact factor solves to the same bits as the
// wide factor it mirrors.

// LowerSolve32 solves L·x = b in place for a lower triangular CSC32
// with the diagonal first in each column. Bitwise identical to
// LowerSolve on the widened matrix.
func LowerSolve32(l *CSC32, x []float64) {
	for j := 0; j < l.Cols; j++ {
		p := l.ColPtr[j]
		end := l.ColPtr[j+1]
		xj := x[j] / l.Val[p]
		x[j] = xj
		for p++; p < end; p++ {
			x[l.RowIdx[p]] -= l.Val[p] * xj
		}
	}
}

// LowerTransposeSolve32 solves Lᵀ·x = b in place for the same layout;
// bitwise identical to LowerTransposeSolve on the widened matrix.
func LowerTransposeSolve32(l *CSC32, x []float64) {
	for j := l.Cols - 1; j >= 0; j-- {
		p := l.ColPtr[j]
		end := l.ColPtr[j+1]
		sum := x[j]
		for q := p + 1; q < end; q++ {
			sum -= l.Val[q] * x[l.RowIdx[q]]
		}
		x[j] = sum / l.Val[p]
	}
}

// TriSolver32 is the level-scheduled parallel triangular solver for
// compact factors: the int32 twin of TriSolver, with the same level
// schedule (levels depend only on structure, not index width) and the
// same per-row serial accumulation, hence bitwise-identical solves.
type TriSolver32 struct {
	l *CSC32

	rowPtr []int32 // CSR of L; rows sorted by column, diagonal last
	colIdx []int32
	val    []float64

	fOrder, fPtr []int
	bOrder, bPtr []int

	minParallel int
}

// NewTriSolver32 builds the level schedule for the compact
// lower-triangular factor l (diagonal first in each column).
func NewTriSolver32(l *CSC32) *TriSolver32 {
	n := l.Cols
	t := &TriSolver32{l: l, minParallel: 256}

	csr := l.ToCSR()
	t.rowPtr, t.colIdx, t.val = csr.RowPtr, csr.ColIdx, csr.Val

	lev := make([]int, n)
	maxLev := 0
	for i := 0; i < n; i++ {
		li := lev[i] + 1
		for p := l.ColPtr[i] + 1; p < l.ColPtr[i+1]; p++ {
			if j := l.RowIdx[p]; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[i] > maxLev {
			maxLev = lev[i]
		}
	}
	t.fOrder, t.fPtr = levelSort(lev, maxLev)

	for i := range lev {
		lev[i] = 0
	}
	maxLev = 0
	for j := n - 1; j >= 0; j-- {
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			if li := lev[l.RowIdx[p]] + 1; lev[j] < li {
				lev[j] = li
			}
		}
		if lev[j] > maxLev {
			maxLev = lev[j]
		}
	}
	t.bOrder, t.bPtr = levelSort(lev, maxLev)
	return t
}

// Levels reports the depth of the forward schedule.
func (t *TriSolver32) Levels() int { return len(t.fPtr) - 1 }

// LowerSolve solves L·x = b in place, level by level across `workers`
// goroutines. Bitwise identical to LowerSolve32.
func (t *TriSolver32) LowerSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerSolve32(t.l, x)
		return
	}
	runLevels(t.fOrder, t.fPtr, t.minParallel, workers, func(j int) {
		end := t.rowPtr[j+1] - 1 // diagonal is last (rows sorted by column)
		s := x[j]
		for p := t.rowPtr[j]; p < end; p++ {
			s -= t.val[p] * x[t.colIdx[p]]
		}
		x[j] = s / t.val[end]
	})
}

// LowerTransposeSolve solves Lᵀ·x = b in place, level by level across
// `workers` goroutines. Bitwise identical to LowerTransposeSolve32.
func (t *TriSolver32) LowerTransposeSolve(x []float64, workers int) {
	if workers <= 1 || t.l.Cols < ParThreshold {
		LowerTransposeSolve32(t.l, x)
		return
	}
	l := t.l
	runLevels(t.bOrder, t.bPtr, t.minParallel, workers, func(j int) {
		p := l.ColPtr[j]
		end := l.ColPtr[j+1]
		s := x[j]
		for q := p + 1; q < end; q++ {
			s -= l.Val[q] * x[l.RowIdx[q]]
		}
		x[j] = s / l.Val[p]
	})
}
