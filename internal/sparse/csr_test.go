package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
)

func TestCSRMatchesCSC(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%40) + 1
		a := randomCOO(r, n, 4*n).ToCSC()
		c := a.ToCSR()
		if c.NNZ() != a.NNZ() {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		c.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRParallelMatchesSerial(t *testing.T) {
	r := rng.New(5)
	n := 500
	a := randomCOO(r, n, 8*n).ToCSC().ToCSR()
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	want := make([]float64, n)
	a.MulVec(want, x)
	for _, workers := range []int{1, 2, 3, 4, 8, 100} {
		got := make([]float64, n)
		a.MulVecParallel(got, x, workers)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("workers=%d: y[%d] = %g, want %g", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCSRPartitionCoversAllRows(t *testing.T) {
	r := rng.New(7)
	// skewed matrix: one dense row among sparse rows
	c := NewCOO(200, 200, 1000)
	for j := 0; j < 200; j++ {
		c.Add(0, j, 1) // hub row
	}
	for k := 0; k < 400; k++ {
		c.Add(1+r.Intn(199), r.Intn(200), 1)
	}
	a := c.ToCSC().ToCSR()
	for _, workers := range []int{2, 4, 7} {
		b := a.partition(workers)
		if b[0] != 0 || b[workers] != a.Rows {
			t.Fatalf("partition %v does not span rows", b)
		}
		for w := 0; w < workers; w++ {
			if b[w] > b[w+1] {
				t.Fatalf("partition %v not monotone", b)
			}
		}
	}
}
