package sparse

import "fmt"

// CheckPerm verifies that p is a permutation of [0, n).
func CheckPerm(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("sparse: permutation has length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n {
			return fmt.Errorf("sparse: permutation entry %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("sparse: permutation entry %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// InvPerm returns the inverse of permutation p: if p[newIdx] = oldIdx then
// InvPerm(p)[oldIdx] = newIdx.
func InvPerm(p []int) []int {
	inv := make([]int, len(p))
	for newIdx, oldIdx := range p {
		inv[oldIdx] = newIdx
	}
	return inv
}

// PermuteSym computes B = P·A·Pᵀ for a square matrix A, where the
// permutation is given as perm[newIdx] = oldIdx; i.e. row/column oldIdx of
// A becomes row/column newIdx of B. Columns of B are sorted.
func PermuteSym(a *CSC, perm []int) *CSC {
	n := a.Cols
	inv := InvPerm(perm)
	coo := NewCOO(n, n, a.NNZ())
	for j := 0; j < n; j++ {
		nj := inv[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			//pglint:hotalloc one-time symmetric permutation; COO capacity is reserved at a.NNZ() above
			coo.Add(inv[a.RowIdx[p]], nj, a.Val[p])
		}
	}
	return coo.ToCSC()
}

// PermuteVec scatters x into a fresh vector y with y[newIdx] = x[perm[newIdx]].
func PermuteVec(x []float64, perm []int) []float64 {
	y := make([]float64, len(x))
	for newIdx, oldIdx := range perm {
		y[newIdx] = x[oldIdx]
	}
	return y
}

// PermuteVecInto is PermuteVec writing into caller storage. The dense
// operand is resliced to the permutation's length up front, so only the
// data-dependent side of the gather keeps its bounds check.
//
//pgopt:noescape,inline runs on every preconditioner application when the factor is permuted
func PermuteVecInto(y, x []float64, perm []int) {
	y = y[:len(perm)]
	for newIdx, oldIdx := range perm {
		y[newIdx] = x[oldIdx]
	}
}

// UnpermuteVecInto inverts PermuteVecInto: y[perm[newIdx]] = x[newIdx].
//
//pgopt:noescape,inline runs on every preconditioner application when the factor is permuted
func UnpermuteVecInto(y, x []float64, perm []int) {
	x = x[:len(perm)]
	for newIdx, oldIdx := range perm {
		y[oldIdx] = x[newIdx]
	}
}

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
