package bench

import (
	"testing"

	"powerrchol"
	"powerrchol/internal/cases"
)

// The paper's headline claim, asserted programmatically at reduced scale:
// PowerRChol beats every baseline in average total solution time on the
// power-grid suite. Individual cases may flip at small sizes; the
// averages must not.
func TestHeadlineClaimPowerGridSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("headline claim check runs the full 16-case suite")
	}
	ps, err := buildAll(cases.PowerGrid(), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	baselines := []powerrchol.Method{
		powerrchol.MethodRChol,
		powerrchol.MethodFeGRASS,
		powerrchol.MethodFeGRASSIChol,
		powerrchol.MethodAMG,
		powerrchol.MethodPowerRush,
	}
	// Tests of sibling packages run concurrently with this one, so single
	// timings are noisy; take the best of two runs per (case, method) and
	// allow a small slack against ties.
	bestOf2 := func(p *cases.Problem, m powerrchol.Method) (float64, bool) {
		best, converged := 1e30, false
		for i := 0; i < 2; i++ {
			r, err := Run(p, powerrchol.Options{Method: m, Seed: 11})
			if err != nil && !((r != Metrics{}) && !r.Converged) {
				t.Fatalf("%s/%v: %v", p.Name, m, err)
			}
			if r.Converged {
				converged = true
				if v := secs(r.Total()); v < best {
					best = v
				}
			}
		}
		return best, converged
	}
	totals := make(map[powerrchol.Method]float64)
	var oursTotal float64
	for _, p := range ps {
		ours, conv := bestOf2(p, powerrchol.MethodPowerRChol)
		if !conv {
			t.Fatalf("%s/powerrchol did not converge", p.Name)
		}
		oursTotal += ours
		for _, m := range baselines {
			tot, conv := bestOf2(p, m)
			if !conv {
				continue // a baseline diverging only strengthens the claim
			}
			totals[m] += tot
		}
	}
	for m, tot := range totals {
		t.Logf("suite totals: %v %.3fs vs powerrchol %.3fs (%.2fx)", m, tot, oursTotal, tot/oursTotal)
		if tot < 0.9*oursTotal {
			t.Errorf("headline claim violated: %v total %.3fs clearly beats PowerRChol %.3fs", m, tot, oursTotal)
		}
	}
}

// LT-RChol's linear-time claim, checked as scaling: time per nonzero of
// the factorization must stay within a constant factor as the problem
// grows ~16x.
func TestLinearTimeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check builds two large grids")
	}
	small, err := cases.ByName("thupg1")
	if err != nil {
		t.Fatal(err)
	}
	big, err := cases.ByName("thupg10")
	if err != nil {
		t.Fatal(err)
	}
	pSmall, err := small.Build(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := big.Build(0.5)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p *cases.Problem) float64 {
		best := 1e30 // best-of-3 to de-noise
		for i := 0; i < 3; i++ {
			m, err := Run(p, powerrchol.Options{Method: powerrchol.MethodPowerRChol, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			v := secs(m.Reorder+m.Factorize) / float64(m.FactorNNZ)
			if v < best {
				best = v
			}
		}
		return best
	}
	perNNZSmall := get(pSmall)
	perNNZBig := get(pBig)
	ratio := perNNZBig / perNNZSmall
	t.Logf("setup time per factor nnz: small %.3g s, big %.3g s (ratio %.2f, sizes %d vs %d)",
		perNNZSmall, perNNZBig, ratio, pSmall.Sys.N(), pBig.Sys.N())
	if ratio > 3.0 {
		t.Errorf("setup cost per nnz grew %.2fx across ~12x size: not linear", ratio)
	}
}
