package bench

import (
	"fmt"

	"powerrchol"
	"powerrchol/internal/cases"
)

// Table1 reproduces the paper's Table 1: LT-RChol vs the original RChol,
// both under AMD ordering, on the 16 power-grid cases.
func Table1(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.PowerGrid(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1: LT-RChol vs original RChol (both AMD-ordered); time in seconds")
	fmt.Fprintf(w, "%-9s %9s %9s | %8s %8s %8s %4s %8s | %8s %8s %8s %4s %8s | %5s\n",
		"Case", "|V|", "nnz",
		"Tr", "Tf", "Ti", "Ni", "Ttot",
		"Tr", "Tf", "Ti", "Ni", "Ttot", "Sp")
	var sps []float64
	for _, p := range ps {
		rchol, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodRChol, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/rchol: %w", p.Name, err)
		}
		lt, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodLTRChol, Ordering: powerrchol.OrderAMD,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/lt-rchol: %w", p.Name, err)
		}
		sp := secs(rchol.Total()) / secs(lt.Total())
		sps = append(sps, sp)
		fmt.Fprintf(w, "%-9s %9s %9s | %8s %8s %8s %4d %8s | %8s %8s %8s %4d %8s | %5.2f\n",
			p.Name, fmtN(p.Sys.N()), fmtN(p.NNZ()),
			fmtT(rchol.Reorder), fmtT(rchol.Factorize), fmtT(rchol.Iterate), rchol.Iters, fmtT(rchol.Total()),
			fmtT(lt.Reorder), fmtT(lt.Factorize), fmtT(lt.Iterate), lt.Iters, fmtT(lt.Total()),
			sp)
	}
	fmt.Fprintf(w, "Average speedup of LT-RChol over RChol: %.2f (paper: 1.15)\n", mean(sps))
	return nil
}

// Table2 reproduces Table 2: LT-RChol under AMD order, natural order and
// the Alg. 4 ordering (PowerRChol). Sp_a is Alg4 vs AMD (both LT-RChol);
// Sp_b is PowerRChol vs the original RChol of Table 1.
func Table2(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.PowerGrid(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2: matrix reordering strategies for LT-RChol; time in seconds")
	fmt.Fprintf(w, "%-9s | %8s %9s %8s %4s %8s | %9s %8s %4s %8s | %8s %9s %8s %4s %8s | %5s %5s\n",
		"Case",
		"Tr", "NNZ", "Ti", "Ni", "Ttot",
		"NNZ", "Ti", "Ni", "Ttot",
		"Tr", "NNZ", "Ti", "Ni", "Ttot", "Spa", "Spb")
	var spa, spb []float64
	for _, p := range ps {
		run := func(ord powerrchol.Ordering) (Metrics, error) {
			return Run(p, powerrchol.Options{
				Method: powerrchol.MethodLTRChol, Ordering: ord,
				Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
			})
		}
		amd, err := run(powerrchol.OrderAMD)
		if err != nil {
			return fmt.Errorf("%s/amd: %w", p.Name, err)
		}
		nat, err := run(powerrchol.OrderNatural)
		if err != nil {
			return fmt.Errorf("%s/natural: %w", p.Name, err)
		}
		alg4, err := run(powerrchol.OrderAlg4)
		if err != nil {
			return fmt.Errorf("%s/alg4: %w", p.Name, err)
		}
		rchol, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodRChol, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/rchol: %w", p.Name, err)
		}
		a := secs(amd.Total()) / secs(alg4.Total())
		b := secs(rchol.Total()) / secs(alg4.Total())
		spa = append(spa, a)
		spb = append(spb, b)
		fmt.Fprintf(w, "%-9s | %8s %9s %8s %4d %8s | %9s %8s %4d %8s | %8s %9s %8s %4d %8s | %5.2f %5.2f\n",
			p.Name,
			fmtT(amd.Reorder), fmtN(amd.FactorNNZ), fmtT(amd.Iterate), amd.Iters, fmtT(amd.Total()),
			fmtN(nat.FactorNNZ), fmtT(nat.Iterate), nat.Iters, fmtT(nat.Total()),
			fmtT(alg4.Reorder), fmtN(alg4.FactorNNZ), fmtT(alg4.Iterate), alg4.Iters, fmtT(alg4.Total()),
			a, b)
	}
	fmt.Fprintf(w, "Average: Sp_a (Alg4 vs AMD) %.2f (paper: 1.32); Sp_b (PowerRChol vs RChol) %.2f (paper: 1.51)\n",
		mean(spa), mean(spb))
	return nil
}

// Table3 reproduces Table 3: PowerRChol vs the feGRASS, feGRASS-IChol and
// AMG-PCG baselines on the 16 power-grid cases. "-" marks non-convergence
// within the iteration cap.
func Table3(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.PowerGrid(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 3: PowerRChol vs feGRASS, feGRASS-IChol and AMG-PCG; time in seconds")
	fmt.Fprintf(w, "%-9s | %8s %4s %8s | %8s %4s %8s | %8s | %8s %4s %8s | %5s %5s %5s\n",
		"Case",
		"Ti", "Ni", "Ttot",
		"Ti", "Ni", "Ttot",
		"Ttot",
		"Ti", "Ni", "Ttot",
		"Sp1", "Sp2", "Sp3")
	var sp1s, sp2s, sp3s []float64
	for _, p := range ps {
		feg, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodFeGRASS, Tol: cfg.Tol, MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return fmt.Errorf("%s/fegrass: %w", p.Name, err)
		}
		fegIC, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodFeGRASSIChol, Tol: cfg.Tol, MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return fmt.Errorf("%s/fegrass-ichol: %w", p.Name, err)
		}
		amgM, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodAMG, Tol: cfg.Tol, MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return fmt.Errorf("%s/amg: %w", p.Name, err)
		}
		ours, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/powerrchol: %w", p.Name, err)
		}
		oursT := secs(ours.Total())
		sp := func(m Metrics) (string, float64) {
			if !m.Converged {
				return "    -", 0
			}
			v := secs(m.Total()) / oursT
			return fmt.Sprintf("%5.2f", v), v
		}
		s1, v1 := sp(feg)
		s2, v2 := sp(fegIC)
		s3, v3 := sp(amgM)
		if v1 > 0 {
			sp1s = append(sp1s, v1)
		}
		if v2 > 0 {
			sp2s = append(sp2s, v2)
		}
		if v3 > 0 {
			sp3s = append(sp3s, v3)
		}
		amgT := "       -"
		if amgM.Converged {
			amgT = fmt.Sprintf("%8s", fmtT(amgM.Total()))
		}
		fmt.Fprintf(w, "%-9s | %8s %4d %8s | %8s %4d %8s | %s | %8s %4d %8s | %s %s %s\n",
			p.Name,
			fmtT(feg.Iterate), feg.Iters, fmtT(feg.Total()),
			fmtT(fegIC.Iterate), fegIC.Iters, fmtT(fegIC.Total()),
			amgT,
			fmtT(ours.Iterate), ours.Iters, fmtT(ours.Total()),
			s1, s2, s3)
	}
	fmt.Fprintf(w, "Average speedups: vs feGRASS %.2f (paper: 1.93); vs feGRASS-IChol %.2f (paper: 2.37); vs AMG %.2f (paper: 3.64)\n",
		mean(sp1s), mean(sp2s), mean(sp3s))
	return nil
}

// Table4 reproduces Table 4: the five solvers on the 12 SuiteSparse
// analogs.
func Table4(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.Table4(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 4: results on more (SuiteSparse-analog) test cases; total time in seconds")
	fmt.Fprintf(w, "%-13s %9s %9s | %8s %8s %8s %8s %8s | %5s %5s %5s %5s\n",
		"Case", "|V|", "nnz",
		"feGRASS", "feG-IC", "AMG", "RChol", "Ours",
		"Sp1", "Sp2", "Sp3", "Sp4")
	var sp1s, sp2s, sp3s, sp4s []float64
	for _, p := range ps {
		runM := func(m powerrchol.Method) (Metrics, error) {
			return Run(p, powerrchol.Options{
				Method: m, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
			})
		}
		feg, err := runM(powerrchol.MethodFeGRASS)
		if err != nil {
			return fmt.Errorf("%s/fegrass: %w", p.Name, err)
		}
		fegIC, err := runM(powerrchol.MethodFeGRASSIChol)
		if err != nil {
			return fmt.Errorf("%s/fegrass-ichol: %w", p.Name, err)
		}
		amgM, err := runM(powerrchol.MethodAMG)
		if err != nil {
			return fmt.Errorf("%s/amg: %w", p.Name, err)
		}
		rchol, err := runM(powerrchol.MethodRChol)
		if err != nil {
			return fmt.Errorf("%s/rchol: %w", p.Name, err)
		}
		ours, err := runM(powerrchol.MethodPowerRChol)
		if err != nil {
			return fmt.Errorf("%s/powerrchol: %w", p.Name, err)
		}
		oursT := secs(ours.Total())
		cell := func(m Metrics) (string, float64) {
			if !m.Converged {
				return "       -", 0
			}
			return fmt.Sprintf("%8s", fmtT(m.Total())), secs(m.Total()) / oursT
		}
		c1, v1 := cell(feg)
		c2, v2 := cell(fegIC)
		c3, v3 := cell(amgM)
		c4, v4 := cell(rchol)
		if v1 > 0 {
			sp1s = append(sp1s, v1)
		}
		if v2 > 0 {
			sp2s = append(sp2s, v2)
		}
		if v3 > 0 {
			sp3s = append(sp3s, v3)
		}
		if v4 > 0 {
			sp4s = append(sp4s, v4)
		}
		spCell := func(v float64) string {
			if v == 0 {
				return "    -"
			}
			return fmt.Sprintf("%5.2f", v)
		}
		fmt.Fprintf(w, "%-13s %9s %9s | %s %s %s %s %8s | %s %s %s %s\n",
			p.Name, fmtN(p.Sys.N()), fmtN(p.NNZ()),
			c1, c2, c3, c4, fmtT(ours.Total()),
			spCell(v1), spCell(v2), spCell(v3), spCell(v4))
	}
	fmt.Fprintf(w, "Average speedups: vs feGRASS %.2f (paper: 5.28); vs feGRASS-IChol %.2f (paper: 3.13); vs AMG %.2f (paper: 1.25); vs RChol %.2f (paper: 1.54)\n",
		mean(sp1s), mean(sp2s), mean(sp3s), mean(sp4s))
	return nil
}
