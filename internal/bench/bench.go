// Package bench regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite (internal/cases).
// Each driver prints rows in the layout of its table so results can be
// compared against the paper side by side; EXPERIMENTS.md records one such
// comparison. Absolute times differ from the paper's testbed (and our
// scaled-down cases) by construction — the comparisons of interest are the
// per-row ratios and orderings.
package bench

import (
	"fmt"
	"io"
	"time"

	"powerrchol"
	"powerrchol/internal/cases"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies each case's linear dimension; 1.0 is the default
	// benchmark size (the largest case around ~250k nodes).
	Scale float64
	// Tol is the PCG relative tolerance; default 1e-6 (the paper's).
	Tol float64
	// MaxIter is the divergence cutoff; default 500 (the paper's).
	MaxIter int
	// Seed feeds the randomized factorizations.
	Seed uint64
	// Out receives the rendered tables (default os.Stdout via caller).
	Out io.Writer
}

func (c *Config) setDefaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
}

// Metrics is one (case, solver) measurement.
type Metrics struct {
	Reorder   time.Duration // T_r (includes sparsification for feGRASS)
	Factorize time.Duration // T_f
	Iterate   time.Duration // T_i
	Iters     int           // N_i
	FactorNNZ int
	Converged bool
}

// Total is T_tot.
func (m Metrics) Total() time.Duration { return m.Reorder + m.Factorize + m.Iterate }

// Run solves the problem with the given options and collects metrics.
// A non-convergence error is folded into Metrics.Converged.
func Run(p *cases.Problem, opt powerrchol.Options) (Metrics, error) {
	res, err := powerrchol.Solve(p.Sys, p.B, opt)
	if err != nil && res == nil {
		return Metrics{}, err
	}
	return Metrics{
		Reorder:   res.Timings.Reorder,
		Factorize: res.Timings.Factorize,
		Iterate:   res.Timings.Iterate,
		Iters:     res.Iterations,
		FactorNNZ: res.FactorNNZ,
		Converged: res.Converged,
	}, nil
}

func secs(d time.Duration) float64 { return d.Seconds() }

// fmtT renders a duration in seconds with 3 significant-ish digits, as
// the paper's tables do.
func fmtT(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// fmtN renders a count in the paper's scientific style (e.g. 4.6E6).
func fmtN(n int) string {
	return fmt.Sprintf("%.1E", float64(n))
}

// geoMean returns the geometric mean of vs (paper-style "Average"
// speedups are arithmetic; we print both where it matters). Zero or
// negative inputs are skipped.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// buildAll constructs the selected cases at the configured scale.
func buildAll(cs []cases.Case, scale float64) ([]*cases.Problem, error) {
	ps := make([]*cases.Problem, len(cs))
	for i, c := range cs {
		p, err := c.Build(scale)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", c.Name, err)
		}
		ps[i] = p
	}
	return ps, nil
}
