package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg runs every experiment at miniature scale so the full suite of
// drivers is exercised in CI time.
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 0.10, Tol: 1e-6, MaxIter: 500, Seed: 1, Out: buf}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ibmpg3") || !strings.Contains(out, "thupg10") {
		t.Fatalf("missing case rows:\n%s", out)
	}
	if !strings.Contains(out, "Average speedup") {
		t.Fatal("missing summary row")
	}
	if strings.Count(out, "\n") < 18 {
		t.Fatalf("expected 16 case rows:\n%s", out)
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Sp_a") {
		t.Fatalf("missing speedup summary:\n%s", buf.String())
	}
}

func TestTable3Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vs feGRASS") {
		t.Fatalf("missing summary:\n%s", buf.String())
	}
}

func TestTable4Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "com-Youtube") || !strings.Contains(out, "oh2010") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestFiguresRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	if err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "1e-09", "s/Mnnz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in figure output:\n%s", want, out)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	for name, fn := range map[string]func(Config) error{
		"buckets":   AblationBuckets,
		"sampling":  AblationSampling,
		"heavy":     AblationHeavyRule,
		"recovery":  AblationRecovery,
		"samples":   AblationSamples,
		"orderings": AblationOrderings,
		"sa-amg":    AblationSmoothedAMG,
		"density":   AblationDensity,
	} {
		if err := fn(cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if !strings.Contains(buf.String(), "merge locate") {
		t.Fatal("sampling ablation output missing")
	}
}

func TestFormatters(t *testing.T) {
	if got := fmtN(4600000); got != "4.6E+06" {
		t.Errorf("fmtN = %q", got)
	}
	if mean(nil) != 0 || mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
	if mean([]float64{0, 2}) != 2 {
		t.Error("mean must skip non-positive entries")
	}
}
