package bench

import (
	"fmt"

	"powerrchol"
	"powerrchol/internal/cases"
)

// Fig1 reproduces Figure 1: total solution time of PowerRChol vs
// PowerRush (AMG-PCG + resistor merging) on the 16 power-grid cases.
func Fig1(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.PowerGrid(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: total solution time, PowerRChol vs PowerRush; time in seconds")
	fmt.Fprintf(w, "%-9s | %10s %10s | %7s\n", "Case", "PowerRush", "PowerRChol", "Speedup")
	var sps []float64
	for _, p := range ps {
		rush, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRush, Tol: cfg.Tol, MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return fmt.Errorf("%s/powerrush: %w", p.Name, err)
		}
		ours, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol, Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/powerrchol: %w", p.Name, err)
		}
		rushCell, sp := "         -", 0.0
		if rush.Converged {
			rushCell = fmt.Sprintf("%10s", fmtT(rush.Total()))
			sp = secs(rush.Total()) / secs(ours.Total())
			sps = append(sps, sp)
		}
		fmt.Fprintf(w, "%-9s | %s %10s | %7.2f\n", p.Name, rushCell, fmtT(ours.Total()), sp)
	}
	fmt.Fprintf(w, "Average speedup over PowerRush: %.2f (paper: 1.76)\n", mean(sps))
	return nil
}

// Fig2 reproduces Figure 2: total solution time of each solver on the
// "thupg1" case as the relative tolerance tightens from 1e-3 to 1e-9.
func Fig2(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	solvers := []struct {
		name string
		opt  powerrchol.Options
	}{
		{"PowerRChol", powerrchol.Options{Method: powerrchol.MethodPowerRChol, Seed: cfg.Seed}},
		{"RChol", powerrchol.Options{Method: powerrchol.MethodRChol, Seed: cfg.Seed}},
		{"feGRASS", powerrchol.Options{Method: powerrchol.MethodFeGRASS}},
		{"feG-IChol", powerrchol.Options{Method: powerrchol.MethodFeGRASSIChol}},
		{"AMG", powerrchol.Options{Method: powerrchol.MethodAMG}},
	}
	tols := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9}
	fmt.Fprintln(w, "Figure 2: total solution time (s) on thupg1 vs relative tolerance")
	fmt.Fprintf(w, "%-10s", "tol")
	for _, s := range solvers {
		fmt.Fprintf(w, " %10s", s.name)
	}
	fmt.Fprintln(w)
	for _, tol := range tols {
		fmt.Fprintf(w, "%-10.0e", tol)
		for _, s := range solvers {
			opt := s.opt
			opt.Tol = tol
			opt.MaxIter = cfg.MaxIter
			m, err := Run(p, opt)
			if err != nil {
				return fmt.Errorf("thupg1/%s@%g: %w", s.name, tol, err)
			}
			if m.Converged {
				fmt.Fprintf(w, " %10s", fmtT(m.Total()))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig3 reproduces Figure 3: total solution time per million nonzeros for
// every solver across all 28 cases. The paper's headline claim is that
// PowerRChol stays below 1 s/Mnnz everywhere on its testbed; on other
// hardware and scaled-down cases the claim becomes "flat across cases",
// i.e. linear scaling.
func Fig3(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	all := cases.All()
	ps, err := buildAll(all, cfg.Scale)
	if err != nil {
		return err
	}
	solvers := []struct {
		name string
		opt  powerrchol.Options
	}{
		{"feGRASS", powerrchol.Options{Method: powerrchol.MethodFeGRASS}},
		{"feG-IChol", powerrchol.Options{Method: powerrchol.MethodFeGRASSIChol}},
		{"AMG", powerrchol.Options{Method: powerrchol.MethodAMG}},
		{"RChol", powerrchol.Options{Method: powerrchol.MethodRChol, Seed: cfg.Seed}},
		{"PowerRChol", powerrchol.Options{Method: powerrchol.MethodPowerRChol, Seed: cfg.Seed}},
	}
	fmt.Fprintln(w, "Figure 3: total solution time per million nonzeros (s/Mnnz)")
	fmt.Fprintf(w, "%-4s %-13s %9s", "#", "Case", "nnz")
	for _, s := range solvers {
		fmt.Fprintf(w, " %10s", s.name)
	}
	fmt.Fprintln(w)
	worstOurs := 0.0
	for i, p := range ps {
		fmt.Fprintf(w, "%-4d %-13s %9s", all[i].ID, p.Name, fmtN(p.NNZ()))
		for _, s := range solvers {
			opt := s.opt
			opt.Tol = cfg.Tol
			opt.MaxIter = cfg.MaxIter
			m, err := Run(p, opt)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", p.Name, s.name, err)
			}
			if !m.Converged {
				fmt.Fprintf(w, " %10s", "-")
				continue
			}
			perM := secs(m.Total()) / (float64(p.NNZ()) / 1e6)
			fmt.Fprintf(w, " %10.3f", perM)
			if s.name == "PowerRChol" && perM > worstOurs {
				worstOurs = perM
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Worst PowerRChol time per Mnnz: %.3f s (paper: < 1 s on all cases)\n", worstOurs)
	return nil
}
