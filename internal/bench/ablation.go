package bench

import (
	"fmt"
	"time"

	"powerrchol"
	"powerrchol/internal/amg"
	"powerrchol/internal/cases"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
)

// buildPerm returns the AMD ordering of a problem (shared by the variant
// ablation so every variant factorizes the same reordered matrix).
func buildPerm(p *cases.Problem) []int {
	return order.AMD(p.Sys.G)
}

// runVariant factorizes with an explicit core.Variant (the facade does
// not expose the hybrid ablation variant) and runs PCG.
func runVariant(p *cases.Problem, perm []int, v core.Variant, cfg Config) (Metrics, error) {
	var m Metrics
	t0 := time.Now()
	f, err := core.Factorize(p.Sys, perm, core.Options{Variant: v, Seed: cfg.Seed})
	if err != nil {
		return m, err
	}
	m.Factorize = time.Since(t0)
	m.FactorNNZ = f.NNZ()
	t0 = time.Now()
	res, err := pcg.Solve(p.Sys.ToCSC(), p.B, f, pcg.Options{Tol: cfg.Tol, MaxIter: cfg.MaxIter})
	if err != nil {
		return m, err
	}
	m.Iterate = time.Since(t0)
	m.Iters = res.Iterations
	m.Converged = res.Converged
	return m, nil
}

// AblationBuckets sweeps the counting-sort bucket count b of LT-RChol on
// the thupg1 case (DESIGN.md §6): too few buckets degrade the sampling
// order (more fill, more iterations); beyond a few hundred nothing
// improves.
func AblationBuckets(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: LT-RChol counting-sort buckets (thupg1, Alg.4 order)")
	fmt.Fprintf(w, "%-8s %9s %8s %4s %8s\n", "buckets", "NNZ(L)", "Tf", "Ni", "Ttot")
	for _, b := range []int{2, 8, 32, 128, 256, 1024, 4096} {
		m, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol, Buckets: b,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("buckets=%d: %w", b, err)
		}
		fmt.Fprintf(w, "%-8d %9s %8s %4d %8s\n",
			b, fmtN(m.FactorNNZ), fmtT(m.Factorize), m.Iters, fmtT(m.Total()))
	}
	return nil
}

// AblationSampling isolates LT-RChol's two ideas — the approximate
// counting sort and the shared-offset merge locate — by also running the
// hybrid variant (counting sort + per-neighbor binary search).
func AblationSampling(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: clique-sampling variants (thupg1, AMD order)")
	fmt.Fprintf(w, "%-32s %9s %8s %4s %8s\n", "variant", "NNZ(L)", "Tf", "Ni", "Ttot")
	variants := []struct {
		name string
		v    core.Variant
	}{
		{"exact sort + binary search", core.VariantRChol},
		{"counting sort + binary search", core.VariantHybrid},
		{"counting sort + merge locate", core.VariantLT},
	}
	perm := buildPerm(p)
	for _, vr := range variants {
		m, err := runVariant(p, perm, vr.v, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", vr.name, err)
		}
		fmt.Fprintf(w, "%-32s %9s %8s %4d %8s\n",
			vr.name, fmtN(m.FactorNNZ), fmtT(m.Factorize), m.Iters, fmtT(m.Total()))
	}
	return nil
}

// AblationHeavyRule toggles Alg. 4's heavy-node rule on the power-grid
// suite, showing what the >10x-average test buys on via-rich grids.
func AblationHeavyRule(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	ps, err := buildAll(cases.PowerGrid(), cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: Alg. 4 heavy-node rule on vs off")
	fmt.Fprintf(w, "%-9s | %9s %4s %8s | %9s %4s %8s\n",
		"Case", "NNZ(on)", "Ni", "Ttot", "NNZ(off)", "Ni", "Ttot")
	for _, p := range ps {
		on, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol,
			Tol:    cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/on: %w", p.Name, err)
		}
		off, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol, HeavyFactor: 1e300,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s/off: %w", p.Name, err)
		}
		fmt.Fprintf(w, "%-9s | %9s %4d %8s | %9s %4d %8s\n",
			p.Name,
			fmtN(on.FactorNNZ), on.Iters, fmtT(on.Total()),
			fmtN(off.FactorNNZ), off.Iters, fmtT(off.Total()))
	}
	return nil
}

// AblationSamples sweeps the RChol-k sample count: each extra sample per
// elimination averages down the estimator variance (stronger
// preconditioner, fewer iterations) at the cost of a denser factor.
func AblationSamples(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: RChol-k sample count (thupg1, Alg.4 order)")
	fmt.Fprintf(w, "%-8s %9s %8s %4s %8s\n", "samples", "NNZ(L)", "Tf", "Ni", "Ttot")
	for _, k := range []int{1, 2, 3, 4, 8} {
		m, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodPowerRChol, Samples: k,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("samples=%d: %w", k, err)
		}
		fmt.Fprintf(w, "%-8d %9s %8s %4d %8s\n",
			k, fmtN(m.FactorNNZ), fmtT(m.Factorize), m.Iters, fmtT(m.Total()))
	}
	return nil
}

// AblationOrderings compares all five orderings (including RCM and nested
// dissection, which the paper does not test) under LT-RChol.
func AblationOrderings(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: all orderings under LT-RChol (thupg1)")
	fmt.Fprintf(w, "%-10s %8s %9s %8s %4s %8s\n", "ordering", "Tr", "NNZ(L)", "Ti", "Ni", "Ttot")
	for _, o := range []powerrchol.Ordering{
		powerrchol.OrderNatural, powerrchol.OrderRCM, powerrchol.OrderND,
		powerrchol.OrderAMD, powerrchol.OrderAlg4,
	} {
		m, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodLTRChol, Ordering: o,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", o, err)
		}
		fmt.Fprintf(w, "%-10v %8s %9s %8s %4d %8s\n",
			o, fmtT(m.Reorder), fmtN(m.FactorNNZ), fmtT(m.Iterate), m.Iters, fmtT(m.Total()))
	}
	return nil
}

// AblationDensity runs the clique-sampling variants on a dense power-law
// case (coPapersDBLP, avg degree ~45 with hubs in the hundreds): here the
// eliminated-node degrees are large enough that the O(d·log d) → O(d)
// reduction of LT-RChol shows directly in factorization time, which the
// low-degree power grids of Table 1 compress to near-parity.
func AblationDensity(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("coPapersDBLP")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	st, err := core.CollectStats(p.Sys, buildPerm(p), core.Options{Variant: core.VariantLT, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: sampling variants on a dense graph (coPapersDBLP analog)")
	fmt.Fprintf(w, "elimination degrees: %s\n", st)
	fmt.Fprintf(w, "%-32s %9s %8s %4s %8s\n", "variant", "NNZ(L)", "Tf", "Ni", "Ttot")
	perm := buildPerm(p)
	for _, vr := range []struct {
		name string
		v    core.Variant
	}{
		{"exact sort + binary search", core.VariantRChol},
		{"counting sort + merge locate", core.VariantLT},
	} {
		m, err := runVariant(p, perm, vr.v, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", vr.name, err)
		}
		fmt.Fprintf(w, "%-32s %9s %8s %4d %8s\n",
			vr.name, fmtN(m.FactorNNZ), fmtT(m.Factorize), m.Iters, fmtT(m.Total()))
	}
	return nil
}

// AblationSmoothedAMG compares plain vs smoothed aggregation AMG-PCG on
// thupg1 and ecology2 (a mesh, where SA's payoff is largest).
func AblationSmoothedAMG(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	fmt.Fprintln(w, "Ablation: plain vs smoothed aggregation AMG-PCG")
	fmt.Fprintf(w, "%-12s %-8s %7s %12s %4s %8s\n", "case", "variant", "levels", "opcomplexity", "Ni", "Ttot")
	for _, name := range []string{"thupg1", "ecology2"} {
		c, err := cases.ByName(name)
		if err != nil {
			return err
		}
		p, err := c.Build(cfg.Scale)
		if err != nil {
			return err
		}
		a := p.Sys.ToCSC()
		for _, sa := range []bool{false, true} {
			t0 := time.Now()
			prec, err := amg.New(a, amg.Options{SmoothedAggregation: sa})
			if err != nil {
				return err
			}
			setup := time.Since(t0)
			t0 = time.Now()
			res, err := pcg.Solve(a, p.B, prec, pcg.Options{Tol: cfg.Tol, MaxIter: cfg.MaxIter})
			if err != nil {
				return err
			}
			iterT := time.Since(t0)
			label := "plain"
			if sa {
				label = "smoothed"
			}
			ni := res.Iterations
			if !res.Converged {
				ni = -1
			}
			fmt.Fprintf(w, "%-12s %-8s %7d %12.2f %4d %8s\n",
				name, label, prec.Levels(), prec.OperatorComplexity(), ni, fmtT(setup+iterT))
		}
	}
	return nil
}

// AblationRecovery sweeps the feGRASS off-tree recovery fraction.
func AblationRecovery(cfg Config) error {
	cfg.setDefaults()
	w := cfg.Out
	c, err := cases.ByName("thupg1")
	if err != nil {
		return err
	}
	p, err := c.Build(cfg.Scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: feGRASS off-tree edge recovery fraction (thupg1)")
	fmt.Fprintf(w, "%-8s %9s %8s %4s %8s\n", "frac", "NNZ(L)", "Tf", "Ni", "Ttot")
	for _, frac := range []float64{0.01, fegrass.DefaultRecoverFrac, 0.05, 0.10, 0.25} {
		m, err := Run(p, powerrchol.Options{
			Method: powerrchol.MethodFeGRASS, RecoverFrac: frac,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return fmt.Errorf("frac=%g: %w", frac, err)
		}
		fmt.Fprintf(w, "%-8.2f %9s %8s %4d %8s\n",
			frac, fmtN(m.FactorNNZ), fmtT(m.Factorize), m.Iters, fmtT(m.Total()))
	}
	return nil
}
