package ichol

import (
	"testing"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestIC0PatternMatchesLowerTriangle(t *testing.T) {
	r := rng.New(4)
	s := testmat.RandomSDDM(r, 40, 80)
	a := s.ToCSC()
	f, err := Factorize(a, nil, Options{ZeroFill: true, DropTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	// count lower-triangle nnz of A (incl. diagonal)
	want := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if a.RowIdx[p] >= j {
				want++
			}
		}
	}
	if f.NNZ() != want {
		t.Fatalf("IC(0) nnz %d, want exactly lower-triangle nnz %d", f.NNZ(), want)
	}
	// Every factor entry must sit on A's pattern.
	for k := 0; k < f.N; k++ {
		for p := f.L.ColPtr[k]; p < f.L.ColPtr[k+1]; p++ {
			if a.At(f.L.RowIdx[p], k) == 0 {
				t.Fatalf("IC(0) entry (%d,%d) outside A's pattern", f.L.RowIdx[p], k)
			}
		}
	}
}

func TestIC0Preconditions(t *testing.T) {
	s := testmat.GridSDDM(25, 25)
	a := s.ToCSC()
	f, err := Factorize(a, nil, Options{ZeroFill: true, DropTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-8, MaxIter: 2000})
	if err != nil || !res.Converged {
		t.Fatalf("IC(0)-PCG failed: %v", err)
	}
	plain, err := pcg.Solve(a, b, nil, pcg.Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= plain.Iterations {
		t.Fatalf("IC(0) (%d iters) no better than plain CG (%d)", res.Iterations, plain.Iterations)
	}
	t.Logf("25x25 grid: plain CG %d iters, IC(0)-PCG %d iters", plain.Iterations, res.Iterations)
}
