package ichol

import (
	"strings"
	"testing"
	"testing/quick"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestZeroDropTolIsCompleteFactorization(t *testing.T) {
	// With an (effectively) zero drop tolerance, ICT keeps everything and
	// must reproduce A like a complete Cholesky.
	r := rng.New(2)
	s := testmat.RandomSDDM(r, 25, 40)
	a := s.ToCSC()
	f, err := Factorize(a, nil, Options{DropTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	got := f.ProductCSC().Dense()
	if d := testmat.MaxAbsDiff(got, a.Dense()); d > 1e-8 {
		t.Fatalf("ICT(0) LLᵀ differs from A by %g", d)
	}
}

func TestIncompleteFactorPreconditionsPCG(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%40) + 5
		s := testmat.RandomSDDM(r, n, 3*n)
		a := s.ToCSC()
		fac, err := Factorize(a, nil, Options{DropTol: 1e-2})
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64() - 0.5
		}
		res, err := pcg.Solve(a, b, fac, pcg.Options{Tol: 1e-8, MaxIter: 5 * n})
		return err == nil && res.Converged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDroppingReducesFill(t *testing.T) {
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	full, err := Factorize(a, nil, Options{DropTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	sparseF, err := Factorize(a, nil, Options{DropTol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if sparseF.NNZ() >= full.NNZ() {
		t.Fatalf("dropping did not reduce fill: %d vs %d", sparseF.NNZ(), full.NNZ())
	}
	t.Logf("24x24 grid fill: complete=%d ICT(1e-2)=%d", full.NNZ(), sparseF.NNZ())
}

func TestFactorStructure(t *testing.T) {
	r := rng.New(6)
	s := testmat.RandomSDDM(r, 30, 60)
	f, err := Factorize(s.ToCSC(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := f.L
	for k := 0; k < f.N; k++ {
		p := l.ColPtr[k]
		if l.RowIdx[p] != k || l.Val[p] <= 0 {
			t.Fatalf("column %d: diagonal not first or not positive", k)
		}
		prev := k
		for q := p + 1; q < l.ColPtr[k+1]; q++ {
			if l.RowIdx[q] <= prev {
				t.Fatalf("column %d rows not strictly ascending", k)
			}
			prev = l.RowIdx[q]
		}
	}
}

func TestWithPermutation(t *testing.T) {
	r := rng.New(10)
	s := testmat.RandomSDDM(r, 50, 100)
	a := s.ToCSC()
	perm := r.Perm(50)
	f, err := Factorize(a, perm, Options{DropTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 50)
	for i := range b {
		b[i] = r.Float64()
	}
	res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-9, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("permuted ICT preconditioner failed to converge: %g", res.Residual)
	}
}

func TestRejectsNonSquare(t *testing.T) {
	if _, err := Factorize(sparse.NewCSC(2, 3, 0), nil, Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestShiftRetryExhaustion(t *testing.T) {
	// [[1,2],[2,1]] is symmetric indefinite: the pivot at column 1 is
	// 1 - 4 = -3. The Manteuffel shift scales the diagonal by (1+shift),
	// which repairs it only once shift > 1 — the sixth entry of the
	// 1e-3·4^k ladder. A budget of 2 retries must therefore exhaust.
	c := sparse.NewCOO(2, 2, 4)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.Add(0, 1, 2)
	c.Add(1, 0, 2)
	a := c.ToCSC()

	_, err := Factorize(a, nil, Options{MaxShiftRetries: 2})
	if err == nil {
		t.Fatal("indefinite matrix factorized within 2 shift retries")
	}
	if !strings.Contains(err.Error(), "breakdown persists after 2 shift retries") {
		t.Fatalf("exhaustion error does not report the retry budget: %v", err)
	}
	if !strings.Contains(err.Error(), "non-positive pivot") {
		t.Fatalf("exhaustion error does not wrap the pivot failure: %v", err)
	}

	// The default budget (8) reaches shift > 1 and succeeds.
	if _, err := Factorize(a, nil, Options{}); err != nil {
		t.Fatalf("default retry budget failed to repair the pivot: %v", err)
	}
}
