// Package ichol implements threshold-based incomplete Cholesky
// factorization (ICT): a left-looking column factorization that drops
// entries below a relative tolerance. It is the factorization behind the
// feGRASS-IChol baseline [9] in the paper's Table 3, which factors a 50%|V|
// spectral sparsifier with drop tolerance 8.5e-6.
package ichol

import (
	"context"
	"fmt"
	"math"
	"sort"

	"powerrchol/internal/core"
	"powerrchol/internal/sparse"
)

// DefaultDropTol is the drop tolerance used by the feGRASS-IChol baseline,
// taken from the paper (Section 4.2).
const DefaultDropTol = 8.5e-6

// cancelCheckStride is how many columns are factorized between context
// polls, matching core's and chol's stride.
const cancelCheckStride = 1024

// Options configure the incomplete factorization.
type Options struct {
	// DropTol: an entry l_ik is dropped when |l_ik| < DropTol·‖A(:,k)‖₂.
	// 0 means DefaultDropTol.
	DropTol float64
	// MaxShiftRetries bounds the diagonal-shift restarts used when a pivot
	// goes non-positive (Manteuffel shift). 0 means 8.
	MaxShiftRetries int
	// ZeroFill restricts the factor to the sparsity pattern of A — the
	// classical IC(0). DropTol still applies on top of the pattern.
	ZeroFill bool
	// Modified enables MIC-style diagonal compensation: the mass of every
	// dropped entry is subtracted from the current pivot (dropped entries
	// are negative for M-matrices, so the pivot grows), preserving the
	// factor's action on the constant vector — the classical fix for
	// Laplacian-like systems where plain IC underestimates row sums.
	Modified bool
}

// Factorize computes an incomplete Cholesky factor of the SPD matrix a
// (both triangles stored), optionally after the symmetric permutation
// perm. On pivot breakdown the factorization restarts with an increased
// diagonal shift α·diag(A), which always terminates for SDD matrices.
func Factorize(a *sparse.CSC, perm []int, opt Options) (*core.Factor, error) {
	return FactorizeContext(context.Background(), a, perm, opt)
}

// FactorizeContext is Factorize under a context: ctx is polled every
// cancelCheckStride columns, and a cancelled or expired context aborts
// the factorization with an error wrapping ctx.Err(). A nil ctx means
// never cancelled.
func FactorizeContext(ctx context.Context, a *sparse.CSC, perm []int, opt Options) (*core.Factor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ichol: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	if opt.DropTol == 0 {
		opt.DropTol = DefaultDropTol
	}
	if opt.MaxShiftRetries == 0 {
		opt.MaxShiftRetries = 8
	}
	work := a
	if perm != nil {
		if err := sparse.CheckPerm(perm, a.Cols); err != nil {
			return nil, err
		}
		work = sparse.PermuteSym(a, perm)
	}

	shift := 0.0
	for try := 0; ; try++ {
		f, err := factorizeShifted(ctx, work, opt, shift)
		if err == nil {
			if perm != nil {
				f.Perm = perm
			}
			return f, nil
		}
		if try >= opt.MaxShiftRetries {
			return nil, fmt.Errorf("ichol: breakdown persists after %d shift retries: %w", try, err)
		}
		if shift == 0 {
			shift = 1e-3
		} else {
			shift *= 4
		}
	}
}

type entry struct {
	row int
	val float64
}

func factorizeShifted(ctx context.Context, a *sparse.CSC, opt Options, shift float64) (*core.Factor, error) {
	dropTol, zeroFill := opt.DropTol, opt.ZeroFill
	n := a.Cols

	// Column norms of A for the relative drop test.
	colNorm := make([]float64, n)
	for j := 0; j < n; j++ {
		if j%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ichol: cancelled at column norm %d of %d: %w", j, n, err)
			}
		}
		s := 0.0
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * a.Val[p]
		}
		colNorm[j] = math.Sqrt(s)
	}

	cols := make([][]entry, n) // column k: diag first, then ascending rows
	// Row-linked lists: for step k, llHead[k] chains the columns j whose
	// next unconsumed entry has row index k.
	llHead := make([]int, n)
	llNext := make([]int, n)
	ptr := make([]int, n) // next unconsumed entry within each column
	for i := range llHead {
		llHead[i] = -1
		llNext[i] = -1
	}

	x := make([]float64, n)
	pattern := make([]int, 0, 256)
	inPat := make([]bool, n)
	// MIC compensation carried into future pivots: a dropped entry (i,k)
	// also sits at (k,i) of the symmetric product, so its mass must be
	// absorbed by BOTH diagonals for (A − L·Lᵀ)·1 = 0 to hold.
	dcomp := make([]float64, n)

	for k := 0; k < n; k++ {
		if k%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ichol: factorization cancelled at column %d of %d: %w", k, n, err)
			}
		}
		// Scatter A(k:n, k), with the shifted diagonal.
		pattern = pattern[:0]
		d := dcomp[k]
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			i := a.RowIdx[p]
			if i < k {
				continue
			}
			if i == k {
				d += a.Val[p] * (1 + shift)
				continue
			}
			x[i] = a.Val[p]
			if !inPat[i] {
				inPat[i] = true
				pattern = append(pattern, i)
			}
		}
		// Apply updates from every column j with l_kj != 0.
		dropped := 0.0 // mass discarded this column (for MIC compensation)
		for j := llHead[k]; j != -1; {
			nextJ := llNext[j]
			cj := cols[j]
			pj := ptr[j]
			lkj := cj[pj].val // entry with row k
			d -= lkj * lkj
			for q := pj + 1; q < len(cj); q++ {
				i := cj[q].row
				if !inPat[i] {
					if zeroFill {
						// IC(0): fill outside A's pattern is discarded
						v := -cj[q].val * lkj
						dropped += v
						if opt.Modified {
							dcomp[i] += v
						}
						continue
					}
					inPat[i] = true
					pattern = append(pattern, i)
				}
				x[i] -= cj[q].val * lkj
			}
			// Advance column j to its next row and relink.
			ptr[j] = pj + 1
			if pj+1 < len(cj) {
				nr := cj[pj+1].row
				llNext[j] = llHead[nr]
				llHead[nr] = j
			}
			j = nextJ
		}

		// Decide keeps/drops first so MIC can fold the dropped mass into
		// the pivot before it is finalized.
		sort.Ints(pattern)
		thresh := dropTol * colNorm[k]
		keep := pattern[:0]
		for _, i := range pattern {
			if math.Abs(x[i]) >= thresh {
				keep = append(keep, i)
			} else {
				dropped += x[i]
				if opt.Modified {
					dcomp[i] += x[i]
				}
				x[i] = 0
				inPat[i] = false
			}
		}
		if opt.Modified {
			// preserve the factor's action on the constant vector
			d += dropped
		}
		if d <= 0 || math.IsNaN(d) {
			// clean scratch before bailing out
			for _, i := range keep {
				x[i] = 0
				inPat[i] = false
			}
			return nil, fmt.Errorf("ichol: non-positive pivot %g at column %d", d, k)
		}
		diag := math.Sqrt(d)
		col := make([]entry, 1, len(keep)+1)
		col[0] = entry{row: k, val: diag}
		for _, i := range keep {
			col = append(col, entry{row: i, val: x[i] / diag})
			x[i] = 0
			inPat[i] = false
		}
		cols[k] = col
		ptr[k] = 1 // skip the diagonal
		if len(col) > 1 {
			nr := col[1].row
			llNext[k] = llHead[nr]
			llHead[nr] = k
		}
	}

	// Assemble CSC (diag-first layout matches sparse.LowerSolve).
	nnz := 0
	for _, c := range cols {
		nnz += len(c)
	}
	colPtr := make([]int, n+1)
	rowIdx := make([]int, nnz)
	val := make([]float64, nnz)
	q := 0
	for j, c := range cols { //pglint:ctxflow O(nnz) assembly copy; the factorization loop above already polls on the same columns
		colPtr[j] = q
		for _, e := range c {
			rowIdx[q] = e.row
			val[q] = e.val
			q++
		}
	}
	colPtr[n] = q
	return &core.Factor{
		N: n,
		L: &sparse.CSC{Rows: n, Cols: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val},
	}, nil
}
