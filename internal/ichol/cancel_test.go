package ichol

import (
	"context"
	"errors"
	"testing"

	"powerrchol/internal/testmat"
)

// TestCancelledContextAbortsFactorize: a pre-cancelled context must stop
// FactorizeContext at its first poll, before any columns are eliminated.
func TestCancelledContextAbortsFactorize(t *testing.T) {
	a := testmat.GridSDDM(24, 24).ToCSC()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorizeContext(ctx, a, nil, Options{DropTol: 1e-2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCancelContextVariantsAgree: a nil or background context must leave
// the factorization bit-identical to the plain Factorize entry point —
// the polls are observation only.
func TestCancelContextVariantsAgree(t *testing.T) {
	a := testmat.GridSDDM(24, 24).ToCSC()
	ref, err := Factorize(a, nil, Options{DropTol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		f, err := FactorizeContext(ctx, a, nil, Options{DropTol: 1e-2})
		if err != nil {
			t.Fatal(err)
		}
		if f.NNZ() != ref.NNZ() {
			t.Fatalf("context variant changed |L|: %d vs %d", f.NNZ(), ref.NNZ())
		}
		got, want := f.ProductCSC().Dense(), ref.ProductCSC().Dense()
		if d := testmat.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("context variant changed the factor by %g", d)
		}
	}
}
