package ichol

import (
	"math"
	"testing"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

// rowSumDeviation returns ‖L·Lᵀ·1 − A·1‖∞, the quantity MIC is designed
// to keep at zero.
func rowSumDeviation(t *testing.T, a *sparse.CSC, f interface {
	ProductCSC() *sparse.CSC
}) float64 {
	t.Helper()
	n := a.Rows
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	want := make([]float64, n)
	a.MulVec(want, ones)
	got := make([]float64, n)
	f.ProductCSC().MulVec(got, ones)
	var dev float64
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > dev {
			dev = d
		}
	}
	return dev
}

func TestMICPreservesConstantVectorAction(t *testing.T) {
	s := testmat.GridSDDM(18, 18)
	a := s.ToCSC()
	// aggressive dropping so compensation has something to do
	plain, err := Factorize(a, nil, Options{DropTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	mic, err := Factorize(a, nil, Options{DropTol: 0.05, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	devPlain := rowSumDeviation(t, a, plain)
	devMIC := rowSumDeviation(t, a, mic)
	t.Logf("‖LLᵀ·1 − A·1‖∞: plain IC %.3g, MIC %.3g", devPlain, devMIC)
	if devMIC > devPlain/5 {
		t.Fatalf("MIC deviation %g not well below plain IC %g", devMIC, devPlain)
	}
	if devMIC > 1e-10 {
		t.Fatalf("MIC should preserve the constant action to rounding, got %g", devMIC)
	}
}

func TestMICStillPreconditions(t *testing.T) {
	s := testmat.GridSDDM(25, 25)
	a := s.ToCSC()
	f, err := Factorize(a, nil, Options{DropTol: 1e-2, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-9, MaxIter: 2000})
	if err != nil || !res.Converged {
		t.Fatalf("MIC-PCG failed: %v", err)
	}
}

func TestMICWithZeroFill(t *testing.T) {
	// MIC(0): zero fill plus compensation, the textbook combination.
	s := testmat.GridSDDM(16, 16)
	a := s.ToCSC()
	f, err := Factorize(a, nil, Options{ZeroFill: true, DropTol: 1e-300, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	if dev := rowSumDeviation(t, a, f); dev > 1e-10 {
		t.Fatalf("MIC(0) constant-action deviation %g", dev)
	}
}
