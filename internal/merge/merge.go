// Package merge implements the PowerRush "merge small via resistors"
// trick [14]: edges whose resistance is far below the surrounding wires
// (equivalently, whose conductance is far above average) are contracted
// before solving, shrinking both the size and the condition number of the
// system. After the solve, every merged node inherits the voltage of its
// representative — exact in the limit of zero resistance and an excellent
// approximation for real via resistances.
package merge

import (
	"sort"

	"powerrchol/internal/graph"
)

// medianWeight returns the median edge weight (0 for an edgeless graph).
func medianWeight(g *graph.Graph) float64 {
	m := g.M()
	if m == 0 {
		return 0
	}
	w := make([]float64, m)
	for i, e := range g.Edges {
		w[i] = e.W
	}
	sort.Float64s(w)
	if m%2 == 1 {
		return w[m/2]
	}
	return 0.5 * (w[m/2-1] + w[m/2])
}

// DefaultFactor: edges with weight (conductance) above this multiple of
// the MEDIAN weight are contracted. The median, not the mean, anchors the
// threshold: via conductances are orders of magnitude above wire
// conductances and would drag a mean-based threshold above themselves.
const DefaultFactor = 50.0

// Contraction maps a contracted system back to the original nodes.
type Contraction struct {
	// Rep[i] is the contracted-node index representing original node i.
	Rep []int
	// N is the number of contracted nodes.
	N int
	// System is the contracted SDDM.
	System *graph.SDDM
}

// Contract merges every edge with weight > factor·medianWeight (factor
// <= 0 selects DefaultFactor) and returns the contracted system plus the
// node mapping. Self loops produced by contraction vanish (the series
// conductance inside a supernode is exact at 0 resistance); parallel
// edges and slack accumulate by summation.
func Contract(s *graph.SDDM, factor float64) *Contraction {
	if factor <= 0 {
		factor = DefaultFactor
	}
	g := s.G
	threshold := factor * medianWeight(g)

	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		if e.W > threshold {
			ru, rv := find(e.U), find(e.V)
			if ru != rv {
				parent[rv] = ru
			}
		}
	}
	// compact representative ids
	rep := make([]int, g.N)
	id := make([]int, g.N)
	for i := range id {
		id[i] = -1
	}
	nc := 0
	for i := 0; i < g.N; i++ {
		r := find(i)
		if id[r] == -1 {
			id[r] = nc
			nc++
		}
		rep[i] = id[r]
	}

	cg := graph.New(nc, g.M())
	for _, e := range g.Edges {
		u, v := rep[e.U], rep[e.V]
		if u != v {
			cg.MustAddEdge(u, v, e.W)
		}
	}
	cg = cg.Coalesce()
	cd := make([]float64, nc)
	for i, r := range rep {
		cd[r] += s.D[i]
	}
	cs, err := graph.NewSDDM(cg, cd)
	if err != nil {
		// cannot happen: weights and slack stay positive under summation
		panic(err)
	}
	return &Contraction{Rep: rep, N: nc, System: cs}
}

// FoldRHS accumulates an original-space right-hand side b into the
// contracted space.
func (c *Contraction) FoldRHS(b []float64) []float64 {
	cb := make([]float64, c.N)
	for i, r := range c.Rep {
		cb[r] += b[i]
	}
	return cb
}

// Expand maps a contracted-space solution back to original nodes.
func (c *Contraction) Expand(cx []float64) []float64 {
	x := make([]float64, len(c.Rep))
	for i, r := range c.Rep {
		x[i] = cx[r]
	}
	return x
}
