package merge

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/graph"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestContractMapsAreConsistent(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%50) + 3
		s := testmat.RandomSDDM(r, n, 2*n)
		c := Contract(s, 5) // aggressive: merge anything above 5x average
		if c.N < 1 || c.N > n {
			return false
		}
		if c.System.N() != c.N {
			return false
		}
		for _, rep := range c.Rep {
			if rep < 0 || rep >= c.N {
				return false
			}
		}
		// total slack preserved
		var orig, merged float64
		for _, d := range s.D {
			orig += d
		}
		for _, d := range c.System.D {
			merged += d
		}
		return math.Abs(orig-merged) < 1e-9*(1+orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNoHeavyEdgesMeansNoContraction(t *testing.T) {
	s := testmat.GridSDDM(8, 8) // uniform weights: nothing above 50x average
	c := Contract(s, 0)
	if c.N != s.N() {
		t.Fatalf("uniform grid contracted from %d to %d nodes", s.N(), c.N)
	}
	if c.System.G.M() != s.G.M() {
		t.Fatalf("edge count changed: %d -> %d", s.G.M(), c.System.G.M())
	}
}

func TestContractedSolutionApproximatesOriginal(t *testing.T) {
	// Grid with a few near-short-circuit edges (vias). The contracted
	// solve must agree with the full solve to roughly the via resistance.
	r := rng.New(7)
	nx, ny := 12, 12
	g := testmat.Grid2D(nx, ny)
	// overlay "via" edges with enormous conductance between neighbors
	for k := 0; k < 10; k++ {
		u := r.Intn(nx*ny - 1)
		g.MustAddEdge(u, u+1, 1e7)
	}
	d := make([]float64, nx*ny)
	d[0] = 1
	d[nx*ny-1] = 1
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() * 0.01
	}
	full, err := pcg.Solve(s.ToCSC(), b, nil, pcg.Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !full.Converged {
		t.Fatalf("full solve failed: %v", err)
	}
	c := Contract(s, 0)
	if c.N >= s.N() {
		t.Fatal("vias were not contracted")
	}
	cres, err := pcg.Solve(c.System.ToCSC(), c.FoldRHS(b), nil, pcg.Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !cres.Converged {
		t.Fatalf("contracted solve failed: %v", err)
	}
	x := c.Expand(cres.X)
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - full.X[i]); e > maxErr {
			maxErr = e
		}
	}
	scale := 0.0
	for _, v := range full.X {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	if maxErr > 1e-3*scale {
		t.Fatalf("contracted solution off by %g (scale %g)", maxErr, scale)
	}
}

func TestExpandFoldShapes(t *testing.T) {
	s := testmat.GridSDDM(5, 5)
	c := Contract(s, 0)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = 1
	}
	cb := c.FoldRHS(b)
	var sum float64
	for _, v := range cb {
		sum += v
	}
	if sum != float64(s.N()) {
		t.Fatalf("FoldRHS lost mass: %g", sum)
	}
	x := c.Expand(make([]float64, c.N))
	if len(x) != s.N() {
		t.Fatalf("Expand length %d, want %d", len(x), s.N())
	}
}
