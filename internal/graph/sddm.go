package graph

import (
	"fmt"
	"math"

	"powerrchol/internal/sparse"
)

// SDDM is a symmetric diagonally dominant M-matrix in the split form
// A = L_G + diag(D) of Eq. (2) of the paper: the off-diagonals live in the
// Laplacian of G and D ≥ 0 carries the diagonal surplus.
type SDDM struct {
	G *Graph
	D []float64
}

// N returns the matrix dimension.
func (s *SDDM) N() int { return s.G.N }

// NNZ returns the number of nonzeros of the assembled matrix A
// (both triangles plus the diagonal).
func (s *SDDM) NNZ() int { return 2*s.G.M() + s.N() }

// NewSDDM wraps a graph and a diagonal surplus; D may be nil for a pure
// (singular) Laplacian, in which case a zero vector is allocated.
func NewSDDM(g *Graph, d []float64) (*SDDM, error) {
	if d == nil {
		d = make([]float64, g.N)
	}
	if len(d) != g.N {
		return nil, fmt.Errorf("graph: D has length %d, want %d", len(d), g.N)
	}
	for i, v := range d {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("graph: D[%d] = %g is not a valid surplus", i, v)
		}
	}
	return &SDDM{G: g, D: d}, nil
}

// ToCSC assembles A = L_G + diag(D) with both triangles stored. The
// assembly is direct: one counting pass over the edges sizes the CSC
// arrays exactly, so building never holds a COO triplet copy and the
// assembled matrix simultaneously (the result stays bit-identical to
// the historical COO route — same entry placement order, same column
// sort/merge tail).
func (s *SDDM) ToCSC() *sparse.CSC {
	a, err := s.assemble()
	if err != nil {
		// The counting pass and the placement pass iterate the same
		// edge list; a mismatch is impossible for an in-variant SDDM.
		panic("graph: SDDM assembly mismatch: " + err.Error())
	}
	return a
}

func (s *SDDM) assemble() (*sparse.CSC, error) {
	g := s.G
	counts := make([]int, g.N)
	for i := range counts {
		counts[i] = 1 // diagonal
	}
	for _, e := range g.Edges {
		counts[e.U]++
		counts[e.V]++
	}
	b, err := sparse.NewCSCBuilder(g.N, g.N, counts)
	if err != nil {
		return nil, err
	}
	diag := g.WeightedDegrees()
	for i, d := range diag {
		b.Set(i, i, d+s.D[i])
	}
	for _, e := range g.Edges {
		b.Set(e.U, e.V, -e.W)
		b.Set(e.V, e.U, -e.W)
	}
	return b.Finish()
}

// SplitCSC decomposes a CSC matrix into SDDM form. It validates that A is
// square, symmetric in pattern, has non-positive off-diagonals, and that
// every diagonal surplus d_i = a_ii - Σ_j |a_ij| is ≥ -tol·a_ii (small
// negative surpluses from floating-point assembly are clamped to zero).
// Off-diagonal entries with |a_ij| ≤ dropTol are ignored.
func SplitCSC(a *sparse.CSC, tol float64) (*SDDM, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	n := a.Cols
	g := New(n, a.NNZ()/2)
	d := make([]float64, n)
	offSum := make([]float64, n)
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := a.Val[p]
			switch {
			// Reject non-finite entries first: NaN fails every ordered
			// comparison, so it would otherwise slip through both the
			// M-matrix check and the dominance checks below.
			case math.IsNaN(v) || math.IsInf(v, 0):
				return nil, fmt.Errorf("graph: non-finite entry %g at (%d,%d)", v, i, j)
			case i == j:
				diag[j] = v
			case v > 0:
				return nil, fmt.Errorf("graph: positive off-diagonal %g at (%d,%d): not an M-matrix", v, i, j)
			case v < 0:
				offSum[j] += -v
				if i > j { // record each undirected edge once
					if err := g.AddEdge(i, j, -v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if diag[i] <= 0 {
			return nil, fmt.Errorf("graph: non-positive diagonal %g at row %d", diag[i], i)
		}
		s := diag[i] - offSum[i]
		if s < -tol*diag[i] {
			return nil, fmt.Errorf("graph: row %d violates diagonal dominance by %g", i, -s)
		}
		if s < 0 {
			s = 0
		}
		d[i] = s
	}
	return &SDDM{G: g, D: d}, nil
}

// Permute returns the SDDM of the reordered matrix P·A·Pᵀ where
// perm[newIdx] = oldIdx.
func (s *SDDM) Permute(perm []int) *SDDM {
	inv := sparse.InvPerm(perm)
	g := New(s.G.N, s.G.M())
	for _, e := range s.G.Edges {
		g.MustAddEdge(inv[e.U], inv[e.V], e.W)
	}
	d := make([]float64, len(s.D))
	for newIdx, oldIdx := range perm {
		d[newIdx] = s.D[oldIdx]
	}
	return &SDDM{G: g, D: d}
}

// MulVec computes y = A·x without assembling A: one pass over the edges
// plus the diagonal.
func (s *SDDM) MulVec(y, x []float64) {
	wd := s.G.WeightedDegrees()
	for i := range y {
		y[i] = (wd[i] + s.D[i]) * x[i]
	}
	for _, e := range s.G.Edges {
		y[e.U] -= e.W * x[e.V]
		y[e.V] -= e.W * x[e.U]
	}
}
