package graph

import (
	"runtime"
	"testing"

	"powerrchol/internal/rng"
)

// Allocation regression tests for the direct SDDM assembly. ToCSC's
// "never two copies" claim — the counting pass sizes the CSC arrays
// exactly, so the builder never holds a COO triplet copy alongside the
// assembled matrix — is guarded here in its deterministic form: total
// bytes allocated per build, not sampled heap peaks. Reintroducing a
// COO staging copy costs at least 24 bytes per raw entry on top of the
// output, which blows the budget below by several multiples; GC timing
// never enters the measurement because TotalAlloc only counts
// cumulative allocation.

func allocTestSystem(t *testing.T, n int) *SDDM {
	t.Helper()
	r := rng.New(7)
	g := New(n, 4*n)
	for k := 0; k < 4*n; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+r.Float64())
		}
	}
	s, err := NewSDDM(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestToCSCAllocationBudget bounds the bytes one assembly allocates:
// the output arrays themselves (16·nnz + 8·(n+1)) plus the O(n)
// working set — edge counts, builder cursor, weighted degrees, and the
// merged column-pointer array — with room for allocator size-class
// rounding. A COO round trip (24 bytes per raw entry staged before the
// output exists) would more than double the total.
func TestToCSCAllocationBudget(t *testing.T) {
	s := allocTestSystem(t, 20000)
	a := s.ToCSC() // warm-up build, also supplies nnz
	ideal := 16*a.NNZ() + 8*(s.N()+1)
	budget := uint64(ideal + 40*s.N() + 1<<16)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_ = s.ToCSC()
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > budget {
		t.Errorf("ToCSC allocated %d bytes, budget %d (output arrays %d): staging copy reintroduced?",
			total, budget, ideal)
	}
	t.Logf("ToCSC: %d bytes for %d output bytes (%.2fx)", total, ideal, float64(total)/float64(ideal))
}

// TestToCSCAllocationCount pins the allocation count to a small
// constant: the five assembly arrays plus a handful of fixed headers.
// A per-edge or per-column allocation in the hot path (like the
// per-column sort.Interface boxing compressColumns once had) turns
// this into O(n) and fails immediately.
func TestToCSCAllocationCount(t *testing.T) {
	s := allocTestSystem(t, 5000)
	allocs := testing.AllocsPerRun(5, func() { _ = s.ToCSC() })
	if allocs > 16 {
		t.Errorf("ToCSC makes %.0f allocations per build, want a small constant (<= 16)", allocs)
	}
}
