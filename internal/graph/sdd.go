package graph

import (
	"fmt"
	"math"

	"powerrchol/internal/sparse"
)

// ReduceSDD converts a general symmetric diagonally dominant matrix with
// positive diagonal — positive off-diagonals allowed — into an SDDM of
// twice the size via the Gremban double cover, the reduction the RChol
// paper [3] uses to extend randomized Cholesky beyond M-matrices:
//
//	negative a_ij  → edges (i, j) and (i', j') of weight |a_ij|
//	positive a_ij  → edges (i, j') and (i', j) of weight a_ij
//	slack          → d_i = a_ii − Σ_{j≠i} |a_ij| on both i and i'
//
// where i' = i+n indexes the mirrored copy. Solving the doubled system
// with right-hand side [b; −b] yields x = (x⁺ − x⁻)/2 (see SolveSDD in
// the facade or RecoverSDD here).
func ReduceSDD(a *sparse.CSC, tol float64) (*SDDM, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	n := a.Cols
	g := New(2*n, a.NNZ())
	d := make([]float64, 2*n)
	diag := make([]float64, n)
	offSum := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := a.Val[p]
			if i == j {
				diag[j] = v
				continue
			}
			offSum[j] += math.Abs(v)
			if i <= j {
				continue // undirected edges recorded once from the lower triangle
			}
			switch {
			case v < 0:
				g.MustAddEdge(i, j, -v)
				g.MustAddEdge(i+n, j+n, -v)
			case v > 0:
				g.MustAddEdge(i, j+n, v)
				g.MustAddEdge(i+n, j, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		if diag[i] <= 0 {
			return nil, fmt.Errorf("graph: non-positive diagonal %g at row %d", diag[i], i)
		}
		s := diag[i] - offSum[i]
		if s < -tol*diag[i] {
			return nil, fmt.Errorf("graph: row %d violates diagonal dominance by %g", i, -s)
		}
		if s < 0 {
			s = 0
		}
		d[i] = s
		d[i+n] = s
	}
	return &SDDM{G: g, D: d}, nil
}

// DoubleRHS builds the doubled right-hand side [b; -b] for a system
// produced by ReduceSDD.
func DoubleRHS(b []float64) []float64 {
	n := len(b)
	bb := make([]float64, 2*n)
	copy(bb, b)
	for i, v := range b {
		bb[n+i] = -v
	}
	return bb
}

// RecoverSDD maps the doubled solution back: x_i = (x⁺_i − x⁻_i)/2.
func RecoverSDD(xx []float64) []float64 {
	n := len(xx) / 2
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 0.5 * (xx[i] - xx[n+i])
	}
	return x
}
