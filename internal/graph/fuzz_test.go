package graph

import (
	"bytes"
	"math"
	"testing"

	"powerrchol/internal/sparse"
)

// FuzzSplitCSC: SDDM construction from arbitrary Matrix Market input must
// never panic, and any accepted system must satisfy the SDDM contract —
// finite non-negative surplus, positive edge weights, and an assembled
// matrix that splits back to the same shape.
func FuzzSplitCSC(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 4\n1 1 2\n2 2 2\n1 2 -1\n2 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 5\n1 1 1\n2 2 2\n3 3 1\n2 1 -1\n3 2 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n2 2 1\n1 2 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 inf\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 -1\n2 2 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := sparse.ReadMatrixMarket(bytes.NewBufferString(src))
		if err != nil || a.Rows > 1<<10 {
			return
		}
		s, err := SplitCSC(a, 1e-12)
		if err != nil {
			return
		}
		if s.N() != a.Rows {
			t.Fatalf("accepted system has n=%d, input was %d", s.N(), a.Rows)
		}
		for i, v := range s.D {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted surplus D[%d] = %g\ninput %q", i, v, src)
			}
		}
		for _, e := range s.G.Edges {
			if !(e.W > 0) || math.IsInf(e.W, 0) {
				t.Fatalf("accepted edge weight %g\ninput %q", e.W, src)
			}
		}
		// The assembled matrix must be splittable again with the same shape
		// (ToCSC writes both triangles, so a one-triangle input may gain
		// edges; the second split must at least succeed and agree with the
		// first's assembly).
		b := s.ToCSC()
		s2, err := SplitCSC(b, 1e-9)
		if err != nil {
			t.Fatalf("re-split of assembled matrix rejected: %v\ninput %q", err, src)
		}
		if s2.N() != s.N() {
			t.Fatalf("re-split changed n: %d vs %d", s2.N(), s.N())
		}
	})
}
