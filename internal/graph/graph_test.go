package graph

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
)

// randomConnectedGraph builds a connected weighted graph: a random
// spanning tree plus extra random edges.
func randomConnectedGraph(r *rng.Rand, n, extra int) *Graph {
	g := New(n, n+extra)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, r.Intn(i), 0.1+r.Float64()*10)
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.1+r.Float64()*10)
		}
	}
	return g
}

func randomSDDM(r *rng.Rand, n, extra int) *SDDM {
	g := randomConnectedGraph(r, n, extra)
	d := make([]float64, n)
	for i := range d {
		if r.Float64() < 0.3 {
			d[i] = r.Float64() * 5
		}
	}
	d[r.Intn(n)] += 1 // guarantee non-singularity
	s, err := NewSDDM(g, d)
	if err != nil {
		panic(err)
	}
	return s
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, 4)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, math.Inf(1)); err == nil {
		t.Error("infinite weight accepted")
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := rng.New(seed)
		g := randomConnectedGraph(r, n, n)
		l := g.LaplacianCSC()
		// row sums of a Laplacian are identically zero
		sums := make([]float64, n)
		for j := 0; j < n; j++ {
			for p := l.ColPtr[j]; p < l.ColPtr[j+1]; p++ {
				sums[l.RowIdx[p]] += l.Val[p]
			}
		}
		for _, s := range sums {
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return l.IsSymmetric(1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitCSCRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := rng.New(seed)
		s := randomSDDM(r, n, n)
		a := s.ToCSC()
		s2, err := SplitCSC(a, 1e-10)
		if err != nil {
			return false
		}
		a2 := s2.ToCSC()
		if a2.NNZ() != a.NNZ() {
			return false
		}
		for j := 0; j < n; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				if math.Abs(a2.At(a.RowIdx[p], j)-a.Val[p]) > 1e-9*(1+math.Abs(a.Val[p])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitCSCRejectsNonSDDM(t *testing.T) {
	// positive off-diagonal
	g := New(2, 1)
	g.MustAddEdge(0, 1, 1)
	a := g.LaplacianCSC()
	a.Val[1] = +1 // flip an off-diagonal sign
	if _, err := SplitCSC(a, 1e-12); err == nil {
		t.Error("positive off-diagonal accepted")
	}
	// dominance violation: shrink a diagonal
	b := g.LaplacianCSC()
	for p := b.ColPtr[0]; p < b.ColPtr[1]; p++ {
		if b.RowIdx[p] == 0 {
			b.Val[p] = 0.5 // < |off-diag| = 1
		}
	}
	if _, err := SplitCSC(b, 1e-12); err == nil {
		t.Error("dominance violation accepted")
	}
}

func TestSDDMMulVecMatchesCSC(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(25)
		s := randomSDDM(r, n, 2*n)
		a := s.ToCSC()
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		s.MulVec(y1, x)
		a.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9 {
				t.Fatalf("SDDM.MulVec[%d] = %g, CSC gives %g", i, y1[i], y2[i])
			}
		}
	}
}

func TestPermuteSDDM(t *testing.T) {
	r := rng.New(13)
	n := 12
	s := randomSDDM(r, n, n)
	perm := r.Perm(n)
	sp := s.Permute(perm)
	a := s.ToCSC()
	ap := sp.ToCSC()
	inv := make([]int, n)
	for ni, oi := range perm {
		inv[oi] = ni
	}
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if math.Abs(ap.At(inv[i], inv[j])-a.Val[p]) > 1e-12 {
				t.Fatalf("permuted SDDM mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCoalesce(t *testing.T) {
	g := New(3, 3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 2) // parallel, reversed orientation
	g.MustAddEdge(1, 2, 3)
	c := g.Coalesce()
	if c.M() != 2 {
		t.Fatalf("Coalesce left %d edges, want 2", c.M())
	}
	var w01 float64
	for _, e := range c.Edges {
		if (e.U == 0 && e.V == 1) || (e.U == 1 && e.V == 0) {
			w01 = e.W
		}
	}
	if w01 != 3 {
		t.Fatalf("merged weight %g, want 3", w01)
	}
}

func TestConnected(t *testing.T) {
	g := New(4, 3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.MustAddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestDegreeAndWeightStats(t *testing.T) {
	g := New(3, 3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 4)
	deg := g.Degrees()
	if deg[0] != 1 || deg[1] != 2 || deg[2] != 1 {
		t.Errorf("degrees = %v", deg)
	}
	if g.AvgWeight() != 3 {
		t.Errorf("AvgWeight = %g, want 3", g.AvgWeight())
	}
	wm := g.MaxIncidentWeight()
	if wm[0] != 2 || wm[1] != 4 || wm[2] != 4 {
		t.Errorf("MaxIncidentWeight = %v", wm)
	}
	wd := g.WeightedDegrees()
	if wd[1] != 6 {
		t.Errorf("WeightedDegrees[1] = %g, want 6", wd[1])
	}
}
