// Package graph represents weighted undirected graphs and the SDDM
// decomposition A = L_G + D that every solver in this repository operates
// on: L_G is the graph Laplacian (Eq. 1 of the paper) and D holds the
// non-negative diagonal surplus ("slack", e.g. pad conductances of a power
// grid).
package graph

import (
	"fmt"
	"math"
	"sort"

	"powerrchol/internal/sparse"
)

// Edge is one undirected edge with a positive weight (conductance).
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph stored as an edge list plus a
// CSR-style adjacency built on demand.
type Graph struct {
	N     int
	Edges []Edge

	// adjacency (built lazily by BuildAdj): Ptr has length N+1; Adj/W list
	// each edge twice.
	Ptr []int
	Adj []int
	W   []float64
}

// New returns an empty graph on n nodes with capacity for m edges.
func New(n, m int) *Graph {
	return &Graph{N: n, Edges: make([]Edge, 0, m)}
}

// AddEdge appends an undirected edge; zero or negative weights and self
// loops are rejected because a Laplacian has neither.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range n=%d", u, v, g.N)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive or non-finite weight %g", u, v, w)
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	g.Ptr = nil // invalidate adjacency
	return nil
}

// MustAddEdge is AddEdge that panics on error; for generators whose inputs
// are validated up front.
func (g *Graph) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) }

// BuildAdj (re)builds the CSR adjacency from the edge list. Parallel edges
// are kept as-is; callers that need a simple graph should coalesce first.
func (g *Graph) BuildAdj() {
	if g.Ptr != nil {
		return
	}
	g.Ptr = make([]int, g.N+1)
	for _, e := range g.Edges {
		g.Ptr[e.U+1]++
		g.Ptr[e.V+1]++
	}
	for i := 0; i < g.N; i++ {
		g.Ptr[i+1] += g.Ptr[i]
	}
	g.Adj = make([]int, 2*len(g.Edges))
	g.W = make([]float64, 2*len(g.Edges))
	next := append([]int(nil), g.Ptr[:g.N]...)
	for _, e := range g.Edges {
		g.Adj[next[e.U]] = e.V
		g.W[next[e.U]] = e.W
		next[e.U]++
		g.Adj[next[e.V]] = e.U
		g.W[next[e.V]] = e.W
		next[e.V]++
	}
}

// Degree returns the number of incident edges of node i (parallel edges
// counted separately). BuildAdj must have been called.
func (g *Graph) Degree(i int) int { return g.Ptr[i+1] - g.Ptr[i] }

// Degrees returns all node degrees.
func (g *Graph) Degrees() []int {
	g.BuildAdj()
	d := make([]int, g.N)
	for i := range d {
		d[i] = g.Degree(i)
	}
	return d
}

// WeightedDegrees returns, for each node, the sum of incident edge weights
// (the Laplacian diagonal).
func (g *Graph) WeightedDegrees() []float64 {
	d := make([]float64, g.N)
	for _, e := range g.Edges {
		d[e.U] += e.W
		d[e.V] += e.W
	}
	return d
}

// AvgWeight returns the average edge weight (0 for an edgeless graph).
func (g *Graph) AvgWeight() float64 {
	if len(g.Edges) == 0 {
		return 0
	}
	var s float64
	for _, e := range g.Edges {
		s += e.W
	}
	return s / float64(len(g.Edges))
}

// MaxIncidentWeight returns, for each node, the maximum weight among its
// incident edges (0 for isolated nodes).
func (g *Graph) MaxIncidentWeight() []float64 {
	m := make([]float64, g.N)
	for _, e := range g.Edges {
		if e.W > m[e.U] {
			m[e.U] = e.W
		}
		if e.W > m[e.V] {
			m[e.V] = e.W
		}
	}
	return m
}

// Connected reports whether the graph is connected (a single component);
// an empty graph is considered connected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	g.BuildAdj()
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := g.Ptr[u]; p < g.Ptr[u+1]; p++ {
			v := g.Adj[p]
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.N
}

// Coalesce merges parallel edges by summing their weights and returns a
// new simple graph. The output edge order is deterministic (sorted by
// endpoints) so that downstream randomized algorithms are reproducible.
func (g *Graph) Coalesce() *Graph {
	keys := make([]uint64, len(g.Edges))
	for i, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		keys[i] = uint64(u)<<32 | uint64(v)
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := New(g.N, len(g.Edges))
	for i := 0; i < len(idx); {
		j := i
		w := 0.0
		for ; j < len(idx) && keys[idx[j]] == keys[idx[i]]; j++ {
			w += g.Edges[idx[j]].W
		}
		k := keys[idx[i]]
		out.MustAddEdge(int(k>>32), int(k&0xffffffff), w)
		i = j
	}
	return out
}

// LaplacianCSC assembles the Laplacian L_G as a CSC matrix with both
// triangles stored.
func (g *Graph) LaplacianCSC() *sparse.CSC {
	coo := sparse.NewCOO(g.N, g.N, 4*len(g.Edges)+g.N)
	diag := g.WeightedDegrees()
	for i, d := range diag {
		coo.Add(i, i, d)
	}
	for _, e := range g.Edges {
		coo.Add(e.U, e.V, -e.W)
		coo.Add(e.V, e.U, -e.W)
	}
	return coo.ToCSC()
}
