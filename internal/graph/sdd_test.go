package graph

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// randomSDD builds a symmetric diagonally dominant matrix with MIXED-sign
// off-diagonals and strictly positive slack.
func randomSDD(r *rng.Rand, n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 6*n)
	offSum := make([]float64, n)
	for k := 0; k < 3*n; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		v := r.Float64()*2 - 1 // both signs
		coo.AddSym(i, j, v)
		offSum[i] += math.Abs(v)
		offSum[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, offSum[i]+0.1+r.Float64())
	}
	return coo.ToCSC()
}

func TestReduceSDDStructure(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := rng.New(seed)
		a := randomSDD(r, n)
		sys, err := ReduceSDD(a, 1e-12)
		if err != nil {
			return false
		}
		if sys.N() != 2*n {
			return false
		}
		// mirrored slack
		for i := 0; i < n; i++ {
			if sys.D[i] != sys.D[i+n] {
				return false
			}
		}
		// the doubled matrix must itself be a valid SDDM (SplitCSC accepts it)
		if _, err := SplitCSC(sys.ToCSC(), 1e-9); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The double cover must be algebraically faithful: applying the doubled
// operator to [x; -x] reproduces [A·x; -A·x].
func TestReduceSDDOperatorIdentity(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(25)
		a := randomSDD(r, n)
		sys, err := ReduceSDD(a, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		xx := DoubleRHS(x) // [x; -x]
		yy := make([]float64, 2*n)
		sys.MulVec(yy, xx)
		want := make([]float64, n)
		a.MulVec(want, x)
		for i := 0; i < n; i++ {
			if math.Abs(yy[i]-want[i]) > 1e-9 ||
				math.Abs(yy[n+i]+want[i]) > 1e-9 {
				t.Fatalf("double-cover operator mismatch at %d: (%g, %g) vs %g",
					i, yy[i], yy[n+i], want[i])
			}
		}
	}
}

func TestRecoverSDDInvertsDoubleRHS(t *testing.T) {
	b := []float64{1, -2, 3}
	x := RecoverSDD(DoubleRHS(b))
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("RecoverSDD(DoubleRHS(b)) = %v", x)
		}
	}
}

func TestReduceSDDRejectsBadInput(t *testing.T) {
	// non-square
	if _, err := ReduceSDD(sparse.NewCSC(2, 3, 0), 0); err == nil {
		t.Error("non-square accepted")
	}
	// dominance violation
	c := sparse.NewCOO(2, 2, 4)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.AddSym(0, 1, 2) // |off| 2 > diag 1
	if _, err := ReduceSDD(c.ToCSC(), 1e-12); err == nil {
		t.Error("dominance violation accepted")
	}
	// non-positive diagonal
	c2 := sparse.NewCOO(1, 1, 1)
	c2.Add(0, 0, -1)
	if _, err := ReduceSDD(c2.ToCSC(), 1e-12); err == nil {
		t.Error("negative diagonal accepted")
	}
}
