package core

import (
	"fmt"
	"math"
	"sort"

	"powerrchol/internal/graph"
)

// Stats instruments one factorization run: the per-elimination degree
// profile is what the paper's complexity argument is about — RChol costs
// Σ d·log d over these degrees, LT-RChol costs Σ d = |L|−N.
type Stats struct {
	N            int
	MaxDegree    int     // largest neighbor count at elimination time
	TotalDegree  int     // Σ_k |N_k| (= |L| − N)
	SampledEdges int     // fill edges added by clique sampling
	MeanDegree   float64 // TotalDegree / N
	// DegreeQuantiles holds the degree distribution at {50,90,99,100}%.
	DegreeQuantiles [4]int
	// SumDLogD is Σ d·log₂d, the RChol sampling cost functional.
	SumDLogD float64
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d Σd=%d (mean %.2f, p50/p90/p99/max %d/%d/%d/%d) sampled=%d Σd·log d=%.3g",
		s.N, s.TotalDegree, s.MeanDegree,
		s.DegreeQuantiles[0], s.DegreeQuantiles[1], s.DegreeQuantiles[2], s.DegreeQuantiles[3],
		s.SampledEdges, s.SumDLogD)
}

// CollectStats re-runs the elimination bookkeeping of Factorize on the
// given system and ordering and returns the degree profile. It samples
// with the same RNG discipline as VariantLT, so the profile matches what
// a Factorize call with the same options would see.
func CollectStats(s *graph.SDDM, perm []int, opt Options) (Stats, error) {
	f, err := Factorize(s, perm, opt)
	if err != nil {
		return Stats{}, err
	}
	return statsFromFactor(f), nil
}

// statsFromFactor derives the elimination-degree profile from the factor
// itself: column k of L holds exactly 1 + |N_k| entries.
func statsFromFactor(f *Factor) Stats {
	st := Stats{N: f.N}
	degrees := make([]int, f.N)
	for k := 0; k < f.N; k++ {
		d := f.colLen(k) - 1
		degrees[k] = d
		st.TotalDegree += d
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d > 1 {
			st.SampledEdges += d - 1
		}
		if d > 0 {
			st.SumDLogD += float64(d) * math.Log2(float64(d))
		}
	}
	if f.N > 0 {
		st.MeanDegree = float64(st.TotalDegree) / float64(f.N)
	}
	sort.Ints(degrees)
	q := func(p float64) int {
		if f.N == 0 {
			return 0
		}
		i := int(p * float64(f.N-1))
		return degrees[i]
	}
	st.DegreeQuantiles = [4]int{q(0.50), q(0.90), q(0.99), q(1.0)}
	return st
}
