package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"powerrchol/internal/sparse"
)

// fuzzSeedFactor builds a small valid factor and returns its serialized
// bytes, giving the fuzzer a structurally correct starting point.
func fuzzSeedFactor(perm []int) []byte {
	f := &Factor{
		N: 2,
		L: &sparse.CSC{
			Rows: 2, Cols: 2,
			ColPtr: []int{0, 2, 3},
			RowIdx: []int{0, 1, 1},
			Val:    []float64{2, -0.5, 1.5},
		},
		Perm: perm,
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFactor: factor deserialization must never panic or allocate
// unboundedly on forged headers, and any accepted factor must satisfy the
// structural invariants and survive a write/read round trip.
func FuzzReadFactor(f *testing.F) {
	valid := fuzzSeedFactor(nil)
	f.Add(valid)
	f.Add(fuzzSeedFactor([]int{1, 0}))
	f.Add(valid[:len(valid)-3]) // truncated body
	f.Add([]byte("PRCHOLF1"))   // header only
	f.Add([]byte(""))
	// Forged header claiming 2^39 nonzeros over an empty body: must fail
	// at EOF without attempting a multi-gigabyte allocation.
	forged := []byte("PRCHOLF1")
	forged = binary.LittleEndian.AppendUint64(forged, 1)
	forged = binary.LittleEndian.AppendUint64(forged, 1<<39)
	forged = append(forged, 0)
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		fac, err := ReadFactor(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fac.N < 0 || fac.L == nil || len(fac.L.ColPtr) != fac.N+1 {
			t.Fatalf("accepted factor is malformed: n=%d", fac.N)
		}
		// The factor's structural contract (factor.go) is weaker than
		// CSC.Check: diagonal-first columns with the remaining entries
		// strictly below the diagonal but unsorted, finite values.
		l := fac.L
		for k := 0; k < fac.N; k++ {
			if l.ColPtr[k] >= l.ColPtr[k+1] || l.RowIdx[l.ColPtr[k]] != k {
				t.Fatalf("accepted factor: column %d does not lead with its diagonal", k)
			}
			for p := l.ColPtr[k] + 1; p < l.ColPtr[k+1]; p++ {
				if l.RowIdx[p] <= k || l.RowIdx[p] >= fac.N {
					t.Fatalf("accepted factor: row %d in column %d outside the strict lower triangle", l.RowIdx[p], k)
				}
			}
		}
		for _, v := range l.Val {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted factor carries non-finite value %g", v)
			}
		}
		var buf bytes.Buffer
		if _, err := fac.WriteTo(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		rt, err := ReadFactor(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.N != fac.N || rt.L.NNZ() != fac.L.NNZ() || (rt.Perm == nil) != (fac.Perm == nil) {
			t.Fatal("round trip changed the factor's shape")
		}
	})
}
