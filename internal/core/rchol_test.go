package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"powerrchol/internal/graph"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

var allVariants = []Variant{VariantRChol, VariantLT, VariantHybrid}

func TestLocateAscendingMatchesBinarySearch(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%60) + 1
		m := int(mRaw % 60)
		a := make([]float64, n)
		acc := 0.0
		for i := range a {
			acc += r.Float64()
			a[i] = acc
		}
		tgt := make([]float64, m)
		tv := 0.0
		for j := range tgt {
			tv += r.Float64() * acc / float64(m+1)
			tgt[j] = tv
		}
		out := make([]int, m)
		LocateAscending(a, tgt, out)
		for j, tj := range tgt {
			if want := locateBinary(a, 0, tj); out[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortPairsExact(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%100) + 1
		w := make([]float64, n)
		id := make([]int32, n)
		orig := make(map[int32]float64, n)
		for i := range w {
			w[i] = r.Float64() * 100
			id[i] = int32(i)
			orig[id[i]] = w[i]
		}
		sortPairsExact(w, id)
		for i := 1; i < n; i++ {
			if w[i-1] > w[i] {
				return false
			}
		}
		// pairs stay attached
		for i := range w {
			if orig[id[i]] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountingSortApproximatelyMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8, bRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%100) + 1
		b := int(bRaw)*2 + 2
		cs := newCountingSorter(b)
		w := make([]float64, n)
		id := make([]int32, n)
		var maxW float64
		for i := range w {
			w[i] = r.Float64() * 50
			id[i] = int32(i)
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		orig := append([]float64(nil), w...)
		cs.sort(w, id)
		// Multiset preserved.
		sorted := append([]float64(nil), orig...)
		got := append([]float64(nil), w...)
		sort.Float64s(sorted)
		sort.Float64s(got)
		for i := range got {
			if got[i] != sorted[i] {
				return false
			}
		}
		// Bucket-monotone: quantized keys never decrease (with the
		// degree-capped effective bucket count the sorter actually used).
		be := b
		if lim := 4 * n; be > lim {
			be = lim
		}
		bucket := func(v float64) int {
			k := int(math.Ceil(v / maxW * float64(be)))
			if k < 1 {
				k = 1
			}
			if k > be {
				k = be
			}
			return k
		}
		for i := 1; i < n; i++ {
			if bucket(w[i-1]) > bucket(w[i]) {
				return false
			}
		}
		// pairs stay attached
		for i := range w {
			if orig[id[i]] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// On a path graph every elimination has at most one remaining neighbor,
// so no clique is ever sampled and the randomized factorization must
// reproduce A exactly for every variant.
func TestPathGraphFactorizationIsExact(t *testing.T) {
	s := testmat.PathSDDM(30, 2.5)
	a := s.ToCSC().Dense()
	for _, v := range allVariants {
		f, err := Factorize(s, nil, Options{Variant: v, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got := f.ProductCSC().Dense()
		if d := testmat.MaxAbsDiff(a, got); d > 1e-12 {
			t.Errorf("%v: path LLᵀ differs from A by %g", v, d)
		}
	}
}

// The sampled spanning tree is an unbiased estimator of the elimination
// clique, so E[L·Lᵀ] = A. Average over many seeds on a small graph and
// check convergence toward A.
func TestFactorizationIsUnbiased(t *testing.T) {
	r := rng.New(99)
	s := testmat.RandomSDDM(r, 8, 10)
	a := s.ToCSC().Dense()
	n := s.N()
	for _, v := range allVariants {
		sum := make([][]float64, n)
		for i := range sum {
			sum[i] = make([]float64, n)
		}
		const trials = 4000
		for trial := 0; trial < trials; trial++ {
			f, err := Factorize(s, nil, Options{Variant: v, Seed: uint64(trial + 1)})
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			p := f.ProductCSC().Dense()
			for i := range sum {
				for j := range sum[i] {
					sum[i][j] += p[i][j] / trials
				}
			}
		}
		// Scale tolerance by matrix magnitude; Monte-Carlo error ~1/sqrt(trials).
		var scale float64
		for i := range a {
			if math.Abs(a[i][i]) > scale {
				scale = math.Abs(a[i][i])
			}
		}
		if d := testmat.MaxAbsDiff(a, sum); d > 0.1*scale {
			t.Errorf("%v: |E[LLᵀ] - A| = %g (scale %g): estimator looks biased", v, d, scale)
		}
	}
}

// Breakdown-free property: on random SDDMs the factorization must succeed
// with strictly positive diagonal and strictly lower-triangular structure.
func TestFactorizationBreakdownFree(t *testing.T) {
	f := func(seed uint64, nRaw uint8, variantRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%40) + 2
		s := testmat.RandomSDDM(r, n, 2*n)
		v := allVariants[int(variantRaw)%len(allVariants)]
		fac, err := Factorize(s, nil, Options{Variant: v, Seed: seed})
		if err != nil {
			return false
		}
		l := fac.L
		for k := 0; k < n; k++ {
			p := l.ColPtr[k]
			if l.RowIdx[p] != k || !(l.Val[p] > 0) {
				return false // diagonal must lead each column and be positive
			}
			for q := p + 1; q < l.ColPtr[k+1]; q++ {
				if l.RowIdx[q] <= k {
					return false // strictly below the diagonal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFactorizeReportsSingular(t *testing.T) {
	// A pure Laplacian (zero slack everywhere) is singular.
	g := graph.New(3, 2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	s, err := graph.NewSDDM(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Factorize(s, nil, Options{Variant: VariantLT})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("got %v, want ErrBreakdown", err)
	}
}

func TestFactorPreconditionerSolvesViaPCG(t *testing.T) {
	r := rng.New(5)
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	for _, v := range allVariants {
		f, err := Factorize(s, nil, Options{Variant: v, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-10, MaxIter: 200})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !res.Converged {
			t.Fatalf("%v: PCG did not converge (res %g)", v, res.Residual)
		}
		if res.Iterations > 80 {
			t.Errorf("%v: PCG took %d iterations; preconditioner too weak", v, res.Iterations)
		}
		// verify against the operator directly
		y := make([]float64, s.N())
		a.MulVec(y, res.X)
		sparse.Axpy(y, -1, b)
		if rel := sparse.Norm2(y) / sparse.Norm2(b); rel > 1e-9 {
			t.Errorf("%v: true residual %g", v, rel)
		}
	}
}

func TestFactorizeWithPermutationMatchesUnpermuted(t *testing.T) {
	// With a permutation the preconditioner must still be an SPD operator
	// on the ORIGINAL index space and still drive PCG to the solution.
	r := rng.New(21)
	s := testmat.RandomSDDM(r, 60, 120)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	perm := r.Perm(s.N())
	f, err := Factorize(s, perm, Options{Variant: VariantLT, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-10, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("PCG with permuted preconditioner did not converge: %g", res.Residual)
	}
	want, err := testmat.DenseSolveSPD(a.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

// The permuted factorization must factor P·A·Pᵀ, i.e. its column k pivots
// on original node perm[k]. A tree (no sampling) makes this check exact.
func TestFactorizePermutationSemantics(t *testing.T) {
	s := testmat.PathSDDM(10, 1.0)
	perm := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	f, err := Factorize(s, perm, Options{Variant: VariantRChol, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := sparse.PermuteSym(s.ToCSC(), perm).Dense()
	got := f.ProductCSC().Dense()
	if d := testmat.MaxAbsDiff(ap, got); d > 1e-12 {
		t.Fatalf("permuted tree factorization differs from P·A·Pᵀ by %g", d)
	}
}

// Corrected slack distribution (DESIGN.md §2): eliminating one node of a
// 2-node graph must reproduce the exact Schur complement, which pins down
// the D update as D(k,k)·w/d_k (not D(nj,nj)·w/d_k as misprinted).
func TestSlackDistributionMatchesExactSchur(t *testing.T) {
	g := graph.New(2, 1)
	g.MustAddEdge(0, 1, 3.0)
	d := []float64{2.0, 0.5}
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		t.Fatal(err)
	}
	// A = [[5, -3], [-3, 3.5]]; Schur at node 1: 3.5 - 9/5 = 1.7
	f, err := Factorize(s, nil, Options{Variant: VariantLT, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := f.ProductCSC().Dense()
	want := s.ToCSC().Dense()
	if dd := testmat.MaxAbsDiff(got, want); dd > 1e-12 {
		t.Fatalf("2-node elimination differs from exact by %g (got %v)", dd, got)
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	r := rng.New(31)
	s := testmat.RandomSDDM(r, 40, 80)
	for _, v := range allVariants {
		f1, err1 := Factorize(s, nil, Options{Variant: v, Seed: 42})
		f2, err2 := Factorize(s, nil, Options{Variant: v, Seed: 42})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if f1.NNZ() != f2.NNZ() {
			t.Fatalf("%v: same seed, different nnz", v)
		}
		for i := range f1.L.Val {
			if f1.L.Val[i] != f2.L.Val[i] || f1.L.RowIdx[i] != f2.L.RowIdx[i] {
				t.Fatalf("%v: same seed, different factor", v)
			}
		}
		f3, err := Factorize(s, nil, Options{Variant: v, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		same := f1.NNZ() == f3.NNZ()
		if same {
			same = true
			for i := range f1.L.Val {
				if f1.L.Val[i] != f3.L.Val[i] {
					same = false
					break
				}
			}
		}
		if same && s.G.M() > s.N() {
			t.Errorf("%v: different seeds produced identical factors (suspicious)", v)
		}
	}
}

func TestVariantString(t *testing.T) {
	if VariantRChol.String() != "rchol" || VariantLT.String() != "lt-rchol" ||
		VariantHybrid.String() != "hybrid" {
		t.Error("Variant.String mismatch")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should still format")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	g := graph.New(1, 0)
	s, err := graph.NewSDDM(g, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(s, nil, Options{Variant: VariantLT})
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != 1 || f.L.Val[0] != 2 {
		t.Fatalf("1x1 factor wrong: %v", f.L.Val)
	}
	g0 := graph.New(0, 0)
	s0, err := graph.NewSDDM(g0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := Factorize(s0, nil, Options{})
	if err != nil || f0.N != 0 {
		t.Fatalf("empty factorization: %v %v", f0, err)
	}
}
