package core

import (
	"powerrchol/internal/sparse"
)

// Factor is the lower-triangular output L of a (randomized) Cholesky
// factorization of the reordered matrix P·A·Pᵀ ≈ L·Lᵀ, together with the
// permutation that produced it. Columns store the diagonal entry first;
// the remaining row indices are unsorted, which the triangular solves in
// package sparse permit.
type Factor struct {
	N    int
	L    *sparse.CSC
	Perm []int // Perm[newIdx] = oldIdx; nil means identity

	work []float64
}

// NNZ returns the number of stored entries of L (the paper's |L|).
func (f *Factor) NNZ() int { return f.L.NNZ() }

// Apply computes z = Pᵀ·L⁻ᵀ·L⁻¹·P·r, the preconditioning operation of
// PowerRChol step 4. z and r must have length N and may alias.
func (f *Factor) Apply(z, r []float64) {
	if f.work == nil {
		f.work = make([]float64, f.N)
	}
	w := f.work
	if f.Perm == nil {
		copy(w, r)
	} else {
		sparse.PermuteVecInto(w, r, f.Perm)
	}
	sparse.LowerSolve(f.L, w)
	sparse.LowerTransposeSolve(f.L, w)
	if f.Perm == nil {
		copy(z, w)
	} else {
		sparse.UnpermuteVecInto(z, w, f.Perm)
	}
}

// ProductCSC assembles L·Lᵀ (in the permuted ordering) as a CSC matrix.
// Quadratic-ish in fill; intended for tests on small matrices.
func (f *Factor) ProductCSC() *sparse.CSC {
	l := f.L
	coo := sparse.NewCOO(f.N, f.N, 4*l.NNZ())
	for k := 0; k < f.N; k++ {
		for p := l.ColPtr[k]; p < l.ColPtr[k+1]; p++ {
			for q := l.ColPtr[k]; q < l.ColPtr[k+1]; q++ {
				coo.Add(l.RowIdx[p], l.RowIdx[q], l.Val[p]*l.Val[q])
			}
		}
	}
	return coo.ToCSC()
}
