package core

import (
	"sync"

	"powerrchol/internal/sparse"
)

// Factor is the lower-triangular output L of a (randomized) Cholesky
// factorization of the reordered matrix P·A·Pᵀ ≈ L·Lᵀ, together with the
// permutation that produced it. Columns store the diagonal entry first;
// the remaining row indices are unsorted, which the triangular solves in
// package sparse permit.
//
// L lives in exactly one of two storages: wide (L, int indices) or
// compact (L32, int32 indices) — the paper-scale memory diet, since at
// 1e7+ nodes the index arrays rival the float64 values. Every compact
// kernel performs the identical float operations in the identical
// order, so the two storages solve to the same bits; the width is an
// invisible implementation detail to callers of Apply.
//
// Apply is safe for concurrent callers: scratch vectors are drawn from a
// pool per call, and all other state (L/L32, Perm, the optional level
// schedule) is read-only after construction. All randomness is confined
// to Factorize; no RNG state survives into the solve phase.
type Factor struct {
	N    int
	L    *sparse.CSC   // wide index storage; nil when L32 is set
	L32  *sparse.CSC32 // compact index storage; nil when L is set
	Perm []int         // Perm[newIdx] = oldIdx; nil means identity

	// tri/tri32 (matching the active storage), when non-nil, is a
	// level-scheduled parallel triangular solver built by Parallelize.
	// It is set once before the factor is shared and never mutated
	// afterwards.
	tri        *sparse.TriSolver
	tri32      *sparse.TriSolver32
	triWorkers int

	pool sync.Pool // of []float64, length N
}

// NNZ returns the number of stored entries of L (the paper's |L|).
func (f *Factor) NNZ() int {
	if f.L32 != nil {
		return f.L32.NNZ()
	}
	return f.L.NNZ()
}

// IsCompact reports whether the factor uses compact (int32) index
// storage.
func (f *Factor) IsCompact() bool { return f.L32 != nil }

// IndexBytes returns the bytes spent on index storage (column pointers
// plus row indices) — the quantity compact storage halves. Diagnostic.
func (f *Factor) IndexBytes() int {
	if f.L32 != nil {
		return f.L32.IndexBytes()
	}
	return f.L.IndexBytes()
}

// colLen returns the entry count of column k regardless of storage.
func (f *Factor) colLen(k int) int {
	if f.L32 != nil {
		return int(f.L32.ColPtr[k+1] - f.L32.ColPtr[k])
	}
	return f.L.ColPtr[k+1] - f.L.ColPtr[k]
}

// wideL returns the factor matrix in wide storage, widening a copy of
// the index arrays if needed. Diagnostic and test paths only; the solve
// path never widens.
func (f *Factor) wideL() *sparse.CSC {
	if f.L != nil {
		return f.L
	}
	return f.L32.Wide()
}

// CompactIndices converts the factor to compact index storage in place,
// failing with an error wrapping sparse.ErrIndexOverflow when it does
// not fit. The value array is shared, not copied, and an existing level
// schedule is rebuilt for the new storage (same schedule, same bits).
// Already-compact factors return nil unchanged. This is the conversion
// route for factorizations that build wide (e.g. exact Cholesky).
func (f *Factor) CompactIndices() error {
	if f.L32 != nil {
		return nil
	}
	l32, err := sparse.CompactCSC(f.L)
	if err != nil {
		return err
	}
	f.L32, f.L = l32, nil
	if f.tri != nil {
		f.tri = nil
		f.tri32 = sparse.NewTriSolver32(l32)
	}
	return nil
}

// WidenIndices converts the factor back to wide index storage in place.
// It cannot fail; already-wide factors are unchanged.
func (f *Factor) WidenIndices() {
	if f.L != nil {
		return
	}
	f.L, f.L32 = f.L32.Wide(), nil
	if f.tri32 != nil {
		f.tri32 = nil
		f.tri = sparse.NewTriSolver(f.L)
	}
}

// Parallelize precomputes a level schedule for L so that Apply runs its
// two triangular solves across `workers` goroutines. The parallel solves
// are bitwise identical to the serial ones (same per-row operation
// order), so enabling parallelism never changes results. Call it once,
// before the factor is shared between goroutines; workers <= 1 disables
// the parallel path again.
func (f *Factor) Parallelize(workers int) {
	if workers <= 1 {
		f.tri, f.tri32, f.triWorkers = nil, nil, 0
		return
	}
	if f.L32 != nil {
		if f.tri32 == nil {
			f.tri32 = sparse.NewTriSolver32(f.L32)
		}
	} else if f.tri == nil {
		f.tri = sparse.NewTriSolver(f.L)
	}
	f.triWorkers = workers
}

func (f *Factor) getWork() []float64 {
	//pglint:pool-escapes checkout helper: Apply owns the buffer and recycles it via putWork on its only exit
	if w, ok := f.pool.Get().([]float64); ok && len(w) == f.N {
		//pglint:poolescape checkout helper: ownership transfers to Apply, which recycles via putWork on its only exit
		return w
	}
	return make([]float64, f.N)
}

// Apply computes z = Pᵀ·L⁻ᵀ·L⁻¹·P·r, the preconditioning operation of
// PowerRChol step 4. z and r must have length N and may alias. Apply is
// safe for concurrent use by multiple goroutines.
func (f *Factor) Apply(z, r []float64) {
	w := f.getWork()
	if f.Perm == nil {
		copy(w, r)
	} else {
		sparse.PermuteVecInto(w, r, f.Perm)
	}
	switch {
	case f.tri32 != nil && f.triWorkers > 1:
		f.tri32.LowerSolve(w, f.triWorkers)
		f.tri32.LowerTransposeSolve(w, f.triWorkers)
	case f.tri != nil && f.triWorkers > 1:
		f.tri.LowerSolve(w, f.triWorkers)
		f.tri.LowerTransposeSolve(w, f.triWorkers)
	case f.L32 != nil:
		sparse.LowerSolve32(f.L32, w)
		sparse.LowerTransposeSolve32(f.L32, w)
	default:
		sparse.LowerSolve(f.L, w)
		sparse.LowerTransposeSolve(f.L, w)
	}
	if f.Perm == nil {
		copy(z, w)
	} else {
		sparse.UnpermuteVecInto(z, w, f.Perm)
	}
	f.pool.Put(w)
}

// ProductCSC assembles L·Lᵀ (in the permuted ordering) as a CSC matrix.
// Quadratic-ish in fill; intended for tests on small matrices.
func (f *Factor) ProductCSC() *sparse.CSC {
	l := f.wideL()
	coo := sparse.NewCOO(f.N, f.N, 4*l.NNZ())
	for k := 0; k < f.N; k++ {
		for p := l.ColPtr[k]; p < l.ColPtr[k+1]; p++ {
			for q := l.ColPtr[k]; q < l.ColPtr[k+1]; q++ {
				coo.Add(l.RowIdx[p], l.RowIdx[q], l.Val[p]*l.Val[q])
			}
		}
	}
	return coo.ToCSC()
}
