package core

import (
	"sync"

	"powerrchol/internal/sparse"
)

// Factor is the lower-triangular output L of a (randomized) Cholesky
// factorization of the reordered matrix P·A·Pᵀ ≈ L·Lᵀ, together with the
// permutation that produced it. Columns store the diagonal entry first;
// the remaining row indices are unsorted, which the triangular solves in
// package sparse permit.
//
// Apply is safe for concurrent callers: scratch vectors are drawn from a
// pool per call, and all other state (L, Perm, the optional level
// schedule) is read-only after construction. All randomness is confined
// to Factorize; no RNG state survives into the solve phase.
type Factor struct {
	N    int
	L    *sparse.CSC
	Perm []int // Perm[newIdx] = oldIdx; nil means identity

	// tri, when non-nil, is a level-scheduled parallel triangular solver
	// built by Parallelize. It is set once before the factor is shared
	// and never mutated afterwards.
	tri        *sparse.TriSolver
	triWorkers int

	pool sync.Pool // of []float64, length N
}

// NNZ returns the number of stored entries of L (the paper's |L|).
func (f *Factor) NNZ() int { return f.L.NNZ() }

// Parallelize precomputes a level schedule for L so that Apply runs its
// two triangular solves across `workers` goroutines. The parallel solves
// are bitwise identical to the serial ones (same per-row operation
// order), so enabling parallelism never changes results. Call it once,
// before the factor is shared between goroutines; workers <= 1 disables
// the parallel path again.
func (f *Factor) Parallelize(workers int) {
	if workers <= 1 {
		f.tri, f.triWorkers = nil, 0
		return
	}
	if f.tri == nil {
		f.tri = sparse.NewTriSolver(f.L)
	}
	f.triWorkers = workers
}

func (f *Factor) getWork() []float64 {
	//pglint:pool-escapes checkout helper: Apply owns the buffer and recycles it via putWork on its only exit
	if w, ok := f.pool.Get().([]float64); ok && len(w) == f.N {
		//pglint:poolescape checkout helper: ownership transfers to Apply, which recycles via putWork on its only exit
		return w
	}
	return make([]float64, f.N)
}

// Apply computes z = Pᵀ·L⁻ᵀ·L⁻¹·P·r, the preconditioning operation of
// PowerRChol step 4. z and r must have length N and may alias. Apply is
// safe for concurrent use by multiple goroutines.
func (f *Factor) Apply(z, r []float64) {
	w := f.getWork()
	if f.Perm == nil {
		copy(w, r)
	} else {
		sparse.PermuteVecInto(w, r, f.Perm)
	}
	if f.tri != nil && f.triWorkers > 1 {
		f.tri.LowerSolve(w, f.triWorkers)
		f.tri.LowerTransposeSolve(w, f.triWorkers)
	} else {
		sparse.LowerSolve(f.L, w)
		sparse.LowerTransposeSolve(f.L, w)
	}
	if f.Perm == nil {
		copy(z, w)
	} else {
		sparse.UnpermuteVecInto(z, w, f.Perm)
	}
	f.pool.Put(w)
}

// ProductCSC assembles L·Lᵀ (in the permuted ordering) as a CSC matrix.
// Quadratic-ish in fill; intended for tests on small matrices.
func (f *Factor) ProductCSC() *sparse.CSC {
	l := f.L
	coo := sparse.NewCOO(f.N, f.N, 4*l.NNZ())
	for k := 0; k < f.N; k++ {
		for p := l.ColPtr[k]; p < l.ColPtr[k+1]; p++ {
			for q := l.ColPtr[k]; q < l.ColPtr[k+1]; q++ {
				coo.Add(l.RowIdx[p], l.RowIdx[q], l.Val[p]*l.Val[q])
			}
		}
	}
	return coo.ToCSC()
}
