package core

import (
	"strings"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestStatsOnPath(t *testing.T) {
	// path of n nodes in natural order: every elimination but the last
	// has exactly one neighbor.
	n := 20
	s := testmat.PathSDDM(n, 1)
	st, err := CollectStats(s, nil, Options{Variant: VariantLT, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != n || st.MaxDegree != 1 || st.TotalDegree != n-1 {
		t.Fatalf("path stats wrong: %+v", st)
	}
	if st.SampledEdges != 0 {
		t.Fatalf("path sampled %d edges; trees sample none", st.SampledEdges)
	}
	if st.SumDLogD != 0 {
		t.Fatalf("Σd·log d = %g on a path (all d=1)", st.SumDLogD)
	}
	if !strings.Contains(st.String(), "n=20") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestStatsConsistentWithFactor(t *testing.T) {
	r := rng.New(7)
	s := testmat.RandomSDDM(r, 80, 200)
	opt := Options{Variant: VariantLT, Seed: 4}
	st, err := CollectStats(s, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(s, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Σ|N_k| = |L| − N, and the same seed gives the same profile.
	if st.TotalDegree != f.NNZ()-f.N {
		t.Fatalf("TotalDegree %d != |L|-N = %d", st.TotalDegree, f.NNZ()-f.N)
	}
	if st.DegreeQuantiles[3] != st.MaxDegree {
		t.Fatalf("max quantile %d != MaxDegree %d", st.DegreeQuantiles[3], st.MaxDegree)
	}
	if st.MeanDegree <= 0 || st.SumDLogD <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	q := st.DegreeQuantiles
	if q[0] > q[1] || q[1] > q[2] || q[2] > q[3] {
		t.Fatalf("quantiles not monotone: %v", q)
	}
}

// The ordering quality is visible in the degree profile: AMD should keep
// elimination degrees below natural order on a grid.
func TestStatsReflectOrderingQuality(t *testing.T) {
	s := testmat.GridSDDM(30, 30)
	natural, err := CollectStats(s, nil, Options{Variant: VariantLT, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// build AMD via the order package would import cycle here; emulate
	// with a random permutation worst case instead: random order should
	// be no better than natural on a grid.
	r := rng.New(3)
	randomPerm, err := CollectStats(s, r.Perm(s.N()), Options{Variant: VariantLT, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("grid degree profiles: natural %v, random %v",
		natural.DegreeQuantiles, randomPerm.DegreeQuantiles)
	if natural.TotalDegree <= 0 || randomPerm.TotalDegree <= 0 {
		t.Fatal("degenerate profiles")
	}
}
