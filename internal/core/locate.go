package core

// LocateAscending implements Alg. 2 of the paper: given two ascending
// arrays a (length n) and t (length m), it returns for every t[j] the
// smallest index i with a[i] >= t[j]. Because both arrays are ascending a
// single merge-like scan suffices, so the cost is O(n+m) instead of the
// O(m·log n) of m binary searches. If some t[j] exceeds every a[i], the
// reported location is n (one past the end), which callers clamp.
func LocateAscending(a, t []float64, out []int) {
	c := 0
	n := len(a)
	for j, tj := range t {
		for c < n && a[c] < tj {
			c++
		}
		out[j] = c
	}
	_ = out[:len(t)]
}

// locateBinary is the reference per-element binary search used by the
// original RChol sampling (and by tests as an oracle for LocateAscending):
// smallest index i in [lo, len(a)) with a[i] >= t.
func locateBinary(a []float64, lo int, t float64) int {
	hi := len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
