// Package core implements the paper's contribution: the original
// randomized Cholesky factorization RChol (Alg. 1 of the paper, after
// Chen/Liang/Biros 2021) and the linear-time variant LT-RChol (Alg. 3),
// which replaces the O(d·log d) clique-sampling step at each elimination
// with an O(d) one built from an approximate counting sort and a shared
// random offset that turns per-neighbor binary searches into one
// merge-like scan (Alg. 2).
//
// Both factorizations eliminate nodes in the given order; when node k with
// neighbor set N_k is eliminated, the exact Schur complement would add a
// clique with edge weights w_i·w_j/d_k among the neighbors. The randomized
// algorithms instead sample, for each neighbor n_j (in ascending weight
// order), one partner n_l from the heavier suffix with probability
// proportional to weight, and add the single edge (n_j, n_l) with weight
// s_{k,j}·w_j/d_k — an unbiased estimator of the clique row that keeps the
// elimination graph from densifying.
//
// NOTE on Alg. 1 line 7: the paper's line reads
// D(nj,nj) -= D(nj,nj)·L_G(nj,k)/d_k, but the exact Schur complement of an
// SDDM distributes the slack of the ELIMINATED node, i.e.
// D(nj,nj) -= D(k,k)·L_G(nj,k)/d_k. We implement the corrected update
// (see DESIGN.md §2) and verify it against exact elimination in tests.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// Variant selects the clique-sampling implementation.
type Variant int

const (
	// VariantRChol is Alg. 1: exact neighbor sort plus an independent
	// binary-search sample per neighbor (O(d·log d) per elimination).
	VariantRChol Variant = iota
	// VariantLT is Alg. 3: approximate counting sort plus the shared-offset
	// merge locate of Alg. 2 (O(d) per elimination).
	VariantLT
	// VariantHybrid is an ablation: approximate counting sort, but
	// per-neighbor binary-search sampling. It isolates how much of
	// LT-RChol's gain comes from each of the two ideas.
	VariantHybrid
)

func (v Variant) String() string {
	switch v {
	case VariantRChol:
		return "rchol"
	case VariantLT:
		return "lt-rchol"
	case VariantHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Options configure a factorization.
type Options struct {
	Variant Variant
	// Buckets is the bucket count b of the approximate counting sort used
	// by VariantLT and VariantHybrid. 0 means DefaultBuckets.
	Buckets int
	// Seed drives the deterministic RNG.
	Seed uint64
	// Samples is the number of independent spanning-structure samples
	// drawn per elimination (RChol-k). Each sampled edge carries 1/k of
	// the clique weight, keeping the estimator unbiased while averaging
	// down its variance: a denser but stronger preconditioner. 0 or 1 is
	// the paper's single-sample algorithm.
	Samples int
	// Ctx, when non-nil, is polled every cancelCheckStride eliminations;
	// a cancelled context aborts the factorization with an error wrapping
	// ctx.Err(). Nil means never cancelled.
	Ctx context.Context
	// PivotPerturb, when non-nil, rewrites each pivot d_k before it is
	// validated. It exists solely for deterministic fault injection in
	// tests (see internal/faultinject); production code leaves it nil.
	PivotPerturb func(step int, pivot float64) float64
	// CompactIndex selects the factor's index width. IndexWide (the
	// zero value) keeps the historical 64-bit storage; IndexCompact
	// builds int32 storage directly — never materializing wide index
	// arrays — and fails past the 2^31 boundary; IndexAuto builds
	// compact and widens mid-build if the factor outgrows int32.
	// Index width never changes the floating-point work, so factors of
	// both widths solve to identical bits.
	CompactIndex sparse.IndexMode
}

// cancelCheckStride is how many eliminations run between context polls:
// frequent enough that cancellation lands within microseconds even on
// million-node grids, rare enough to stay invisible in profiles.
const cancelCheckStride = 1024

// DefaultBuckets is the counting-sort resolution used when Options.Buckets
// is zero. 256 buckets quantize weights to under 0.4% relative error,
// far below the sampling noise of the randomized factorization itself.
const DefaultBuckets = 256

// ErrBreakdown is returned when an eliminated node has non-positive pivot
// d_k, which for a valid SDDM can only happen if some connected component
// has zero total slack (a singular Laplacian block).
var ErrBreakdown = errors.New("core: non-positive pivot (singular SDDM component; add grounding to D)")

type halfedge struct {
	to int32
	w  float64
}

// Factorize runs the selected randomized Cholesky variant on the SDDM s
// eliminated in the order given by perm (perm[newIdx] = oldIdx; nil for
// natural order) and returns the factor of P·A·Pᵀ ≈ L·Lᵀ.
func Factorize(s *graph.SDDM, perm []int, opt Options) (*Factor, error) {
	n := s.N()
	if n == 0 {
		return &Factor{N: 0, L: sparse.NewCSC(0, 0, 0)}, nil
	}
	if perm != nil {
		if err := sparse.CheckPerm(perm, n); err != nil {
			return nil, err
		}
	}
	buckets := opt.Buckets
	if buckets == 0 {
		buckets = DefaultBuckets
	}
	samples := opt.Samples
	if samples < 1 {
		samples = 1
	}
	invSamples := 1.0 / float64(samples)

	// Build the elimination adjacency in permuted coordinates. Every live
	// edge is stored exactly once, on its lower-numbered endpoint, so the
	// list at node k holds precisely the edges incident to k among the
	// not-yet-eliminated nodes when k's turn comes.
	var inv []int
	if perm != nil {
		inv = sparse.InvPerm(perm)
	}
	adj := make([][]halfedge, n)
	deg0 := make([]int, n)
	for _, e := range s.G.Edges {
		u, v := e.U, e.V
		if inv != nil {
			u, v = inv[u], inv[v]
		}
		if u > v {
			u, v = v, u
		}
		deg0[u]++
		_ = v
	}
	for _, e := range s.G.Edges {
		u, v := e.U, e.V
		if inv != nil {
			u, v = inv[u], inv[v]
		}
		if u > v {
			u, v = v, u
		}
		if adj[u] == nil {
			//pglint:hotalloc one-time adjacency build: capacity comes from deg0, one make per vertex over the whole setup
			adj[u] = make([]halfedge, 0, deg0[u]+2)
		}
		//pglint:hotalloc capacity reserved from deg0 above; grows only for sampled fill beyond the +2 slack
		adj[u] = append(adj[u], halfedge{to: int32(v), w: e.W})
	}

	d := make([]float64, n)
	if perm == nil {
		copy(d, s.D)
	} else {
		for newIdx, oldIdx := range perm {
			d[newIdx] = s.D[oldIdx]
		}
	}

	// Factor storage, appended column by column. Compact mode appends
	// int32 row indices directly — the wide arrays are never built — and
	// colPtr stays wide until the end (n+1 ints, negligible next to the
	// nnz-sized RowIdx) so a mid-build widen under IndexAuto is cheap.
	compact := false
	switch opt.CompactIndex {
	case sparse.IndexCompact:
		if n > sparse.MaxIndex32 {
			return nil, fmt.Errorf("%w: n=%d", sparse.ErrIndexOverflow, n)
		}
		compact = true
	case sparse.IndexAuto:
		compact = n <= sparse.MaxIndex32
	}
	m := s.G.M()
	colPtr := make([]int, n+1)
	var rowIdx []int
	var rowIdx32 []int32
	if compact {
		rowIdx32 = make([]int32, 0, 2*m+n)
	} else {
		rowIdx = make([]int, 0, 2*m+n)
	}
	val := make([]float64, 0, 2*m+n)

	r := rng.New(opt.Seed)
	cs := newCountingSorter(buckets)

	// Reusable per-elimination scratch.
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	var (
		nbr []int32
		wts []float64
		pfs []float64
		tgt []float64
		loc []int
	)

	for k := 0; k < n; k++ {
		if opt.Ctx != nil && k%cancelCheckStride == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: factorization cancelled at pivot %d of %d: %w", k, n, err)
			}
		}
		// Gather and coalesce the live neighbor list of k.
		nbr = nbr[:0]
		wts = wts[:0]
		for _, he := range adj[k] {
			if p := pos[he.to]; p >= 0 {
				wts[p] += he.w
			} else {
				pos[he.to] = int32(len(nbr))
				//pglint:hotalloc nbr/wts are per-factorization scratch reset with [:0]; growth stops at the max live degree
				nbr = append(nbr, he.to)
				//pglint:hotalloc same scratch discipline as nbr above
				wts = append(wts, he.w)
			}
		}
		adj[k] = nil
		for _, v := range nbr {
			pos[v] = -1
		}
		deg := len(nbr)

		wsum := 0.0
		for _, w := range wts {
			wsum += w
		}
		dk := wsum + d[k]
		if opt.PivotPerturb != nil {
			dk = opt.PivotPerturb(k, dk)
		}
		if !(dk > 0) || math.IsInf(dk, 0) || math.IsNaN(dk) {
			return nil, fmt.Errorf("%w: pivot %g at elimination step %d", ErrBreakdown, dk, k)
		}

		// Emit column k of L: diag first, then -w/sqrt(dk) per neighbor.
		// The compact and wide branches append the same values in the
		// same order; only the index element type differs.
		sq := math.Sqrt(dk)
		if compact && len(val)+deg+1 > sparse.MaxIndex32 {
			if opt.CompactIndex == sparse.IndexCompact {
				return nil, fmt.Errorf("%w: factor exceeds %d entries at elimination step %d",
					sparse.ErrIndexOverflow, int(sparse.MaxIndex32), k)
			}
			// IndexAuto: widen mid-build and carry on. Values are
			// untouched, so the result stays bit-identical to a
			// wide-from-the-start factorization.
			rowIdx = sparse.WidenIndexSlice(nil, rowIdx32)
			rowIdx32 = nil
			compact = false
		}
		if compact {
			rowIdx32 = append(rowIdx32, int32(k))
			val = append(val, sq)
			for i, v := range nbr {
				//pglint:hotalloc rowIdx32 accumulates the factor itself; growth is amortized doubling over the whole factorization
				rowIdx32 = append(rowIdx32, v)
				//pglint:hotalloc same factor-output accumulation as rowIdx32 above
				val = append(val, -wts[i]/sq)
			}
		} else {
			rowIdx = append(rowIdx, k)
			val = append(val, sq)
			for i, v := range nbr {
				//pglint:hotalloc rowIdx accumulates the factor itself; growth is amortized doubling over the whole factorization
				rowIdx = append(rowIdx, int(v))
				//pglint:hotalloc same factor-output accumulation as rowIdx above
				val = append(val, -wts[i]/sq)
			}
		}
		colPtr[k+1] = len(val)

		if deg == 0 {
			continue
		}

		// Distribute the eliminated node's slack to its neighbors
		// proportionally to edge weight (corrected Alg. 1 line 7).
		if dkSlack := d[k]; dkSlack != 0 {
			f := dkSlack / dk
			for i, v := range nbr {
				d[v] += wts[i] * f
			}
		}
		if deg == 1 {
			continue // no clique to sample
		}

		// Sort neighbors ascending by weight.
		switch opt.Variant {
		case VariantRChol:
			sortPairsExact(wts, nbr)
		default:
			cs.sort(wts, nbr)
		}

		// Prefix sums of sorted weights (Eq. 4).
		if cap(pfs) < deg {
			pfs = make([]float64, deg)
			tgt = make([]float64, deg)
			loc = make([]int, deg)
		}
		pfs = pfs[:deg]
		acc := 0.0
		for i, w := range wts {
			acc += w
			pfs[i] = acc
		}
		total := pfs[deg-1]

		for round := 0; round < samples; round++ {
			switch opt.Variant {
			case VariantLT:
				// Shared random offset (Eq. 6) and one merge-like scan (Alg. 2).
				tgt = tgt[:deg-1]
				loc = loc[:deg-1]
				rr := r.Float64Open()
				invDeg := 1.0 / float64(deg)
				for j := 0; j < deg-1; j++ {
					tgt[j] = pfs[j] + (float64(j)+rr)*invDeg*(total-pfs[j])
				}
				LocateAscending(pfs, tgt, loc)
				for j := 0; j < deg-1; j++ {
					suffix := total - pfs[j]
					if suffix <= 0 {
						continue
					}
					l := loc[j]
					if l <= j {
						l = j + 1
					}
					if l >= deg {
						l = deg - 1
					}
					//pglint:hotalloc sampled fill lands in adj, the structure being built; growth beyond the deg0+2 slack is the algorithm's output, amortized doubling
					addSampledEdge(adj, nbr[j], nbr[l], suffix*wts[j]*invSamples/dk)
				}
			default: // VariantRChol and VariantHybrid: independent binary searches
				for j := 0; j < deg-1; j++ {
					suffix := total - pfs[j]
					if suffix <= 0 {
						continue
					}
					t := pfs[j] + r.Float64Open()*suffix
					l := locateBinary(pfs, j+1, t)
					if l >= deg {
						l = deg - 1
					}
					//pglint:hotalloc sampled fill lands in adj, the structure being built; growth beyond the deg0+2 slack is the algorithm's output, amortized doubling
					addSampledEdge(adj, nbr[j], nbr[l], suffix*wts[j]*invSamples/dk)
				}
			}
		}
	}

	f := &Factor{N: n}
	if compact {
		cp, err := sparse.CompactIndexSlice(nil, colPtr)
		if err != nil {
			// Unreachable: colPtr values are bounded by len(val), which
			// the overflow check above keeps within int32 range.
			return nil, err
		}
		f.L32 = &sparse.CSC32{Rows: n, Cols: n, ColPtr: cp, RowIdx: rowIdx32, Val: val}
	} else {
		f.L = &sparse.CSC{Rows: n, Cols: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
	}
	if perm != nil {
		f.Perm = perm
	}
	return f, nil
}

// addSampledEdge records the sampled fill edge (a, b, w) on its
// lower-numbered endpoint so it is seen exactly once, when that endpoint
// is eliminated.
func addSampledEdge(adj [][]halfedge, a, b int32, w float64) {
	if a > b {
		a, b = b, a
	}
	adj[a] = append(adj[a], halfedge{to: b, w: w})
}
