package core

import (
	"bytes"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestFactorSerializationRoundTrip(t *testing.T) {
	r := rng.New(3)
	s := testmat.RandomSDDM(r, 60, 120)
	perm := r.Perm(60)
	f, err := Factorize(s, perm, Options{Variant: VariantLT, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	g, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != f.N || g.NNZ() != f.NNZ() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", g.N, g.NNZ(), f.N, f.NNZ())
	}
	for i := range f.L.Val {
		if f.L.Val[i] != g.L.Val[i] || f.L.RowIdx[i] != g.L.RowIdx[i] {
			t.Fatal("factor data changed in round trip")
		}
	}
	for i := range f.Perm {
		if f.Perm[i] != g.Perm[i] {
			t.Fatal("permutation changed in round trip")
		}
	}
	// the deserialized factor must act identically as a preconditioner
	in := make([]float64, f.N)
	for i := range in {
		in[i] = r.Float64()
	}
	z1 := make([]float64, f.N)
	z2 := make([]float64, f.N)
	f.Apply(z1, in)
	g.Apply(z2, in)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("Apply differs at %d: %g vs %g", i, z1[i], z2[i])
		}
	}
}

func TestFactorSerializationNoPerm(t *testing.T) {
	s := testmat.PathSDDM(10, 1)
	f, err := Factorize(s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Perm != nil {
		t.Fatal("phantom permutation appeared")
	}
}

func TestReadFactorRejectsCorruption(t *testing.T) {
	s := testmat.PathSDDM(8, 1)
	f, err := Factorize(s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// bad magic
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadFactor(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// truncated
	if _, err := ReadFactor(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// corrupt a column pointer (monotonicity)
	bad = append([]byte(nil), good...)
	// header is 8 magic + 8 n + 8 nnz + 1 flag = 25 bytes; first colPtr at 25
	for i := 25; i < 25+8; i++ {
		bad[i] = 0xFF
	}
	if _, err := ReadFactor(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt column pointers accepted")
	}
	// empty stream
	if _, err := ReadFactor(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}
