package core

import "math"

// Neighbor sorting for the clique-sampling step. RChol (Alg. 1) sorts the
// eliminated node's neighbors exactly by edge weight, which costs
// O(d·log d). LT-RChol (Alg. 3) replaces this with an approximate counting
// sort: weights are normalized by their maximum and quantized into b
// buckets, and neighbors are emitted bucket by bucket in O(d + b) time.

// sortPairsExact sorts (w, id) pairs ascending by w using an in-place
// quicksort with insertion-sort cutoff. It avoids the allocation and
// interface dispatch of sort.Slice in the factorization inner loop.
func sortPairsExact(w []float64, id []int32) {
	for len(w) > 12 {
		// median-of-three pivot
		n := len(w)
		m := n / 2
		if w[0] > w[m] {
			w[0], w[m] = w[m], w[0]
			id[0], id[m] = id[m], id[0]
		}
		if w[0] > w[n-1] {
			w[0], w[n-1] = w[n-1], w[0]
			id[0], id[n-1] = id[n-1], id[0]
		}
		if w[m] > w[n-1] {
			w[m], w[n-1] = w[n-1], w[m]
			id[m], id[n-1] = id[n-1], id[m]
		}
		pivot := w[m]
		i, j := 0, n-1
		for i <= j {
			for w[i] < pivot {
				i++
			}
			for w[j] > pivot {
				j--
			}
			if i <= j {
				w[i], w[j] = w[j], w[i]
				id[i], id[j] = id[j], id[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < n-i {
			sortPairsExact(w[:j+1], id[:j+1])
			w, id = w[i:], id[i:]
		} else {
			sortPairsExact(w[i:], id[i:])
			w, id = w[:j+1], id[:j+1]
		}
	}
	// insertion sort for the tail
	for i := 1; i < len(w); i++ {
		wi, ii := w[i], id[i]
		j := i - 1
		for j >= 0 && w[j] > wi {
			w[j+1], id[j+1] = w[j], id[j]
			j--
		}
		w[j+1], id[j+1] = wi, ii
	}
}

// countingSorter holds the reusable state for the approximate counting
// sort of Section 3.1.
type countingSorter struct {
	buckets int
	count   []int
	wTmp    []float64
	idTmp   []int32
}

func newCountingSorter(buckets int) *countingSorter {
	if buckets < 1 {
		buckets = 1
	}
	return &countingSorter{
		buckets: buckets,
		count:   make([]int, buckets+1),
	}
}

// sort reorders (w, id) approximately ascending: neighbor j lands in
// bucket ⌈w_j/m_k · b⌉ where m_k is the maximum weight, and buckets are
// emitted in order. Neighbors inside one bucket keep their relative order
// (the sort is stable), so the output is monotone up to 1/b relative
// quantization — exactly the approximation the paper proves sufficient.
//
// The effective bucket count is capped at ~4·d: the counting sort zeroes
// and prefix-scans the whole count array, so a fixed b would cost
// O(d + b) per elimination and silently turn the factorization into
// O(N·b) on low-degree meshes like power grids. Capping keeps every
// elimination O(d) while leaving the quantization at least as fine as
// one bucket per four neighbors of headroom.
func (cs *countingSorter) sort(w []float64, id []int32) {
	d := len(w)
	if d < 2 {
		return
	}
	if d <= 16 {
		// Exact insertion sort beats bucketing on tiny lists and its cost
		// is bounded by a constant, so linearity is preserved.
		for i := 1; i < d; i++ {
			wi, ii := w[i], id[i]
			j := i - 1
			for j >= 0 && w[j] > wi {
				w[j+1], id[j+1] = w[j], id[j]
				j--
			}
			w[j+1], id[j+1] = wi, ii
		}
		return
	}
	maxW := w[0]
	for _, v := range w[1:] {
		if v > maxW {
			maxW = v
		}
	}
	if !(maxW > 0) {
		return // all-zero weights: nothing to order
	}
	b := cs.buckets
	if lim := 4 * d; b > lim {
		b = lim
	}
	if cap(cs.wTmp) < d {
		cs.wTmp = make([]float64, d)
		cs.idTmp = make([]int32, d)
	}
	wt, it := cs.wTmp[:d], cs.idTmp[:d]
	cnt := cs.count
	for i := range cnt {
		cnt[i] = 0
	}
	scale := float64(b) / maxW
	// bucket index in [1, b]: ceil(w/m * b); stored shifted to [0, b-1]
	for _, v := range w {
		k := int(math.Ceil(v * scale))
		if k < 1 {
			k = 1
		} else if k > b {
			k = b
		}
		cnt[k-1]++
	}
	pos := 0
	for i := 0; i < b; i++ {
		c := cnt[i]
		cnt[i] = pos
		pos += c
	}
	for i, v := range w {
		k := int(math.Ceil(v * scale))
		if k < 1 {
			k = 1
		} else if k > b {
			k = b
		}
		p := cnt[k-1]
		cnt[k-1]++
		wt[p] = v
		it[p] = id[i]
	}
	copy(w, wt)
	copy(id, it)
}
