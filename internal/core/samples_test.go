package core

import (
	"testing"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// RChol-k: more samples per elimination must produce a denser factor and
// a stronger preconditioner (never more PCG iterations, within noise).
func TestMultiSampleDensifiesAndStrengthens(t *testing.T) {
	s := testmat.GridSDDM(30, 30)
	a := s.ToCSC()
	r := rng.New(20)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	var prevNNZ, prevIters int
	for i, k := range []int{1, 2, 4} {
		f, err := Factorize(s, nil, Options{Variant: VariantLT, Seed: 5, Samples: k})
		if err != nil {
			t.Fatalf("samples=%d: %v", k, err)
		}
		res, err := pcg.Solve(a, b, f, pcg.Options{Tol: 1e-10, MaxIter: 500})
		if err != nil || !res.Converged {
			t.Fatalf("samples=%d: solve failed: %v", k, err)
		}
		t.Logf("samples=%d: nnz=%d iters=%d", k, f.NNZ(), res.Iterations)
		if i > 0 {
			if f.NNZ() <= prevNNZ {
				t.Errorf("samples=%d: factor nnz %d not denser than %d", k, f.NNZ(), prevNNZ)
			}
			if res.Iterations > prevIters+2 {
				t.Errorf("samples=%d: iterations %d regressed vs %d", k, res.Iterations, prevIters)
			}
		}
		prevNNZ, prevIters = f.NNZ(), res.Iterations
	}
}

// The 1/k weight scaling must keep the estimator unbiased: on a tree, any
// sample count reproduces A exactly; on a triangle, E[LLᵀ] = A still.
func TestMultiSampleStaysUnbiased(t *testing.T) {
	s := testmat.PathSDDM(20, 1.5)
	f, err := Factorize(s, nil, Options{Variant: VariantLT, Seed: 1, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := testmat.MaxAbsDiff(f.ProductCSC().Dense(), s.ToCSC().Dense()); d > 1e-12 {
		t.Fatalf("tree factorization with 3 samples differs from A by %g", d)
	}

	r := rng.New(77)
	rs := testmat.RandomSDDM(r, 7, 8)
	a := rs.ToCSC().Dense()
	n := rs.N()
	sum := make([][]float64, n)
	for i := range sum {
		sum[i] = make([]float64, n)
	}
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		f, err := Factorize(rs, nil, Options{Variant: VariantLT, Seed: uint64(trial + 1), Samples: 2})
		if err != nil {
			t.Fatal(err)
		}
		p := f.ProductCSC().Dense()
		for i := range sum {
			for j := range sum[i] {
				sum[i][j] += p[i][j] / trials
			}
		}
	}
	var scale float64
	for i := range a {
		if v := a[i][i]; v > scale {
			scale = v
		}
	}
	if d := testmat.MaxAbsDiff(a, sum); d > 0.1*scale {
		t.Fatalf("|E[LLᵀ]-A| = %g with 2 samples: biased", d)
	}
}
