package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"powerrchol/internal/sparse"
)

// Binary factor serialization: factorize once, reuse across processes.
// Little-endian, versioned:
//
//	magic "PRCHOLF1" | n uint64 | nnz uint64 | hasPerm uint8 |
//	colPtr [n+1]uint64 | rowIdx [nnz]uint64 | val [nnz]float64 |
//	perm [n]uint64 (if hasPerm)

const factorMagic = "PRCHOLF1"

// WriteTo serializes the factor. It implements io.WriterTo.
func (f *Factor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(data interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(factorMagic); err != nil {
		return written, err
	}
	written += int64(len(factorMagic))
	nnz := f.NNZ()
	if err := put(uint64(f.N)); err != nil {
		return written, err
	}
	if err := put(uint64(nnz)); err != nil {
		return written, err
	}
	hasPerm := uint8(0)
	if f.Perm != nil {
		hasPerm = 1
	}
	if err := put(hasPerm); err != nil {
		return written, err
	}
	// Indices are written as uint64 regardless of the in-memory width,
	// so compact and wide factors serialize to identical bytes — the
	// on-disk format (and its goldens) is index-width independent.
	buf := make([]uint64, 0, f.N+1)
	var vals []float64
	if f.L32 != nil {
		for _, v := range f.L32.ColPtr {
			//pglint:hotalloc serialization path, runs once per factor; capacity reserved for ColPtr above
			buf = append(buf, uint64(v))
		}
		if err := put(buf); err != nil {
			return written, err
		}
		buf = buf[:0]
		for _, v := range f.L32.RowIdx {
			//pglint:hotalloc serialization path, runs once per factor; growth to nnz is amortized doubling
			buf = append(buf, uint64(v))
		}
		vals = f.L32.Val
	} else {
		for _, v := range f.L.ColPtr {
			//pglint:hotalloc serialization path, runs once per factor; capacity reserved for ColPtr above
			buf = append(buf, uint64(v))
		}
		if err := put(buf); err != nil {
			return written, err
		}
		buf = buf[:0]
		for _, v := range f.L.RowIdx {
			//pglint:hotalloc serialization path, runs once per factor; growth to nnz is amortized doubling
			buf = append(buf, uint64(v))
		}
		vals = f.L.Val
	}
	if err := put(buf); err != nil {
		return written, err
	}
	if err := put(vals); err != nil {
		return written, err
	}
	if f.Perm != nil {
		buf = buf[:0]
		for _, v := range f.Perm {
			//pglint:hotalloc serialization path, runs once per factor; buf already sized by the RowIdx pass
			buf = append(buf, uint64(v))
		}
		if err := put(buf); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadFactor deserializes a factor written by WriteTo, validating the
// header and structural invariants (monotone column pointers, in-range
// indices, finite values, valid permutation).
func ReadFactor(r io.Reader) (*Factor, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(factorMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading factor header: %w", err)
	}
	if string(magic) != factorMagic {
		return nil, fmt.Errorf("core: bad factor magic %q", magic)
	}
	var n64, nnz64 uint64
	var hasPerm uint8
	if err := binary.Read(br, binary.LittleEndian, &n64); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nnz64); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &hasPerm); err != nil {
		return nil, err
	}
	const limit = 1 << 40 // refuse absurd sizes outright
	if n64 > limit || nnz64 > limit {
		return nil, fmt.Errorf("core: implausible factor dimensions n=%d nnz=%d", n64, nnz64)
	}
	n, nnz := int(n64), int(nnz64)

	// Grow the destination slices in bounded chunks rather than allocating
	// len-from-header up front: a forged header claiming 2^39 entries over
	// a 100-byte body must fail at EOF, not OOM the process.
	const chunk = 1 << 16
	readU64s := func(k int) ([]uint64, error) {
		out := make([]uint64, 0, min(k, chunk))
		buf := make([]uint64, min(k, chunk))
		for len(out) < k {
			b := buf[:min(k-len(out), chunk)]
			if err := binary.Read(br, binary.LittleEndian, b); err != nil {
				return nil, err
			}
			//pglint:hotalloc deserialization path; chunked growth is the OOM guard documented above, not per-solve churn
			out = append(out, b...)
		}
		return out, nil
	}
	readF64s := func(k int) ([]float64, error) {
		out := make([]float64, 0, min(k, chunk))
		buf := make([]float64, min(k, chunk))
		for len(out) < k {
			b := buf[:min(k-len(out), chunk)]
			if err := binary.Read(br, binary.LittleEndian, b); err != nil {
				return nil, err
			}
			//pglint:hotalloc deserialization path; chunked growth is the OOM guard documented above, not per-solve churn
			out = append(out, b...)
		}
		return out, nil
	}
	cp, err := readU64s(n + 1)
	if err != nil {
		return nil, err
	}
	ri, err := readU64s(nnz)
	if err != nil {
		return nil, err
	}
	val, err := readF64s(nnz)
	if err != nil {
		return nil, err
	}

	colPtr := make([]int, n+1)
	prev := uint64(0)
	for i, v := range cp {
		if v < prev || v > nnz64 {
			return nil, fmt.Errorf("core: corrupt column pointer %d at %d", v, i)
		}
		colPtr[i] = int(v)
		prev = v
	}
	if colPtr[n] != nnz {
		return nil, fmt.Errorf("core: column pointers end at %d, want %d", colPtr[n], nnz)
	}
	rowIdx := make([]int, nnz)
	for i, v := range ri {
		if v >= n64 {
			return nil, fmt.Errorf("core: row index %d out of range", v)
		}
		rowIdx[i] = int(v)
	}
	for _, v := range val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: non-finite factor value")
		}
	}
	// Factor layout invariants (factor.go): each column stores its
	// diagonal first, and every remaining entry lies strictly below it —
	// unsorted beyond that, which the triangular kernels permit. A forged
	// file with an on- or above-diagonal entry after the leading diagonal
	// would silently corrupt the solve's substitution order, so reject it
	// here rather than trusting Check-less callers.
	for k := 0; k < n; k++ {
		if colPtr[k] >= colPtr[k+1] || rowIdx[colPtr[k]] != k {
			return nil, fmt.Errorf("core: column %d does not start with its diagonal", k)
		}
		for p := colPtr[k] + 1; p < colPtr[k+1]; p++ {
			if rowIdx[p] <= k {
				return nil, fmt.Errorf("core: row index %d in column %d is not strictly below the diagonal", rowIdx[p], k)
			}
		}
	}

	f := &Factor{
		N: n,
		L: &sparse.CSC{Rows: n, Cols: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val},
	}
	if hasPerm == 1 {
		pm, err := readU64s(n)
		if err != nil {
			return nil, err
		}
		perm := make([]int, n)
		for i, v := range pm {
			perm[i] = int(v)
		}
		if err := sparse.CheckPerm(perm, n); err != nil {
			return nil, fmt.Errorf("core: corrupt permutation: %w", err)
		}
		f.Perm = perm
	}
	return f, nil
}
