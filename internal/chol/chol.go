// Package chol implements complete sparse Cholesky factorization
// (elimination tree + up-looking numeric phase, in the style of CSparse),
// standing in for CHOLMOD in the paper's pipeline. It factorizes the
// spectral sparsifiers of the feGRASS solver and serves as the exact
// direct-solver reference in tests.
package chol

import (
	"context"
	"fmt"
	"math"

	"powerrchol/internal/core"
	"powerrchol/internal/sparse"
)

// cancelCheckStride is how many columns are factorized between context
// polls, matching core's stride: frequent enough that cancellation lands
// within microseconds, rare enough to stay invisible in profiles.
const cancelCheckStride = 1024

// EliminationTree computes the elimination tree of a symmetric matrix
// given in CSC with both triangles stored. parent[j] = -1 marks a root.
func EliminationTree(a *sparse.CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			i := a.RowIdx[p]
			for i < k && i != -1 {
				inext := ancestor[i]
				ancestor[i] = k // path compression
				if inext == -1 {
					parent[i] = k
				}
				i = inext
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L (the reach of the
// upper part of column k in the elimination tree). It writes the pattern
// into s[top:n] in topological order and returns top. stamp/curStamp
// implement O(1) marking across calls.
func ereach(a *sparse.CSC, k int, parent []int, s []int, stamp []int, curStamp int) int {
	n := a.Cols
	top := n
	stamp[k] = curStamp
	for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
		i := a.RowIdx[p]
		if i >= k {
			continue
		}
		// climb the etree from i until an already-visited node
		length := 0
		for ; stamp[i] != curStamp; i = parent[i] {
			s[length] = i
			length++
			stamp[i] = curStamp
		}
		// push the path on the stack in reverse (ancestors last)
		for length > 0 {
			length--
			top--
			s[top] = s[length]
		}
	}
	return top
}

// Factorize computes the complete Cholesky factorization
// P·A·Pᵀ = L·Lᵀ for an SPD matrix a (both triangles stored), with
// perm[newIdx] = oldIdx (nil for natural order). The returned factor
// reuses core.Factor so it plugs into PCG as a preconditioner or acts as
// a direct solver via Apply.
func Factorize(a *sparse.CSC, perm []int) (*core.Factor, error) {
	return FactorizeContext(context.Background(), a, perm)
}

// FactorizeContext is Factorize under a context: ctx is polled every
// cancelCheckStride columns in both the symbolic and numeric passes, and
// a cancelled or expired context aborts the factorization with an error
// wrapping ctx.Err(). A nil ctx means never cancelled.
func FactorizeContext(ctx context.Context, a *sparse.CSC, perm []int) (*core.Factor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("chol: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	work := a
	if perm != nil {
		if err := sparse.CheckPerm(perm, a.Cols); err != nil {
			return nil, err
		}
		work = sparse.PermuteSym(a, perm)
	}
	n := work.Cols
	parent := EliminationTree(work)

	s := make([]int, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}

	// Symbolic pass: column counts via ereach.
	counts := make([]int, n) // entries strictly below the diagonal
	for k := 0; k < n; k++ {
		if k%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("chol: symbolic pass cancelled at column %d of %d: %w", k, n, err)
			}
		}
		for top := ereach(work, k, parent, s, stamp, k); top < n; top++ {
			counts[s[top]]++
		}
	}
	colPtr := make([]int, n+1)
	for j := 0; j < n; j++ {
		colPtr[j+1] = colPtr[j] + counts[j] + 1 // +1 for the diagonal
	}
	nnz := colPtr[n]
	rowIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, n) // next free slot per column

	x := make([]float64, n)
	for i := range stamp {
		stamp[i] = -1
	}

	for k := 0; k < n; k++ {
		if k%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("chol: factorization cancelled at column %d of %d: %w", k, n, err)
			}
		}
		top := ereach(work, k, parent, s, stamp, n+k)
		// Scatter the upper part of column k of A into x.
		d := 0.0
		for p := work.ColPtr[k]; p < work.ColPtr[k+1]; p++ {
			i := work.RowIdx[p]
			if i < k {
				x[i] = work.Val[p]
			} else if i == k {
				d = work.Val[p]
			}
		}
		// Sparse triangular solve for row k of L, in topological order.
		for ; top < n; top++ {
			j := s[top]
			lkj := x[j] / val[colPtr[j]]
			x[j] = 0
			for p := colPtr[j] + 1; p < next[j]; p++ {
				x[rowIdx[p]] -= val[p] * lkj
			}
			d -= lkj * lkj
			q := next[j]
			rowIdx[q] = k
			val[q] = lkj
			next[j] = q + 1
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("chol: non-positive pivot %g at column %d (matrix not positive definite)", d, k)
		}
		rowIdx[colPtr[k]] = k
		val[colPtr[k]] = math.Sqrt(d)
		next[k] = colPtr[k] + 1
	}

	f := &core.Factor{
		N: n,
		L: &sparse.CSC{Rows: n, Cols: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val},
	}
	if perm != nil {
		f.Perm = perm
	}
	return f, nil
}
