package chol

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestCholeskyReproducesMatrix(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%30) + 2
		s := testmat.RandomSDDM(r, n, 2*n)
		a := s.ToCSC()
		fac, err := Factorize(a, nil)
		if err != nil {
			return false
		}
		got := fac.ProductCSC().Dense()
		return testmat.MaxAbsDiff(got, a.Dense()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyMatchesDenseFactor(t *testing.T) {
	r := rng.New(3)
	s := testmat.RandomSDDM(r, 15, 20)
	a := s.ToCSC()
	fac, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := testmat.DenseCholesky(a.Dense())
	if err != nil {
		t.Fatal(err)
	}
	got := fac.L.Dense()
	if d := testmat.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("sparse and dense Cholesky factors differ by %g", d)
	}
}

func TestCholeskyDirectSolve(t *testing.T) {
	r := rng.New(7)
	s := testmat.GridSDDM(20, 20)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	fac, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, s.N())
	fac.Apply(x, b) // complete factorization => Apply IS a direct solve
	y := make([]float64, s.N())
	a.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	if rel := sparse.Norm2(y) / sparse.Norm2(b); rel > 1e-10 {
		t.Fatalf("direct solve residual %g", rel)
	}
}

func TestCholeskyWithPermutation(t *testing.T) {
	r := rng.New(11)
	s := testmat.RandomSDDM(r, 40, 60)
	a := s.ToCSC()
	perm := r.Perm(40)
	fac, err := Factorize(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	// LLᵀ must equal P·A·Pᵀ
	got := fac.ProductCSC().Dense()
	want := sparse.PermuteSym(a, perm).Dense()
	if d := testmat.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("permuted Cholesky differs by %g", d)
	}
	// and Apply must solve in ORIGINAL coordinates
	b := make([]float64, 40)
	for i := range b {
		b[i] = r.Float64()
	}
	x := make([]float64, 40)
	fac.Apply(x, b)
	y := make([]float64, 40)
	a.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	if rel := sparse.Norm2(y) / sparse.Norm2(b); rel > 1e-9 {
		t.Fatalf("permuted direct solve residual %g", rel)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2, 4)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.Add(0, 1, -2) // |off| > diag: indefinite
	c.Add(1, 0, -2)
	if _, err := Factorize(c.ToCSC(), nil); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	a := sparse.NewCSC(2, 3, 0)
	if _, err := Factorize(a, nil); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestEliminationTreePath(t *testing.T) {
	// For a tridiagonal (path) matrix in natural order the etree is the
	// path itself: parent[k] = k+1.
	s := testmat.PathSDDM(10, 1)
	parent := EliminationTree(s.ToCSC())
	for k := 0; k < 9; k++ {
		if parent[k] != k+1 {
			t.Fatalf("parent[%d] = %d, want %d", k, parent[k], k+1)
		}
	}
	if parent[9] != -1 {
		t.Fatalf("root parent = %d, want -1", parent[9])
	}
}

func TestCholeskyFillOnGridOrderingSensitivity(t *testing.T) {
	// sanity: factor nnz grows with a bad ordering on a 2-D grid
	s := testmat.GridSDDM(16, 16)
	a := s.ToCSC()
	nat, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nat.NNZ() < a.NNZ()/2 {
		t.Fatalf("complete factor suspiciously sparse: %d vs A %d", nat.NNZ(), a.NNZ())
	}
}

func TestFactorizeContextCancelled(t *testing.T) {
	r := rng.New(7)
	s := testmat.RandomSDDM(r, 40, 80)
	a := s.ToCSC()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorizeContext(ctx, a, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("FactorizeContext with cancelled ctx: err = %v, want context.Canceled", err)
	}

	// A live context and a nil context both factorize normally.
	if _, err := FactorizeContext(context.Background(), a, nil); err != nil {
		t.Fatalf("FactorizeContext with live ctx: %v", err)
	}
	if _, err := FactorizeContext(nil, a, nil); err != nil { //nolint:staticcheck // nil ctx is documented as "never cancelled"
		t.Fatalf("FactorizeContext with nil ctx: %v", err)
	}
}
