// Package workload implements the many-solve studies that reward
// PowerRChol's cheap, strong preconditioner the most — the production
// shapes ROADMAP item 4 names. A study is a bounded, deterministic,
// ctx-cancellable run of many right-hand sides (and, for Monte Carlo,
// many perturbed systems) against prepared factors owned by the shared
// session layer:
//
//   - Transient: backward-Euler integration of an RC power grid. The
//     companion model turns every timestep into a new RHS against one
//     fixed SDDM, so the factorization is spent exactly once for all
//     steps (session.Prepares observes this; the factorize-once test
//     asserts it) and each step warm-starts from the previous solution.
//   - MonteCarlo: what-if perturbation ensembles — resistor-value
//     jitter, open-circuit line failures, load variation — sampled
//     deterministically from split internal/rng streams, grouped by
//     fingerprint-identical topology so repeated topologies reuse one
//     preparation, solved in parallel through the session ensemble
//     pool, and reduced to per-node voltage statistics that are bitwise
//     reproducible per seed regardless of worker count.
//
// Everything a study reports that feeds a golden test is reduced in an
// order fixed by the seed alone (sample index and first-appearance
// group order), never by scheduling.
package workload

import (
	"math"

	"powerrchol"
)

// combineFP folds two fingerprints into one: FNV-64a over the pair's
// bit patterns, matching the hashing family of the public fingerprint
// API. Used to pin multi-vector study outputs (waveform + final state,
// mean + σ) with a single golden value. The bits of each input are
// reinterpreted (not converted) as float64, so the mapping is bijective
// and no identity is lost.
func combineFP(a, b uint64) uint64 {
	return powerrchol.FingerprintVector([]float64{
		math.Float64frombits(a),
		math.Float64frombits(b),
	})
}
