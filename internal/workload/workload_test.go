package workload

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerrchol"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/session"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func testGrid(t *testing.T, seed uint64) *powergrid.Grid {
	t.Helper()
	g, err := powergrid.Generate(powergrid.Spec{Name: "wl", NX: 16, NY: 16, Layers: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOptions() powerrchol.Options {
	return powerrchol.Options{Method: powerrchol.MethodLTRChol, Tol: 1e-10, Seed: 7}
}

// TestTransientFactorizesOnce pins the amortization contract: a 50-step
// transient study spends exactly one factorization, observed through
// the session layer's preparation counter. This test must not run in
// parallel with other tests of this package (the counter is
// process-global).
func TestTransientFactorizesOnce(t *testing.T) {
	g := testGrid(t, 11)
	spec := TransientSpec{Grid: powergrid.TransientSpec{Steps: 50, Seed: 3}}
	before := session.Prepares()
	tr, err := Transient(context.Background(), g, spec, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if delta := session.Prepares() - before; delta != 1 {
		t.Fatalf("50-step transient spent %d factorizations, want exactly 1", delta)
	}
	if tr.Steps != 50 || tr.Preparations != 1 {
		t.Fatalf("report says steps=%d preparations=%d, want 50 and 1", tr.Steps, tr.Preparations)
	}
	if tr.TotalIterations < tr.Steps {
		t.Fatalf("implausible iteration total %d for %d steps", tr.TotalIterations, tr.Steps)
	}
	if tr.Peak <= 0 || tr.PeakStep < 0 {
		t.Fatalf("loaded grid reported no drop peak (peak=%g at %d)", tr.Peak, tr.PeakStep)
	}
}

// TestTransientWarmSavesIterations: warm-started steps must cost no
// more PCG iterations than cold starts on the same stream (both runs
// are deterministic, so this is an exact comparison, not a flaky one).
func TestTransientWarmSavesIterations(t *testing.T) {
	g := testGrid(t, 12)
	ts := powergrid.TransientSpec{Steps: 30, Seed: 4}
	warm, err := Transient(context.Background(), g, TransientSpec{Grid: ts}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Transient(context.Background(), g, TransientSpec{Grid: ts, Cold: true}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalIterations > cold.TotalIterations {
		t.Fatalf("warm starts cost %d iterations, cold %d — warm must not be worse",
			warm.TotalIterations, cold.TotalIterations)
	}
	t.Logf("iterations: warm=%d cold=%d", warm.TotalIterations, cold.TotalIterations)
}

// TestTransientCancellation: a cancelled ctx aborts the step loop with
// a context error.
func TestTransientCancellation(t *testing.T) {
	g := testGrid(t, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Transient(ctx, g, TransientSpec{Grid: powergrid.TransientSpec{Steps: 10, Seed: 1}}, testOptions())
	if err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("cancelled transient returned %v", err)
	}
}

// TestSystemTransientSettlesToDC: the step response over a bare SDDM
// must decay toward the DC solution — the waveform metric (max per-step
// delta) shrinks and the final state matches a one-shot solve.
func TestSystemTransientSettlesToDC(t *testing.T) {
	g := testGrid(t, 14)
	spec := StepStudySpec{Steps: 40}
	tr, err := SystemTransient(context.Background(), g.Sys, g.B, spec, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps != 40 || tr.Preparations != 1 {
		t.Fatalf("steps=%d preparations=%d", tr.Steps, tr.Preparations)
	}
	first, last := tr.Waveform[0], tr.Waveform[len(tr.Waveform)-1]
	if last >= first {
		t.Fatalf("step response did not decay: first delta %g, last delta %g", first, last)
	}
	dc, err := powerrchol.Solve(g.Sys, g.B, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i, v := range tr.FinalV {
		if d := math.Abs(v - dc.X[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("final transient state is %g from the DC solution", worst)
	}
}

// TestMonteCarloDeterministicAcrossWorkers is the study-level
// worker-independence contract: the full reduced statistics must be
// bitwise identical for every worker count, because sampling is
// per-stream and reduction order is fixed by the seed. Run under -race
// this also exercises the ensemble pool for data races.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid(t, 15)
	spec := MCSpec{
		Samples:        16,
		Seed:           99,
		FailCandidates: 3,
		FailProb:       0.4,
		LoadSigma:      0.2,
		DropThreshold:  0.01,
	}
	var ref *MCResult
	for _, workers := range []int{1, 8} {
		opt := testOptions()
		opt.Workers = workers
		res, err := MonteCarloGrid(context.Background(), g, spec, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.StatsFP != ref.StatsFP {
			t.Fatalf("workers=8 stats fingerprint %016x != workers=1 %016x", res.StatsFP, ref.StatsFP)
		}
		for _, vec := range []struct {
			name string
			a, b []float64
		}{
			{"mean", res.Mean, ref.Mean},
			{"std", res.Std, ref.Std},
			{"maxdrop", res.MaxDrop, ref.MaxDrop},
			{"worstdrop", res.WorstDrop, ref.WorstDrop},
			{"exceedance", res.Exceedance, ref.Exceedance},
		} {
			for i := range vec.a {
				if math.Float64bits(vec.a[i]) != math.Float64bits(vec.b[i]) {
					t.Fatalf("%s[%d] differs across worker counts: %v vs %v", vec.name, i, vec.a[i], vec.b[i])
				}
			}
		}
		if res.TotalIterations != ref.TotalIterations || res.Groups != ref.Groups {
			t.Fatalf("iteration/group counts differ across worker counts")
		}
	}
}

// TestMonteCarloPreparationReuse: toggle-only perturbations land on a
// small set of topologies, so preparations must be shared across
// samples (Groups ≤ 2^candidates ≪ Samples).
func TestMonteCarloPreparationReuse(t *testing.T) {
	g := testGrid(t, 16)
	spec := MCSpec{Samples: 24, Seed: 5, FailCandidates: 2, FailProb: 0.5, LoadSigma: 0.1}
	before := session.Prepares()
	res, err := MonteCarloGrid(context.Background(), g, spec, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups > 4 {
		t.Fatalf("2 failure candidates admit at most 4 topologies, got %d groups", res.Groups)
	}
	if res.ReuseHits != res.Samples-res.Groups {
		t.Fatalf("reuse accounting: %d hits for %d samples in %d groups", res.ReuseHits, res.Samples, res.Groups)
	}
	if res.ReuseHits < res.Samples/2 {
		t.Fatalf("expected strong reuse, got only %d hits of %d samples", res.ReuseHits, res.Samples)
	}
	if delta := session.Prepares() - before; delta != int64(res.Preparations) {
		t.Fatalf("session counted %d preparations, report says %d", delta, res.Preparations)
	}
	if res.Preparations != res.Groups {
		t.Fatalf("grid study (known Vdd) must spend exactly one preparation per group: %d vs %d",
			res.Preparations, res.Groups)
	}
}

// TestMonteCarloValueJitterStats: with resistor jitter every sample is
// its own topology; the statistics must be sane (std > 0 somewhere,
// quantiles ordered, peak consistent with the per-sample worst drops).
func TestMonteCarloValueJitterStats(t *testing.T) {
	g := testGrid(t, 17)
	spec := MCSpec{Samples: 8, Seed: 6, ResistorSigma: 0.1}
	res, err := MonteCarloGrid(context.Background(), g, spec, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != res.Samples {
		t.Fatalf("value jitter must make every sample unique: %d groups for %d samples", res.Groups, res.Samples)
	}
	anyStd := false
	for _, s := range res.Std {
		if s > 0 {
			anyStd = true
			break
		}
	}
	if !anyStd {
		t.Fatal("perturbed ensemble reported zero variance everywhere")
	}
	for i := 1; i < len(res.Quantiles); i++ {
		if res.Quantiles[i].V < res.Quantiles[i-1].V {
			t.Fatalf("quantiles out of order: %+v", res.Quantiles)
		}
	}
	peak := math.Inf(-1)
	for _, w := range res.WorstDrop {
		if w > peak {
			peak = w
		}
	}
	if res.Peak != peak {
		t.Fatalf("peak %g does not match worst-drop max %g", res.Peak, peak)
	}
}

// TestMonteCarloReferenceSolve: without a known Vdd the study solves
// the unperturbed system once as the reference — one extra preparation.
func TestMonteCarloReferenceSolve(t *testing.T) {
	g := testGrid(t, 18)
	spec := MCSpec{Samples: 4, Seed: 7, LoadSigma: 0.2}
	res, err := MonteCarlo(context.Background(), g.Sys, g.B, spec, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 1 {
		t.Fatalf("load-only jitter shares one topology, got %d groups", res.Groups)
	}
	if res.Preparations != res.Groups+1 {
		t.Fatalf("reference solve must add one preparation: %d vs groups %d", res.Preparations, res.Groups)
	}
}

// TestWorkloadGolden pins the seed → study-statistics mapping for both
// studies to a golden file, the same way the root package pins its
// seed-state map. Regenerate with
// `go test -run TestWorkloadGolden -update ./internal/workload/`
// after an intentional change (and say so in the commit).
func TestWorkloadGolden(t *testing.T) {
	g := testGrid(t, 21)
	var lines []string

	tr, err := Transient(context.Background(), g,
		TransientSpec{Grid: powergrid.TransientSpec{Steps: 20, Seed: 9}}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	lines = append(lines, fmt.Sprintf("transient/seed=9 steps=%d wavefp=%016x", tr.Steps, tr.WaveFP))

	st, err := SystemTransient(context.Background(), g.Sys, g.B, StepStudySpec{Steps: 20}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	lines = append(lines, fmt.Sprintf("step-study steps=%d wavefp=%016x", st.Steps, st.WaveFP))

	mc, err := MonteCarloGrid(context.Background(), g,
		MCSpec{Samples: 12, Seed: 10, FailCandidates: 3, FailProb: 0.3, LoadSigma: 0.15}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	lines = append(lines, fmt.Sprintf("mc/seed=10 groups=%d statsfp=%016x", mc.Groups, mc.StatsFP))

	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "workload.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("workload fingerprints changed — a study altered what a seed produces.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestMCSpecValidation rejects out-of-range knobs.
func TestMCSpecValidation(t *testing.T) {
	g := testGrid(t, 19)
	bad := []MCSpec{
		{Samples: -1},
		{FailProb: 1.5},
		{FailProb: 0.5, FailCandidates: -2},
		{ResistorSigma: -0.1},
		{FailFactor: 0.5},
		{Quantiles: []float64{1.5}},
	}
	for i, spec := range bad {
		if _, err := MonteCarloGrid(context.Background(), g, spec, testOptions()); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}
