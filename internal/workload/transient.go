package workload

import (
	"context"
	"fmt"
	"time"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/session"
)

// TransientSpec configures a transient study over a generated power
// grid. The embedded powergrid spec owns the physics (capacitances,
// step size, switching waveforms); this layer owns how the solves are
// spent.
type TransientSpec struct {
	Grid powergrid.TransientSpec
	// Cold disables warm-started steps: every step solves from a cold
	// start, bitwise identical to one-shot solves (the referee mode for
	// determinism tests). The default (false) warm-starts each step from
	// the previous solution, which typically saves a third or more of
	// the PCG iterations across a run.
	Cold bool
}

// StepStudySpec configures a step-response transient over a bare SDDM
// (netlist input or an ingested serve grid, where no Grid metadata
// exists): uniform node capacitance, constant RHS switched on at t=0,
// integrated from v=0 toward the DC solution.
type StepStudySpec struct {
	// Cap is the uniform per-node capacitance (F); default 1e-15.
	Cap float64
	// TimeStep is the backward-Euler step h (s); default 1e-11.
	TimeStep float64
	// Steps is the number of time steps; default 50.
	Steps int
	// Cold disables warm-started steps (see TransientSpec.Cold).
	Cold bool
}

func (sp *StepStudySpec) setDefaults() error {
	if sp.Cap == 0 {
		sp.Cap = 1e-15
	}
	if sp.TimeStep == 0 {
		sp.TimeStep = 1e-11
	}
	if sp.Steps == 0 {
		sp.Steps = 50
	}
	if sp.Cap < 0 || sp.TimeStep < 0 || sp.Steps < 0 {
		return fmt.Errorf("workload: negative step-study parameter")
	}
	return nil
}

// TransientReport is the study-level summary of a transient run: how
// the factorization was amortized, what the waveform did, and a
// fingerprint pinning the whole trajectory for golden tests.
type TransientReport struct {
	Steps int `json:"steps"`
	// Preparations counts factorizations this study spent — the
	// amortization contract says 1, independent of Steps.
	Preparations    int `json:"preparations"`
	TotalIterations int `json:"total_iterations"`
	// Waveform holds one scalar per step: the worst bottom-layer IR drop
	// (grid studies) or the max per-node voltage delta (step-response
	// studies, where it decays as the grid settles to DC).
	Waveform []float64 `json:"-"`
	Peak     float64   `json:"peak"`
	PeakStep int       `json:"peak_step"`
	// WaveFP pins Waveform and the final voltage vector together.
	WaveFP    uint64        `json:"wave_fp"`
	SetupTime time.Duration `json:"setup_ns"`
	SolveTime time.Duration `json:"solve_ns"`
	FinalV    []float64     `json:"-"`
	// Grid carries the per-step detail of a grid study (nil for
	// step-response studies).
	Grid *powergrid.TransientResult `json:"-"`
}

func (tr *TransientReport) finish(waveform, finalV []float64, iters int) {
	tr.Steps = len(waveform)
	tr.TotalIterations = iters
	tr.Waveform = waveform
	tr.FinalV = finalV
	tr.PeakStep = -1
	for i, w := range waveform {
		if w > tr.Peak {
			tr.Peak, tr.PeakStep = w, i
		}
	}
	tr.WaveFP = combineFP(
		powerrchol.FingerprintVector(waveform),
		powerrchol.FingerprintVector(finalV),
	)
}

// Transient runs a backward-Euler transient study over a generated grid
// through one prepared session: the companion matrix G + C/h is
// factorized exactly once and every step is one warm-started solve
// against it.
func Transient(ctx context.Context, g *powergrid.Grid, spec TransientSpec, opt powerrchol.Options) (*TransientReport, error) {
	sys, _, err := g.TransientSystem(spec.Grid)
	if err != nil {
		return nil, err
	}
	sess, err := session.Prepare(ctx, sys, opt)
	if err != nil {
		return nil, fmt.Errorf("workload: transient prepare: %w", err)
	}
	seq := sess.Sequence(!spec.Cold)
	start := time.Now()
	res, err := g.RunTransientContext(ctx, spec.Grid, func(b []float64) ([]float64, int, error) {
		r, err := seq.Step(ctx, b)
		if err != nil {
			return nil, 0, err
		}
		return r.X, r.Iterations, nil
	})
	if err != nil {
		return nil, err
	}
	tr := &TransientReport{
		Preparations: 1,
		SetupTime:    sess.Solver().SetupTimings().Total(),
		SolveTime:    time.Since(start),
		Grid:         res,
	}
	tr.finish(res.WorstDrop, res.FinalV, res.TotalIters)
	return tr, nil
}

// SystemTransient runs a step-response transient over a bare SDDM: with
// uniform node capacitance c and step h, integrate
//
//	(A + c/h·I)·v_{t+1} = c/h·v_t + b
//
// from v = 0. The waveform metric per step is the max per-node voltage
// delta, which decays as the system settles to the DC solution A·v = b.
// Like the grid study, the companion matrix is factorized exactly once.
func SystemTransient(ctx context.Context, sys *graph.SDDM, b []float64, spec StepStudySpec, opt powerrchol.Options) (*TransientReport, error) {
	if err := spec.setDefaults(); err != nil {
		return nil, err
	}
	n := sys.N()
	if len(b) != n {
		return nil, fmt.Errorf("workload: rhs has length %d, want %d", len(b), n)
	}
	ch := spec.Cap / spec.TimeStep
	d := make([]float64, n)
	for i := range d {
		d[i] = sys.D[i] + ch
	}
	be, err := graph.NewSDDM(sys.G, d)
	if err != nil {
		return nil, err
	}
	sess, err := session.Prepare(ctx, be, opt)
	if err != nil {
		return nil, fmt.Errorf("workload: step-study prepare: %w", err)
	}
	seq := sess.Sequence(!spec.Cold)
	start := time.Now()

	v := make([]float64, n)
	bt := make([]float64, n)
	waveform := make([]float64, 0, spec.Steps)
	iters := 0
	for step := 1; step <= spec.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("workload: step study cancelled before step %d: %w", step, err)
		}
		for i := 0; i < n; i++ {
			bt[i] = ch*v[i] + b[i]
		}
		r, err := seq.Step(ctx, bt)
		if err != nil {
			return nil, fmt.Errorf("workload: step study step %d: %w", step, err)
		}
		maxDelta := 0.0
		for i, vi := range r.X {
			if d := vi - v[i]; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
		}
		waveform = append(waveform, maxDelta)
		v = r.X
		iters += r.Iterations
	}
	tr := &TransientReport{
		Preparations: 1,
		SetupTime:    sess.Solver().SetupTimings().Total(),
		SolveTime:    time.Since(start),
	}
	tr.finish(waveform, v, iters)
	return tr, nil
}
