package workload

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/rng"
	"powerrchol/internal/session"
)

// MCSpec configures a Monte Carlo perturbation study. Three independent
// perturbation channels compose per sample:
//
//   - ResistorSigma: lognormal jitter on every line conductance
//     (process variation). Makes every sample's topology values unique,
//     so preparations cannot be shared.
//   - FailProb over FailCandidates: open-circuit line failures drawn
//     from a small fixed candidate set, so samples repeat topologies
//     and fingerprint grouping amortizes preparations across them.
//   - LoadSigma: lognormal jitter on the current draws (negative RHS
//     entries). Pure RHS variation — free reuse of whatever topology
//     the sample landed on.
//
// Every draw for sample i comes from rng.Stream(Seed, i+1) in a fixed
// order (failure toggles, then conductance factors, then load factors),
// so a sample's perturbation is a pure function of (Seed, i) —
// independent of worker count, scheduling, or any other sample.
type MCSpec struct {
	// Samples is the ensemble size; default 32.
	Samples int
	// Seed drives every perturbation stream.
	Seed uint64
	// ResistorSigma is the lognormal σ applied to every conductance
	// (W ← W·exp(σ·N(0,1))); 0 disables value jitter.
	ResistorSigma float64
	// FailCandidates bounds the set of lines eligible for open-circuit
	// failure, chosen deterministically from the seed; default 8 (or M
	// if smaller) when FailProb > 0.
	FailCandidates int
	// FailProb is the per-candidate probability of an open-circuit
	// failure per sample; 0 disables topology failures.
	FailProb float64
	// FailFactor divides a failed line's conductance (an open-circuit
	// approximation that can never make the system singular); default
	// 1e6.
	FailFactor float64
	// LoadSigma is the lognormal σ applied to every current draw
	// (negative RHS entry); 0 disables load jitter.
	LoadSigma float64
	// Vdd is the reference voltage drops are measured from. When 0 the
	// unperturbed system is solved once and its solution is the
	// per-node reference (the netlist shape, where no nominal supply is
	// known).
	Vdd float64
	// DropThreshold (V) enables the per-node exceedance statistic:
	// the fraction of samples in which a node's drop exceeds it.
	DropThreshold float64
	// Quantiles of the per-sample worst-drop distribution to report;
	// default 0.5, 0.9, 0.99.
	Quantiles []float64
}

func (sp *MCSpec) setDefaults(m int) error {
	if sp.Samples == 0 {
		sp.Samples = 32
	}
	if sp.Samples < 0 {
		return fmt.Errorf("workload: negative sample count %d", sp.Samples)
	}
	if sp.ResistorSigma < 0 || sp.LoadSigma < 0 {
		return fmt.Errorf("workload: negative perturbation sigma")
	}
	if sp.FailProb < 0 || sp.FailProb > 1 {
		return fmt.Errorf("workload: failure probability %g outside [0,1]", sp.FailProb)
	}
	if sp.FailProb > 0 {
		if sp.FailCandidates == 0 {
			sp.FailCandidates = 8
		}
		if sp.FailCandidates < 0 {
			return fmt.Errorf("workload: negative failure candidate count")
		}
		if sp.FailCandidates > m {
			sp.FailCandidates = m
		}
	}
	if sp.FailFactor == 0 {
		sp.FailFactor = 1e6
	}
	if sp.FailFactor < 1 {
		return fmt.Errorf("workload: failure factor %g < 1 would strengthen the line", sp.FailFactor)
	}
	if len(sp.Quantiles) == 0 {
		sp.Quantiles = []float64{0.5, 0.9, 0.99}
	}
	for _, q := range sp.Quantiles {
		if q < 0 || q > 1 {
			return fmt.Errorf("workload: quantile %g outside [0,1]", q)
		}
	}
	return nil
}

// Quantile is one point of the worst-drop distribution.
type Quantile struct {
	P float64 `json:"p"`
	V float64 `json:"v"`
}

// MCResult reduces the ensemble to per-node and per-sample statistics.
// Everything here is a pure function of (system, RHS, spec, options)
// — bitwise reproducible per seed regardless of the solver's worker
// count, because samples are reduced in index order and groups are
// prepared in first-appearance order, both fixed by the seed alone.
type MCResult struct {
	Samples int `json:"samples"`
	// Groups counts the distinct topologies the ensemble landed on —
	// the number of factorizations spent on samples.
	Groups int `json:"groups"`
	// Preparations counts all factorizations this study performed
	// (Groups, plus one when the reference solve ran).
	Preparations int `json:"preparations"`
	// ReuseHits counts samples served by a previously prepared
	// topology (Samples - Groups).
	ReuseHits       int `json:"reuse_hits"`
	TotalIterations int `json:"total_iterations"`

	// Mean and Std are the per-node voltage mean and standard
	// deviation over the ensemble.
	Mean []float64 `json:"-"`
	Std  []float64 `json:"-"`
	// MaxDrop is the per-node worst drop over all samples.
	MaxDrop []float64 `json:"-"`
	// WorstDrop is the per-sample worst drop, in sample-index order.
	WorstDrop []float64 `json:"-"`
	// Quantiles of the WorstDrop distribution.
	Quantiles []Quantile `json:"quantiles"`
	// Exceedance is the per-node fraction of samples whose drop
	// exceeded DropThreshold (nil when the threshold is 0).
	Exceedance []float64 `json:"-"`
	// Peak is the largest WorstDrop and PeakSample the sample that
	// produced it.
	Peak       float64 `json:"peak"`
	PeakSample int     `json:"peak_sample"`
	// StatsFP pins Mean, Std and WorstDrop together for golden tests.
	StatsFP uint64 `json:"stats_fp"`

	SetupTime time.Duration `json:"setup_ns"`
	SolveTime time.Duration `json:"solve_ns"`
}

// mcSampler regenerates any sample's perturbed system and RHS on
// demand by replaying its rng stream — samples are never stored, only
// their fingerprints, so memory stays O(samples + one system).
type mcSampler struct {
	sys        *graph.SDDM
	b          []float64
	spec       MCSpec
	candidates []int // edge indices eligible for failure, fixed per seed
	baseFP     uint64
	scratch    []graph.Edge
}

func newMCSampler(sys *graph.SDDM, b []float64, spec MCSpec) *mcSampler {
	sm := &mcSampler{sys: sys, b: b, spec: spec, baseFP: powerrchol.FingerprintSystem(sys)}
	if spec.FailProb > 0 {
		// Stream 0 is reserved for the candidate draw; samples use
		// streams 1..Samples.
		r := rng.Stream(spec.Seed, 0)
		sm.candidates = r.Perm(sys.G.M())[:spec.FailCandidates]
	}
	return sm
}

// sample replays sample i's perturbation stream. The returned system is
// the receiver's scratch (valid until the next call) or the base system
// itself when the sample leaves the topology untouched; the returned
// RHS is likewise shared with the base when load jitter is off. fp is
// always the topology fingerprint.
func (sm *mcSampler) sample(i int) (sys *graph.SDDM, fp uint64, rhs []float64) {
	r := rng.Stream(sm.spec.Seed, uint64(i)+1)
	changed := false
	if sm.scratch == nil {
		sm.scratch = make([]graph.Edge, len(sm.sys.G.Edges))
	}
	copy(sm.scratch, sm.sys.G.Edges)

	// 1. Open-circuit failures over the fixed candidate set.
	for _, e := range sm.candidates {
		if r.Float64() < sm.spec.FailProb {
			sm.scratch[e].W /= sm.spec.FailFactor
			changed = true
		}
	}
	// 2. Lognormal conductance jitter on every line.
	if sm.spec.ResistorSigma > 0 {
		for j := range sm.scratch {
			sm.scratch[j].W *= math.Exp(sm.spec.ResistorSigma * r.NormFloat64())
		}
		changed = true
	}
	// 3. Lognormal jitter on the current draws.
	rhs = sm.b
	if sm.spec.LoadSigma > 0 {
		rhs = make([]float64, len(sm.b))
		copy(rhs, sm.b)
		for j, v := range rhs {
			if v < 0 {
				rhs[j] = v * math.Exp(sm.spec.LoadSigma*r.NormFloat64())
			}
		}
	}

	if !changed {
		return sm.sys, sm.baseFP, rhs
	}
	sys = &graph.SDDM{G: &graph.Graph{N: sm.sys.G.N, Edges: sm.scratch}, D: sm.sys.D}
	return sys, powerrchol.FingerprintSystem(sys), rhs
}

// detach deep-copies a scratch-backed system so it survives the next
// sample call; base-backed systems are returned as-is.
func (sm *mcSampler) detach(sys *graph.SDDM) *graph.SDDM {
	if sys == sm.sys {
		return sys
	}
	edges := make([]graph.Edge, len(sys.G.Edges))
	copy(edges, sys.G.Edges)
	return &graph.SDDM{G: &graph.Graph{N: sys.G.N, Edges: edges}, D: sys.D}
}

type mcGroup struct {
	fp      uint64
	first   int   // first sample on this topology (rebuilt for Prepare)
	members []int // sample indices, ascending
}

// MonteCarlo runs a perturbation ensemble over a bare SDDM. Samples are
// drawn serially (each from its own split rng stream), grouped by
// topology fingerprint, solved group-by-group through one prepared
// session each (the group's RHS ensemble fans out across the solver's
// bounded worker pool), and reduced in sample-index order.
func MonteCarlo(ctx context.Context, sys *graph.SDDM, b []float64, spec MCSpec, opt powerrchol.Options) (*MCResult, error) {
	n := sys.N()
	if len(b) != n {
		return nil, fmt.Errorf("workload: rhs has length %d, want %d", len(b), n)
	}
	if err := spec.setDefaults(sys.G.M()); err != nil {
		return nil, err
	}
	plan, err := powerrchol.CompilePlan(opt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &MCResult{Samples: spec.Samples, PeakSample: -1}

	// Reference voltages: the nominal supply, or one solve of the
	// unperturbed system when no supply is known.
	ref := make([]float64, n)
	if spec.Vdd > 0 {
		for i := range ref {
			ref[i] = spec.Vdd
		}
	} else {
		sess, err := session.PrepareFromPlan(ctx, sys, plan)
		if err != nil {
			return nil, fmt.Errorf("workload: mc reference prepare: %w", err)
		}
		r, err := sess.Solve(ctx, b)
		if err != nil {
			return nil, fmt.Errorf("workload: mc reference solve: %w", err)
		}
		copy(ref, r.X)
		res.Preparations++
		res.TotalIterations += r.Iterations
		res.SetupTime += sess.Solver().SetupTimings().Total()
	}

	// Pass 1: fingerprint every sample, grouping by topology. Only
	// fingerprints are kept; systems and RHS are replayed in pass 2.
	sm := newMCSampler(sys, b, spec)
	groups := make(map[uint64]*mcGroup)
	var order []*mcGroup
	for i := 0; i < spec.Samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("workload: mc cancelled at sample %d: %w", i, err)
		}
		_, fp, _ := sm.sample(i) //pglint:hotalloc stream replay, one fingerprint pass per sample, bounded by sample count
		g, ok := groups[fp]
		if !ok {
			g = &mcGroup{fp: fp, first: i} //pglint:hotalloc one group header per distinct topology, bounded by sample count
			groups[fp] = g
			order = append(order, g) //pglint:hotalloc group list, bounded by sample count
		}
		g.members = append(g.members, i) //pglint:hotalloc member list, bounded by sample count
	}
	res.Groups = len(order)
	res.ReuseHits = spec.Samples - res.Groups

	// Pass 2: prepare each topology once, fan its members' RHS across
	// the ensemble pool, reduce in member order. Group order is
	// first-appearance order — fixed by the seed, not by scheduling.
	sum := make([]float64, n)
	sumSq := make([]float64, n)
	res.MaxDrop = make([]float64, n)
	res.WorstDrop = make([]float64, spec.Samples)
	var exceed []int
	if spec.DropThreshold > 0 {
		exceed = make([]int, n)
	}
	for _, g := range order {
		gs, _, _ := sm.sample(g.first)
		sess, err := session.PrepareFromPlan(ctx, sm.detach(gs), plan)
		if err != nil {
			return nil, fmt.Errorf("workload: mc prepare sample %d (topology %016x): %w", g.first, g.fp, err)
		}
		res.Preparations++
		res.SetupTime += sess.Solver().SetupTimings().Total()
		rhs := make([][]float64, len(g.members))
		for j, m := range g.members {
			_, _, rhs[j] = sm.sample(m) //pglint:hotalloc RHS materialization, one vector per ensemble member, bounded by sample count
		}
		results, err := sess.Ensemble(ctx, rhs)
		if err != nil {
			return nil, fmt.Errorf("workload: mc ensemble (topology %016x): %w", g.fp, err)
		}
		for j, r := range results {
			m := g.members[j]
			res.TotalIterations += r.Iterations
			worst := math.Inf(-1)
			for i, vi := range r.X {
				sum[i] += vi
				sumSq[i] += vi * vi
				drop := ref[i] - vi
				if drop > res.MaxDrop[i] {
					res.MaxDrop[i] = drop
				}
				if drop > worst {
					worst = drop
				}
				if exceed != nil && drop > spec.DropThreshold {
					exceed[i]++
				}
			}
			res.WorstDrop[m] = worst
		}
	}
	res.SolveTime = time.Since(start)

	// Reduction: per-node moments, the worst-drop distribution and its
	// quantiles. All sums were accumulated in seed-fixed order.
	inv := 1 / float64(spec.Samples)
	res.Mean = make([]float64, n)
	res.Std = make([]float64, n)
	//pglint:ctxflow one arithmetic pass over n floats after all solves finished, no cancellation point needed
	for i := 0; i < n; i++ {
		mean := sum[i] * inv
		res.Mean[i] = mean
		v := sumSq[i]*inv - mean*mean
		if v > 0 {
			res.Std[i] = math.Sqrt(v)
		}
	}
	if exceed != nil {
		res.Exceedance = make([]float64, n)
		for i, c := range exceed {
			res.Exceedance[i] = float64(c) * inv
		}
	}
	for m, w := range res.WorstDrop {
		if w > res.Peak || res.PeakSample < 0 {
			res.Peak, res.PeakSample = w, m
		}
	}
	sorted := make([]float64, len(res.WorstDrop))
	copy(sorted, res.WorstDrop)
	sort.Float64s(sorted)
	//pglint:ctxflow handful of quantile lookups after all solves finished, no cancellation point needed
	for _, p := range spec.Quantiles {
		idx := int(math.Round(p * float64(len(sorted)-1)))
		res.Quantiles = append(res.Quantiles, Quantile{P: p, V: sorted[idx]}) //pglint:hotalloc quantile list, bounded by the handful of requested quantiles
	}
	res.StatsFP = combineFP(
		combineFP(powerrchol.FingerprintVector(res.Mean), powerrchol.FingerprintVector(res.Std)),
		powerrchol.FingerprintVector(res.WorstDrop),
	)
	return res, nil
}

// MonteCarloGrid runs MonteCarlo over a generated power grid, measuring
// drops from the grid's nominal supply.
func MonteCarloGrid(ctx context.Context, g *powergrid.Grid, spec MCSpec, opt powerrchol.Options) (*MCResult, error) {
	spec.Vdd = g.Spec.Vdd
	return MonteCarlo(ctx, g.Sys, g.B, spec, opt)
}
