// Package graph is a fixture for the error-propagation taxonomy rules.
package graph

import (
	"errors"
	"fmt"
)

var ErrSingular = errors.New("graph: singular system")

type ParseError struct{ Line int }

func (e *ParseError) Error() string { return fmt.Sprintf("parse error at line %d", e.Line) }

func Flattened(err error) error {
	return fmt.Errorf("building graph: %v", err) // want `severing the errors.Is/As chain`
}

func FlattenedString(err error) error {
	return fmt.Errorf("building graph: %s", err) // want `severing the errors.Is/As chain`
}

func FlattenedTyped(e *ParseError) error {
	return fmt.Errorf("building graph: %v", e) // want `severing the errors.Is/As chain`
}

func Wrapped(err error) error {
	return fmt.Errorf("building graph: %w", err)
}

func Typed(line int) error {
	return &ParseError{Line: line} // typed errors from errors.go are the other sanctioned shape
}

func NoErrorArgs(n int) error {
	return fmt.Errorf("graph has %d negative weights", n)
}

func Deliberate(err error) string {
	//pglint:no-wrap metric label only; the error is also returned unflattened by the caller
	return fmt.Errorf("label: %v", err).Error()
}

func Unjustified(err error) error {
	//pglint:no-wrap // want `directive needs a reason`
	return fmt.Errorf("building graph: %v", err)
}
