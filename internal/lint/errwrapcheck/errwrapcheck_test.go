package errwrapcheck_test

import (
	"testing"

	"powerrchol/internal/lint/errwrapcheck"
	"powerrchol/internal/lint/linttest"
)

func TestErrWrapCheck(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), errwrapcheck.Analyzer,
		"example.com/internal/graph",
	)
}
