// Package errwrapcheck enforces the error taxonomy when errors are
// re-reported.
//
// The recovery ladder and the batch API rely on errors.Is/As working
// through every layer: callers match ErrNotConverged, *SolveError,
// core.ErrBreakdown. A fmt.Errorf("...: %v", err) anywhere in the chain
// severs it — the text survives but the identity is gone, and the retry
// logic downstream stops recognizing the failure class. This analyzer
// flags any fmt.Errorf call that formats a value of type error without
// using the %w verb. Propagate with %w, or return one of the typed errors
// from errors.go. The rare legitimate flattening (e.g. folding an error
// into a metric label) is annotated //pglint:no-wrap <reason>.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"powerrchol/internal/lint/directive"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "no-wrap"

var Analyzer = &analysis.Analyzer{
	Name:     "errwrapcheck",
	Doc:      "flag fmt.Errorf that formats an error without %w; the chain must stay matchable by errors.Is/As",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
			return
		}
		if len(call.Args) < 2 {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return
		}
		// Constant format string; a dynamic format cannot be checked.
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return
		}
		if strings.Contains(constant.StringVal(tv.Value), "%w") {
			return
		}
		for _, arg := range call.Args[1:] {
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil || !types.Implements(t, errIface) {
				continue
			}
			if _, ok := dirs.Allow(call.Pos(), DirectiveName); ok {
				return
			}
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w, severing the errors.Is/As chain; wrap with %%w or return a typed error from errors.go (annotate //pglint:%s <reason> to flatten deliberately)", DirectiveName)
			return
		}
	})
	return nil, nil
}
