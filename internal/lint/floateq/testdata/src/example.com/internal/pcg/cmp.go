// Package pcg is a fixture for the float-comparison rules.
package pcg

import "math"

const DefaultTol = 1e-6

func Converged(res, prev float64) bool {
	return res == prev // want `exact == between computed floats`
}

func Stalled(res, prev float64) bool {
	return res != prev // want `exact != between computed floats`
}

func ZeroGuard(x float64) bool {
	return x == 0 // literal-zero guard stays legal
}

func IsNaN(x float64) bool {
	return x != x // the portable NaN test stays legal
}

func IsDefaultTol(tol float64) bool {
	return tol == DefaultTol // constant sentinel check stays legal
}

func IsMax(x float64) bool {
	return x == math.MaxFloat64 // stdlib constants too
}

func BitwiseReplay(a, b float64) bool {
	//pglint:float-exact determinism check: replay must match bit for bit, tolerance would hide drift
	return a == b
}

func Unjustified(a, b float64) bool {
	//pglint:float-exact // want `directive needs a reason`
	return a == b
}

func Tolerant(a, b float64) bool {
	return math.Abs(a-b) <= DefaultTol // the sanctioned comparison shape
}
