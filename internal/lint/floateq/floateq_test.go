package floateq_test

import (
	"testing"

	"powerrchol/internal/lint/floateq"
	"powerrchol/internal/lint/linttest"
)

func TestFloatEq(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), floateq.Analyzer,
		"example.com/internal/pcg",
	)
}
