// Package floateq flags == and != between computed floating-point
// expressions.
//
// Exact float comparison is almost always a rounding-error bug in a
// numerical code base: two mathematically equal quantities computed by
// different routes differ in the last ulps, so the comparison silently
// becomes "which code path ran". Three shapes stay legal because they are
// exact by construction:
//
//  1. comparison against a literal/constant zero (`if x == 0`) — the
//     standard guard against division by zero and empty accumulators;
//  2. self-comparison (`x != x`) — the portable NaN test;
//  3. comparison where either side is an untyped constant expression —
//     sentinel checks like `tol == DefaultTol` compare assignments, not
//     arithmetic.
//
// Anything else needs //pglint:float-exact <reason> (e.g. bitwise replay
// checks in determinism tooling).
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"powerrchol/internal/lint/directive"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "float-exact"

var Analyzer = &analysis.Analyzer{
	Name:     "floateq",
	Doc:      "flag ==/!= between computed floats; exact comparison hides rounding and makes behaviour depend on code path, not value",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(be.Pos()).Filename, "_test.go") {
			return
		}
		if isConstExpr(pass, be.X) || isConstExpr(pass, be.Y) {
			// Constant operands (0, math.MaxFloat64, DefaultTol, …) make the
			// comparison a sentinel check: the other side either holds that
			// exact bit pattern from an assignment or it does not.
			return
		}
		if sameSimpleExpr(be.X, be.Y) {
			return // x != x — the NaN idiom
		}
		if _, ok := dirs.Allow(be.Pos(), DirectiveName); ok {
			return
		}
		pass.Reportf(be.Pos(), "exact %s between computed floats compares rounding noise; use a tolerance (or math.Abs(a-b) <= eps), or annotate //pglint:%s <reason>", be.Op, DirectiveName)
	})
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether e is a compile-time constant (literal,
// named constant, or constant arithmetic).
func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown
}

// sameSimpleExpr matches identical identifier/selector/index chains, the
// shapes that occur in the x != x NaN test. Function calls never match:
// f() != f() genuinely runs twice.
func sameSimpleExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameSimpleExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameSimpleExpr(x.X, y.X) && sameSimpleExpr(x.Index, y.Index)
	case *ast.ParenExpr:
		return sameSimpleExpr(x.X, b)
	}
	if p, ok := b.(*ast.ParenExpr); ok {
		return sameSimpleExpr(a, p.X)
	}
	return false
}
