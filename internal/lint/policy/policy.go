// Package policy classifies the packages of this module for the pglint
// analyzers. The determinism and numerical-safety invariants are not
// uniform across the tree: the numeric kernels must be bitwise replayable
// from a seed, while the orchestration layer (solver front-end, benches,
// CLIs) legitimately reads wall-clock time for telemetry. This package is
// the single place that says which rules bind where, so the analyzers and
// the documentation cannot drift apart.
package policy

import "strings"

// numeric lists the module-relative paths of the numeric/ordering kernels:
// every package whose output feeds the factorization or the PCG iteration
// and therefore must be a pure function of (input matrix, seed). Inside
// these packages pglint bans ambient time, flags map-order-dependent
// iteration, and treats any nondeterminism as a bug. Subpackages inherit
// the classification.
var numeric = []string{
	"internal/amg",
	"internal/chol",
	"internal/core",
	"internal/fegrass",
	"internal/graph",
	"internal/ichol",
	"internal/merge",
	"internal/order",
	"internal/pcg",
	"internal/powergrid",
	"internal/rng",
	"internal/sparse",
}

// hot lists the numeric packages whose inner loops are the measured
// bottleneck of every solve: the sparse kernels, the factorizations, and
// the PCG iteration. Inside these packages the hotalloc analyzer treats a
// heap allocation in an innermost loop (or in a helper such a loop calls)
// as a defect: the paper's O(|Nk|) clique-sampling complexity and the
// parallel SpMV/trisolve throughput are both erased by per-iteration heap
// churn. Subpackages inherit the classification.
var hot = []string{
	"internal/chol",
	"internal/core",
	"internal/pcg",
	"internal/sparse",
}

// orchestration lists the packages that compose and drive the numeric
// kernels without being kernels themselves: the setup pipeline that
// wires transform/order/factorize stages together and owns the recovery
// ladder. Orchestration code legitimately reads wall-clock time (it
// reports the paper's T_r/T_f/T_i timings), so the time.Now ban does not
// apply — but it carries every context and sits on every setup path, so
// the ctxflow loop-cancellation rule and the hotalloc loop-allocation
// rules sweep it exactly like the kernels. Subpackages inherit the
// classification.
var orchestration = []string{
	"internal/pipeline",
	// The solve service and its daemon: long-lived concurrency plumbing
	// (admission gate, micro-batcher, solver cache, drain) where a
	// goroutine without termination evidence or an un-cancellable loop
	// is an outage, not a style nit.
	"internal/serve",
	"cmd/pgserved",
	// The prepared-solve session layer and the workload studies built on
	// it (transient, Monte Carlo): they own the RHS-stream machinery —
	// batch dispatchers, ensemble fan-out, ctx-polled step loops — and
	// their study statistics carry the same bitwise-per-seed contract
	// the kernels do, so detflow sweeps them too.
	"internal/session",
	"internal/workload",
	"cmd/pgstudy",
}

// randSanctioned lists the packages allowed to import math/rand: only the
// seeded-generator package itself, which exists precisely so nothing else
// has to. (It currently implements splitmix64 without stdlib rand; the
// exemption is for its own tests and future internals, not for callers.)
var randSanctioned = []string{
	"internal/rng",
}

// Rel reduces an import path to its module-relative form so the same
// policy tables work for the real module ("powerrchol/internal/core") and
// for analyzer test fixtures ("example.com/internal/core"). Paths that do
// not contain an internal/ or cmd/ segment (the module root, examples)
// are returned unchanged.
func Rel(path string) string {
	for _, marker := range []string{"internal/", "cmd/"} {
		if i := strings.Index(path, marker); i >= 0 && (i == 0 || path[i-1] == '/') {
			return path[i:]
		}
	}
	return path
}

func inSet(path string, set []string) bool {
	rel := Rel(path)
	for _, p := range set {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Numeric reports whether the package at path is a numeric/ordering
// kernel, i.e. subject to the strict determinism rules (maprange, the
// time.Now ban).
func Numeric(path string) bool { return inSet(path, numeric) }

// RandSanctioned reports whether the package at path may import
// math/rand or math/rand/v2.
func RandSanctioned(path string) bool { return inSet(path, randSanctioned) }

// Hot reports whether the package at path is a hot kernel package, i.e.
// subject to the hotalloc innermost-loop allocation rules.
func Hot(path string) bool { return inSet(path, hot) }

// HotPackages returns the module-relative paths of the hot kernel
// packages — the surface pgoptcheck compiles with diagnostic flags and
// holds to the bounds-check contract. Returned as a copy so callers
// cannot mutate the policy table.
func HotPackages() []string {
	out := make([]string, len(hot))
	copy(out, hot)
	return out
}

// Orchestration reports whether the package at path is kernel
// orchestration: not a numeric kernel (ambient time allowed for phase
// timings), but swept by the ctxflow loop-cancellation rule and the
// hotalloc loop-allocation rules all the same.
func Orchestration(path string) bool { return inSet(path, orchestration) }

// Deterministic reports whether the determinism-taint rules (detflow)
// bind at path: the numeric kernels (bitwise replayable per seed by
// contract), the orchestration layer (it assembles Result values and
// feeds the fingerprint referee), and the module-root API package whose
// Result types carry the reproducibility guarantee to callers. Binaries
// and examples stay out: they format and print, they do not produce
// contract-bearing values.
func Deterministic(path string) bool {
	if Numeric(path) || Orchestration(path) {
		return true
	}
	rel := Rel(path)
	return rel == path && Library(path)
}

// Library reports whether the package at path is library code, i.e. code
// that must receive its context from the caller rather than minting one
// with context.Background/TODO. Binaries (cmd/*) and runnable examples
// are the process entry points where a root context legitimately
// originates; everything else — the module root API and every internal
// package — is library.
func Library(path string) bool {
	rel := Rel(path)
	if strings.HasPrefix(rel, "cmd/") {
		return false
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "examples" {
			return false
		}
	}
	return true
}
