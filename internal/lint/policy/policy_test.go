package policy

import "testing"

func TestRel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"powerrchol/internal/core", "internal/core"},
		{"example.com/internal/order", "internal/order"},
		{"powerrchol/cmd/pglint", "cmd/pglint"},
		{"powerrchol", "powerrchol"},
		{"example.com/sprinternal/x", "example.com/sprinternal/x"}, // no false match mid-segment
	} {
		if got := Rel(tc.in); got != tc.want {
			t.Errorf("Rel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestClassification(t *testing.T) {
	for _, tc := range []struct {
		path            string
		numeric, randOK bool
	}{
		{"powerrchol/internal/core", true, false},
		{"powerrchol/internal/core/sub", true, false},
		{"powerrchol/internal/order", true, false},
		{"powerrchol/internal/rng", true, true},
		{"powerrchol/internal/bench", false, false},
		{"powerrchol", false, false},
		{"powerrchol/cmd/pgsolve", false, false},
		{"powerrchol/internal/corex", false, false}, // prefix must respect path segments
	} {
		if got := Numeric(tc.path); got != tc.numeric {
			t.Errorf("Numeric(%q) = %v, want %v", tc.path, got, tc.numeric)
		}
		if got := RandSanctioned(tc.path); got != tc.randOK {
			t.Errorf("RandSanctioned(%q) = %v, want %v", tc.path, got, tc.randOK)
		}
	}
}
