// Package core is a fixture for the sync.Pool Get/Put balance rules.
package core

import "sync"

type factor struct {
	pool sync.Pool
	n    int
}

// Leak: the error path returns without recycling the scratch.
func (f *factor) Bad(fail bool) error {
	buf := f.pool.Get().([]float64) // want `can reach a function exit without a Put`
	if fail {
		return errFail
	}
	use(buf)
	f.pool.Put(buf)
	return nil
}

// Deferred Put covers every return path.
func (f *factor) Deferred(fail bool) error {
	buf := f.pool.Get().([]float64)
	defer f.pool.Put(buf)
	if fail {
		return errFail
	}
	use(buf)
	return nil
}

// Put on each explicit path is also fine.
func (f *factor) AllPaths(fail bool) error {
	buf := f.pool.Get().([]float64)
	if fail {
		f.pool.Put(buf)
		return errFail
	}
	use(buf)
	f.pool.Put(buf)
	return nil
}

// A deferred closure that recycles covers the Get too.
func (f *factor) DeferredClosure(fail bool) error {
	buf := f.pool.Get().([]float64)
	defer func() {
		f.pool.Put(buf)
	}()
	if fail {
		return errFail
	}
	use(buf)
	return nil
}

// The value intentionally escapes with a release callback.
func (f *factor) Escapes() ([]float64, func()) {
	//pglint:pool-escapes scratch is handed to the caller; the returned release func recycles it
	buf := f.pool.Get().([]float64)
	return buf, func() { f.pool.Put(buf) }
}

// Two pools in one function: only the leaked one is reported.
func (f *factor) TwoPools(other *sync.Pool, fail bool) {
	a := f.pool.Get().([]float64)
	defer f.pool.Put(a)
	b := other.Get().([]float64) // want `can reach a function exit without a Put`
	if fail {
		return
	}
	use(b)
	other.Put(b)
}

func use([]float64) {}

var errFail = errOf("fail")

type errOf string

func (e errOf) Error() string { return string(e) }
