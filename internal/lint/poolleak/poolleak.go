// Package poolleak flags sync.Pool.Get calls that can reach a function
// exit without the value being Put back.
//
// The solver's scratch pools (core.Factor, amg, ssor) exist so concurrent
// SolveBatch workers reuse per-solve buffers instead of allocating them;
// a Get whose Put is skipped on an early-return or error path silently
// degrades the pool back to an allocator and, worse, hides aliasing bugs
// that the race suite relies on the pool to expose. The analysis is
// control-flow aware: for every Get on pool p it walks the function's CFG
// and reports if some path reaches an exit without passing a Put on p.
// A deferred Put — directly or inside a deferred closure — covers all
// paths. Values that intentionally escape the function (handed to the
// caller with a release callback) are annotated
// //pglint:pool-escapes <reason>.
package poolleak

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"powerrchol/internal/lint/directive"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "pool-escapes"

var Analyzer = &analysis.Analyzer{
	Name:     "poolleak",
	Doc:      "flag sync.Pool.Get whose value can reach a function exit without a matching Put",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, dirs, fn.Body, cfgs.FuncDecl(fn))
				}
			case *ast.FuncLit:
				checkFunc(pass, dirs, fn.Body, cfgs.FuncLit(fn))
			}
			return true
		})
	}
	return nil, nil
}

// poolCall identifies one Get/Put call: the call node plus the canonical
// spelling of its receiver (e.g. "f.pool").
type poolCall struct {
	call *ast.CallExpr
	key  string
}

func checkFunc(pass *analysis.Pass, dirs *directive.Index, body *ast.BlockStmt, g *cfg.CFG) {
	gets, puts := collect(pass, body, false)
	if len(gets) == 0 {
		return
	}
	// Puts made inside nested closures (deferred cleanups, release
	// callbacks built in this function) cover the key outright: the CFG of
	// this function cannot see when they run, so treat them as intent.
	_, closurePuts := collect(pass, body, true)
	closureCovered := map[string]bool{}
	for _, p := range closurePuts {
		closureCovered[p.key] = true
	}
	deferred := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if key, ok := poolMethod(pass, d.Call, "Put"); ok {
			deferred[key] = true
		}
		return true
	})

	putNodes := map[string][]*ast.CallExpr{}
	for _, p := range puts {
		putNodes[p.key] = append(putNodes[p.key], p.call)
	}

	for _, get := range gets {
		if deferred[get.key] || closureCovered[get.key] {
			continue
		}
		if _, ok := dirs.Allow(get.call.Pos(), DirectiveName); ok {
			continue
		}
		if g == nil || leaks(g, get, putNodes[get.key]) {
			pass.Reportf(get.call.Pos(), "sync.Pool Get on %s can reach a function exit without a Put: every return path must recycle the scratch (defer %s.Put(…) is the safe shape), or annotate //pglint:%s <reason>", get.key, get.key, DirectiveName)
		}
	}
}

// leaks reports whether some CFG path from the Get reaches an exit block
// without passing one of the puts.
func leaks(g *cfg.CFG, get poolCall, puts []*ast.CallExpr) bool {
	hasPut := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			for _, p := range puts {
				if m == p {
					found = true
				}
			}
			return !found
		})
		return found
	}
	contains := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if m == get.call {
				found = true
			}
			return !found
		})
		return found
	}

	// canEscape[b] = some path from the start of b reaches an exit without
	// crossing a Put. Cycles resolve to false (a loop that never exits
	// cannot leak at an exit).
	memo := map[*cfg.Block]int{} // 0 unknown / in progress, 1 true, 2 false
	var canEscape func(b *cfg.Block) bool
	canEscape = func(b *cfg.Block) bool {
		switch memo[b] {
		case 1:
			return true
		case 2:
			return false
		}
		memo[b] = 2 // in-progress: break cycles pessimistically (no leak)
		for _, n := range b.Nodes {
			if hasPut(n) {
				return false
			}
		}
		if len(b.Succs) == 0 {
			memo[b] = 1
			return true
		}
		for _, s := range b.Succs {
			if canEscape(s) {
				memo[b] = 1
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			if !contains(n) {
				continue
			}
			// Rest of this block after the Get, then successors.
			for _, rest := range b.Nodes[i:] {
				if hasPut(rest) && rest != n {
					return false
				}
			}
			if hasPut(n) && n != get.call {
				return false // same statement also Puts (rare, but exact)
			}
			if len(b.Succs) == 0 {
				return true
			}
			for _, s := range b.Succs {
				if canEscape(s) {
					return true
				}
			}
			return false
		}
	}
	// Get not found in the CFG (dead code): nothing to report.
	return false
}

// collect gathers Get and Put calls on sync.Pool receivers under root.
// With closures false it skips nested function literals (they are scopes
// of their own); with closures true it returns only the calls inside
// nested literals.
func collect(pass *analysis.Pass, root *ast.BlockStmt, closures bool) (gets, puts []poolCall) {
	var walk func(n ast.Node, inClosure bool)
	walk = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok && m != n {
				walk(lit.Body, true)
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, ok := poolMethod(pass, call, "Get"); ok && inClosure == closures {
				gets = append(gets, poolCall{call, key})
			}
			if key, ok := poolMethod(pass, call, "Put"); ok && inClosure == closures {
				puts = append(puts, poolCall{call, key})
			}
			return true
		})
	}
	walk(root, false)
	return gets, puts
}

// poolMethod reports whether call is pool.<name>() on a sync.Pool and
// returns the canonical receiver spelling.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !strings.Contains(recv.Type().String(), "sync.Pool") {
		return "", false
	}
	return exprKey(sel.X), true
}

// exprKey renders an ident/selector chain ("p", "f.pool"); other shapes
// get a position-independent fallback that never matches across sites.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.UnaryExpr:
		return exprKey(x.X)
	}
	return "?"
}
