package poolleak_test

import (
	"testing"

	"powerrchol/internal/lint/linttest"
	"powerrchol/internal/lint/poolleak"
)

func TestPoolLeak(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), poolleak.Analyzer,
		"example.com/internal/core",
	)
}
