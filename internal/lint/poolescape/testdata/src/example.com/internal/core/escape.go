// Package core is a fixture for the sync.Pool escape rules.
package core

import "sync"

var scratch sync.Pool

var global []float64

type solver struct {
	pool sync.Pool
	buf  []float64
}

// Allowed: get, use locally, put.
func (s *solver) Solve(b []float64) {
	w := s.pool.Get().([]float64)
	defer s.pool.Put(w)
	for i := range b {
		w[i] = b[i]
	}
}

// Flagged: the returned alias outlives Put — the next Get hands the same
// backing array to another solve.
func (s *solver) Leak() []float64 {
	w := s.pool.Get().([]float64)
	s.pool.Put(w)
	return w // want `pooled w is returned`
}

// Flagged: a derived slice is the same backing array.
func (s *solver) LeakSlice(n int) []float64 {
	w := s.pool.Get().([]float64)
	s.pool.Put(w)
	return w[:n] // want `pooled w is returned`
}

// Flagged: comma-ok assertion binds the same pooled value.
func LeakCommaOK() []float64 {
	w, ok := scratch.Get().([]float64)
	if !ok {
		return nil
	}
	return w // want `pooled w is returned`
}

// Flagged: storing the pooled buffer into receiver state.
func (s *solver) Cache() {
	w := s.pool.Get().([]float64)
	s.buf = w // want `stored to state that outlives the call`
	s.pool.Put(w)
}

// Flagged: publishing to a package-level variable.
func Publish() {
	w := scratch.Get().([]float64)
	global = w // want `stored to state that outlives the call`
	scratch.Put(w)
}

// Flagged: a goroutine keeps reading the buffer after Put recycles it.
func Race(b []float64) {
	w := scratch.Get().([]float64)
	go func() { // want `captured by a closure that outlives the call as a goroutine`
		for i := range w {
			w[i] = b[i]
		}
	}()
	scratch.Put(w)
}

// Allowed: a deferred closure stays inside the frame.
func Deferred(b []float64) {
	w := scratch.Get().([]float64)
	defer func() {
		scratch.Put(w)
	}()
	for i := range b {
		w[i] = b[i]
	}
}

// Allowed: handing the buffer to a callee — its frame ends before Put.
func Delegate(b []float64) {
	w := scratch.Get().([]float64)
	lowerSolve(w, b)
	scratch.Put(w)
}

func lowerSolve(w, b []float64) {
	for i := range b {
		w[i] = b[i]
	}
}

// Allowed: annotated ownership transfer.
func Handoff() []float64 {
	w := scratch.Get().([]float64)
	//pglint:poolescape ownership transfers to the caller, which must Release
	return w
}
