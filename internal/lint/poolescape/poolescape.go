// Package poolescape flags sync.Pool values that alias out of their
// owning function before Put — the other half of the pool contract.
//
// PR 3's poolleak proves every Get reaches a Put on every path; it says
// nothing about the value ALSO surviving somewhere else. A pooled buffer
// stored into a struct field, returned to the caller, or captured by a
// goroutine keeps being read after Put hands it to the next solve — the
// exact aliasing bug the concurrency suite exists to catch, except the
// race detector only sees it when two solves actually collide on the
// recycled buffer. This analyzer makes the aliasing itself the defect:
//
//   - returning a pooled value (or anything derived from it by slicing);
//   - storing it into a package-level variable, or into a field/element
//     of a receiver or parameter — state that outlives the call;
//   - capturing it in a closure that escapes: one spawned by go,
//     returned, or stored as above.
//
// Handing the value to a callee (LowerSolve(f.L, w)) is fine — the
// callee's frame ends before Put. The deliberate hand-off-with-release
// pattern is annotated //pglint:poolescape <reason>.
package poolescape

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/ssalite"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "poolescape"

var Analyzer = &analysis.Analyzer{
	Name:     "poolescape",
	Doc:      "sync.Pool values must not be returned, stored to escaping state, or captured by escaping closures before Put",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)

	for _, fn := range prog.Funcs {
		if fn.Parent != nil {
			continue // literals are scanned as part of their root function
		}
		if strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		check(pass, dirs, prog, fn)
	}
	return nil, nil
}

// check finds every pooled binding in fn (nested literals included) and
// scans the whole declaration for escapes of that binding.
func check(pass *analysis.Pass, dirs *directive.Index, prog *ssalite.Program, fn *ssalite.Function) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isPoolGet(pass, rhs) || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil {
				continue
			}
			scanEscapes(pass, dirs, prog, fn, obj)
		}
		return true
	})
}

// isPoolGet matches pool.Get() optionally wrapped in a type assertion or
// conversion: `w := p.Get().([]float64)`.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return isPoolGet(pass, x.X)
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return isPoolGet(pass, x.Args[0]) // conversion wrapper
		}
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" {
			return false
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return false
		}
		recv := fn.Type().(*types.Signature).Recv()
		return recv != nil && strings.Contains(recv.Type().String(), "sync.Pool")
	}
	return false
}

// scanEscapes walks the root function for ways obj leaves the frame.
func scanEscapes(pass *analysis.Pass, dirs *directive.Index, prog *ssalite.Program, root *ssalite.Function, obj types.Object) {
	report := func(n ast.Node, how string) {
		if _, ok := dirs.Allow(n.Pos(), DirectiveName); ok {
			return
		}
		pass.Reportf(n.Pos(), "pooled %s %s before Put: the next Get hands the same buffer to another solve while this alias still reads it; copy the data out, or annotate //pglint:%s <reason>", obj.Name(), how, DirectiveName)
	}

	ast.Inspect(root.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			// Returning from the function that owns the binding (or from a
			// closure, which hands the alias to the closure's caller).
			for _, res := range x.Results {
				if usesObj(pass, res, obj) {
					report(x, "is returned")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !usesObj(pass, rhs, obj) {
					continue
				}
				if isPoolGet(pass, rhs) {
					continue // the binding itself
				}
				if i < len(x.Lhs) && escapingLHS(pass, root, x.Lhs[i]) {
					report(x, "is stored to state that outlives the call")
				}
			}
		case *ast.FuncLit:
			sub := prog.FuncOf(x.Body)
			if sub == nil || !capturesObj(sub, obj) {
				return true
			}
			if how, esc := litEscapes(pass, prog, root, x); esc {
				report(x, "is captured by a closure that "+how)
			}
		}
		return true
	})
}

// usesObj reports whether expr mentions obj (directly, sliced, indexed,
// or inside a composite literal).
func usesObj(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objOf(pass, id) == obj {
			found = true
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // capture is judged separately, by litEscapes
		}
		return true
	})
	return found
}

// escapingLHS reports whether assigning to lhs publishes the value past
// the function: a package-level variable, or a field/element of a
// receiver, parameter, or package-level variable.
func escapingLHS(pass *analysis.Pass, root *ssalite.Function, lhs ast.Expr) bool {
	base := baseIdent(lhs)
	if base == nil {
		return false
	}
	obj := objOf(pass, base)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Parent() == pass.Pkg.Scope() {
		return true // package-level variable (or any selector/index on it)
	}
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Writing through a receiver/parameter stores into caller-owned
		// memory.
		return isParamOrRecv(root, v)
	}
	return false
}

func isParamOrRecv(root *ssalite.Function, v *types.Var) bool {
	if root.Decl != nil && root.Decl.Recv != nil {
		for _, f := range root.Decl.Recv.List {
			for _, name := range f.Names {
				if name.Name == v.Name() && name.Pos() == v.Pos() {
					return true
				}
			}
		}
	}
	if root.Sig != nil {
		params := root.Sig.Params()
		for i := 0; i < params.Len(); i++ {
			if params.At(i) == v {
				return true
			}
		}
	}
	return false
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func capturesObj(f *ssalite.Function, obj types.Object) bool {
	for _, v := range f.FreeVars {
		if v == obj {
			return true
		}
	}
	return false
}

// litEscapes reports whether the closure value itself leaves the frame:
// spawned by go, returned, or stored to escaping state. Deferred and
// plain calls keep it inside.
func litEscapes(pass *analysis.Pass, prog *ssalite.Program, root *ssalite.Function, lit *ast.FuncLit) (string, bool) {
	var how string
	ast.Inspect(root.Body, func(n ast.Node) bool {
		if how != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			if ast.Unparen(x.Call.Fun) == lit {
				how = "outlives the call as a goroutine"
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if containsNode(res, lit) {
					how = "is returned"
					return false
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if containsNode(rhs, lit) && i < len(x.Lhs) && escapingLHS(pass, root, x.Lhs[i]) {
					how = "is stored to state that outlives the call"
					return false
				}
			}
		}
		return true
	})
	return how, how != ""
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
