package poolescape_test

import (
	"testing"

	"powerrchol/internal/lint/linttest"
	"powerrchol/internal/lint/poolescape"
)

func TestPoolEscape(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), poolescape.Analyzer,
		"example.com/internal/core",
	)
}
