// Package bannedimport bans ambient randomness and ambient time from the
// solver packages.
//
// Every randomized algorithm in this repository (RChol, LT-RChol, the
// recovery ladder's reseeding) must be bitwise replayable from
// Options.Seed. math/rand and math/rand/v2 are therefore forbidden
// everywhere except internal/rng, the sanctioned seeded generator; a
// kernel that wants randomness threads a *rng.Rand through its API.
// time.Now is forbidden inside the numeric kernels (see
// internal/lint/policy): a factorization or ordering that reads the clock
// cannot be replayed. The orchestration layer (root package, cmd/*,
// internal/bench) may time things for telemetry.
//
// Suppress with //pglint:ambient-ok <reason>.
package bannedimport

import (
	"go/ast"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "ambient-ok"

var Analyzer = &analysis.Analyzer{
	Name:     "bannedimport",
	Doc:      "forbid math/rand anywhere and time.Now in numeric kernels; randomness must come from internal/rng, seeded via Options",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	pkg := pass.Pkg.Path()

	testFile := func(n ast.Node) bool {
		name := pass.Fset.Position(n.Pos()).Filename
		return strings.HasSuffix(name, "_test.go")
	}

	for _, f := range pass.Files {
		if testFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == "math/rand" || path == "math/rand/v2") && !policy.RandSanctioned(pkg) {
				if _, ok := dirs.Allow(imp.Pos(), DirectiveName); ok {
					continue
				}
				pass.Reportf(imp.Pos(), "import of %s is banned: draw randomness from internal/rng and thread the seed from Options so runs are replayable", path)
			}
		}
	}

	if !policy.Numeric(pkg) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || obj.Name() != "Now" {
			return
		}
		if testFile(sel) {
			return
		}
		if _, ok := dirs.Allow(sel.Pos(), DirectiveName); ok {
			return
		}
		pass.Reportf(sel.Pos(), "time.Now in numeric kernel package %s breaks seed replayability: kernels must be pure functions of (input, seed); time belongs in the orchestration layer", pkg)
	})
	return nil, nil
}
