// Package telemetry is orchestration-layer code: wall-clock timing is
// legitimate here, but ambient randomness is still banned.
package telemetry

import (
	"math/rand" // want `import of math/rand is banned`
	"time"
)

func Timestamp() time.Time {
	return time.Now() // allowed: not a numeric kernel package
}

func Jitter() float64 {
	return rand.Float64()
}
