// Package rng is the sanctioned randomness source: it alone may import
// math/rand (e.g. to cross-check its own generator).
package rng

import "math/rand"

func Reference(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
