// Package core is a fixture standing in for a numeric kernel package:
// math/rand and time.Now are both banned here.
package core

import (
	"math/rand" // want `import of math/rand is banned`
	"time"
)

func Sample() float64 {
	return rand.Float64()
}

func Stamp() int64 {
	return time.Now().Unix() // want `time.Now in numeric kernel package`
}

func Elapsed(t0 time.Time) time.Duration {
	// Using the time package for types and arithmetic is fine; only
	// reading the ambient clock is banned.
	return time.Since(t0)
}

func Sanctioned() int64 {
	//pglint:ambient-ok fixture: demonstrating an annotated clock read
	return time.Now().UnixNano()
}

func Unjustified() int64 {
	//pglint:ambient-ok // want `directive needs a reason`
	return time.Now().UnixNano()
}
