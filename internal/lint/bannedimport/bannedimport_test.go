package bannedimport_test

import (
	"testing"

	"powerrchol/internal/lint/bannedimport"
	"powerrchol/internal/lint/linttest"
)

func TestBannedImport(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), bannedimport.Analyzer,
		"example.com/internal/core",
		"example.com/internal/rng",
		"example.com/telemetry",
	)
}
