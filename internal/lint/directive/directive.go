// Package directive parses //pglint: suppression annotations.
//
// Grammar (reason mandatory):
//
//	//pglint:<name> <reason>
//
// The directive suppresses a pglint finding on the same source line, or —
// when written as a standalone comment — on the next source line. Each
// analyzer owns a fixed directive name (e.g. maprange honors
// pglint:ordered-irrelevant); a directive never silences an analyzer it
// does not belong to. A directive without a reason is itself reported by
// the owning analyzer: the whole point of the annotation is to leave a
// written justification in the code.
//
// A single comment may carry several directives back to back —
// //pglint:a <reason> //pglint:b <reason> — when one line trips more than
// one analyzer; each directive's reason runs up to the next //pglint:
// marker. When one justification covers several analyzers, the names may
// be comma-separated in a single directive — //pglint:a,b <reason> —
// which parses to one Directive per name, all sharing the reason. A
// directive whose name matches no registered analyzer is dead
// weight and is reported by the suite (see ReportUnknown): it suppresses
// nothing, and silently keeping it around hides the typo that disarmed a
// suppression.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment marker, with no space after // — the same
// convention as //go: build directives, so gofmt leaves it alone.
const Prefix = "//pglint:"

// A Directive is one parsed //pglint: annotation.
type Directive struct {
	Name   string    // e.g. "ordered-irrelevant"
	Reason string    // justification text; "" is malformed
	Pos    token.Pos // position of the comment
	Line   int       // line the directive applies to (its own line)
}

// Parse extracts every pglint directive from the text of one comment.
// Pos and Line are left zero: they are position facts of the enclosing
// file, filled in by the Index. Parse is a pure function of its input so
// it can be table- and fuzz-tested without a token.FileSet; it tolerates
// CRLF line endings and trailing whitespace, and splits multi-directive
// comments at each //pglint: marker.
func Parse(text string) []Directive {
	if !strings.HasPrefix(text, Prefix) {
		return nil
	}
	// Comment text from go/parser is a single logical line for // comments,
	// but raw text handed to Parse (fuzzing, CRLF sources) may carry \r or
	// embedded newlines: a directive never spans lines.
	text = strings.TrimRight(text, "\r\n")
	if i := strings.IndexAny(text, "\n\r"); i >= 0 {
		text = text[:i]
	}
	var out []Directive
	for _, chunk := range splitDirectives(text) {
		rest := strings.TrimPrefix(chunk, Prefix)
		names, reason, _ := strings.Cut(rest, " ")
		// Tolerate a trailing analysistest-style expectation so fixture files
		// can assert on malformed directives: it is never part of the reason.
		if i := strings.Index(reason, "// want"); i >= 0 {
			reason = reason[:i]
		}
		reason = strings.TrimSpace(reason)
		// //pglint:a,b <reason> suppresses both a and b with one written
		// justification — one line can trip two analyzers (a map-order
		// accumulation is both a maprange and a detflow finding).
		for _, name := range strings.Split(names, ",") {
			out = append(out, Directive{Name: name, Reason: reason})
		}
	}
	return out
}

// splitDirectives cuts a comment at each //pglint: marker, so
// "//pglint:a x //pglint:b y" yields two chunks each starting with the
// prefix.
func splitDirectives(text string) []string {
	var chunks []string
	for {
		next := strings.Index(text[len(Prefix):], Prefix)
		if next < 0 {
			chunks = append(chunks, text)
			return chunks
		}
		cut := next + len(Prefix)
		chunks = append(chunks, strings.TrimRight(text[:cut], " \t"))
		text = text[cut:]
	}
}

// An Index holds every pglint directive of a package, keyed by file line.
type Index struct {
	fset  *token.FileSet
	byPos map[string]map[int][]Directive // filename -> line -> directives
}

// New scans all files of the pass and indexes their pglint directives.
func New(pass *analysis.Pass) *Index {
	ix := &Index{fset: pass.Fset, byPos: make(map[string]map[int][]Directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ix.add(c)
			}
		}
	}
	return ix
}

func (ix *Index) add(c *ast.Comment) {
	ds := Parse(c.Text)
	if len(ds) == 0 {
		return
	}
	pos := ix.fset.Position(c.Pos())
	m := ix.byPos[pos.Filename]
	if m == nil {
		m = make(map[int][]Directive)
		ix.byPos[pos.Filename] = m
	}
	for _, d := range ds {
		d.Pos = c.Pos()
		d.Line = pos.Line
		m[d.Line] = append(m[d.Line], d)
	}
}

// Allow reports whether a directive with the given name covers pos: either
// trailing on the same line, or a standalone comment on the line directly
// above. The matched directive is returned so callers can validate it.
func (ix *Index) Allow(pos token.Pos, name string) (Directive, bool) {
	p := ix.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range ix.byPos[p.Filename][line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Validate reports, via pass.Report, every directive named name whose
// reason is empty. Each analyzer calls this for the directive names it
// owns, so a justification-free suppression fails the lint gate instead of
// silently widening it.
func (ix *Index) Validate(pass *analysis.Pass, name string) {
	for _, lines := range ix.byPos {
		for _, ds := range lines {
			for _, d := range ds {
				if d.Name == name && d.Reason == "" {
					pass.Reportf(d.Pos, "pglint:%s directive needs a reason: write //pglint:%s <why this is safe>", name, name)
				}
			}
		}
	}
}

// ReportUnknown reports every directive whose name is not in known. A
// misspelled directive suppresses nothing — the finding it was meant to
// silence still fires — but the comment outlives the finding and reads as
// an active suppression, so it must be flagged. Exactly one analyzer in
// the suite calls this (ctxflow, which runs on every package), keeping
// each unknown name reported once per file.
func (ix *Index) ReportUnknown(pass *analysis.Pass, known []string) {
	isKnown := func(name string) bool {
		for _, k := range known {
			if name == k {
				return true
			}
		}
		return false
	}
	for _, lines := range ix.byPos {
		for _, ds := range lines {
			for _, d := range ds {
				if !isKnown(d.Name) {
					pass.Reportf(d.Pos, "pglint:%s does not name any pglint directive (it suppresses nothing); the suite honors: %s", d.Name, strings.Join(known, ", "))
				}
			}
		}
	}
}
