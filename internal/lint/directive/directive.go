// Package directive parses //pglint: suppression annotations.
//
// Grammar (one directive per comment, reason mandatory):
//
//	//pglint:<name> <reason>
//
// The directive suppresses a pglint finding on the same source line, or —
// when written as a standalone comment — on the next source line. Each
// analyzer owns a fixed directive name (e.g. maprange honors
// pglint:ordered-irrelevant); a directive never silences an analyzer it
// does not belong to. A directive without a reason is itself reported by
// the owning analyzer: the whole point of the annotation is to leave a
// written justification in the code.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment marker, with no space after // — the same
// convention as //go: build directives, so gofmt leaves it alone.
const Prefix = "//pglint:"

// A Directive is one parsed //pglint: annotation.
type Directive struct {
	Name   string    // e.g. "ordered-irrelevant"
	Reason string    // justification text; "" is malformed
	Pos    token.Pos // position of the comment
	Line   int       // line the directive applies to (its own line)
}

// An Index holds every pglint directive of a package, keyed by file line.
type Index struct {
	fset  *token.FileSet
	byPos map[string]map[int][]Directive // filename -> line -> directives
}

// New scans all files of the pass and indexes their pglint directives.
func New(pass *analysis.Pass) *Index {
	ix := &Index{fset: pass.Fset, byPos: make(map[string]map[int][]Directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ix.add(c)
			}
		}
	}
	return ix
}

func (ix *Index) add(c *ast.Comment) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, Prefix)
	name, reason, _ := strings.Cut(rest, " ")
	// Tolerate a trailing analysistest-style expectation so fixture files
	// can assert on malformed directives: it is never part of the reason.
	if i := strings.Index(reason, "// want"); i >= 0 {
		reason = reason[:i]
	}
	pos := ix.fset.Position(c.Pos())
	d := Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos(), Line: pos.Line}
	m := ix.byPos[pos.Filename]
	if m == nil {
		m = make(map[int][]Directive)
		ix.byPos[pos.Filename] = m
	}
	m[d.Line] = append(m[d.Line], d)
}

// Allow reports whether a directive with the given name covers pos: either
// trailing on the same line, or a standalone comment on the line directly
// above. The matched directive is returned so callers can validate it.
func (ix *Index) Allow(pos token.Pos, name string) (Directive, bool) {
	p := ix.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range ix.byPos[p.Filename][line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Validate reports, via pass.Report, every directive named name whose
// reason is empty. Each analyzer calls this for the directive names it
// owns, so a justification-free suppression fails the lint gate instead of
// silently widening it.
func (ix *Index) Validate(pass *analysis.Pass, name string) {
	for _, lines := range ix.byPos {
		for _, ds := range lines {
			for _, d := range ds {
				if d.Name == name && d.Reason == "" {
					pass.Reportf(d.Pos, "pglint:%s directive needs a reason: write //pglint:%s <why this is safe>", name, name)
				}
			}
		}
	}
}
