package directive

import (
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParse(t *testing.T) {
	cases := []struct {
		name string
		text string
		want []Directive
	}{
		{
			name: "not a directive",
			text: "// ordinary comment",
			want: nil,
		},
		{
			name: "space after slashes disqualifies",
			text: "// pglint:maprange reason",
			want: nil,
		},
		{
			name: "simple",
			text: "//pglint:ordered-irrelevant keys are sorted first",
			want: []Directive{{Name: "ordered-irrelevant", Reason: "keys are sorted first"}},
		},
		{
			name: "reasonless is parsed, reason empty",
			text: "//pglint:hotalloc",
			want: []Directive{{Name: "hotalloc", Reason: ""}},
		},
		{
			name: "reason whitespace trimmed",
			text: "//pglint:ctxflow   padded reason\t ",
			want: []Directive{{Name: "ctxflow", Reason: "padded reason"}},
		},
		{
			name: "crlf stripped",
			text: "//pglint:goroleak lives as long as the process\r\n",
			want: []Directive{{Name: "goroleak", Reason: "lives as long as the process"}},
		},
		{
			name: "embedded newline cuts the directive",
			text: "//pglint:goroleak first line\nnot part of it",
			want: []Directive{{Name: "goroleak", Reason: "first line"}},
		},
		{
			name: "unknown names still parse (ReportUnknown flags them)",
			text: "//pglint:nosuchrule because typos must surface",
			want: []Directive{{Name: "nosuchrule", Reason: "because typos must surface"}},
		},
		{
			name: "multiple directives per comment",
			text: "//pglint:maprange keys sorted //pglint:hotalloc amortized growth",
			want: []Directive{
				{Name: "maprange", Reason: "keys sorted"},
				{Name: "hotalloc", Reason: "amortized growth"},
			},
		},
		{
			name: "second directive reasonless",
			text: "//pglint:maprange keys sorted //pglint:hotalloc",
			want: []Directive{
				{Name: "maprange", Reason: "keys sorted"},
				{Name: "hotalloc", Reason: ""},
			},
		},
		{
			name: "comma-joined names share one reason",
			text: "//pglint:lockcheck,detflow handoff is fenced by wg.Wait",
			want: []Directive{
				{Name: "lockcheck", Reason: "handoff is fenced by wg.Wait"},
				{Name: "detflow", Reason: "handoff is fenced by wg.Wait"},
			},
		},
		{
			name: "comma-joined reasonless pair stays reasonless",
			text: "//pglint:maprange,detflow",
			want: []Directive{
				{Name: "maprange", Reason: ""},
				{Name: "detflow", Reason: ""},
			},
		},
		{
			name: "comma list composes with back-to-back directives",
			text: "//pglint:a,b shared //pglint:c own",
			want: []Directive{
				{Name: "a", Reason: "shared"},
				{Name: "b", Reason: "shared"},
				{Name: "c", Reason: "own"},
			},
		},
		{
			name: "trailing comma yields an empty name (ReportUnknown flags it)",
			text: "//pglint:lockcheck, reason",
			want: []Directive{
				{Name: "lockcheck", Reason: "reason"},
				{Name: "", Reason: "reason"},
			},
		},
		{
			name: "trailing want expectation is not part of the reason",
			text: "//pglint:ctxflow // want `needs a reason`",
			want: []Directive{{Name: "ctxflow", Reason: ""}},
		},
		{
			name: "empty name",
			text: "//pglint: reason with no name",
			want: []Directive{{Name: "", Reason: "reason with no name"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Parse(tc.text)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Parse(%q)\n got %+v\nwant %+v", tc.text, got, tc.want)
			}
		})
	}
}

// FuzzParseDirective asserts the structural invariants of Parse on
// arbitrary comment text: it never panics, only prefix-matching text
// yields directives, every parsed chunk is internally consistent, and
// parsing is idempotent under the line-truncation it performs itself.
func FuzzParseDirective(f *testing.F) {
	f.Add("//pglint:maprange keys are sorted")
	f.Add("//pglint:hotalloc")
	f.Add("//pglint:a x //pglint:b y")
	f.Add("//pglint:lockcheck,detflow one reason, two analyzers")
	f.Add("//pglint:a,,b commas all the way down")
	f.Add("//pglint:,")
	f.Add("//pglint:goroleak reason\r\n")
	f.Add("// pglint:not-a-directive")
	f.Add("//pglint:ctxflow // want `needs a reason`")
	f.Add("//pglint:")
	f.Add("//pglint:\x00weird\nsecond line")
	f.Fuzz(func(t *testing.T, text string) {
		ds := Parse(text)
		if !strings.HasPrefix(text, Prefix) {
			if ds != nil {
				t.Fatalf("Parse(%q) = %+v for non-directive text", text, ds)
			}
			return
		}
		if len(ds) == 0 {
			t.Fatalf("Parse(%q) dropped a prefixed directive", text)
		}
		for _, d := range ds {
			if strings.ContainsAny(d.Name, " ,") {
				t.Fatalf("Parse(%q): name %q contains a space or comma (comma lists must be split)", text, d.Name)
			}
			for _, s := range []string{d.Name, d.Reason} {
				if strings.ContainsAny(s, "\r\n") {
					t.Fatalf("Parse(%q): field %q spans lines", text, s)
				}
				if utf8.ValidString(text) && !utf8.ValidString(s) {
					t.Fatalf("Parse(%q): invalid UTF-8 in %q", text, s)
				}
			}
			if d.Reason != strings.TrimSpace(d.Reason) {
				t.Fatalf("Parse(%q): untrimmed reason %q", text, d.Reason)
			}
			if d.Pos != 0 || d.Line != 0 {
				t.Fatalf("Parse(%q): position facts must stay zero, got %+v", text, d)
			}
		}
		// Idempotence under Parse's own single-line truncation.
		line := strings.TrimRight(text, "\r\n")
		if i := strings.IndexAny(line, "\n\r"); i >= 0 {
			line = line[:i]
		}
		if again := Parse(line); !reflect.DeepEqual(ds, again) {
			t.Fatalf("Parse(%q) != Parse(%q):\n%+v\n%+v", text, line, ds, again)
		}
	})
}
