package core

import (
	"math/rand"

	"example.com/internal/dep"
)

// Result mirrors the solver's result types: float fields carry the
// reproducibility contract.
type Result struct {
	Norm float64
	Iter int
}

// sumWeights folds a map in iteration order straight into its result.
func sumWeights(w map[int]float64) float64 {
	total := 0.0
	for _, v := range w {
		total += v
	}
	return total // want `determinism-tainted value reaches float result`
}

// fill launders the tainted sum through a Result field.
func fill(r *Result, m map[string]float64) {
	s := 0.0
	for _, v := range m {
		s += v
	}
	r.Norm = s // want `determinism-tainted value reaches field Norm of Result`
}

// jitter returns ambient randomness: unreproducible by construction.
func jitter() float64 {
	return rand.Float64() // want `determinism-tainted value reaches float result.*ambient randomness`
}

// Fingerprint stands in for the repo's reproducibility referee.
func Fingerprint(vals ...float64) uint64 {
	return uint64(len(vals))
}

// badFingerprint hashes an order-dependent value.
func badFingerprint(m map[int]float64) uint64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return Fingerprint(t) // want `determinism-tainted value reaches argument to Fingerprint`
}

// parSum races goroutine interleavings into the rounding of sum.
func parSum(xs, ys []float64) float64 {
	sum := 0.0
	done := make(chan struct{}, 2)
	go func() {
		for _, x := range xs {
			sum += x // want `determinism-tainted value reaches a float accumulator shared across goroutines`
		}
		done <- struct{}{}
	}()
	go func() {
		for _, y := range ys {
			sum += y // want `determinism-tainted value reaches a float accumulator shared across goroutines`
		}
		done <- struct{}{}
	}()
	<-done
	<-done
	return sum // want `determinism-tainted value reaches float result`
}

// viaDep imports its taint: dep.SumMap's fact says its results depend
// on map order.
func viaDep(m map[string]float64) float64 {
	return dep.SumMap(m) // want `determinism-tainted value reaches float result.*calls SumMap`
}
