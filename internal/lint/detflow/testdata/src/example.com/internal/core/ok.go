package core

import (
	"sort"

	"example.com/internal/rng"
)

// The sanctioned shapes: none of these may be reported.

// sumSorted fixes the order before accumulating.
func sumSorted(w map[int]float64) float64 {
	keys := make([]int, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += w[k]
	}
	return total
}

// seededJitter draws from the seeded stream: replayable, not ambient.
func seededJitter(seed uint64) float64 {
	src := rng.New(seed)
	return src.Float64()
}

// countEntries accumulates only exact values; the directive records the
// argument.
func countEntries(m map[int]float64) float64 {
	n := 0.0
	//pglint:detflow summing 1.0s is exact in float64 far below 2^53
	for range m {
		n += 1
	}
	return n
}

// histTotal reuses maprange's ordered-irrelevant sanction: one claim,
// honored by both analyzers.
func histTotal(buckets map[string]float64) float64 {
	t := 0.0
	//pglint:ordered-irrelevant bucket counts are integer-valued; addition is exact
	for _, v := range buckets {
		t += v
	}
	return t
}

// reassigned shows the strong update: taint cleared by a clean write.
func reassigned(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	s = 0
	return s
}
