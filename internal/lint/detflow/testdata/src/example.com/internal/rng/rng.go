// Package rng mirrors the repo's seeded generator: randomness derived
// from a caller-supplied seed is replayable and therefore NOT a
// determinism taint source.
package rng

// Source is a tiny splitmix64-style seeded stream.
type Source struct {
	state uint64
}

// New returns a stream fully determined by seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Float64 advances the stream deterministically.
func (s *Source) Float64() float64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
