// Package dep holds a map-order-tainted helper; only the exported
// summary fact lets detflow see the taint from an importing package.
package dep

// SumMap folds a map in iteration order — its result depends on the
// (randomized) order, so the TaintedResults fact must be exported.
func SumMap(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
