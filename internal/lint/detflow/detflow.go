// Package detflow is the determinism-taint analyzer: values influenced
// by map-iteration order, unsynchronized shared accumulation, or
// ambient (non-internal/rng) randomness must not flow into float
// results, Result fields, or anything feeding a Fingerprint.
//
// The paper's contract is that factors and solves are bitwise
// replayable per seed. maprange already bans raw map iteration in the
// numeric kernels wholesale; detflow sharpens that rule into a flow
// property and extends it to the orchestration layer and the module-root
// API: iteration order (or goroutine interleaving, or an unseeded rng)
// may exist, but the moment it perturbs a float that a caller, a Result
// struct, or the fingerprint referee can observe, it is a finding.
//
// The transfer rules and the taint lattice live in
// ssalite/summary (AnalyzeTaint), which also exports each function's
// TaintedResults bit as a package fact — so a tainted helper in
// internal/graph taints the internal/chol caller that returns its
// value, across the package boundary.
//
// Scope: policy.Deterministic packages (numeric ∪ orchestration ∪
// module root). Suppression: //pglint:detflow <reason>; a map walk
// already sanctioned with //pglint:ordered-irrelevant is honored here
// for the same claim.
package detflow

import (
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
	"powerrchol/internal/lint/ssalite"
	"powerrchol/internal/lint/ssalite/summary"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = summary.DetflowDirective

var Analyzer = &analysis.Analyzer{
	Name:     "detflow",
	Doc:      "determinism taint: map-iteration order, unsynchronized accumulation, and ambient randomness must not reach float results, Result fields, or Fingerprint inputs",
	Requires: []*analysis.Analyzer{ssalite.Analyzer, summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	if !policy.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)
	ix := pass.ResultOf[summary.Analyzer].(*summary.Index)

	calleeTainted := func(fn *types.Func) (string, bool) {
		s, ok := ix.Lookup(fn)
		if !ok || !s.TaintedResults {
			return "", false
		}
		return s.TaintReason, true
	}
	sanctioned := func(pos token.Pos) bool {
		if _, ok := dirs.Allow(pos, DirectiveName); ok {
			return true
		}
		_, ok := dirs.Allow(pos, summary.MaprangeDirective)
		return ok
	}

	for _, fn := range prog.Funcs {
		if strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		ti := summary.AnalyzeTaint(pass, fn, calleeTainted, sanctioned)
		for _, f := range ti.Findings {
			pass.Reportf(f.Pos, "determinism-tainted value reaches %s: %s; make the flow order-independent (sort keys, reduce pairwise, take the seed from internal/rng) or annotate //pglint:%s <reason>",
				f.Sink, f.Reason, DirectiveName)
		}
	}
	return nil, nil
}
