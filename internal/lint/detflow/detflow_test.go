package detflow_test

import (
	"testing"

	"powerrchol/internal/lint/detflow"
	"powerrchol/internal/lint/linttest"
)

func TestDetflow(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), detflow.Analyzer,
		"example.com/internal/core",
	)
}
