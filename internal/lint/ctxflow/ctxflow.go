// Package ctxflow enforces the cancellation contract PR 2 threaded
// through the solve pipeline: a context, once received, must flow.
//
// Four rules, all suppressed by //pglint:ctxflow <reason>:
//
//  1. Library packages (everything except cmd/* and examples/*) must not
//     mint contexts with context.Background or context.TODO — the caller
//     owns the lifetime. Two shapes are sanctioned because they ARE the
//     public ctx-less API surface: `return F(context.Background(), …)`
//     inside a function that itself has no context parameter (the
//     Solve → SolveContext wrapper), and `ctx = context.Background()`
//     guarded by `if ctx == nil` (nil-normalization).
//  2. A function that carries a context — a context.Context parameter,
//     or a parameter struct with a context.Context field, the
//     core.Options.Ctx pattern — must not shadow it by passing a fresh
//     Background()/TODO() to a callee.
//  3. A carrying function must not call the ctx-less variant of an API
//     that has a Context sibling: calling F(…) when F's package or
//     receiver also offers FContext(ctx, …) severs the chain exactly the
//     way s.Solve(b) inside SolveBatchContext would.
//  4. In numeric and orchestration packages (internal/lint/policy),
//     every outermost loop of a carrying function that does real work
//     (contains a call or a nested loop) must reach a cancellation
//     check: ctx.Err(), ctx.Done(), or delegation — passing the context
//     (or the struct carrying it) to a callee. This is the machine check
//     for Alg. 3's every-1024-pivots rule, PCG's per-iteration check,
//     and the pipeline Runner's per-rung poll.
//
// ctxflow is also the suite's directive janitor: it reports //pglint:
// directives whose name no analyzer owns (see KnownDirectives).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
	"powerrchol/internal/lint/ssalite"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "ctxflow"

// KnownDirectives is the full set of directive names the pglint suite
// honors, installed by the internal/lint registry. When empty (an
// analyzer unit test that did not import the registry), unknown-directive
// reporting is disabled.
var KnownDirectives []string

var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "a received context.Context must flow to every callee that accepts one; no ambient Background/TODO in library code; numeric loops must reach a cancellation check",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	if len(KnownDirectives) > 0 {
		dirs.ReportUnknown(pass, KnownDirectives)
	}
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)

	for _, fn := range prog.Funcs {
		if isTestFile(pass, fn.Body) {
			continue
		}
		checkFunc(pass, dirs, fn)
	}
	return nil, nil
}

func isTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

func checkFunc(pass *analysis.Pass, dirs *directive.Index, fn *ssalite.Function) {
	carries := carriesContext(fn)
	lib := policy.Library(pass.Pkg.Path())

	for _, c := range fn.Calls {
		switch {
		case isBackgroundOrTODO(pass, c):
			reportMint(pass, dirs, fn, c, carries, lib)
		case carries:
			checkSeveredSibling(pass, dirs, c)
		}
	}
	if carries && (policy.Numeric(pass.Pkg.Path()) || policy.Orchestration(pass.Pkg.Path())) {
		checkLoopCancellation(pass, dirs, fn)
	}
}

// carriesContext reports whether fn receives a cancellation signal: a
// context.Context parameter or a parameter whose struct type carries a
// context.Context field (the Options.Ctx pattern).
func carriesContext(fn *ssalite.Function) bool {
	if fn.Sig == nil {
		return false
	}
	params := fn.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func typeCarriesContext(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isBackgroundOrTODO matches calls to context.Background / context.TODO.
func isBackgroundOrTODO(pass *analysis.Pass, c *ssalite.Call) bool {
	if c.Callee == nil || c.Callee.Pkg() == nil {
		return false
	}
	return c.Callee.Pkg().Path() == "context" &&
		(c.Callee.Name() == "Background" || c.Callee.Name() == "TODO")
}

// reportMint applies rules 1/2 to one Background()/TODO() call site.
func reportMint(pass *analysis.Pass, dirs *directive.Index, fn *ssalite.Function, c *ssalite.Call, carries, lib bool) {
	if isNilNormalization(fn, c.Expr) {
		return // `if ctx == nil { ctx = context.Background() }` is the contract for nil ctx
	}
	if carries {
		if _, ok := dirs.Allow(c.Expr.Pos(), DirectiveName); ok {
			return
		}
		pass.Reportf(c.Expr.Pos(), "context.%s inside a function that already carries a context severs the cancellation chain: pass the received context instead, or annotate //pglint:%s <reason>", c.Callee.Name(), DirectiveName)
		return
	}
	if !lib {
		return // binaries and examples are where root contexts originate
	}
	if isWrapperDelegation(fn, c.Expr) {
		return
	}
	if _, ok := dirs.Allow(c.Expr.Pos(), DirectiveName); ok {
		return
	}
	pass.Reportf(c.Expr.Pos(), "context.%s in library code: the caller owns the context lifetime — accept a ctx parameter (ctx-less wrappers may `return F(context.Background(), …)`), or annotate //pglint:%s <reason>", c.Callee.Name(), DirectiveName)
}

// isWrapperDelegation matches `return F(context.Background(), …)` in a
// ctx-less function: the shape of the public Solve → SolveContext
// wrappers, where the root context legitimately originates.
func isWrapperDelegation(fn *ssalite.Function, mint *ast.CallExpr) bool {
	var sanctioned bool
	inspectOwn(fn, func(n ast.Node) {
		s, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range s.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if ast.Unparen(arg) == mint {
						sanctioned = true
					}
				}
			}
		}
	})
	return sanctioned
}

// isNilNormalization matches `if ctx == nil { ctx = context.Background() }`.
func isNilNormalization(fn *ssalite.Function, mint *ast.CallExpr) bool {
	var sanctioned bool
	inspectOwn(fn, func(n ast.Node) {
		s, ok := n.(*ast.IfStmt)
		if !ok || !isNilCheck(s.Cond) {
			return
		}
		ast.Inspect(s.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				if ast.Unparen(rhs) == mint {
					sanctioned = true
				}
			}
			return true
		})
	})
	return sanctioned
}

// inspectOwn walks fn's body without descending into nested literals
// (they are Functions of their own) and calls visit on every node.
func inspectOwn(fn *ssalite.Function, visit func(ast.Node)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && fn.Lit != lit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func isNilCheck(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return be.Op.String() == "==" && (isNil(be.X) || isNil(be.Y))
}

// checkSeveredSibling applies rule 3: calling F when FContext exists.
func checkSeveredSibling(pass *analysis.Pass, dirs *directive.Index, c *ssalite.Call) {
	callee := c.Callee
	if callee == nil || c.Sig == nil || acceptsContext(c.Sig) {
		return
	}
	sibling := contextSibling(callee)
	if sibling == nil {
		return
	}
	if _, ok := dirs.Allow(c.Expr.Pos(), DirectiveName); ok {
		return
	}
	pass.Reportf(c.Expr.Pos(), "%s has a context-accepting sibling %s: calling the ctx-less variant from a context-carrying function severs the cancellation chain (annotate //pglint:%s <reason> if deliberate)", callee.Name(), sibling.Name(), DirectiveName)
}

func acceptsContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// contextSibling finds <name>Context next to callee: a method on the same
// receiver type, or a function in the same package, whose first
// parameter is a context.Context.
func contextSibling(callee *types.Func) *types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := callee.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && firstParamIsContext(m) {
				return m
			}
		}
		return nil
	}
	if callee.Pkg() == nil {
		return nil
	}
	if obj, ok := callee.Pkg().Scope().Lookup(want).(*types.Func); ok && firstParamIsContext(obj) {
		return obj
	}
	return nil
}

func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	return params.Len() > 0 && isContextType(params.At(0).Type())
}

// checkLoopCancellation applies rule 4 to fn's outermost working loops.
func checkLoopCancellation(pass *analysis.Pass, dirs *directive.Index, fn *ssalite.Function) {
	for _, l := range fn.Loops {
		if l.Depth != 1 || !doesWork(fn, l) {
			continue
		}
		if loopTouchesContext(pass, l.Body) {
			continue
		}
		if _, ok := dirs.Allow(l.Stmt.Pos(), DirectiveName); ok {
			continue
		}
		pass.Reportf(l.Stmt.Pos(), "loop in a context-carrying numeric kernel never reaches a cancellation check: call ctx.Err() on a stride (Alg. 3 checks every 1024 pivots), select on ctx.Done(), or delegate by passing the context; annotate //pglint:%s <reason> if provably short", DirectiveName)
	}
}

// doesWork reports whether l contains a call or a nested loop — the
// loops long enough that an unbounded run without a cancellation check
// matters. Straight-line initialization sweeps are exempt.
func doesWork(fn *ssalite.Function, l *ssalite.Loop) bool {
	if !l.Inner {
		return true
	}
	for _, c := range fn.Calls {
		if inLoop(c.Loop, l) {
			return true
		}
	}
	return false
}

func inLoop(at, want *ssalite.Loop) bool {
	for ; at != nil; at = at.Parent {
		if at == want {
			return true
		}
	}
	return false
}

// loopTouchesContext scans the loop body (nested literals included: a
// per-level closure that checks ctx still guards the loop) for
// cancellation evidence.
func loopTouchesContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// ctx.Err() / ctx.Done() on any context.Context-typed receiver.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextExpr(pass, sel.X) {
					found = true
					return false
				}
			}
			// Delegation: any argument of context (or context-carrying
			// struct) type hands the cancellation signal downstream.
			for _, arg := range x.Args {
				if t := pass.TypesInfo.TypeOf(arg); t != nil && typeCarriesContext(t) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isContextExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && isContextType(t)
}
