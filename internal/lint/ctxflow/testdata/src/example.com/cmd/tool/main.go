// Command tool is a fixture: binaries are where root contexts originate,
// so minting Background here is allowed. A misspelled directive is still
// reported — it suppresses nothing anywhere.
package main

import "context"

func main() {
	ctx := context.Background()
	//pglint:ctxflows typo'd name never silences anything // want `does not name any pglint directive`
	run(ctx)
}

func run(ctx context.Context) { _ = ctx }
