// Package core is a fixture for the ctxflow cancellation-chain rules.
package core

import "context"

// ---- Rule 1: library code must not mint contexts ----

// Flagged: binding Background to a local hands downstream work a context
// the caller can never cancel.
func MintsBackground(b []float64) error {
	ctx := context.Background() // want `context.Background in library code`
	return SolveContext(ctx, b)
}

// Flagged: returning a minted TODO hands callers a context nobody owns.
func MintsTODO() context.Context {
	return context.TODO() // want `context.TODO in library code`
}

// Allowed: the ctx-less public wrapper delegating to its Context sibling
// is where the root context legitimately originates.
func Solve(b []float64) error {
	return SolveContext(context.Background(), b)
}

// Allowed: nil-normalization is the documented contract for nil ctx.
func SolveNilOK(ctx context.Context, b []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return SolveContext(ctx, b)
}

// ---- Rule 2: a carried context must not be shadowed ----

// Flagged: the received ctx dies here; the callee gets a fresh root.
func Shadow(ctx context.Context, b []float64) error {
	return SolveContext(context.Background(), b) // want `already carries a context`
}

// ---- Rule 3: no severed Context siblings ----

// Flagged: Solve has the sibling SolveContext; calling the ctx-less
// variant from a carrying function drops cancellation on the floor.
func Batch(ctx context.Context, bs [][]float64) error {
	for _, b := range bs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := Solve(b); err != nil { // want `context-accepting sibling SolveContext`
			return err
		}
	}
	return nil
}

// Allowed: the same call under an annotated, justified suppression.
func BatchDetached(ctx context.Context, bs [][]float64) error {
	for _, b := range bs {
		if err := ctx.Err(); err != nil {
			return err
		}
		//pglint:ctxflow fixture: deliberately detached best-effort solve
		if err := Solve(b); err != nil {
			return err
		}
	}
	return nil
}

// Flagged: a ctxflow directive without a reason fails validation (and the
// mint below it stays suppressed — the directive still matches by name).
func Reasonless(b []float64) error {
	//pglint:ctxflow // want `directive needs a reason`
	ctx := context.Background()
	return SolveContext(ctx, b)
}

// ---- Rule 4: numeric loops must reach a cancellation check ----

// SolveContext is the carrying workhorse; its loop checks Err each pass.
func SolveContext(ctx context.Context, b []float64) error {
	for i := range b {
		if err := ctx.Err(); err != nil {
			return err
		}
		b[i] = step(b[i])
	}
	return nil
}

// Options carries the context as a field — the Options.Ctx pattern.
type Options struct {
	Ctx context.Context
	Tol float64
}

// Flagged: an Options-carrying iteration that never consults the context.
func Iterate(opt Options, b []float64) error {
	for i := range b { // want `never reaches a cancellation check`
		b[i] = step(b[i])
	}
	return nil
}

// Allowed: passing the carrying struct downstream delegates cancellation.
func IterateDelegating(opt Options, b []float64) error {
	for range b {
		advance(opt, b)
	}
	return nil
}

// Allowed: straight-line initialization sweeps are exempt — no call, no
// nested loop, bounded by construction.
func Reset(ctx context.Context, b []float64) {
	for i := range b {
		b[i] = 0
	}
	_ = ctx
}

func step(x float64) float64 { return x * 0.5 }

func advance(opt Options, b []float64) { _, _ = opt, b }
