package ctxflow_test

import (
	"testing"

	"powerrchol/internal/lint/ctxflow"
	"powerrchol/internal/lint/linttest"

	// Importing the registry installs ctxflow.KnownDirectives, enabling
	// unknown-directive reporting — the production configuration.
	_ "powerrchol/internal/lint"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), ctxflow.Analyzer,
		"example.com/internal/core",
		"example.com/cmd/tool",
	)
}
