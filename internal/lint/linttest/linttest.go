// Package linttest is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest (which the toolchain does
// not vendor). It loads fixture packages from an analyzer's
// testdata/src tree, type-checks them against the standard library via
// the source importer, runs the analyzer (and its Requires closure), and
// matches reported diagnostics against `// want "regexp"` comments, both
// directions: every diagnostic needs a matching want on its line, and
// every want must be hit.
//
// Facts flow across fixture packages the way they do under the
// unitchecker: before a target package is analyzed, every fixture-local
// package it imports (transitively) is analyzed first with the same
// analyzer graph, and the object/package facts those runs export are
// visible to the target through ImportObjectFact/ImportPackageFact. The
// cross-package summary analyzers (ssalite/summary, atomicmix) are
// therefore testable against multi-package fixtures.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// One shared fileset + source importer for the whole test process: the
// source importer re-type-checks stdlib packages from $GOROOT/src, which
// is too slow to repeat per subtest.
var (
	fset      = token.NewFileSet()
	srcImp    types.Importer
	srcImpMu  sync.Mutex
	pkgCache  = map[string]*fixturePkg{}
	pkgCacheM sync.Mutex
)

func stdImporter() types.Importer {
	srcImpMu.Lock()
	defer srcImpMu.Unlock()
	if srcImp == nil {
		srcImp = importer.ForCompiler(fset, "source", nil)
	}
	return srcImp
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// fixtureImporter resolves fixture-local packages from testdata/src and
// everything else from the standard library.
type fixtureImporter struct {
	srcdir string
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(fi.srcdir, path); isDir(dir) {
		p, err := loadFixture(fi.srcdir, path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return stdImporter().Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

func loadFixture(srcdir, path string) (*fixturePkg, error) {
	key := srcdir + "\x00" + path
	pkgCacheM.Lock()
	if p, ok := pkgCache[key]; ok {
		pkgCacheM.Unlock()
		return p, p.err
	}
	pkgCacheM.Unlock()

	dir := filepath.Join(srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: &fixtureImporter{srcdir: srcdir}}
	pkg, err := conf.Check(path, fset, files, info)
	fp := &fixturePkg{pkg: pkg, files: files, info: info, err: err}
	pkgCacheM.Lock()
	pkgCache[key] = fp
	pkgCacheM.Unlock()
	return fp, err
}

// Run loads each fixture package beneath dir/src and checks a's
// diagnostics against the fixtures' want comments. Fixture-local imports
// of each package are analyzed first so their exported facts are
// available to the target, mirroring the unitchecker's dependency-order
// fact flow.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			srcdir := filepath.Join(dir, "src")
			fp, err := loadFixture(srcdir, path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			facts := newFactStore()
			analyzed := map[*types.Package]bool{}
			diags := runAnalyzer(t, a, fp, srcdir, facts, analyzed, true)
			checkWants(t, fp, diags)
		})
	}
}

// A factStore is the in-memory stand-in for the unitchecker's vetx
// files: facts exported while analyzing one fixture package are imported
// by the packages that depend on it. Object identity is shared across
// packages because every fixture is type-checked against the same
// fileset and importer cache.
type factStore struct {
	obj map[objFactKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]analysis.Fact{}, pkg: map[pkgFactKey]analysis.Fact{}}
}

// copyFact copies src into the pointer dst (both *T for the same fact
// type T), the same contract ImportObjectFact documents.
func copyFact(dst, src analysis.Fact) bool {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Ptr {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// TestdataDir returns the caller's testdata directory.
func TestdataDir(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("linttest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// runAnalyzer analyzes fp with a's full Requires closure, after first
// analyzing (reporting nothing) every fixture-local dependency so its
// facts are in the store. collect is true only for the target package.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fp *fixturePkg, srcdir string, facts *factStore, analyzed map[*types.Package]bool, collect bool) []analysis.Diagnostic {
	t.Helper()
	if analyzed[fp.pkg] {
		return nil
	}
	analyzed[fp.pkg] = true
	for _, imp := range fp.pkg.Imports() {
		if !isDir(filepath.Join(srcdir, imp.Path())) {
			continue // stdlib: no facts to compute
		}
		dep, err := loadFixture(srcdir, imp.Path())
		if err != nil {
			t.Fatalf("loading fixture dependency %s: %v", imp.Path(), err)
		}
		runAnalyzer(t, a, dep, srcdir, facts, analyzed, false)
	}

	results := map[*analysis.Analyzer]interface{}{}
	var diags []analysis.Diagnostic
	var exec func(a *analysis.Analyzer, root bool)
	exec = func(a *analysis.Analyzer, root bool) {
		if _, done := results[a]; done && !root {
			return
		}
		for _, req := range a.Requires {
			exec(req, false)
		}
		factTypes := map[reflect.Type]bool{}
		for _, f := range a.FactTypes {
			factTypes[reflect.TypeOf(f)] = true
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      fp.files,
			Pkg:        fp.pkg,
			TypesInfo:  fp.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if root && collect {
					diags = append(diags, d)
				}
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
				got, ok := facts.obj[objFactKey{obj, reflect.TypeOf(f)}]
				return ok && copyFact(f, got)
			},
			ImportPackageFact: func(pkg *types.Package, f analysis.Fact) bool {
				got, ok := facts.pkg[pkgFactKey{pkg, reflect.TypeOf(f)}]
				return ok && copyFact(f, got)
			},
			ExportObjectFact: func(obj types.Object, f analysis.Fact) {
				facts.obj[objFactKey{obj, reflect.TypeOf(f)}] = f
			},
			ExportPackageFact: func(f analysis.Fact) {
				facts.pkg[pkgFactKey{fp.pkg, reflect.TypeOf(f)}] = f
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for k, f := range facts.obj {
					if factTypes[k.t] {
						out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
					}
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for k, f := range facts.pkg {
					if factTypes[k.t] {
						out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
					}
				}
				return out
			},
			Module: &analysis.Module{Path: "example.com"},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	exec(a, true)
	return diags
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
	raw  string
}

func checkWants(t *testing.T, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(t, m[1], pos) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the tail of a want comment: one or more Go strings,
// double- or back-quoted (the analysistest convention).
func splitQuoted(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: malformed want comment near %q (need quoted regexps)", pos.Filename, pos.Line, s)
		}
		end := 1
		for end < len(s) && (s[end] != quote || (quote == '"' && s[end-1] == '\\')) {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want string", pos.Filename, pos.Line)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
