// Package goroleak requires every go statement to have a visible
// termination path.
//
// The solver's goroutines are all workers with a bounded life: parRange
// and the batch pool tie theirs to a sync.WaitGroup, the level-scheduled
// trisolve workers drain a channel that the coordinator closes, and the
// cancellation paths select on ctx.Done(). A goroutine with none of
// those — no WaitGroup discipline, no channel receive or range, no
// ctx/done select, and at least one loop — has no reason to ever stop,
// and under SolveBatch traffic it is a leak the race detector cannot see.
//
// Accepted termination evidence in the spawned function's body (nested
// literals included):
//
//   - a call to (*sync.WaitGroup).Done, direct or deferred;
//   - ranging over a channel, or any channel receive (<-ch), including a
//     select with a receive case (the ctx.Done() shape);
//   - no loops at all: straight-line work returns by construction.
//
// A go statement whose callee cannot be inspected (func value, imported
// function) is accepted only when the call hands it a termination signal:
// a context.Context, a channel, or a *sync.WaitGroup argument. Everything
// else needs //pglint:goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/ssalite"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "goroleak"

var Analyzer = &analysis.Analyzer{
	Name:     "goroleak",
	Doc:      "every go statement needs a reachable termination path: WaitGroup discipline, a channel receive/range, a ctx/done select, or a loop-free body",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)

	for _, fn := range prog.Funcs {
		if strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		for _, c := range fn.Calls {
			if !c.Go {
				continue
			}
			if ok, why := terminates(pass, prog, c); !ok {
				if _, allowed := dirs.Allow(c.Expr.Pos(), DirectiveName); allowed {
					continue
				}
				pass.Reportf(c.Expr.Pos(), "go statement %s: tie the goroutine to a WaitGroup, drain a closable channel, or select on ctx.Done(), or annotate //pglint:%s <reason>", why, DirectiveName)
			}
		}
	}
	return nil, nil
}

// terminates decides whether the spawned goroutine provably stops, and
// if not, why not (for the diagnostic).
func terminates(pass *analysis.Pass, prog *ssalite.Program, c *ssalite.Call) (bool, string) {
	var spawned *ssalite.Function
	if lit, ok := ast.Unparen(c.Expr.Fun).(*ast.FuncLit); ok {
		spawned = prog.FuncOf(lit.Body)
	} else if f := prog.FuncDeclOf(c.Callee); f != nil {
		spawned = f
	}
	if spawned == nil {
		// Opaque callee: accept only when the call passes a termination
		// signal it can obey.
		for _, arg := range c.Expr.Args {
			if isSignalType(pass.TypesInfo.TypeOf(arg)) {
				return true, ""
			}
		}
		return false, "spawns a function this package cannot inspect and passes it no context, channel, or WaitGroup"
	}
	if bodyTerminates(pass, spawned.Body) {
		return true, ""
	}
	if !hasLoop(spawned.Body) {
		return true, "" // straight-line body returns by construction
	}
	return false, "spawns a looping goroutine with no WaitGroup Done, channel receive, or ctx.Done() select"
}

// bodyTerminates scans body (nested literals included — a deferred
// closure calling wg.Done still bounds the goroutine) for termination
// evidence.
func bodyTerminates(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(pass, x) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func hasLoop(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			has = true
		}
		return !has
	})
	return has
}

func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && strings.Contains(recv.Type().String(), "sync.WaitGroup")
}

// isSignalType reports whether t can carry a termination signal: a
// context, a channel, or a *sync.WaitGroup.
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isSignalType(u.Elem())
	case *types.Interface:
		// context.Context itself is an interface; resolved above via Named.
	}
	return false
}
