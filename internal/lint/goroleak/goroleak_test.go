package goroleak_test

import (
	"testing"

	"powerrchol/internal/lint/goroleak"
	"powerrchol/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), goroleak.Analyzer,
		"example.com/internal/core",
	)
}
