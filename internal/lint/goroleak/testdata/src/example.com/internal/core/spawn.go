// Package core is a fixture for the goroleak termination rules.
package core

import (
	"context"
	"sync"
)

// Allowed: WaitGroup discipline bounds every worker.
func FanOut(parts [][]float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			for i := range p {
				p[i] *= 2
			}
		}(p)
	}
	wg.Wait()
}

// Allowed: draining a channel the coordinator closes.
func Worker(jobs chan []float64) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// Allowed: the ctx.Done() select is a receive.
func Watch(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Allowed: a straight-line body returns by construction.
func Notify(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// Flagged: a looping goroutine with no exit signal never stops.
func Spin(vals []float64) {
	go func() { // want `no WaitGroup Done, channel receive`
		for {
			for i := range vals {
				vals[i] *= 0.5
			}
		}
	}()
}

// Allowed: named worker declared in this package is inspected directly.
func SpawnNamed(jobs chan []float64) {
	go drain(jobs)
}

func drain(jobs chan []float64) {
	for j := range jobs {
		_ = j
	}
}

// Flagged: the named callee loops with no termination path.
func SpawnHot(vals []float64) {
	go churn(vals) // want `no WaitGroup Done, channel receive`
}

// Allowed: the identical spawn under a justified annotation.
func SpawnHotPinned(vals []float64) {
	//pglint:goroleak fixture: busy worker lives exactly as long as the process
	go churn(vals)
}

func churn(vals []float64) {
	for {
		for i := range vals {
			vals[i] *= 0.5
		}
	}
}

// Allowed: an opaque callee handed a context can stop itself.
func SpawnOpaque(ctx context.Context, run func(context.Context)) {
	go run(ctx)
}

// Flagged: an opaque callee with no signal to obey.
func SpawnBlind(run func(int)) {
	go run(0) // want `passes it no context, channel, or WaitGroup`
}
