// Package io is a fixture for hotalloc's policy scoping: it is not a hot
// kernel package, so per-iteration allocation here is not a finding.
package io

func Collect(n int) [][]float64 {
	var out [][]float64
	for i := 0; i < n; i++ {
		out = append(out, make([]float64, 8))
	}
	return out
}
