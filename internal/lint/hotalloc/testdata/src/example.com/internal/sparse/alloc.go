// Package sparse is a fixture for the hotalloc innermost-loop rules.
package sparse

// Flagged: per-element make in the innermost loop.
func ScaleRows(rowptr []int, vals, diag []float64) {
	for i := 0; i < len(rowptr)-1; i++ {
		for j := rowptr[i]; j < rowptr[i+1]; j++ {
			t := make([]float64, 1) // want `make in an innermost loop`
			t[0] = vals[j] * diag[i]
			vals[j] = t[0]
		}
	}
}

// Allowed: the same scratch hoisted out of the loops.
func ScaleRowsHoisted(rowptr []int, vals, diag []float64) {
	t := make([]float64, 1)
	for i := 0; i < len(rowptr)-1; i++ {
		for j := rowptr[i]; j < rowptr[i+1]; j++ {
			t[0] = vals[j] * diag[i]
			vals[j] = t[0]
		}
	}
}

// Flagged: growing append per iteration.
func Gather(idx []int, x []float64) []float64 {
	var out []float64
	for _, i := range idx {
		out = append(out, x[i]) // want `growing append in an innermost loop`
	}
	return out
}

// Allowed: the same append under an annotated amortization argument.
func GatherAmortized(idx []int, x []float64) []float64 {
	out := make([]float64, 0, len(idx))
	for _, i := range idx {
		out = append(out, x[i]) //pglint:hotalloc capacity reserved above; append never grows
	}
	return out
}

// Flagged: boxing a float into an interface per iteration.
func Emit(vals []float64, sink func(any)) {
	for _, v := range vals {
		sink(any(v)) // want `interface boxing in an innermost loop`
	}
}

// Flagged: a slice literal allocates like a make.
func Pairs(src, dst []int, emit func([]int)) {
	for k := range src {
		emit([]int{src[k], dst[k]}) // want `composite literal in an innermost loop`
	}
}

// Flagged: a capturing closure allocates per iteration.
func Apply(vals []float64, run func(func())) {
	for i := range vals {
		i := i
		run(func() { vals[i] *= 2 }) // want `capturing closure in an innermost loop`
	}
}

// Allowed: the error path builds its diagnostic — an if-block ending in
// return runs at most once per call, however hot the loop.
func CheckFinite(vals []float64) error {
	for _, v := range vals {
		if v != v {
			msg := make([]byte, 0, 32)
			msg = append(msg, "NaN in matrix"...)
			return errBytes(msg)
		}
	}
	return nil
}

type errBytes []byte

func (e errBytes) Error() string { return string(e) }

// Flagged: the allocation hides one call deep in a same-package helper.
func AddEdges(adj [][]int, src, dst []int) {
	for k := range src {
		addEdge(adj, src[k], dst[k]) // want `reaches a growing append`
	}
}

// Allowed: the same call under an annotated amortization argument.
func AddEdgesAmortized(adj [][]int, src, dst []int) {
	for k := range src {
		//pglint:hotalloc adjacency growth is amortized O(nnz) over the whole pass
		addEdge(adj, src[k], dst[k])
	}
}

func addEdge(adj [][]int, a, b int) {
	adj[a] = append(adj[a], b)
}
