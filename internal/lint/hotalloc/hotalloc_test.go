package hotalloc_test

import (
	"testing"

	"powerrchol/internal/lint/hotalloc"
	"powerrchol/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), hotalloc.Analyzer,
		"example.com/internal/sparse",
		"example.com/internal/io",
	)
}
