// Package hotalloc flags heap allocations in the innermost loops of the
// hot kernel packages (internal/sparse, internal/chol, internal/core,
// internal/pcg) and of the kernel-orchestration packages
// (internal/pipeline) — see internal/lint/policy.
//
// The paper's complexity argument is allocation-free inner loops: LT-RChol
// wins because one elimination step costs O(|Nk|) merge-scan work, and a
// make/append/boxing in that loop (or in the per-neighbor sampling loops
// of RChol) silently replaces the bound with allocator churn — exactly
// the regression class Chen/Liang/Biros call out for randomized Cholesky.
// Two rules, on ssalite's IR:
//
//  1. Direct: an SSA-visible allocation (make, new, growing append,
//     capturing closure, slice/map/&composite literal, interface boxing,
//     []byte(string)) lexically inside an innermost loop.
//  2. Interprocedural, one level: a call inside an innermost loop whose
//     statically resolved callee is declared in the same package and
//     itself allocates anywhere — the helper the allocation hides in
//     (addSampledEdge-style).
//
// Cold exits are exempt: an allocation inside an if-block that ends by
// returning or panicking (the error path constructing its diagnostic)
// runs at most once per loop, not per iteration. Everything else needs
// //pglint:hotalloc <reason> — typically "amortized by capacity check" or
// "bounded by Workers".
package hotalloc

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
	"powerrchol/internal/lint/ssalite"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "hotalloc"

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flag heap allocations (direct or via a same-package helper) in innermost loops of the hot kernel packages",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	if !policy.Hot(pass.Pkg.Path()) && !policy.Orchestration(pass.Pkg.Path()) {
		return nil, nil
	}
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)

	for _, fn := range prog.Funcs {
		if strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		// Rule 1: direct allocations in innermost loops.
		for _, a := range fn.Allocs {
			if a.Loop == nil || !a.Loop.Inner || coldPath(fn, a.Node) {
				continue
			}
			if _, ok := dirs.Allow(a.Node.Pos(), DirectiveName); ok {
				continue
			}
			pass.Reportf(a.Node.Pos(), "%s in an innermost loop of a hot kernel: hoist it to reusable scratch (sync.Pool or a caller-owned buffer), or annotate //pglint:%s <reason>", a.Kind, DirectiveName)
		}
		// Rule 2: innermost-loop calls into same-package helpers that
		// allocate. One level deep: the helper's own callees are its
		// own report sites.
		for _, c := range fn.Calls {
			if c.Loop == nil || !c.Loop.Inner || coldPath(fn, c.Expr) {
				continue
			}
			callee := prog.FuncDeclOf(c.Callee)
			if callee == nil || len(callee.Allocs) == 0 {
				continue
			}
			// The callee may allocate only on its own cold paths.
			var hot *ssalite.Alloc
			for _, a := range callee.Allocs {
				if !coldPath(callee, a.Node) {
					hot = a
					break
				}
			}
			if hot == nil {
				continue
			}
			if _, ok := dirs.Allow(c.Expr.Pos(), DirectiveName); ok {
				continue
			}
			pos := pass.Fset.Position(hot.Node.Pos())
			pass.Reportf(c.Expr.Pos(), "call to %s in an innermost loop of a hot kernel reaches a %s (%s:%d): hoist the allocation or pass scratch in, or annotate //pglint:%s <reason>", c.Callee.Name(), hot.Kind, shortFile(pos.Filename), pos.Line, DirectiveName)
		}
	}
	return nil, nil
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// coldPath reports whether node sits inside an if/else block (or a
// select/case body) that terminates by return or panic — the error-exit
// shape, which executes at most once however hot the loop is.
func coldPath(fn *ssalite.Function, node ast.Node) bool {
	// Find the path from the function body down to node.
	var path []ast.Node
	var cur []ast.Node
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			cur = cur[:len(cur)-1]
			return false
		}
		cur = append(cur, n)
		if n == node {
			path = append([]ast.Node(nil), cur...)
			found = true
			return false
		}
		return true
	})
	for i := len(path) - 1; i > 0; i-- {
		blk, ok := path[i].(*ast.BlockStmt)
		if !ok || len(blk.List) == 0 {
			continue
		}
		if _, isIf := path[i-1].(*ast.IfStmt); !isIf {
			continue
		}
		if terminates(blk.List[len(blk.List)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether s unconditionally leaves the enclosing
// function (return, panic, or an os.Exit-like bare call is not modeled —
// return/panic cover the kernels' error exits).
func terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
