package lockcheck_test

import (
	"testing"

	"powerrchol/internal/lint/linttest"
	"powerrchol/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), lockcheck.Analyzer,
		"example.com/internal/core",
	)
}
