// Package dep exists so the core fixture has a cross-package callee
// whose blocking behavior is only visible through the summary facts.
package dep

import "sync"

// A Waiter parks the caller until its group drains.
type Waiter struct {
	WG sync.WaitGroup
}

// Drain blocks on the WaitGroup — the fact lockcheck must see from the
// importing package.
func (w *Waiter) Drain() {
	w.WG.Wait()
}
