package core

import "sync"

// The sanctioned idioms: none of these may be reported.

type Safe struct {
	mu sync.RWMutex
	m  map[string]float64
	ch chan int
}

// Defer-unlock covers every path.
func (s *Safe) Get(k string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// Explicit unlock before the blocking send.
func (s *Safe) Put(k string, v float64) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
	s.ch <- 1
}

// Both branches release.
func (s *Safe) Toggle(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// Concurrent readers: RLock while another RLock is held is the point
// of an RWMutex, not a deadlock.
func (s *Safe) Sum(keys []string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0.0
	for _, k := range keys {
		total += s.get(k)
	}
	return total
}

func (s *Safe) get(k string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// A non-blocking select under the lock is fine: the default clause is
// the escape hatch.
func (s *Safe) TryNotify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}
