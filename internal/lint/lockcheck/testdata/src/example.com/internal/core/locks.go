package core

import (
	"sync"

	"example.com/internal/dep"
)

type Cache struct {
	mu   sync.Mutex
	vals map[string]int
	ch   chan int
}

// Lookup leaks the lock on the miss path.
func (c *Cache) Lookup(k string) (int, bool) {
	c.mu.Lock() // want `c\.mu locked here is not unlocked on every path to return`
	v, ok := c.vals[k]
	if !ok {
		return 0, false
	}
	c.mu.Unlock()
	return v, true
}

// Reset locks twice: instant deadlock.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu is already locked on some path here`
	c.vals = nil
	c.mu.Unlock()
}

// grow is a balanced helper; calling it with c.mu held deadlocks.
func (c *Cache) grow() {
	c.mu.Lock()
	c.vals = make(map[string]int)
	c.mu.Unlock()
}

func (c *Cache) Rebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grow() // want `c\.mu is already locked on some path here .*grow acquires it again`
}

// Publish sends with the lock held.
func (c *Cache) Publish(v int) {
	c.mu.Lock()
	c.ch <- v // want `c\.mu \(locked at .*\) may be held across a channel send`
	c.mu.Unlock()
}

// Flush blocks under the lock through a callee in another package —
// only the summary fact for dep.Drain makes this visible.
func (c *Cache) Flush(w *dep.Waiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.Drain() // want `c\.mu .*may be held across a call to Drain, which blocks`
}
