// Package lockcheck enforces mutex discipline over each function's CFG.
//
// Three rules, all on sync.Mutex / sync.RWMutex values with a stable
// identity (a variable or a field chain rooted at one):
//
//  1. Release on every path: a Lock must be matched by an Unlock on
//     every path to return. `defer mu.Unlock()` anywhere in the
//     function sanctions the lock; an early `return err` between Lock
//     and Unlock is the classic leak this catches.
//  2. No double lock: acquiring a lock that may already be held on some
//     path deadlocks at run time (RLock-after-RLock is exempt: read
//     locks are reentrant-shaped, and flagging them would outlaw the
//     legitimate concurrent-readers pattern).
//  3. Nothing blocking under a lock: a channel send/receive, a select
//     without default, sync.WaitGroup.Wait, time.Sleep, or a call that
//     the cross-package summaries say blocks must not execute while a
//     lock is held — that serializes the solver behind I/O and is one
//     unlucky scheduling away from deadlock.
//
// The analysis is a forward may-held dataflow over the go/cfg graph
// ssalite already builds: lock sets merge by union at joins, so a
// report means "on at least one path". Calls are resolved through the
// summary facts: a helper that acquires, releases, or blocks is
// accounted for even when it lives in another package.
//
// //pglint:lockcheck <reason> on the offending line suppresses a
// finding; lock-free code is never reported.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/ssalite"
	"powerrchol/internal/lint/ssalite/summary"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = summary.LockcheckDirective

var Analyzer = &analysis.Analyzer{
	Name:     "lockcheck",
	Doc:      "mutex discipline: every Lock unlocked on all paths (defer sanctioned), no double-lock of one mutex, nothing blocking while a lock is held",
	Requires: []*analysis.Analyzer{ssalite.Analyzer, summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)
	ix := pass.ResultOf[summary.Analyzer].(*summary.Index)

	for _, fn := range prog.Funcs {
		if fn.CFG == nil || strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		newChecker(pass, fn, ix, dirs).check()
	}
	return nil, nil
}

// A lockKey identifies one mutex: the root variable plus the field path
// reaching the lock (c.mu → {c, "mu"}).
type lockKey struct {
	root types.Object
	path string
}

func (k lockKey) String() string {
	name := k.root.Name()
	if k.path == "" {
		return name
	}
	return name + "." + k.path
}

// acq carries the acquisition details of one held lock.
type acq struct {
	pos  token.Pos
	read bool // RLock, not Lock
}

// lockSet is the dataflow state: may-held locks with their first
// acquisition site.
type lockSet map[lockKey]acq

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// union merges src into s, reporting whether s changed. On conflict the
// earlier acquisition wins, so diagnostics point at the first site.
func (s lockSet) union(src lockSet) bool {
	changed := false
	for k, v := range src {
		if old, ok := s[k]; !ok {
			s[k] = v
			changed = true
		} else if v.pos < old.pos {
			s[k] = v
		}
	}
	return changed
}

func (s lockSet) equal(o lockSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

type checker struct {
	pass *analysis.Pass
	fn   *ssalite.Function
	ix   *summary.Index
	dirs *directive.Index

	deferred map[lockKey]bool // unlocked via defer somewhere in fn
	// escapeComm holds communication statements of selects WITH a
	// default clause — they never block. Comms of default-less selects
	// stay blocking and carry their select for once-per-select reports.
	escapeComm map[ast.Node]bool
	commSelect map[ast.Node]*ast.SelectStmt
	in         map[*cfg.Block]lockSet
	reported   map[reportKey]bool
}

type reportKey struct {
	pos  token.Pos
	kind string
	lock lockKey
}

func newChecker(pass *analysis.Pass, fn *ssalite.Function, ix *summary.Index, dirs *directive.Index) *checker {
	c := &checker{
		pass:       pass,
		fn:         fn,
		ix:         ix,
		dirs:       dirs,
		deferred:   map[lockKey]bool{},
		escapeComm: map[ast.Node]bool{},
		commSelect: map[ast.Node]*ast.SelectStmt{},
		in:         map[*cfg.Block]lockSet{},
		reported:   map[reportKey]bool{},
	}
	c.scanBody()
	return c
}

// scanBody precomputes the function-wide facts the per-block transfer
// needs: deferred unlocks and the select/comm structure.
func (c *checker) scanBody() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && c.fn.Lit != lit {
			return false
		}
		switch x := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() — and defer func() { mu.Unlock() }(),
			// which release just the same.
			ast.Inspect(x.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if op, lockExpr, ok := summary.MutexOp(c.pass, call); ok && (op == summary.OpUnlock || op == summary.OpRUnlock) {
						if k, ok := c.keyOf(lockExpr); ok {
							c.deferred[k] = true
						}
					}
				}
				return true
			})
			return false
		case *ast.SelectStmt:
			escapes := false
			for _, cl := range x.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					escapes = true
				}
			}
			for _, cl := range x.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					if escapes {
						c.escapeComm[comm] = true
					} else {
						c.commSelect[comm] = x
					}
				}
			}
		}
		return true
	})
}

func (c *checker) keyOf(e ast.Expr) (lockKey, bool) {
	root, path, ok := summary.ChainOf(c.pass, e)
	if !ok {
		return lockKey{}, false
	}
	return lockKey{root: root, path: path}, true
}

func (c *checker) check() {
	blocks := c.fn.CFG.Blocks
	if len(blocks) == 0 {
		return
	}
	c.in[blocks[0]] = lockSet{}

	// Fixpoint: propagate may-held sets forward until stable.
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			if !b.Live {
				continue
			}
			state, ok := c.in[b]
			if !ok {
				continue
			}
			out := c.transfer(b, state.clone(), false)
			for _, succ := range b.Succs {
				if cur, ok := c.in[succ]; !ok {
					c.in[succ] = out.clone()
					changed = true
				} else if cur.union(out) {
					changed = true
				}
			}
		}
	}

	// Reporting pass over the stable states.
	for _, b := range blocks {
		if !b.Live {
			continue
		}
		state, ok := c.in[b]
		if !ok {
			continue
		}
		out := c.transfer(b, state.clone(), true)
		if len(b.Succs) == 0 {
			c.checkExit(out)
		}
	}
}

// transfer runs the lock-state transfer function over one block,
// reporting violations when report is set.
func (c *checker) transfer(b *cfg.Block, state lockSet, report bool) lockSet {
	for _, n := range b.Nodes {
		c.node(n, state, report)
	}
	return state
}

func (c *checker) node(n ast.Node, state lockSet, report bool) {
	if c.escapeComm[n] {
		return // comm of a select with default: never blocks
	}
	if sel, ok := c.commSelect[n]; ok {
		// Comm of a default-less select: the select blocks as a whole.
		if report {
			c.heldAcross(state, sel.Pos(), "a select without default")
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false // other goroutine / function exit
		case *ast.SendStmt:
			if report {
				c.heldAcross(state, x.Pos(), "a channel send")
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && report {
				c.heldAcross(state, x.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			c.call(x, state, report)
			// Descend: arguments may contain receives or nested calls.
		}
		return true
	})
	// Range over a channel: the range expression is its own CFG node.
	if e, ok := n.(ast.Expr); ok && report {
		if t := c.pass.TypesInfo.TypeOf(e); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if c.isRangeX(e) {
					c.heldAcross(state, e.Pos(), "a range over a channel")
				}
			}
		}
	}
}

// isRangeX reports whether e is the X of a range statement in this
// function (the only way a bare channel expression becomes a CFG node).
func (c *checker) isRangeX(e ast.Expr) bool {
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if rng, ok := n.(*ast.RangeStmt); ok && rng.X == e {
			found = true
		}
		return true
	})
	return found
}

// call applies one call's effect on the lock state and checks it
// against the rules.
func (c *checker) call(call *ast.CallExpr, state lockSet, report bool) {
	// Direct mutex operation?
	if op, lockExpr, ok := summary.MutexOp(c.pass, call); ok {
		k, ok := c.keyOf(lockExpr)
		if !ok {
			return
		}
		switch op {
		case summary.OpLock, summary.OpRLock:
			if held, already := state[k]; already && report {
				if !(op == summary.OpRLock && held.read) {
					c.report(call.Pos(), "double", k,
						"%s is already locked on some path here (since %s); this deadlocks at run time",
						k, c.posOf(held.pos))
				}
			}
			if _, already := state[k]; !already {
				state[k] = acq{pos: call.Pos(), read: op == summary.OpRLock}
			}
		case summary.OpUnlock, summary.OpRUnlock:
			delete(state, k)
		}
		return
	}

	// Resolved callee: apply its summary.
	callee := staticCallee(c.pass, call)
	if callee == nil {
		return
	}
	if why, blocks := summary.BlockingCall(c.ix, callee); blocks && report {
		c.heldAcross(state, call.Pos(), "a call to "+callee.Name()+", which blocks ("+why+")")
	}
	// Lock effects of same-root helper calls: m.helperLocked() touching
	// m.mu reads as this call touching <root>.mu.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, _, ok := summary.ChainOf(c.pass, sel.X)
	if !ok {
		return
	}
	s, known := c.ix.Lookup(callee)
	if !known {
		return
	}
	apply := func(paths []string, read bool) {
		for _, path := range paths {
			k := lockKey{root: root, path: path}
			if held, already := state[k]; already && report {
				if !(read && held.read) {
					c.report(call.Pos(), "double", k,
						"%s is already locked on some path here (since %s), and %s acquires it again; this deadlocks at run time",
						k, c.posOf(held.pos), callee.Name())
				}
			}
		}
	}
	apply(s.AcquiresLocks, false)
	apply(s.AcquiresRLocks, true)
	// Net state change: balanced paths (acquired and released inside the
	// helper) leave the caller's state alone.
	for _, path := range diff(s.AcquiresLocks, s.ReleasesLocks) {
		k := lockKey{root: root, path: path}
		if _, already := state[k]; !already {
			state[k] = acq{pos: call.Pos()}
		}
	}
	for _, path := range diff(s.AcquiresRLocks, s.ReleasesRLocks) {
		k := lockKey{root: root, path: path}
		if _, already := state[k]; !already {
			state[k] = acq{pos: call.Pos(), read: true}
		}
	}
	for _, path := range diff(s.ReleasesLocks, s.AcquiresLocks) {
		delete(state, lockKey{root: root, path: path})
	}
	for _, path := range diff(s.ReleasesRLocks, s.AcquiresRLocks) {
		delete(state, lockKey{root: root, path: path})
	}
}

func diff(a, b []string) []string {
	var out []string
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}

// heldAcross reports every held lock not sanctioned by defer for a
// blocking operation at pos.
func (c *checker) heldAcross(state lockSet, pos token.Pos, what string) {
	keys := make([]lockKey, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		c.report(pos, "blocking", k,
			"%s (locked at %s) may be held across %s; release the lock before blocking",
			k, c.posOf(state[k].pos), what)
	}
}

// checkExit reports locks still held at a return with no deferred
// unlock covering them.
func (c *checker) checkExit(state lockSet) {
	for k, a := range state {
		if c.deferred[k] {
			continue
		}
		c.report(a.pos, "leak", k,
			"%s locked here is not unlocked on every path to return; unlock before each return or use defer %s.Unlock()",
			k, k)
	}
}

func (c *checker) report(pos token.Pos, kind string, k lockKey, format string, args ...interface{}) {
	rk := reportKey{pos: pos, kind: kind, lock: k}
	if c.reported[rk] {
		return
	}
	c.reported[rk] = true
	if _, ok := c.dirs.Allow(pos, DirectiveName); ok {
		return
	}
	c.pass.Reportf(pos, format+" (or annotate //pglint:%s <reason>)", append(args, DirectiveName)...)
}

func (c *checker) posOf(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	base := p.Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
