// Package ssalite builds the function-level IR the contract analyzers
// (ctxflow, hotalloc, goroleak, poolescape) share.
//
// The real golang.org/x/tools/go/ssa + buildssa pair is not shipped in
// the Go toolchain's cmd/vendor tree (vet never needs it), and this
// module vendors exclusively from that tree, so ssalite reconstructs the
// slice of SSA the analyzers actually consume on top of what the
// toolchain does vendor: go/types for resolution and go/cfg (via the
// ctrlflow pass) for control flow. Per function it materializes
//
//   - the loop forest with nesting depth and innermost flags,
//   - every call site with its statically resolved callee and signature,
//   - every SSA-visible heap allocation (make, new, growing append,
//     capturing closures, slice/map/&composite literals, interface
//     boxing) tagged with its enclosing loop,
//   - the free variables captured by each function literal.
//
// Like buildssa, ssalite is itself an analysis.Analyzer whose result the
// contract analyzers declare in Requires, so the IR is built once per
// package however many analyzers consume it.
package ssalite

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name:       "ssalite",
	Doc:        "build the per-function IR (loops, calls, allocations, captures) shared by the pglint contract analyzers",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: reflect.TypeOf(new(Program)),
	Run:        build,
}

// A Program is the ssalite IR for one package.
type Program struct {
	Funcs  []*Function
	byBody map[*ast.BlockStmt]*Function
	byObj  map[*types.Func]*Function
}

// FuncOf returns the Function whose body is block, or nil.
func (p *Program) FuncOf(block *ast.BlockStmt) *Function { return p.byBody[block] }

// FuncDeclOf returns the Function for the declared function object fn
// when its declaration is in this package, or nil (imported functions,
// interface methods, func values).
func (p *Program) FuncDeclOf(fn *types.Func) *Function {
	if fn == nil {
		return nil
	}
	return p.byObj[fn]
}

// A Function is one FuncDecl or FuncLit. Nested literals are separate
// Functions linked through Parent; a Function's Loops, Calls and Allocs
// never include those of a nested literal.
type Function struct {
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declarations
	Body   *ast.BlockStmt
	Sig    *types.Signature
	CFG    *cfg.CFG
	Parent *Function // enclosing function, nil for declarations

	Loops    []*Loop
	Calls    []*Call
	Allocs   []*Alloc
	FreeVars []*types.Var // variables a literal captures from enclosing scopes

	nested []*Function // child literals, registered by Program.add
}

// Name returns a diagnostic-friendly name.
func (f *Function) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	if f.Parent != nil {
		return "func literal in " + f.Parent.Name()
	}
	return "func literal"
}

// A Loop is one for/range statement of a function.
type Loop struct {
	Stmt   ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Body   *ast.BlockStmt
	Parent *Loop // enclosing loop in the same function, nil if outermost
	Depth  int   // 1 = outermost in its function
	Inner  bool  // contains no nested loop in the same function
}

// A Call is one call site.
type Call struct {
	Expr   *ast.CallExpr
	Callee *types.Func      // static callee; nil for func values and builtins
	Sig    *types.Signature // callee signature when the type checker knows it
	Loop   *Loop            // innermost enclosing loop, nil if straight-line
	Go     bool             // the call is the operand of a go statement
	Defer  bool             // the call is the operand of a defer statement
}

// AllocKind classifies a heap allocation site.
type AllocKind int

const (
	Make       AllocKind = iota // make(slice/map/chan)
	New                         // new(T)
	AppendGrow                  // append — may grow its backing array
	Closure                     // func literal capturing variables
	Lit                         // slice/map literal or &composite
	Box                         // conversion of a concrete non-pointer value to an interface
)

func (k AllocKind) String() string {
	switch k {
	case Make:
		return "make"
	case New:
		return "new"
	case AppendGrow:
		return "growing append"
	case Closure:
		return "capturing closure"
	case Lit:
		return "composite literal"
	case Box:
		return "interface boxing"
	}
	return "allocation"
}

// An Alloc is one SSA-visible heap-allocation site.
type Alloc struct {
	Node ast.Node
	Kind AllocKind
	Loop *Loop // innermost enclosing loop, nil if straight-line
}

func build(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	p := &Program{
		byBody: map[*ast.BlockStmt]*Function{},
		byObj:  map[*types.Func]*Function{},
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return false
				}
				f := newFunction(pass, fn.Body, nil)
				f.Decl = fn
				if sig, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					f.Sig, _ = sig.Type().(*types.Signature)
					p.byObj[sig] = f
				}
				f.CFG = cfgs.FuncDecl(fn)
				p.add(pass, f)
				return false // newFunction walked the body, literals included
			case *ast.FuncLit:
				// A literal outside any function declaration (package-level
				// var initializer): root it here.
				f := newFunction(pass, fn.Body, nil)
				f.Lit = fn
				f.Sig, _ = pass.TypesInfo.TypeOf(fn).(*types.Signature)
				f.CFG = cfgs.FuncLit(fn)
				f.FreeVars = freeVars(pass, fn)
				p.add(pass, f)
				return false
			}
			return true
		})
	}
	// Literal CFGs are registered after the walk so nested literals found
	// by newFunction get theirs too.
	for _, f := range p.Funcs {
		if f.Lit != nil && f.CFG == nil {
			f.CFG = cfgs.FuncLit(f.Lit)
		}
	}
	return p, nil
}

// add registers f and every nested literal Function hanging off it.
func (p *Program) add(pass *analysis.Pass, f *Function) {
	p.Funcs = append(p.Funcs, f)
	p.byBody[f.Body] = f
	for _, sub := range f.nested {
		p.add(pass, sub)
	}
}

// newFunction walks body (stopping at nested literals, which become child
// Functions) and collects loops, calls and allocation sites.
func newFunction(pass *analysis.Pass, body *ast.BlockStmt, parent *Function) *Function {
	f := &Function{Body: body, Parent: parent}
	var loopStack []*Loop
	cur := func() *Loop {
		if len(loopStack) == 0 {
			return nil
		}
		return loopStack[len(loopStack)-1]
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				sub := newFunction(pass, x.Body, f)
				sub.Lit = x
				sub.Sig, _ = pass.TypesInfo.TypeOf(x).(*types.Signature)
				sub.FreeVars = freeVars(pass, x)
				f.nested = append(f.nested, sub)
				if len(sub.FreeVars) > 0 {
					f.Allocs = append(f.Allocs, &Alloc{Node: x, Kind: Closure, Loop: cur()})
				}
				return false

			case *ast.ForStmt, *ast.RangeStmt:
				l := &Loop{Stmt: m.(ast.Stmt), Parent: cur(), Depth: len(loopStack) + 1, Inner: true}
				if l.Parent != nil {
					l.Parent.Inner = false
				}
				f.Loops = append(f.Loops, l)
				switch s := m.(type) {
				case *ast.ForStmt:
					l.Body = s.Body
					if s.Init != nil {
						walk(s.Init) // runs once, outside the loop
					}
					loopStack = append(loopStack, l)
					if s.Cond != nil {
						walk(s.Cond) // evaluated per iteration
					}
					if s.Post != nil {
						walk(s.Post) // executed per iteration
					}
				case *ast.RangeStmt:
					l.Body = s.Body
					walk(s.X) // evaluated once, outside the loop
					loopStack = append(loopStack, l)
				}
				walk(l.Body)
				loopStack = loopStack[:len(loopStack)-1]
				return false

			case *ast.GoStmt:
				f.addCall(pass, x.Call, cur(), true, false)
				for _, arg := range x.Call.Args {
					walk(arg)
				}
				walk(x.Call.Fun)
				return false

			case *ast.DeferStmt:
				f.addCall(pass, x.Call, cur(), false, true)
				for _, arg := range x.Call.Args {
					walk(arg)
				}
				walk(x.Call.Fun)
				return false

			case *ast.CallExpr:
				f.addCall(pass, x, cur(), false, false)
				return true

			case *ast.CompositeLit:
				f.addLitAlloc(pass, x, cur())
				return true

			case *ast.UnaryExpr:
				// &T{...}: the address forces the literal to the heap when it
				// escapes; count the pair as one Lit alloc at the & site.
				if x.Op == token.AND {
					if lit, ok := x.X.(*ast.CompositeLit); ok {
						f.Allocs = append(f.Allocs, &Alloc{Node: x, Kind: Lit, Loop: cur()})
						// Walk inside for nested allocs but skip re-adding lit.
						for _, el := range lit.Elts {
							walk(el)
						}
						return false
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)
	return f
}

func (f *Function) addCall(pass *analysis.Pass, call *ast.CallExpr, loop *Loop, isGo, isDefer bool) {
	// Builtins become Alloc entries; conversions may become Box.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			f.addBuiltinAlloc(b.Name(), call, loop)
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		f.addConversionAlloc(pass, call, loop)
		return
	}
	c := &Call{Expr: call, Loop: loop, Go: isGo, Defer: isDefer}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		c.Callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		c.Callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if c.Callee != nil {
		c.Sig, _ = c.Callee.Type().(*types.Signature)
	} else if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
		c.Sig, _ = t.Underlying().(*types.Signature)
	}
	f.Calls = append(f.Calls, c)
}

func (f *Function) addBuiltinAlloc(name string, call *ast.CallExpr, loop *Loop) {
	switch name {
	case "make":
		f.Allocs = append(f.Allocs, &Alloc{Node: call, Kind: Make, Loop: loop})
	case "new":
		f.Allocs = append(f.Allocs, &Alloc{Node: call, Kind: New, Loop: loop})
	case "append":
		f.Allocs = append(f.Allocs, &Alloc{Node: call, Kind: AppendGrow, Loop: loop})
	}
}

func (f *Function) addLitAlloc(pass *analysis.Pass, lit *ast.CompositeLit, loop *Loop) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		f.Allocs = append(f.Allocs, &Alloc{Node: lit, Kind: Lit, Loop: loop})
	}
}

// addConversionAlloc records the allocating conversions: T(x) where T is
// an interface and x a concrete non-pointer value (boxing a heap copy),
// and []byte(s) / []rune(s), which copy the string into a fresh slice.
// Pointer and interface operands box without allocating.
func (f *Function) addConversionAlloc(pass *analysis.Pass, call *ast.CallExpr, loop *Loop) {
	if len(call.Args) != 1 {
		return
	}
	dst := pass.TypesInfo.TypeOf(call.Fun)
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch dst.Underlying().(type) {
	case *types.Interface:
		switch src.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			return
		}
		f.Allocs = append(f.Allocs, &Alloc{Node: call, Kind: Box, Loop: loop})
	case *types.Slice:
		if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			f.Allocs = append(f.Allocs, &Alloc{Node: call, Kind: Make, Loop: loop})
		}
	}
}

// freeVars returns the variables lit's body references that are declared
// outside the literal — the captures that force a closure allocation.
// Package-level variables are excluded: referencing them captures
// nothing.
func freeVars(pass *analysis.Pass, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		if pkgLevel(pass, v) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func pkgLevel(pass *analysis.Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope()
}
