package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/ssalite"
)

// Determinism-taint analysis, shared between the summary facts
// (TaintedResults) and the detflow analyzer (which also wants the
// individual sink findings).
//
// The lattice is deliberately small — a value is either clean or
// tainted-with-a-reason — and the transfer rules are narrow enough to
// hold zero false positives over the repo:
//
//   sources   float accumulation (+=, -=, *=, /=) inside a map-range
//             body into a variable declared outside the loop (map
//             iteration order changes the FP rounding of the result);
//             results of math/rand, math/rand/v2 or crypto/rand calls
//             (ambient, unseeded randomness — the repo's seeded
//             internal/rng is exempt); float accumulation into a
//             captured variable from a go-spawned literal with no mutex
//             in sight (scheduling order changes the rounding); results
//             of any callee whose summary says TaintedResults.
//   transfer  assignment taints the target when any operand is tainted;
//             plain reassignment from clean operands clears it.
//   sinks     float-typed results (returns), arguments flowing into a
//             Fingerprint* call, and writes to float fields of a
//             *Result struct.
//
// A //pglint:detflow or //pglint:ordered-irrelevant directive at the
// source suppresses seeding; a directive at the sink suppresses the
// report (the caller's sanctioned func decides both).

// A TaintFinding is one tainted value reaching a determinism sink.
type TaintFinding struct {
	Pos    token.Pos
	Sink   string // what the value flowed into
	Reason string // why the value is tainted
}

// TaintInfo is the result of AnalyzeTaint for one function.
type TaintInfo struct {
	ReturnsTainted bool
	ReturnReason   string
	Findings       []TaintFinding
}

// AnalyzeTaint runs the determinism-taint pass over one function.
// calleeTainted resolves interprocedural taint (via the summary Index);
// sanctioned reports whether a directive covers a position.
func AnalyzeTaint(pass *analysis.Pass, fn *ssalite.Function, calleeTainted func(*types.Func) (string, bool), sanctioned func(token.Pos) bool) TaintInfo {
	w := &taintWalker{
		pass:          pass,
		fn:            fn,
		calleeTainted: calleeTainted,
		sanctioned:    sanctioned,
		tainted:       map[types.Object]string{},
	}
	// Two passes: loops feed values back to their own heads, so taint
	// introduced late in a body must be visible at its top. One extra
	// pass reaches the fixpoint because the domain only grows within a
	// pass and strong updates are re-applied identically.
	w.walk(false)
	w.walk(true)
	return w.out
}

type taintWalker struct {
	pass          *analysis.Pass
	fn            *ssalite.Function
	calleeTainted func(*types.Func) (string, bool)
	sanctioned    func(token.Pos) bool
	tainted       map[types.Object]string
	report        bool
	seen          map[token.Pos]bool
	out           TaintInfo
}

func (w *taintWalker) walk(report bool) {
	w.report = report
	w.seen = map[token.Pos]bool{}
	inspectOwn(w.fn, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			w.rangeStmt(x)
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.goLit(lit)
			}
			return false
		case *ast.AssignStmt:
			w.assign(x)
		case *ast.ReturnStmt:
			w.returnStmt(x)
		case *ast.CallExpr:
			w.fingerprintSink(x)
		}
		return true
	})
}

// rangeStmt seeds taint for float accumulation in map-iteration order.
func (w *taintWalker) rangeStmt(rng *ast.RangeStmt) {
	t := w.pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if w.sanctioned(rng.Pos()) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isAccumOp(as.Tok) {
			return true
		}
		for _, lhs := range as.Lhs {
			obj := w.accumTarget(lhs)
			if obj == nil || !isFloatish(obj.Type()) {
				continue
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
				continue // loop-local accumulator, dies with the iteration
			}
			if w.sanctioned(as.Pos()) {
				continue
			}
			w.tainted[obj] = "float accumulation in map-iteration order at " + posOf(w.pass, as.Pos())
		}
		return true
	})
}

// goLit seeds taint for unsynchronized concurrent float accumulation: a
// go-spawned literal writing += into a captured float with no mutex use
// inside the literal. Interleaving order changes the rounding, so the
// accumulated value is not a function of the inputs alone.
func (w *taintWalker) goLit(lit *ast.FuncLit) {
	if litLocks(w.pass, lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isAccumOp(as.Tok) {
			return true
		}
		for _, lhs := range as.Lhs {
			obj := w.accumTarget(lhs)
			if obj == nil || !isFloatish(obj.Type()) {
				continue
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				continue // literal-local, not shared
			}
			if w.sanctioned(as.Pos()) {
				continue
			}
			reason := "unsynchronized concurrent float accumulation at " + posOf(w.pass, as.Pos())
			w.tainted[obj] = reason
			w.finding(as.Pos(), "a float accumulator shared across goroutines", reason)
		}
		return true
	})
}

// litLocks reports whether the literal body acquires any mutex — the
// accumulation is then serialized and order-independent in the
// summation sense only if the caller further fences it, but it is not
// a data race, and detflow leaves racy-order FP concerns to the
// sanctioned reduction-tree helpers.
func litLocks(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, ok := MutexOp(pass, call); ok && (op == OpLock || op == OpRLock) {
				found = true
			}
		}
		return true
	})
	return found
}

// accumTarget resolves an assignment target to the object that carries
// the accumulated value: the identifier itself, or the root of an index
// expression (s[i] += v accumulates into s).
func (w *taintWalker) accumTarget(lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return w.objOf(x)
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return w.objOf(id)
		}
	}
	return nil
}

func (w *taintWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Defs[id]
}

func (w *taintWalker) assign(as *ast.AssignStmt) {
	if isAccumOp(as.Tok) {
		// Map-range and go-literal accumulation is seeded by the
		// dedicated scans; here only propagate operand taint.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if reason := w.exprTaint(as.Rhs[0]); reason != "" {
				if obj := w.accumTarget(as.Lhs[0]); obj != nil {
					w.tainted[obj] = reason
				}
			}
			w.resultFieldSink(as.Lhs[0], as.Rhs[0], as.Pos())
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		// x, y := f() — taint every target when the call is tainted.
		if len(as.Rhs) == 1 {
			reason := w.exprTaint(as.Rhs[0])
			for _, lhs := range as.Lhs {
				w.updateTarget(lhs, reason)
				w.resultFieldSink(lhs, as.Rhs[0], as.Pos())
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		w.updateTarget(lhs, w.exprTaint(as.Rhs[i]))
		w.resultFieldSink(lhs, as.Rhs[i], as.Pos())
	}
}

// updateTarget taints or strongly clears an assignment target.
func (w *taintWalker) updateTarget(lhs ast.Expr, reason string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		// Writes through selectors/indexes weak-update: taint sticks to
		// the root so later reads stay tainted, clean writes don't clear.
		if reason != "" {
			if obj := w.accumTarget(lhs); obj != nil {
				w.tainted[obj] = reason
			}
		}
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	if reason != "" {
		w.tainted[obj] = reason
	} else {
		delete(w.tainted, obj)
	}
}

func (w *taintWalker) returnStmt(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		// Naked return: named float results carry whatever taint their
		// objects accumulated.
		if w.fn.Decl == nil || w.fn.Decl.Type.Results == nil {
			return
		}
		for _, f := range w.fn.Decl.Type.Results.List {
			for _, name := range f.Names {
				obj := w.pass.TypesInfo.Defs[name]
				if obj == nil || !isFloatish(obj.Type()) {
					continue
				}
				if reason, ok := w.tainted[obj]; ok {
					w.returnFinding(ret.Pos(), reason)
				}
			}
		}
		return
	}
	for _, res := range ret.Results {
		t := w.pass.TypesInfo.TypeOf(res)
		if t == nil || !isFloatish(t) {
			continue
		}
		if reason := w.exprTaint(res); reason != "" {
			w.returnFinding(ret.Pos(), reason)
		}
	}
}

func (w *taintWalker) returnFinding(pos token.Pos, reason string) {
	if w.sanctioned(pos) {
		return
	}
	w.out.ReturnsTainted = true
	if w.out.ReturnReason == "" {
		w.out.ReturnReason = reason
	}
	w.finding(pos, "float result", reason)
}

// fingerprintSink flags tainted arguments flowing into Fingerprint*
// calls — the reproducibility referee must never hash order-dependent
// values.
func (w *taintWalker) fingerprintSink(call *ast.CallExpr) {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if !strings.HasPrefix(name, "Fingerprint") {
		return
	}
	for _, arg := range call.Args {
		if reason := w.exprTaint(arg); reason != "" && !w.sanctioned(call.Pos()) {
			w.finding(call.Pos(), "argument to "+name, reason)
		}
	}
}

// resultFieldSink flags tainted writes into float fields of a Result
// struct (r.Residual = tainted, res.X[i] = tainted).
func (w *taintWalker) resultFieldSink(lhs, rhs ast.Expr, pos token.Pos) {
	target := ast.Unparen(lhs)
	if ix, ok := target.(*ast.IndexExpr); ok {
		target = ast.Unparen(ix.X)
	}
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() || !isFloatish(field.Type()) {
		return
	}
	recv := w.pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isResultType(recv) {
		return
	}
	if reason := w.exprTaint(rhs); reason != "" && !w.sanctioned(pos) {
		w.finding(pos, "field "+sel.Sel.Name+" of "+typeName(recv), reason)
	}
}

func isResultType(t types.Type) bool {
	return strings.HasSuffix(typeName(t), "Result")
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// exprTaint reports the first taint reason found in an expression, or
// "".
func (w *taintWalker) exprTaint(e ast.Expr) string {
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := w.objOf(x); obj != nil {
				if r, ok := w.tainted[obj]; ok {
					reason = r
					return false
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(w.pass, x); fn != nil {
				if r, ok := ambientRandom(fn); ok {
					reason = r
					return false
				}
				if r, ok := w.calleeTainted(fn); ok {
					reason = "calls " + fn.Name() + ", whose results are determinism-tainted (" + r + ")"
					return false
				}
			}
		}
		return true
	})
	return reason
}

// ambientRandom classifies calls into the unseeded randomness packages.
// The repo's internal/rng wraps a caller-supplied seed and is the
// sanctioned source — its package path never matches these.
func ambientRandom(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2", "crypto/rand":
		return "ambient randomness (" + fn.Pkg().Path() + "." + fn.Name() + ")", true
	}
	return "", false
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (w *taintWalker) finding(pos token.Pos, sink, reason string) {
	if !w.report || w.seen[pos] {
		return
	}
	w.seen[pos] = true
	w.out.Findings = append(w.out.Findings, TaintFinding{Pos: pos, Sink: sink, Reason: reason})
}

func isAccumOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isFloatish reports whether taint through t matters for bitwise
// reproducibility: floats, complex numbers, and aggregates of them.
func isFloatish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Slice:
		return isFloatish(u.Elem())
	case *types.Array:
		return isFloatish(u.Elem())
	case *types.Pointer:
		return isFloatish(u.Elem())
	}
	return false
}
