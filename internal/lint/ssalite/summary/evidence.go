package summary

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Evidence is a package-wide index of channel allocation sites, used to
// prove sends non-blocking: a send on a channel whose every make site in
// the package has a non-zero capacity cannot block unless the buffer
// fills, and (combined with the cap-1, exactly-one-send protocols the
// repo uses) is accepted as safe by sendblock and by the MayBlockSend
// fact. Sites are keyed by the variable or struct field the fresh
// channel is assigned to, so all three repo idioms resolve:
//
//	resp := make(chan solveResp, 1)          // local
//	g.slots = make(chan struct{}, n)         // field assign
//	&solveReq{resp: make(chan solveResp, 1)} // composite literal field
type Evidence struct {
	info  *types.Info
	sites map[types.Object][]chanSite
}

type chanSite struct {
	buffered bool // capacity argument present and not constant zero
}

// NewEvidence scans every file of the pass for channel make sites.
func NewEvidence(pass *analysis.Pass) *Evidence {
	ev := &Evidence{info: pass.TypesInfo, sites: map[types.Object][]chanSite{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					ev.record(lhs, x.Rhs[i])
				}
			case *ast.ValueSpec:
				if len(x.Names) != len(x.Values) {
					return true
				}
				for i, name := range x.Names {
					ev.record(name, x.Values[i])
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						ev.record(kv.Key, kv.Value)
					}
				}
			}
			return true
		})
	}
	return ev
}

func (ev *Evidence) record(lhs, rhs ast.Expr) {
	buffered, ok := ev.makeChan(rhs)
	if !ok {
		return
	}
	obj := ev.objOf(lhs)
	if obj == nil {
		return
	}
	ev.sites[obj] = append(ev.sites[obj], chanSite{buffered: buffered})
}

// makeChan matches make(chan T[, n]) and reports whether the capacity
// is present and provably non-zero.
func (ev *Evidence) makeChan(e ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "make" {
		return false, false
	}
	if b, isBuiltin := ev.info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	if t := ev.info.TypeOf(call.Args[0]); t == nil {
		return false, false
	} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true // unbuffered
	}
	// A constant-zero capacity is an unbuffered channel spelled long;
	// any other capacity expression (constant or runtime-sized, like
	// make(chan T, workers)) counts as buffered.
	if tv, known := ev.info.Types[call.Args[1]]; known && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return false, true
		}
	}
	return true, true
}

// objOf resolves the assignment target to a stable object: a plain
// identifier (local or package var) or the field object of a selector /
// composite-literal key.
func (ev *Evidence) objOf(lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := ev.info.Defs[x]; obj != nil {
			return obj
		}
		return ev.info.Uses[x]
	case *ast.SelectorExpr:
		return ev.info.Uses[x.Sel]
	}
	return nil
}

// NonBlockingSend reports whether a send statement is provably
// non-blocking, and on success names the evidence. sel is the select
// statement whose communication clause the send is (nil when the send
// is a bare statement).
func (ev *Evidence) NonBlockingSend(send *ast.SendStmt, sel *ast.SelectStmt) (bool, string) {
	if sel != nil && SelectEscapes(sel) {
		return true, "select with an escape path"
	}
	obj := ev.objOf(send.Chan)
	if obj == nil {
		return false, ""
	}
	sites := ev.sites[obj]
	if len(sites) == 0 {
		return false, ""
	}
	for _, s := range sites {
		if !s.buffered {
			return false, ""
		}
	}
	return true, "all make sites buffered"
}

// Buffered reports whether every known make site for the channel
// expression is buffered (capacity evidence without a send statement,
// for callers reasoning about receives or handoffs).
func (ev *Evidence) Buffered(ch ast.Expr) bool {
	obj := ev.objOf(ch)
	if obj == nil {
		return false
	}
	sites := ev.sites[obj]
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		if !s.buffered {
			return false
		}
	}
	return true
}
