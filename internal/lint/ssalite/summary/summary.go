// Package summary computes cross-package function summaries — the facts
// layer that lets the pglint concurrency/determinism analyzers reason
// interprocedurally instead of bailing at package edges.
//
// Per declared function it records, over the ssalite IR:
//
//   - whether the function (or anything it calls on the same goroutine)
//     performs a blocking operation: a channel send/receive, a select
//     without default, sync.WaitGroup.Wait / sync.Cond.Wait, time.Sleep,
//     or a call into net / net/http;
//   - which mutex fields of its receiver it acquires (Lock vs RLock),
//     including through same-receiver helper methods;
//   - whether it contains a channel send with no non-blocking evidence
//     (see Evidence), directly or through callees;
//   - whether its results are determinism-tainted: influenced by
//     map-iteration order, ambient (non-internal/rng) randomness, or
//     unsynchronized concurrent accumulation.
//
// The summaries are exported as one analysis package fact
// (*PackageSummaries, gob-serialized per package exactly like the vet
// facts the toolchain ships), keyed by types.Func full name, and loaded
// for callees through the Index the analyzer returns. lockcheck, detflow
// and sendblock all declare summary.Analyzer in Requires; under
// `go vet -vettool` the facts flow package to package in dependency
// order, so a lock held in internal/serve across a call into
// internal/sparse is judged by what that sparse function actually does.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/ssalite"
)

// Directive names honored while COMPUTING facts: a send sanctioned by
// //pglint:sendblock in its own package must not resurface as a
// may-block fact at every cross-package go site, and a map walk
// sanctioned as order-irrelevant must not taint its function's results.
// The owning analyzers alias these so the names cannot drift.
const (
	SendblockDirective = "sendblock"
	DetflowDirective   = "detflow"
	LockcheckDirective = "lockcheck"
	// MaprangeDirective is maprange's ordered-irrelevant sanction, which
	// detflow honors for the same claim (order cannot reach the output).
	MaprangeDirective = "ordered-irrelevant"
)

// A FuncSummary is the exported per-function fact set.
type FuncSummary struct {
	// Blocking reports a blocking op on the function's own goroutine;
	// BlockReason names the first one found (with position) for
	// diagnostics.
	Blocking    bool
	BlockReason string

	// AcquiresLocks / AcquiresRLocks list receiver-rooted mutex field
	// paths (e.g. "mu", "state.mu") the function Lock()s / RLock()s,
	// directly or via same-receiver helpers; ReleasesLocks /
	// ReleasesRLocks the paths it Unlock()s / RUnlock()s (deferred ones
	// included). A path in both lists is a balanced helper: no net state
	// change for the caller, but still a double-lock hazard when the
	// caller already holds it.
	AcquiresLocks  []string
	AcquiresRLocks []string
	ReleasesLocks  []string
	ReleasesRLocks []string

	// MayBlockSend reports a channel send with no non-blocking evidence
	// (transitively); SendReason locates it.
	MayBlockSend bool
	SendReason   string

	// TaintedResults reports that the function's results are
	// determinism-tainted; TaintReason names the source.
	TaintedResults bool
	TaintReason    string
}

// PackageSummaries is the package fact carrying every function summary
// of one package, sorted by function full name so the gob encoding is
// deterministic.
type PackageSummaries struct {
	Funcs []NamedSummary
}

type NamedSummary struct {
	Name string // types.Func.FullName
	Sum  FuncSummary
}

// AFact marks PackageSummaries as an analysis fact.
func (*PackageSummaries) AFact() {}

func (p *PackageSummaries) String() string {
	return fmt.Sprintf("summaries(%d funcs)", len(p.Funcs))
}

var Analyzer = &analysis.Analyzer{
	Name:       "pgfacts",
	Doc:        "compute per-function concurrency/determinism summaries (blocking ops, locks acquired, unsafe sends, taint) and export them as package facts for cross-package analysis",
	Requires:   []*analysis.Analyzer{ssalite.Analyzer},
	ResultType: reflect.TypeOf(new(Index)),
	FactTypes:  []analysis.Fact{new(PackageSummaries)},
	Run:        run,
}

// An Index resolves the summary of any statically known callee: local
// functions from this package's analysis, imported ones from their
// package fact.
type Index struct {
	pass     *analysis.Pass
	local    map[*types.Func]*FuncSummary
	imported map[*types.Package]map[string]FuncSummary
}

// Lookup returns the summary for fn, reporting whether one is known.
func (ix *Index) Lookup(fn *types.Func) (FuncSummary, bool) {
	if fn == nil {
		return FuncSummary{}, false
	}
	if s, ok := ix.local[fn]; ok {
		return *s, true
	}
	pkg := fn.Pkg()
	if pkg == nil || pkg == ix.pass.Pkg {
		return FuncSummary{}, false
	}
	m, ok := ix.imported[pkg]
	if !ok {
		m = nil
		var fact PackageSummaries
		if ix.pass.ImportPackageFact(pkg, &fact) {
			m = make(map[string]FuncSummary, len(fact.Funcs))
			for _, ns := range fact.Funcs {
				m[ns.Name] = ns.Sum
			}
		}
		ix.imported[pkg] = m
	}
	s, ok := m[fn.FullName()]
	return s, ok
}

// localCall is one statically resolved call site kept for propagation.
type localCall struct {
	callee   *types.Func
	recvRoot types.Object // root object of the receiver expression, nil if none
	pos      token.Pos
	isGo     bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	ix := &Index{
		pass:     pass,
		local:    map[*types.Func]*FuncSummary{},
		imported: map[*types.Package]map[string]FuncSummary{},
	}
	// Summaries are computed for this module's packages only. Under
	// `go vet` the analyzer also visits the standard library and any
	// vendored dependencies to satisfy fact loading; computing real
	// summaries there drowns the signal — inside the runtime every
	// allocation path eventually reaches a GC channel receive, which
	// would mark the whole world Blocking. Third-party callees are
	// instead classified by the curated stdlibBlocking list, and their
	// packages export no fact at all (Lookup stays "unknown").
	if !firstParty(pass) {
		return ix, nil
	}
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)
	dirs := directive.New(pass)
	ev := NewEvidence(pass)

	// Pass 1: intra-function facts plus the call lists for propagation.
	calls := map[*types.Func][]localCall{}
	objOf := map[*ssalite.Function]*types.Func{}
	for _, fn := range prog.Funcs {
		if fn.Decl == nil || isTestFile(pass, fn.Body) {
			continue
		}
		obj, ok := pass.TypesInfo.Defs[fn.Decl.Name].(*types.Func)
		if !ok {
			continue
		}
		objOf[fn] = obj
		s := &FuncSummary{}
		if why, blocking := ownBlocking(pass, fn); blocking {
			s.Blocking, s.BlockReason = true, why
		}
		if why, may := ownUnsafeSend(pass, fn, ev, dirs); may {
			s.MayBlockSend, s.SendReason = true, why
		}
		s.AcquiresLocks, s.AcquiresRLocks, s.ReleasesLocks, s.ReleasesRLocks = ownLocks(pass, fn)
		ti := AnalyzeTaint(pass, fn, func(callee *types.Func) (string, bool) {
			cs, ok := ix.Lookup(callee)
			if !ok || !cs.TaintedResults {
				return "", false
			}
			return cs.TaintReason, true
		}, func(pos token.Pos) bool { return taintSanctioned(dirs, pos) })
		if ti.ReturnsTainted {
			s.TaintedResults, s.TaintReason = true, ti.ReturnReason
		}
		ix.local[obj] = s
		calls[obj] = collectCalls(pass, fn)
	}

	// Pass 2: propagate through the call graph to a fixpoint. Blocking,
	// MayBlockSend and TaintedResults only ever flip false→true, so the
	// loop terminates. Goroutine-spawning calls do not propagate: work
	// handed to another goroutine does not block (or taint the ordering
	// of) the caller's.
	for changed := true; changed; {
		changed = false
		for obj, s := range ix.local {
			for _, c := range calls[obj] {
				if c.isGo {
					continue
				}
				cs, known := ix.Lookup(c.callee)
				if !known {
					if why, blocking := stdlibBlocking(c.callee); blocking && !s.Blocking {
						s.Blocking, s.BlockReason = true, why+" at "+posOf(pass, c.pos)
						changed = true
					}
					continue
				}
				if cs.Blocking && !s.Blocking {
					s.Blocking = true
					s.BlockReason = "calls " + c.callee.Name() + " (" + cs.BlockReason + ") at " + posOf(pass, c.pos)
					changed = true
				}
				if cs.MayBlockSend && !s.MayBlockSend {
					s.MayBlockSend = true
					s.SendReason = "calls " + c.callee.Name() + " (" + cs.SendReason + ")"
					changed = true
				}
				// Lock sets propagate only through same-receiver helper
				// calls: m.helperLocked() acquiring m.mu is m acquiring
				// m.mu for the caller's caller.
				if c.recvRoot != nil && c.recvRoot == recvVar(obj) {
					if mergeLocks(&s.AcquiresLocks, cs.AcquiresLocks) {
						changed = true
					}
					if mergeLocks(&s.AcquiresRLocks, cs.AcquiresRLocks) {
						changed = true
					}
					if mergeLocks(&s.ReleasesLocks, cs.ReleasesLocks) {
						changed = true
					}
					if mergeLocks(&s.ReleasesRLocks, cs.ReleasesRLocks) {
						changed = true
					}
				}
			}
		}
		// Re-run the taint pass with the updated table: a callee freshly
		// marked tainted may taint its callers' returns.
		for _, fn := range prog.Funcs {
			obj := objOf[fn]
			if obj == nil {
				continue
			}
			s := ix.local[obj]
			if s.TaintedResults {
				continue
			}
			ti := AnalyzeTaint(pass, fn, func(callee *types.Func) (string, bool) {
				cs, ok := ix.Lookup(callee)
				if !ok || !cs.TaintedResults {
					return "", false
				}
				return cs.TaintReason, true
			}, func(pos token.Pos) bool { return taintSanctioned(dirs, pos) })
			if ti.ReturnsTainted {
				s.TaintedResults, s.TaintReason = true, ti.ReturnReason
				changed = true
			}
		}
	}

	// Export the package fact, sorted for deterministic encoding.
	fact := &PackageSummaries{}
	for obj, s := range ix.local {
		fact.Funcs = append(fact.Funcs, NamedSummary{Name: obj.FullName(), Sum: *s})
	}
	sort.Slice(fact.Funcs, func(i, j int) bool { return fact.Funcs[i].Name < fact.Funcs[j].Name })
	pass.ExportPackageFact(fact)
	return ix, nil
}

// firstParty reports whether the analyzed package belongs to the module
// under analysis (rather than the standard library or a vendored
// dependency).
func firstParty(pass *analysis.Pass) bool {
	mod := ""
	if pass.Module != nil {
		mod = pass.Module.Path
	}
	if mod == "" || mod == "std" || mod == "cmd" {
		return false
	}
	path := pass.Pkg.Path()
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// taintSanctioned reports whether a detflow or ordered-irrelevant
// directive covers pos: both assert that order/randomness cannot reach
// the output, so both silence taint seeding.
func taintSanctioned(dirs *directive.Index, pos token.Pos) bool {
	if _, ok := dirs.Allow(pos, DetflowDirective); ok {
		return true
	}
	_, ok := dirs.Allow(pos, MaprangeDirective)
	return ok
}

func recvVar(fn *types.Func) types.Object {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

func mergeLocks(dst *[]string, src []string) bool {
	changed := false
	for _, p := range src {
		found := false
		for _, q := range *dst {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			*dst = append(*dst, p)
			sort.Strings(*dst)
			changed = true
		}
	}
	return changed
}

// collectCalls gathers fn's statically resolved calls with their
// receiver roots (nested literals excluded: their calls run under their
// own Function, and when spawned by go, on another goroutine).
func collectCalls(pass *analysis.Pass, fn *ssalite.Function) []localCall {
	var out []localCall
	for _, c := range fn.Calls {
		if c.Callee == nil {
			continue
		}
		lc := localCall{callee: c.Callee, pos: c.Expr.Pos(), isGo: c.Go}
		if sel, ok := ast.Unparen(c.Expr.Fun).(*ast.SelectorExpr); ok {
			if root, _, ok := ChainOf(pass, sel.X); ok {
				lc.recvRoot = root
			}
		}
		out = append(out, lc)
	}
	return out
}

// ownBlocking scans fn's own body (nested literals and go statements
// excluded — they run on other goroutines or other schedules) for a
// direct blocking operation.
func ownBlocking(pass *analysis.Pass, fn *ssalite.Function) (string, bool) {
	// Communication clauses of a select WITH default never block (the
	// default is the escape), but the clause bodies still run here —
	// collect the comm statements so the main walk can skip exactly
	// them while descending into everything else.
	nonBlockingComm := map[ast.Node]bool{}
	inspectOwn(fn, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok && selectHasDefault(sel) {
			for _, cl := range sel.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					nonBlockingComm[comm] = true
				}
			}
		}
		return true
	})
	var why string
	inspectOwn(fn, func(n ast.Node) bool {
		if why != "" || nonBlockingComm[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false // other goroutine / function exit, not this path
		case *ast.SendStmt:
			why = "channel send at " + posOf(pass, x.Pos())
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				why = "channel receive at " + posOf(pass, x.Pos())
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					why = "range over channel at " + posOf(pass, x.Pos())
					return false
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				why = "select without default at " + posOf(pass, x.Pos())
				return false
			}
		}
		return true
	})
	return why, why != ""
}

// visitOwn is the nested-literal guard shared by the ad-hoc walks.
func visitOwn(fn *ssalite.Function, n ast.Node) bool {
	if lit, ok := n.(*ast.FuncLit); ok && fn.Lit != lit {
		return false
	}
	return true
}

// ownUnsafeSend reports the first send in fn's own body with no
// non-blocking evidence and no sendblock directive.
func ownUnsafeSend(pass *analysis.Pass, fn *ssalite.Function, ev *Evidence, dirs *directive.Index) (string, bool) {
	var why string
	walkSends(fn, func(send *ast.SendStmt, sel *ast.SelectStmt) {
		if why != "" {
			return
		}
		if ok, _ := ev.NonBlockingSend(send, sel); ok {
			return
		}
		if _, ok := dirs.Allow(send.Pos(), SendblockDirective); ok {
			return
		}
		why = "unproven channel send at " + posOf(pass, send.Pos())
	})
	return why, why != ""
}

// WalkSends visits every channel send in fn's own body (nested literals
// excluded), passing the enclosing select statement when the send is a
// select communication clause.
func WalkSends(fn *ssalite.Function, visit func(send *ast.SendStmt, sel *ast.SelectStmt)) {
	walkSends(fn, visit)
}

func walkSends(fn *ssalite.Function, visit func(*ast.SendStmt, *ast.SelectStmt)) {
	comm := map[*ast.SendStmt]*ast.SelectStmt{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if !visitOwn(fn, n) {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			for _, cl := range x.Body.List {
				if send, ok := cl.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
					comm[send] = x
				}
			}
		case *ast.SendStmt:
			visit(x, comm[x])
		}
		return true
	})
}

// ownLocks collects the receiver-rooted mutex field paths fn acquires
// and releases. Deferred unlocks count as releases (they run before the
// caller regains control); mutex ops inside nested literals do not (a
// spawned worker's locking is its own function's fact).
func ownLocks(pass *analysis.Pass, fn *ssalite.Function) (locks, rlocks, unlocks, runlocks []string) {
	recv := fnRecv(pass, fn)
	if recv == nil {
		return nil, nil, nil, nil
	}
	inspectOwn(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, lockExpr, ok := MutexOp(pass, call)
		if !ok {
			return true
		}
		root, path, ok := ChainOf(pass, lockExpr)
		if !ok || root != recv {
			return true
		}
		switch op {
		case OpLock:
			mergeLocks(&locks, []string{path})
		case OpRLock:
			mergeLocks(&rlocks, []string{path})
		case OpUnlock:
			mergeLocks(&unlocks, []string{path})
		case OpRUnlock:
			mergeLocks(&runlocks, []string{path})
		}
		return true
	})
	return locks, rlocks, unlocks, runlocks
}

func fnRecv(pass *analysis.Pass, fn *ssalite.Function) types.Object {
	if fn.Decl == nil || fn.Decl.Recv == nil || len(fn.Decl.Recv.List) == 0 {
		return nil
	}
	names := fn.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

// inspectOwn walks fn's body without descending into nested literals.
// The visit callback returns false to prune the subtree.
func inspectOwn(fn *ssalite.Function, visit func(ast.Node) bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if !visitOwn(fn, n) {
			return false
		}
		return visit(n)
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// SelectEscapes reports whether a select statement gives a send inside
// it an escape path: a default clause, or at least one receive clause
// (the select-with-ctx.Done shape — the send abandons when the signal
// fires).
func SelectEscapes(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		comm := cl.(*ast.CommClause).Comm
		if comm == nil {
			return true // default
		}
		switch c := comm.(type) {
		case *ast.ExprStmt, *ast.AssignStmt:
			_ = c
			return true // receive clause
		}
	}
	return false
}

// stdlibBlocking classifies callees whose packages ship no summaries:
// the standard-library blocking primitives.
func stdlibBlocking(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait":
		recv := recvTypeString(fn)
		if strings.Contains(recv, "WaitGroup") || strings.Contains(recv, "Cond") {
			return "sync." + baseType(recv) + ".Wait", true
		}
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case path == "net" || (strings.HasPrefix(path, "net/") && path != "net/url" && path != "net/netip" && path != "net/mail"):
		return "network call (" + path + "." + fn.Name() + ")", true
	}
	return "", false
}

func recvTypeString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return sig.Recv().Type().String()
}

func baseType(s string) string {
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}

// BlockingCall reports whether one call site blocks the calling
// goroutine, combining the stdlib classification with the summary index.
// Used by lockcheck for its held-across-blocking rule.
func BlockingCall(ix *Index, callee *types.Func) (string, bool) {
	if s, ok := ix.Lookup(callee); ok {
		if s.Blocking {
			return s.BlockReason, true
		}
		return "", false
	}
	return stdlibBlocking(callee)
}

func isTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

func posOf(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---------------------------------------------------------------------
// Mutex call recognition, shared with lockcheck.

// LockOp classifies a sync mutex method call.
type LockOp int

const (
	OpLock LockOp = iota
	OpUnlock
	OpRLock
	OpRUnlock
)

// MutexOp matches calls to (*sync.Mutex).Lock/Unlock and
// (*sync.RWMutex).Lock/Unlock/RLock/RUnlock (promoted embedded mutexes
// included) and returns the operation plus the lock-carrying expression
// (the receiver of the call).
func MutexOp(pass *analysis.Pass, call *ast.CallExpr) (LockOp, ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	var op LockOp
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "Unlock":
		op = OpUnlock
	case "RLock":
		op = OpRLock
	case "RUnlock":
		op = OpRUnlock
	default:
		return 0, nil, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, nil, false
	}
	recv := recvTypeString(fn)
	if !strings.Contains(recv, "sync.Mutex") && !strings.Contains(recv, "sync.RWMutex") {
		return 0, nil, false
	}
	return op, sel.X, true
}

// ChainOf reduces a lock or receiver expression to (root object, field
// path): c.mu → (c, "mu"), s.state.mu → (s, "state.mu"), mu → (mu, "").
// Expressions rooted in calls or index operations have no stable
// identity and report false.
func ChainOf(pass *analysis.Pass, e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if _, ok := obj.(*types.Var); !ok {
				return nil, "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return obj, strings.Join(parts, "."), true
		default:
			return nil, "", false
		}
	}
}
