// Package dep bumps an exported counter atomically; the fact must make
// plain reads in importing packages a finding.
package dep

import "sync/atomic"

// Counter is a lock-free hit counter.
type Counter struct {
	N int64
}

// Inc is the only sanctioned way to touch N.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.N, 1)
}

// Value reads through the protocol.
func (c *Counter) Value() int64 {
	return atomic.LoadInt64(&c.N)
}
