package core

import (
	"sync"
	"sync/atomic"

	"example.com/internal/dep"
)

type stats struct {
	hits   int64
	misses int64
	name   string
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

// snapshot reads hits plainly — the mix this analyzer exists for.
func (s *stats) snapshot() int64 {
	return s.hits // want `field stats\.hits is accessed atomically \(e\.g\. at stats\.go:\d+\) but plainly here`
}

// reset writes plainly; same defect on the store side.
func (s *stats) reset() {
	s.hits = 0 // want `field stats\.hits is accessed atomically`
	atomic.StoreInt64(&s.misses, 0)
}

// Construction is not an access: the value is not shared yet.
func newStats(name string) *stats {
	return &stats{hits: 0, misses: 0, name: name}
}

// name is never touched atomically; plain access is fine.
func (s *stats) label() string { return s.name }

// crossRead reads dep.Counter.N plainly; only the imported fact makes
// this visible.
func crossRead(c *dep.Counter) int64 {
	return c.N // want `field Counter\.N is accessed atomically \(e\.g\. at dep\.go:\d+\) but plainly here`
}

// typed is the recommended shape: atomic.Int64 cannot be mixed.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump() { t.n.Add(1) }
func (t *typed) read() int64 {
	return t.n.Load()
}

// fenced shows the directive: a read fenced by a barrier elsewhere.
type fenced struct {
	wg sync.WaitGroup
	n  int64
}

func (f *fenced) add() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		atomic.AddInt64(&f.n, 1)
	}()
}

func (f *fenced) total() int64 {
	f.wg.Wait()
	//pglint:atomicmix every writer has Done()d before Wait returns
	return f.n
}
