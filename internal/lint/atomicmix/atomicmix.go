// Package atomicmix forbids mixing sync/atomic and plain access to one
// struct field.
//
// A field updated through atomic.AddInt64/LoadUint32/StorePointer/...
// anywhere is part of a lock-free protocol: every other access must go
// through sync/atomic too, or the happens-before edges the protocol
// relies on silently disappear. The race detector only catches the mix
// when a test happens to schedule both sides; this analyzer catches it
// statically, across packages — the atomically-accessed field set of
// each package is exported as a fact, so a plain read in an importing
// package of a counter that internal/serve bumps atomically is still a
// finding.
//
// Construction is exempt (a composite literal or new() runs before the
// value is shared), as are fields of the typed atomic.Int64/Uint64/...
// wrappers, which make plain access unrepresentable — migrating to them
// is the recommended fix. //pglint:atomicmix <reason> suppresses a
// finding that is fenced by other means (e.g. a read after
// WaitGroup.Wait).
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "atomicmix"

var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "a struct field accessed through sync/atomic anywhere must never be read or written plainly elsewhere",
	FactTypes: []analysis.Fact{new(AtomicFields)},
	Run:       run,
}

// AtomicFields is the package fact: which fields this package accesses
// atomically, keyed by "TypeName.FieldName" within the fact's package,
// with one example site for diagnostics.
type AtomicFields struct {
	Fields []AtomicField
}

// An AtomicField is one atomically-accessed field.
type AtomicField struct {
	Key string // "TypeName.FieldName"
	At  string // example atomic access site, "file.go:line"
}

// AFact marks AtomicFields as an analysis fact.
func (*AtomicFields) AFact() {}

func (f *AtomicFields) String() string {
	keys := make([]string, len(f.Fields))
	for i, af := range f.Fields {
		keys[i] = af.Key
	}
	return "atomic(" + strings.Join(keys, ",") + ")"
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)

	// Phase 1: find every atomic access in this package and the selector
	// expressions that perform it (those are not "plain" accesses).
	atomicUse := map[*ast.SelectorExpr]bool{}
	atomic := map[*types.Var]string{} // field -> example site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
				if !ok || !field.IsField() {
					continue
				}
				atomicUse[sel] = true
				if _, seen := atomic[field]; !seen {
					p := pass.Fset.Position(sel.Pos())
					atomic[field] = fmt.Sprintf("%s:%d", base(p.Filename), p.Line)
				}
			}
			return true
		})
	}

	// Export this package's contribution before checking, so importers
	// see it even when this package is internally clean.
	ownFact := &AtomicFields{}
	for field, at := range atomic {
		if field.Pkg() == pass.Pkg {
			ownFact.Fields = append(ownFact.Fields, AtomicField{Key: fieldKey(field), At: at})
		}
	}
	sort.Slice(ownFact.Fields, func(i, j int) bool { return ownFact.Fields[i].Key < ownFact.Fields[j].Key })
	if len(ownFact.Fields) > 0 {
		pass.ExportPackageFact(ownFact)
	}

	// Phase 2: every other selector of an atomic field is a plain access.
	// The atomic set is this package's findings plus every imported
	// package's fact.
	imported := map[*types.Package]map[string]string{}
	lookup := func(field *types.Var) (string, bool) {
		if at, ok := atomic[field]; ok {
			return at, true
		}
		pkg := field.Pkg()
		if pkg == nil || pkg == pass.Pkg {
			return "", false
		}
		m, ok := imported[pkg]
		if !ok {
			m = nil
			var fact AtomicFields
			if pass.ImportPackageFact(pkg, &fact) {
				m = make(map[string]string, len(fact.Fields))
				for _, af := range fact.Fields {
					m[af.Key] = af.At
				}
			}
			imported[pkg] = m
		}
		at, ok := m[fieldKey(field)]
		return at, ok
	}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// Composite-literal keys construct, they do not access.
		litKey := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							litKey[id] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !field.IsField() || litKey[sel.Sel] {
				return true
			}
			at, isAtomic := lookup(field)
			if !isAtomic {
				return true
			}
			if _, allowed := dirs.Allow(sel.Pos(), DirectiveName); allowed {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed atomically (e.g. at %s) but plainly here; use sync/atomic for every access or migrate the field to atomic.Int64-style types (or annotate //pglint:%s <reason>)",
				fieldKey(field), at, DirectiveName)
			return true
		})
	}
	return nil, nil
}

// isAtomicCall matches the address-taking functions of sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldKey names a field within its package: "TypeName.FieldName". The
// enclosing named type is recovered from the field's parent struct via
// the package scope; fields of anonymous structs fall back to the bare
// field name (no cross-package access is possible for those anyway).
func fieldKey(field *types.Var) string {
	pkg := field.Pkg()
	if pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return name + "." + field.Name()
				}
			}
		}
	}
	return field.Name()
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
