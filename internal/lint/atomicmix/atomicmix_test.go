package atomicmix_test

import (
	"testing"

	"powerrchol/internal/lint/atomicmix"
	"powerrchol/internal/lint/linttest"
)

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), atomicmix.Analyzer,
		"example.com/internal/core",
		"example.com/internal/dep",
	)
}
