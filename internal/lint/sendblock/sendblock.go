// Package sendblock requires channel sends in library goroutines to be
// provably non-blocking.
//
// goroleak accepts a goroutine once it has termination evidence — a
// WaitGroup, a drained channel, a ctx select. Its blind spot is the
// response path: a goroutine whose last act is `resp <- result` on an
// unbuffered channel terminates only if the consumer is still there. If
// the consumer timed out (the admission-gate path) the goroutine parks
// forever, pinning the solver state it captured. This analyzer closes
// that gap: every send executed on a spawned goroutine must carry
// evidence it cannot block —
//
//   - the channel's every make site in its package is buffered
//     (capacity expression present and non-zero; the repo's cap-1
//     exactly-one-response protocol),
//   - the send is a select clause with an escape (a default, or a
//     receive such as <-ctx.Done()),
//   - or a //pglint:sendblock <reason> records the single-consumer
//     argument that the analyzer cannot see.
//
// Spawned literals are checked send-by-send; spawned declared functions
// (any package) are judged by their MayBlockSend summary fact, so
// `go dep.Pump(ch)` is a finding when dep's own facts say Pump's send
// is unproven. Scope: library packages (policy.Library) — binaries own
// their process lifetime.
package sendblock

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
	"powerrchol/internal/lint/ssalite"
	"powerrchol/internal/lint/ssalite/summary"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = summary.SendblockDirective

var Analyzer = &analysis.Analyzer{
	Name:     "sendblock",
	Doc:      "channel sends in library goroutines must be provably non-blocking: buffered with capacity evidence, select with an escape, or an annotated single-consumer protocol",
	Requires: []*analysis.Analyzer{ssalite.Analyzer, summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	if !policy.Library(pass.Pkg.Path()) {
		return nil, nil
	}
	prog := pass.ResultOf[ssalite.Analyzer].(*ssalite.Program)
	ix := pass.ResultOf[summary.Analyzer].(*summary.Index)
	ev := summary.NewEvidence(pass)

	for _, fn := range prog.Funcs {
		if strings.HasSuffix(pass.Fset.Position(fn.Body.Pos()).Filename, "_test.go") {
			continue
		}
		for _, c := range fn.Calls {
			if !c.Go {
				continue
			}
			if lit, ok := ast.Unparen(c.Expr.Fun).(*ast.FuncLit); ok {
				if spawned := prog.FuncOf(lit.Body); spawned != nil {
					checkSpawned(pass, spawned, ix, ev, dirs)
				}
				continue
			}
			// Declared callee, local or imported: its summary says
			// whether some send on its synchronous path is unproven.
			if s, known := ix.Lookup(c.Callee); known && s.MayBlockSend {
				if _, allowed := dirs.Allow(c.Expr.Pos(), DirectiveName); allowed {
					continue
				}
				pass.Reportf(c.Expr.Pos(), "go statement spawns %s, which may block forever on a channel send (%s); buffer the channel, add a select escape, or annotate //pglint:%s <reason>",
					c.Callee.Name(), s.SendReason, DirectiveName)
			}
		}
	}
	return nil, nil
}

// checkSpawned verifies every send of a spawned literal, and the
// summaries of the functions it calls synchronously.
func checkSpawned(pass *analysis.Pass, fn *ssalite.Function, ix *summary.Index, ev *summary.Evidence, dirs *directive.Index) {
	summary.WalkSends(fn, func(send *ast.SendStmt, sel *ast.SelectStmt) {
		if ok, _ := ev.NonBlockingSend(send, sel); ok {
			return
		}
		if _, allowed := dirs.Allow(send.Pos(), DirectiveName); allowed {
			return
		}
		pass.Reportf(send.Pos(), "channel send in a goroutine has no non-blocking evidence; buffer the channel with known capacity, select with a ctx.Done()/default escape, or annotate //pglint:%s <reason>",
			DirectiveName)
	})
	for _, c := range fn.Calls {
		if c.Go {
			continue // a further goroutine: judged at its own go site
		}
		if s, known := ix.Lookup(c.Callee); known && s.MayBlockSend {
			if _, allowed := dirs.Allow(c.Expr.Pos(), DirectiveName); allowed {
				continue
			}
			pass.Reportf(c.Expr.Pos(), "goroutine calls %s, which may block forever on a channel send (%s); buffer the channel, add a select escape, or annotate //pglint:%s <reason>",
				c.Callee.Name(), s.SendReason, DirectiveName)
		}
	}
}
