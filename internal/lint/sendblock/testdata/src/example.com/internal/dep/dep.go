// Package dep carries an unproven send; the MayBlockSend fact must make
// `go dep.Pump(...)` a finding in importing packages.
package dep

// Pump forwards one value on a channel it knows nothing about.
func Pump(ch chan int) {
	ch <- 1
}
