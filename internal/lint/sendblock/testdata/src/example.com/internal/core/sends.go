package core

import "example.com/internal/dep"

// fanout parks forever if the consumer is gone: no buffer, no escape.
func fanout(ch chan int) {
	go func() {
		ch <- 1 // want `channel send in a goroutine has no non-blocking evidence`
	}()
}

// produce is fine synchronously, but spawning it is not.
func produce(ch chan int) {
	ch <- 2
}

func startLocal(ch chan int) {
	go produce(ch) // want `go statement spawns produce, which may block forever on a channel send`
}

// startPump spawns a cross-package sender: only dep's fact reveals it.
func startPump(ch chan int) {
	go dep.Pump(ch) // want `go statement spawns Pump, which may block forever on a channel send`
}

// relay calls an unproven sender synchronously inside a goroutine.
func relay(ch chan int) {
	go func() {
		dep.Pump(ch) // want `goroutine calls Pump, which may block forever on a channel send`
	}()
}
