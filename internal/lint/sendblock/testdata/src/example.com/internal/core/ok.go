package core

import "context"

// The sanctioned idioms: none of these may be reported.

// request uses the repo's cap-1 exactly-one-response protocol.
func request() int {
	resp := make(chan int, 1)
	go func() { resp <- 42 }()
	return <-resp
}

// notify abandons the send when the context dies.
func notify(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// tryNotify drops the value when nobody is listening.
func tryNotify(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// req carries its response channel as a field; the composite-literal
// make site is the capacity evidence.
type req struct {
	resp chan int
}

func enqueue() *req {
	r := &req{resp: make(chan int, 1)}
	go func() { r.resp <- 7 }()
	return r
}

// legacy records the single-consumer argument the analyzer cannot see.
func legacy(ch chan int) {
	go func() {
		//pglint:sendblock the sole consumer blocks on this receive for the process lifetime
		ch <- 9
	}()
}

// sized buffers with a runtime capacity (the worker-pool shape).
func sized(n int) chan int {
	jobs := make(chan int, n)
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
	}()
	return jobs
}
