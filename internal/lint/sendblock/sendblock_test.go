package sendblock_test

import (
	"testing"

	"powerrchol/internal/lint/linttest"
	"powerrchol/internal/lint/sendblock"
)

func TestSendblock(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), sendblock.Analyzer,
		"example.com/internal/core",
	)
}
