// Package sarif turns `go vet -json` output from the pglint vettool into
// a SARIF 2.1.0 log, and diffs findings against a checked-in baseline.
//
// The pipeline is: `pglint -sarif` re-invokes `go vet -vettool=<self>
// -json ./...`, feeds the stream to ParseVetJSON, partitions the findings
// with Baseline.Split, and writes NewLog's output where CI can upload it
// to GitHub code scanning. Findings present in the baseline are reported
// with baselineState "unchanged" and do not fail the run; anything new
// fails it. Baseline keys are (rule, repo-relative file, message) — line
// numbers are deliberately excluded so unrelated edits above a baselined
// finding do not churn the file.
package sarif

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one pglint diagnostic, file path repo-relative and
// slash-separated.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// ParseVetJSON reads the combined output of `go vet -json`, which is a
// stream of `# pkg` comment lines interleaved with pretty-printed JSON
// objects of the shape {pkgID: {analyzer: [{posn, message}]}}. File
// positions are relativized against root.
func ParseVetJSON(r io.Reader, root string) ([]Finding, error) {
	// Drop the `# pkg` comment lines; what remains is a concatenation of
	// JSON objects a Decoder can walk.
	var clean bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		clean.Write(sc.Bytes())
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	type diag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var findings []Finding
	dec := json.NewDecoder(&clean)
	for {
		var unit map[string]map[string][]diag
		if err := dec.Decode(&unit); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go vet -json stream: %w", err)
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					findings = append(findings, Finding{
						Rule:    analyzer,
						File:    relPath(root, file),
						Line:    line,
						Column:  col,
						Message: d.Message,
					})
				}
			}
		}
	}
	Sort(findings)
	return findings, nil
}

// Sort orders findings deterministically: by file, line, column, rule,
// message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// splitPosn parses "path/file.go:12:3" (column optional).
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	if line == 0 && col != 0 {
		// Only one numeric suffix was present: it was the line.
		line, col = col, 0
	}
	return file, line, col
}

func relPath(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Rule describes one analyzer for the SARIF tool.driver.rules table.
type Rule struct {
	ID  string
	Doc string
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning consumes.

type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

type Tool struct {
	Driver Driver `json:"driver"`
}

type Driver struct {
	Name           string       `json:"name"`
	InformationURI string       `json:"informationUri,omitempty"`
	Rules          []DriverRule `json:"rules"`
}

type DriverRule struct {
	ID               string `json:"id"`
	ShortDescription Text   `json:"shortDescription"`
}

type Text struct {
	Text string `json:"text"`
}

type Result struct {
	RuleID        string     `json:"ruleId"`
	Level         string     `json:"level"`
	Message       Text       `json:"message"`
	Locations     []Location `json:"locations"`
	BaselineState string     `json:"baselineState,omitempty"`
}

type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

type ArtifactLocation struct {
	URI string `json:"uri"`
}

type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// NewLog builds a SARIF 2.1.0 log for the pglint run. baselined marks
// which findings (by index) were already in the baseline.
func NewLog(rules []Rule, findings []Finding, baselined []bool) *Log {
	drv := Driver{
		Name:           "pglint",
		InformationURI: "https://github.com/powerrchol/powerrchol",
	}
	for _, r := range rules {
		drv.Rules = append(drv.Rules, DriverRule{ID: r.ID, ShortDescription: Text{Text: r.Doc}})
	}
	results := make([]Result, 0, len(findings))
	for i, f := range findings {
		state := "new"
		if i < len(baselined) && baselined[i] {
			state = "unchanged"
		}
		line := f.Line
		if line <= 0 {
			line = 1 // SARIF regions are 1-based; vet can emit pos-less diagnostics
		}
		results = append(results, Result{
			RuleID:        f.Rule,
			Level:         "error",
			Message:       Text{Text: f.Message},
			BaselineState: state,
			Locations: []Location{{
				PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: f.File},
					Region:           Region{StartLine: line, StartColumn: f.Column},
				},
			}},
		})
	}
	return &Log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []Run{{Tool: Tool{Driver: drv}, Results: results}},
	}
}

// Write emits the log as indented JSON with a trailing newline.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(l)
}

// Baseline is the checked-in set of accepted findings
// (.pglint-baseline.json). Keys ignore line numbers so edits elsewhere in
// a file do not invalidate entries.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// LoadBaseline reads path; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

func key(rule, file, message string) string {
	return rule + "\x00" + file + "\x00" + message
}

// Split partitions findings: baselined[i] reports whether findings[i] is
// covered by the baseline; fresh collects the ones that are not.
func (b *Baseline) Split(findings []Finding) (baselined []bool, fresh []Finding) {
	known := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[key(e.Rule, e.File, e.Message)] = true
	}
	baselined = make([]bool, len(findings))
	for i, f := range findings {
		if known[key(f.Rule, f.File, f.Message)] {
			baselined[i] = true
		} else {
			fresh = append(fresh, f)
		}
	}
	return baselined, fresh
}

// FromFindings builds a baseline accepting exactly the given findings
// (deduplicated, sorted) — the -update-baseline path.
func FromFindings(findings []Finding) *Baseline {
	seen := make(map[string]bool)
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, f := range findings {
		k := key(f.Rule, f.File, f.Message)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Findings = append(b.Findings, BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(b); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
