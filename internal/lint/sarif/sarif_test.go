package sarif

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// vetStream is a faithful miniature of `go vet -json` output: comment
// lines, one JSON object per package, absolute positions.
const vetStream = `# powerrchol/internal/sparse
{
	"powerrchol/internal/sparse": {
		"hotalloc": [
			{
				"posn": "/work/repo/internal/sparse/csr.go:101:12",
				"message": "make in an innermost loop of a hot kernel: hoist it to reusable scratch (sync.Pool or a caller-owned buffer), or annotate //pglint:hotalloc <reason>"
			}
		],
		"maprange": [
			{
				"posn": "/work/repo/internal/sparse/coo.go:44:2",
				"message": "map iteration order is nondeterministic: sort the keys first"
			}
		]
	}
}
# powerrchol/internal/pcg
{
	"powerrchol/internal/pcg": {
		"ctxflow": [
			{
				"posn": "/work/repo/internal/pcg/pcg.go:77",
				"message": "loop in a context-carrying numeric kernel never reaches a cancellation check"
			}
		]
	}
}
`

func testFindings(t *testing.T) []Finding {
	t.Helper()
	fs, err := ParseVetJSON(strings.NewReader(vetStream), "/work/repo")
	if err != nil {
		t.Fatalf("ParseVetJSON: %v", err)
	}
	return fs
}

func TestParseVetJSON(t *testing.T) {
	got := testFindings(t)
	want := []Finding{
		{Rule: "ctxflow", File: "internal/pcg/pcg.go", Line: 77, Column: 0,
			Message: "loop in a context-carrying numeric kernel never reaches a cancellation check"},
		{Rule: "maprange", File: "internal/sparse/coo.go", Line: 44, Column: 2,
			Message: "map iteration order is nondeterministic: sort the keys first"},
		{Rule: "hotalloc", File: "internal/sparse/csr.go", Line: 101, Column: 12,
			Message: "make in an innermost loop of a hot kernel: hoist it to reusable scratch (sync.Pool or a caller-owned buffer), or annotate //pglint:hotalloc <reason>"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("findings mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSARIFGolden(t *testing.T) {
	findings := testFindings(t)
	baseline := &Baseline{Version: 1, Findings: []BaselineEntry{{
		Rule:    "maprange",
		File:    "internal/sparse/coo.go",
		Message: "map iteration order is nondeterministic: sort the keys first",
	}}}
	baselined, fresh := baseline.Split(findings)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d findings, want 2: %+v", len(fresh), fresh)
	}

	rules := []Rule{
		{ID: "ctxflow", Doc: "a received context must flow"},
		{ID: "hotalloc", Doc: "no allocations in hot innermost loops"},
		{ID: "maprange", Doc: "no map-order-dependent iteration"},
	}
	var buf bytes.Buffer
	if err := NewLog(rules, findings, baselined).Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}

	golden := filepath.Join("testdata", "pglint.sarif.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/lint/sarif -update` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := testFindings(t)
	b := FromFindings(findings)
	if got := len(b.Findings); got != 3 {
		t.Fatalf("baseline entries = %d, want 3", got)
	}
	// Every current finding is covered; nothing is fresh.
	baselined, fresh := b.Split(findings)
	if len(fresh) != 0 {
		t.Errorf("fresh after self-baseline: %+v", fresh)
	}
	for i, ok := range baselined {
		if !ok {
			t.Errorf("finding %d not covered by its own baseline", i)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, b) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", loaded, b)
	}

	// A missing baseline is empty, and everything is fresh against it.
	empty, err := LoadBaseline(filepath.Join(dir, "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, fresh = empty.Split(findings)
	if len(fresh) != len(findings) {
		t.Errorf("fresh against empty baseline = %d, want %d", len(fresh), len(findings))
	}
}

func TestSplitPosn(t *testing.T) {
	cases := []struct {
		posn string
		file string
		line int
		col  int
	}{
		{"/a/b.go:10:3", "/a/b.go", 10, 3},
		{"/a/b.go:10", "/a/b.go", 10, 0},
		{"/a/b.go", "/a/b.go", 0, 0},
		{"-", "-", 0, 0},
	}
	for _, tc := range cases {
		f, l, c := splitPosn(tc.posn)
		if f != tc.file || l != tc.line || c != tc.col {
			t.Errorf("splitPosn(%q) = (%q,%d,%d), want (%q,%d,%d)", tc.posn, f, l, c, tc.file, tc.line, tc.col)
		}
	}
}
