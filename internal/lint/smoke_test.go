package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from this file to the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	dir := filepath.Dir(file)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above internal/lint")
		}
		dir = parent
	}
}

func buildPglint(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pglint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pglint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pglint: %v\n%s", err, out)
	}
	return bin
}

// TestPglintRepoClean is the tier-1 version of `make lint`: the whole
// repository must pass the thirteen pglint analyzers, so a new violation
// fails `go test ./...` even on machines that never run the Makefile.
func TestPglintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("pglint smoke test compiles the full repo; skipped in -short (race gate) runs")
	}
	root := repoRoot(t)
	bin := buildPglint(t, root)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("pglint found violations (run `make lint` for the same view):\n%s", out)
	}
}

// TestPglintCatchesViolation proves the vettool actually bites: a scratch
// module planted with one deliberate violation per analyzer — all
// thirteen — must fail `go vet -vettool` with every finding present. The
// scratch package sits at internal/core so the policy tables classify it
// as numeric, hot, deterministic, and library code, arming every rule at
// once.
func TestPglintCatchesViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short runs")
	}
	root := repoRoot(t)
	bin := buildPglint(t, root)

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/scratch\n\ngo 1.22\n")
	// bannedimport + maprange
	write("internal/core/bad.go", `package core

import "math/rand"

func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s * rand.Float64()
}
`)
	// floateq + errwrapcheck
	write("internal/core/float.go", `package core

import "fmt"

func Converged(a, b float64) bool {
	return a*0.5 == b*0.25
}

func Wrap(err error) error {
	return fmt.Errorf("solve failed: %v", err)
}
`)
	// poolleak (exit without Put) + poolescape (pooled value returned)
	write("internal/core/pool.go", `package core

import "sync"

var scratch = sync.Pool{New: func() interface{} { b := make([]float64, 0, 64); return &b }}

func Leaky(n int) int {
	buf := scratch.Get().(*[]float64)
	if n > 0 {
		return n
	}
	scratch.Put(buf)
	return cap(*buf)
}

func Escape() *[]float64 {
	buf := scratch.Get().(*[]float64)
	defer scratch.Put(buf)
	return buf
}
`)
	// ctxflow: ambient Background in library code, not the wrapper shape
	write("internal/core/ctx.go", `package core

import "context"

func Mint(xs []float64) float64 {
	ctx := context.Background()
	if ctx.Err() != nil {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
`)
	// hotalloc: make in the innermost loop of a hot kernel package
	write("internal/core/hot.go", `package core

func Widen(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, len(x))
		copy(row, x)
		out[i] = row
	}
	return out
}
`)
	// goroleak: looping goroutine with no termination evidence
	write("internal/core/spawn.go", `package core

func Spin(n int) {
	go func() {
		total := 0
		for i := 0; i < n; i++ {
			total += i
		}
		_ = total
	}()
}
`)
	// lockcheck: the miss path returns with b.mu still held
	write("internal/core/lock.go", `package core

import "sync"

type Box struct {
	mu sync.Mutex
	v  int
}

func (b *Box) Take() (int, bool) {
	b.mu.Lock()
	if b.v == 0 {
		return 0, false
	}
	v := b.v
	b.mu.Unlock()
	return v, true
}
`)
	// atomicmix: atomic increment, plain read
	write("internal/core/atomic.go", `package core

import "sync/atomic"

type Hits struct {
	n int64
}

func (h *Hits) Inc() {
	atomic.AddInt64(&h.n, 1)
}

func (h *Hits) Snapshot() int64 {
	return h.n
}
`)
	// detflow: map-order float accumulation stored into a Result field
	write("internal/core/det.go", `package core

type Result struct {
	Norm float64
}

func Fill(r *Result, m map[string]float64) {
	s := 0.0
	for _, v := range m {
		s += v
	}
	r.Norm = s
}
`)
	// sendblock: unbuffered bare send in a goroutine (loop-free body, so
	// goroleak alone would accept it — this is exactly its gap)
	write("internal/core/send.go", `package core

func Notify(ch chan int) {
	go func() {
		ch <- 1
	}()
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("pglint passed a module with deliberate violations:\n%s", out)
	}
	wants := []string{
		"import of math/rand is banned",             // bannedimport
		"range over map is order-dependent",         // maprange
		"between computed floats",                   // floateq
		"without a Put",                             // poolleak
		"severing the errors.Is/As chain",           // errwrapcheck
		"context.Background in library code",        // ctxflow
		"make in an innermost loop of a hot kernel", // hotalloc
		"tie the goroutine to a WaitGroup",          // goroleak
		"is returned before Put",                    // poolescape
		"is not unlocked on every path to return",   // lockcheck
		"but plainly here",                          // atomicmix
		"determinism-tainted value reaches",         // detflow
		"channel send in a goroutine has no non-blocking evidence", // sendblock
	}
	for _, want := range wants {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}
