package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from this file to the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	dir := filepath.Dir(file)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above internal/lint")
		}
		dir = parent
	}
}

func buildPglint(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pglint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pglint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pglint: %v\n%s", err, out)
	}
	return bin
}

// TestPglintRepoClean is the tier-1 version of `make lint`: the whole
// repository must pass the five pglint analyzers, so a new violation
// fails `go test ./...` even on machines that never run the Makefile.
func TestPglintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("pglint smoke test compiles the full repo; skipped in -short (race gate) runs")
	}
	root := repoRoot(t)
	bin := buildPglint(t, root)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("pglint found violations (run `make lint` for the same view):\n%s", out)
	}
}

// TestPglintCatchesViolation proves the vettool actually bites: a scratch
// module with a banned import and an order-dependent map range must fail
// `go vet -vettool` with both findings.
func TestPglintCatchesViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short runs")
	}
	root := repoRoot(t)
	bin := buildPglint(t, root)

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/scratch\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "math/rand"

func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s * rand.Float64()
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("pglint passed a module with deliberate violations:\n%s", out)
	}
	for _, want := range []string{"import of math/rand is banned", "range over map is order-dependent"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}
