// Package optcheck is the compiler-diagnostics contract checker behind
// cmd/pgoptcheck.
//
// pglint (internal/lint) guards source-level contracts; optcheck guards
// the compiler's decisions. It compiles the hot kernel packages with
// `-gcflags='-m=2 -d=ssa/check_bce/debug=1'`, parses the resulting
// escape-analysis, bounds-check-elimination and inlining diagnostics
// into structured findings keyed (rule, file, func, message), and
// reconciles them against a declared optimization contract:
//
//   - every function in a policy.Hot package must keep its bounds-check
//     count at or below the committed .pgopt-baseline.json entry (rule
//     "bce"; the baseline carries the residual sanctioned sites);
//   - a function annotated //pgopt:noescape must not heap-allocate: no
//     local may escape or be moved to the heap (rule "escape");
//   - a function annotated //pgopt:inline must stay inlinable (rule
//     "inline"); the compiler's cannot-inline reason is attached.
//
// The gate is deliberately built on the compiler's own diagnostics
// rather than on pattern-matching SSA: the question "did this refactor
// reintroduce a bounds check in the trisolve inner loop" is a question
// about what THIS toolchain decided, and only the toolchain can answer
// it. The cost is a format dependency, which the skew tests in this
// package pin: if a future toolchain changes the diagnostic format the
// parser fails loudly instead of reporting a false clean.
package optcheck

import "strings"

// Prefix is the annotation marker, with no space after // — the same
// convention as //go: and //pglint: directives, so gofmt leaves it
// alone.
const Prefix = "//pgopt:"

// Contract names the per-function optimization contracts the grammar
// accepts. Unlike //pglint: directives (which suppress findings), a
// //pgopt: directive ASSERTS a compiler behavior; the reason documents
// why the function needs it.
const (
	ContractNoBCE    = "nobce"    // no bounds checks beyond the baselined count
	ContractNoEscape = "noescape" // no local escapes to the heap
	ContractInline   = "inline"   // the function must stay inlinable
)

// KnownContracts lists every contract name the grammar accepts, in
// documentation order.
func KnownContracts() []string {
	return []string{ContractNoBCE, ContractNoEscape, ContractInline}
}

// A Directive is one parsed //pgopt: annotation.
type Directive struct {
	Name   string // e.g. "inline"
	Reason string // justification text; "" is malformed
}

// ParseDirectives extracts every pgopt directive from the text of one
// comment. It is a pure function of its input so it can be table- and
// fuzz-tested without a token.FileSet; it tolerates CRLF line endings
// and trailing whitespace, splits multi-directive comments at each
// //pgopt: marker, and expands comma lists (//pgopt:nobce,noescape
// <reason>) into one Directive per name sharing the reason — the same
// grammar as the //pglint: parser it mirrors.
func ParseDirectives(text string) []Directive {
	if !strings.HasPrefix(text, Prefix) {
		return nil
	}
	// Comment text from go/parser is a single logical line for // comments,
	// but raw text handed to the parser (fuzzing, CRLF sources) may carry
	// \r or embedded newlines: a directive never spans lines.
	text = strings.TrimRight(text, "\r\n")
	if i := strings.IndexAny(text, "\n\r"); i >= 0 {
		text = text[:i]
	}
	var out []Directive
	for _, chunk := range splitDirectives(text) {
		rest := strings.TrimPrefix(chunk, Prefix)
		names, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		for _, name := range strings.Split(names, ",") {
			out = append(out, Directive{Name: name, Reason: reason})
		}
	}
	return out
}

// splitDirectives cuts a comment at each //pgopt: marker, so
// "//pgopt:a x //pgopt:b y" yields two chunks each starting with the
// prefix.
func splitDirectives(text string) []string {
	var chunks []string
	for {
		next := strings.Index(text[len(Prefix):], Prefix)
		if next < 0 {
			chunks = append(chunks, text)
			return chunks
		}
		cut := next + len(Prefix)
		chunks = append(chunks, strings.TrimRight(text[:cut], " \t"))
		text = text[cut:]
	}
}

// KnownContract reports whether name is one of the contract names the
// grammar accepts.
func KnownContract(name string) bool {
	for _, k := range KnownContracts() {
		if name == k {
			return true
		}
	}
	return false
}
