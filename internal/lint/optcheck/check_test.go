package optcheck

import (
	"os"
	"path/filepath"
	"testing"
)

// writeSurface materializes the given repo-relative files in a temp
// root and parses them into a Surface. The import path is derived from
// the directory, so files under internal/sparse (etc.) pick up the
// policy.Hot implicit nobce contract exactly like the real module.
func writeSurface(t *testing.T, files map[string]string) *Surface {
	t.Helper()
	root := t.TempDir()
	byDir := make(map[string][]string)
	for rel, content := range files {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		byDir[dir] = append(byDir[dir], rel)
	}
	s := NewSurface()
	for dir, fs := range byDir {
		if err := s.AddPackage(root, "powerrchol/"+dir, fs); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const kernelSrc = `package sparse

// LowerSolve is a hot kernel: implicit nobce via policy.
//
//pgopt:noescape scratch must stay on the caller's stack
func LowerSolve(x []float64) {
	for i := range x {
		x[i] *= 2
	}
}

//pgopt:inline one call per iteration
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func plain(x []float64) float64 { return x[0] }
`

func TestSurfaceContracts(t *testing.T) {
	s := writeSurface(t, map[string]string{"internal/sparse/k.go": kernelSrc})
	fns := s.Funcs()
	if len(fns) != 3 {
		t.Fatalf("got %d funcs, want 3", len(fns))
	}
	byName := make(map[string]*Func)
	for _, fn := range fns {
		byName[fn.Name] = fn
	}
	ls := byName["LowerSolve"]
	if ls == nil || !ls.Contracted(ContractNoBCE) || !ls.Contracted(ContractNoEscape) {
		t.Fatalf("LowerSolve contracts = %+v, want implicit nobce + declared noescape", ls)
	}
	if byName["plain"] == nil || !byName["plain"].Contracted(ContractNoBCE) {
		t.Fatal("plain func in a hot package must carry the implicit nobce contract")
	}
	if byName["plain"].Contracted(ContractInline) {
		t.Fatal("plain func must not inherit a neighbor's inline contract")
	}
	if !byName["Dot"].Contracted(ContractInline) {
		t.Fatal("Dot must carry the declared inline contract")
	}
	if got := s.FuncAt("internal/sparse/k.go", ls.Start+1); got != ls {
		t.Fatalf("FuncAt inside LowerSolve = %v", got)
	}
	if got := s.FuncAt("internal/sparse/k.go", 1); got != nil {
		t.Fatalf("FuncAt package clause = %v, want nil", got)
	}
	if !s.HotFile("internal/sparse/k.go") {
		t.Fatal("k.go must be a hot file")
	}
}

func TestSurfaceColdPackageHasNoImplicitContract(t *testing.T) {
	s := writeSurface(t, map[string]string{"internal/powergrid/p.go": `package powergrid

func Parse(x []float64) float64 { return x[0] }
`})
	fn := s.Funcs()[0]
	if fn.Contracted(ContractNoBCE) {
		t.Fatal("non-hot numeric package must not carry the implicit nobce contract")
	}
}

func TestSurfaceMalformedDirectives(t *testing.T) {
	s := writeSurface(t, map[string]string{"internal/sparse/bad.go": `package sparse

//pgopt:fastpath because I said so
func A() {}

//pgopt:inline
func B() {}

//pgopt:noescape floating annotation with no declaration below

var x int
`})
	if len(s.Problems) != 3 {
		t.Fatalf("got %d problems, want 3: %+v", len(s.Problems), s.Problems)
	}
	for _, p := range s.Problems {
		if p.Rule != RuleDirective {
			t.Errorf("problem rule = %q, want %q", p.Rule, RuleDirective)
		}
	}
	// Malformed directives must not arm contracts.
	for _, fn := range s.Funcs() {
		if fn.Contracted(ContractInline) || fn.Contracted(ContractNoEscape) {
			t.Errorf("malformed directive armed a contract on %s: %+v", fn.Name, fn.Contracts)
		}
	}
}

func TestCheckAttributionAndAggregation(t *testing.T) {
	s := writeSurface(t, map[string]string{"internal/sparse/k.go": kernelSrc})
	var lsStart int
	for _, fn := range s.Funcs() {
		if fn.Name == "LowerSolve" {
			lsStart = fn.Start
		}
	}
	file := "internal/sparse/k.go"
	diags := []Diag{
		// Two same-message bounds checks in LowerSolve: one finding, count 2.
		{File: file, Line: lsStart + 1, Col: 3, Kind: DiagBoundsCheck, Message: "Found IsInBounds"},
		{File: file, Line: lsStart + 2, Col: 3, Kind: DiagBoundsCheck, Message: "Found IsInBounds"},
		// An escape in the noescape function.
		{File: file, Line: lsStart + 1, Col: 3, Kind: DiagEscape, Message: "x escapes to heap", Detail: []string{"flow: ..."}},
		// Inline verdicts: Dot refused, LowerSolve fine (not contracted inline).
		{File: file, Line: 1, Col: 1, Kind: DiagCannotInline, Message: "cannot inline Dot: function too complex: cost 99 exceeds budget 80", FuncName: "Dot"},
		// Positionally inside Dot but named after another function: ignored.
		{File: file, Line: 1, Col: 1, Kind: DiagCanInline, Message: "can inline LowerSolve with cost 9 as: ...", FuncName: "LowerSolve"},
		// A diagnostic outside any surface file: ignored.
		{File: "internal/other/x.go", Line: 3, Col: 1, Kind: DiagBoundsCheck, Message: "Found IsInBounds"},
		// Autogenerated wrappers: ignored.
		{File: "<autogenerated>", Line: 1, Kind: DiagBoundsCheck, Message: "Found IsInBounds"},
	}
	// The named-function guard: attach the inline verdicts to their spans.
	for i := range diags {
		if diags[i].FuncName == "Dot" || diags[i].FuncName == "LowerSolve" {
			for _, fn := range s.Funcs() {
				if fn.Name == diags[i].FuncName {
					diags[i].Line = fn.Start
				}
			}
		}
	}
	findings, _ := Check(s, diags)
	byRule := make(map[string][]Finding)
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}
	if n := len(byRule[RuleBCE]); n != 1 {
		t.Fatalf("bce findings = %d (%+v), want 1 aggregated", n, byRule[RuleBCE])
	}
	if f := byRule[RuleBCE][0]; f.Count != 2 || f.Func != "LowerSolve" || f.Line != f.Line {
		t.Errorf("bce finding = %+v, want count 2 on LowerSolve", f)
	}
	if n := len(byRule[RuleEscape]); n != 1 {
		t.Fatalf("escape findings = %d, want 1", n)
	}
	if f := byRule[RuleEscape][0]; len(f.Detail) != 1 {
		t.Errorf("escape detail lost: %+v", f)
	}
	if n := len(byRule[RuleInline]); n != 1 {
		t.Fatalf("inline findings = %d, want 1", n)
	}
	if f := byRule[RuleInline][0]; f.Func != "Dot" || len(f.Detail) != 1 || f.Detail[0] != "function too complex: cost 99 exceeds budget 80" {
		t.Errorf("inline finding = %+v", f)
	}
	if n := len(byRule[RuleSkew]); n != 0 {
		t.Fatalf("unexpected skew findings: %+v", byRule[RuleSkew])
	}
}
