package optcheck

import (
	"strings"
	"testing"
	"unicode"
)

func TestParseDirectives(t *testing.T) {
	cases := []struct {
		name string
		text string
		want []Directive
	}{
		{"not a directive", "// plain comment", nil},
		{"spaced marker is not a directive", "// pgopt:inline reason", nil},
		{"single", "//pgopt:inline one call per iteration", []Directive{{"inline", "one call per iteration"}}},
		{"no reason", "//pgopt:noescape", []Directive{{"noescape", ""}}},
		{"blank reason", "//pgopt:noescape   ", []Directive{{"noescape", ""}}},
		{"comma list shares the reason", "//pgopt:nobce,noescape hot trisolve kernel",
			[]Directive{{"nobce", "hot trisolve kernel"}, {"noescape", "hot trisolve kernel"}}},
		{"repeated markers split", "//pgopt:inline small //pgopt:noescape stack scratch",
			[]Directive{{"inline", "small"}, {"noescape", "stack scratch"}}},
		{"unknown name still parses", "//pgopt:fast because", []Directive{{"fast", "because"}}},
		{"crlf stripped", "//pgopt:inline reason\r\n", []Directive{{"inline", "reason"}}},
		{"directive never spans lines", "//pgopt:inline reason\njunk on a second line", []Directive{{"inline", "reason"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ParseDirectives(tc.text)
			if len(got) != len(tc.want) {
				t.Fatalf("ParseDirectives(%q) = %v, want %v", tc.text, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("directive %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestKnownContract(t *testing.T) {
	for _, name := range KnownContracts() {
		if !KnownContract(name) {
			t.Errorf("KnownContract(%q) = false for a listed contract", name)
		}
	}
	for _, name := range []string{"", "nobc", "NOBCE", "inline "} {
		if KnownContract(name) {
			t.Errorf("KnownContract(%q) = true", name)
		}
	}
}

// FuzzParseOptDirective pins the grammar's safety properties: the parser
// never panics, returns nothing for non-directive text, and never
// launders a reasonless or multi-line directive into a well-formed one —
// a Directive with Reason == "" stays visibly malformed so the surface
// builder reports it instead of silently arming a contract.
func FuzzParseOptDirective(f *testing.F) {
	f.Add("//pgopt:inline tiny helper on the PCG path")
	f.Add("//pgopt:nobce,noescape hot kernel")
	f.Add("//pgopt:noescape")
	f.Add("//pgopt:inline a //pgopt:noescape b")
	f.Add("//pgopt:")
	f.Add("// pgopt:inline nope")
	f.Add("//pgopt:inline reason\r\n")
	f.Add("//pgopt:x\n//pgopt:y z")
	f.Fuzz(func(t *testing.T, text string) {
		ds := ParseDirectives(text)
		if !strings.HasPrefix(text, Prefix) && ds != nil {
			t.Fatalf("non-directive text %q produced directives %v", text, ds)
		}
		for _, d := range ds {
			if strings.ContainsAny(d.Name, "\r\n") || strings.ContainsAny(d.Reason, "\r\n") {
				t.Fatalf("directive from %q carries a line break: %+v", text, d)
			}
			if d.Reason != strings.TrimFunc(d.Reason, unicode.IsSpace) {
				t.Fatalf("reason not trimmed in %+v from %q", d, text)
			}
			// A contract the checker would arm must carry a reason or be
			// reported: the pair (known name, empty reason) is exactly what
			// Surface.AddPackage turns into a rule "directive" finding, so the
			// parser must preserve the emptiness rather than invent text.
			if KnownContract(d.Name) && d.Reason == "" && strings.Contains(strings.SplitN(text, "\n", 2)[0], d.Name+" ") {
				rest := text[strings.Index(text, d.Name)+len(d.Name):]
				if i := strings.IndexAny(rest, "\r\n"); i >= 0 {
					rest = rest[:i]
				}
				if strings.TrimSpace(strings.TrimPrefix(rest, " ")) != "" && !strings.Contains(rest, Prefix) && !strings.HasPrefix(rest, ",") {
					t.Fatalf("reason text %q after %q was dropped entirely (%+v)", rest, d.Name, d)
				}
			}
		}
	})
}
