package optcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the checked-in set of sanctioned residual findings
// (.pgopt-baseline.json). Unlike the pglint baseline — which the tree
// keeps empty by policy — the optcheck baseline legitimately carries
// entries: a CSC constructor allocates, a Matrix Market parser bounds-
// checks its input, and pinning those sites is exactly how the gate
// distinguishes "the residue we audited" from "a regression". Entries
// carry the per-function site count, so the gate catches a function
// whose bounds-check count GROWS, not only one that appears: shrinking
// is always allowed (and -diff reports it so the baseline can be
// re-tightened deliberately).
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one sanctioned finding key with its tolerated count.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Func    string `json:"func"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func (e *BaselineEntry) key() string {
	return e.Rule + "\x00" + e.File + "\x00" + e.Func + "\x00" + e.Message
}

// Sites returns the total sanctioned site count — the number CI pins so
// the baseline cannot grow without a deliberate, reviewed edit.
func (b *Baseline) Sites() int {
	n := 0
	for _, e := range b.Findings {
		n += e.Count
	}
	return n
}

// LoadBaseline reads path; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("optcheck: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Delta is the reconciliation of current findings against the baseline.
type Delta struct {
	// Fresh are findings that fail the gate: keys absent from the
	// baseline, or present with a grown count (Baselined carries the
	// tolerated count for those).
	Fresh []Finding
	// Covered marks, index-aligned with the findings passed to Split,
	// whether each finding is within its baselined allowance.
	Covered []bool
	// Improved are findings whose count shrank below the baselined
	// allowance — candidates for re-tightening the baseline.
	Improved []Finding
	// Stale are baseline entries with no current finding at all: the
	// contract now holds and the entry should be deleted.
	Stale []BaselineEntry
}

// Split reconciles findings against the baseline.
func (b *Baseline) Split(findings []Finding) Delta {
	allow := make(map[string]BaselineEntry, len(b.Findings))
	for _, e := range b.Findings {
		allow[e.key()] = e
	}
	d := Delta{Covered: make([]bool, len(findings))}
	used := make(map[string]bool)
	for i, f := range findings {
		e, ok := allow[f.Key()]
		if ok {
			used[f.Key()] = true
		}
		switch {
		case ok && f.Count <= e.Count:
			d.Covered[i] = true
			if f.Count < e.Count {
				d.Improved = append(d.Improved, f)
			}
		case ok:
			g := f
			g.Message = fmt.Sprintf("%s — %d site(s), baseline sanctions %d", f.Message, f.Count, e.Count)
			d.Fresh = append(d.Fresh, g)
		default:
			d.Fresh = append(d.Fresh, f)
		}
	}
	for _, e := range b.Findings {
		if !used[e.key()] {
			d.Stale = append(d.Stale, e)
		}
	}
	sort.Slice(d.Stale, func(i, j int) bool { return d.Stale[i].key() < d.Stale[j].key() })
	return d
}

// FromFindings builds a baseline sanctioning exactly the given findings
// — the -update-baseline path.
func FromFindings(findings []Finding) *Baseline {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Rule: f.Rule, File: f.File, Func: f.Func, Message: f.Message, Count: f.Count,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(b); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
