package optcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"powerrchol/internal/lint/policy"
)

// A Func is one function declaration on the contract surface: its
// canonical name (matching the compiler's inlining diagnostics, e.g.
// "(*TriSolver).LowerSolve"), its line span, and the contracts declared
// on it. Function literals nested inside the declaration attribute to
// it positionally — a bounds check inside a worker closure is a finding
// against the method that spawned the closure.
type Func struct {
	Name      string
	File      string // repo-relative, slash-separated
	Start     int    // line of the func keyword (doc comment excluded)
	End       int    // line of the closing brace
	Contracts map[string]string // contract name -> reason
}

// Contracted reports whether the function declares the named contract.
func (f *Func) Contracted(name string) bool {
	_, ok := f.Contracts[name]
	return ok
}

// A Surface is the declared optimization contract of a set of packages:
// every function span, the per-function //pgopt: contracts, and the
// package-level defaults derived from internal/lint/policy (every
// function of a policy.Hot package carries the nobce contract
// implicitly).
type Surface struct {
	// byFile maps a repo-relative file path to its functions, sorted by
	// start line.
	byFile map[string][]*Func
	// hotFile marks files that belong to a policy.Hot package.
	hotFile map[string]bool
	// Problems are malformed //pgopt: annotations: unknown contract
	// names, missing reasons, or directives not attached to a function
	// declaration. They are reported as findings (rule "directive") so a
	// typo cannot silently disarm a contract — the same janitor rule
	// ctxflow applies to //pglint: directives.
	Problems []Finding
}

// NewSurface returns an empty surface; add packages with AddPackage.
func NewSurface() *Surface {
	return &Surface{byFile: make(map[string][]*Func), hotFile: make(map[string]bool)}
}

// AddPackage parses the listed files of one package and adds their
// functions to the surface. importPath decides the policy defaults;
// files are absolute or root-relative paths, and root anchors the
// repo-relative names used in findings.
func (s *Surface) AddPackage(root, importPath string, files []string) error {
	hot := policy.Hot(importPath)
	fset := token.NewFileSet()
	for _, file := range files {
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, abs)
		}
		af, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("optcheck: parsing %s: %w", file, err)
		}
		rel := relTo(root, abs)
		s.hotFile[rel] = s.hotFile[rel] || hot
		s.addFile(fset, rel, af, hot)
	}
	for _, fns := range s.byFile {
		sort.Slice(fns, func(i, j int) bool { return fns[i].Start < fns[j].Start })
	}
	return nil
}

func (s *Surface) addFile(fset *token.FileSet, rel string, af *ast.File, hot bool) {
	// Index every //pgopt: comment by line so directives attached to a
	// declaration can be consumed and strays reported.
	type pending struct {
		ds   []Directive
		line int
		used bool
	}
	var comments []*pending
	byLine := make(map[int]*pending)
	for _, cg := range af.Comments {
		for _, c := range cg.List {
			ds := ParseDirectives(c.Text)
			if len(ds) == 0 {
				continue
			}
			p := &pending{ds: ds, line: fset.Position(c.Pos()).Line}
			comments = append(comments, p)
			byLine[p.line] = p
		}
	}

	for _, decl := range af.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		start := fset.Position(fd.Pos()).Line // excludes the doc comment
		end := fset.Position(fd.End()).Line
		fn := &Func{Name: funcDisplayName(fd), File: rel, Start: start, End: end}
		if hot {
			fn.Contracts = map[string]string{ContractNoBCE: "policy: hot kernel package"}
		}
		// Contracts attach from the doc comment block or from a trailing
		// comment on the declaration line itself.
		attach := func(p *pending) {
			p.used = true
			for _, d := range p.ds {
				if !KnownContract(d.Name) {
					s.Problems = append(s.Problems, Finding{
						Rule: RuleDirective, File: rel, Func: fn.Name, Line: p.line, Count: 1,
						Message: fmt.Sprintf("pgopt:%s does not name any contract (the grammar honors: %s)", d.Name, strings.Join(KnownContracts(), ", ")),
					})
					continue
				}
				if d.Reason == "" {
					s.Problems = append(s.Problems, Finding{
						Rule: RuleDirective, File: rel, Func: fn.Name, Line: p.line, Count: 1,
						Message: fmt.Sprintf("pgopt:%s directive needs a reason: write //pgopt:%s <why this function needs the contract>", d.Name, d.Name),
					})
					continue
				}
				if fn.Contracts == nil {
					fn.Contracts = make(map[string]string)
				}
				fn.Contracts[d.Name] = d.Reason
			}
		}
		if fd.Doc != nil {
			docStart := fset.Position(fd.Doc.Pos()).Line
			for l := docStart; l < start; l++ {
				if p, ok := byLine[l]; ok {
					attach(p)
				}
			}
		}
		if p, ok := byLine[start]; ok {
			attach(p)
		}
		s.byFile[rel] = append(s.byFile[rel], fn)
	}

	for _, p := range comments {
		if !p.used {
			s.Problems = append(s.Problems, Finding{
				Rule: RuleDirective, File: rel, Func: "-", Line: p.line, Count: 1,
				Message: "pgopt: directive is not attached to a function declaration (write it in the doc comment, or trailing on the func line)",
			})
		}
	}
}

// funcDisplayName renders a declaration the way the compiler's inlining
// diagnostics do: "Name", "T.Name" for value receivers, "(*T).Name" for
// pointer receivers.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	switch rt := t.(type) {
	case *ast.StarExpr:
		return "(*" + typeBaseName(rt.X) + ")." + fd.Name.Name
	default:
		return typeBaseName(t) + "." + fd.Name.Name
	}
}

func typeBaseName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return typeBaseName(t.X)
	case *ast.IndexListExpr:
		return typeBaseName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return "?"
}

// FuncAt returns the function whose span contains (file, line), or nil.
func (s *Surface) FuncAt(file string, line int) *Func {
	fns := s.byFile[file]
	i := sort.Search(len(fns), func(i int) bool { return fns[i].Start > line })
	if i == 0 {
		return nil
	}
	if fn := fns[i-1]; line <= fn.End {
		return fn
	}
	return nil
}

// HotFile reports whether file belongs to a policy.Hot package.
func (s *Surface) HotFile(file string) bool { return s.hotFile[file] }

// Funcs returns every function on the surface, ordered by file then
// start line.
func (s *Surface) Funcs() []*Func {
	var files []string
	for f := range s.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []*Func
	for _, f := range files {
		out = append(out, s.byFile[f]...)
	}
	return out
}

func relTo(root, abs string) string {
	if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}
