package optcheck

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineSplit(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Rule: RuleBCE, File: "a.go", Func: "F", Message: "Found IsInBounds", Count: 3},
		{Rule: RuleBCE, File: "b.go", Func: "G", Message: "Found IsInBounds", Count: 2},
		{Rule: RuleEscape, File: "c.go", Func: "H", Message: "w escapes to heap", Count: 1},
	}}
	findings := []Finding{
		{Rule: RuleBCE, File: "a.go", Func: "F", Message: "Found IsInBounds", Count: 3}, // exactly covered
		{Rule: RuleBCE, File: "b.go", Func: "G", Message: "Found IsInBounds", Count: 1}, // improved
		{Rule: RuleBCE, File: "d.go", Func: "K", Message: "Found IsInBounds", Count: 1}, // fresh key
	}
	d := b.Split(findings)
	if !d.Covered[0] || !d.Covered[1] || d.Covered[2] {
		t.Fatalf("covered = %v, want [true true false]", d.Covered)
	}
	if len(d.Fresh) != 1 || d.Fresh[0].File != "d.go" {
		t.Fatalf("fresh = %+v", d.Fresh)
	}
	if len(d.Improved) != 1 || d.Improved[0].File != "b.go" {
		t.Fatalf("improved = %+v", d.Improved)
	}
	if len(d.Stale) != 1 || d.Stale[0].File != "c.go" {
		t.Fatalf("stale = %+v", d.Stale)
	}
}

// TestBaselineCountGrowthFails is the heart of the gate: a function
// already sanctioned for N sites fails when it compiles with N+1 —
// matching keys alone would let regressions hide inside noisy functions.
func TestBaselineCountGrowthFails(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Rule: RuleBCE, File: "a.go", Func: "F", Message: "Found IsInBounds", Count: 3},
	}}
	d := b.Split([]Finding{{Rule: RuleBCE, File: "a.go", Func: "F", Message: "Found IsInBounds", Count: 4}})
	if len(d.Fresh) != 1 {
		t.Fatalf("grown count not reported fresh: %+v", d)
	}
	if d.Covered[0] {
		t.Fatal("grown count marked covered")
	}
	if want := "4 site(s), baseline sanctions 3"; !strings.Contains(d.Fresh[0].Message, want) {
		t.Errorf("message %q does not explain the growth (%q)", d.Fresh[0].Message, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Rule: RuleBCE, File: "z.go", Func: "B", Message: "Found IsSliceInBounds", Line: 9, Count: 2},
		{Rule: RuleBCE, File: "a.go", Func: "A", Message: "Found IsInBounds", Line: 4, Count: 5},
	}
	b := FromFindings(findings)
	if b.Sites() != 7 {
		t.Fatalf("sites = %d, want 7", b.Sites())
	}
	if b.Findings[0].File != "a.go" {
		t.Fatalf("baseline not sorted: %+v", b.Findings)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || len(got.Findings) != 2 || got.Sites() != 7 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	d := got.Split(findings)
	if len(d.Fresh) != 0 || len(d.Stale) != 0 || len(d.Improved) != 0 {
		t.Fatalf("freshly written baseline must cover its own findings exactly: %+v", d)
	}
}

func TestLoadBaselineMissingIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 || b.Sites() != 0 {
		t.Fatalf("missing baseline not empty: %+v", b)
	}
}
