package optcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"

	"powerrchol/internal/lint/policy"
)

// BuildFlags is the exact gcflags payload the checker compiles with:
// full escape-analysis explanations (-m=2) and the SSA pass's
// bounds-check report. Keeping it a constant means the golden fixtures,
// the Makefile documentation and the runner cannot drift apart.
const BuildFlags = "-m=2 -d=ssa/check_bce/debug=1"

// Config parameterizes a checker run.
type Config struct {
	// Root is the module root the build runs from; file paths in
	// findings are relative to it.
	Root string
	// Patterns are the package patterns to check. Empty means the
	// policy.Hot surface (the four kernel packages).
	Patterns []string
	// GoBin overrides the go tool path ("go" when empty).
	GoBin string
}

// DefaultPatterns returns the policy.Hot packages as ./-relative build
// patterns — the contract surface cmd/pgoptcheck checks by default.
func DefaultPatterns() []string {
	hot := policy.HotPackages()
	out := make([]string, len(hot))
	for i, p := range hot {
		out[i] = "./" + p
	}
	return out
}

// A Report is the outcome of one checker run.
type Report struct {
	Findings []Finding
	Stats    Stats
	Surface  *Surface
}

type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Run executes the full pipeline: list the packages, parse their
// sources into the contract surface, compile them with BuildFlags, and
// reconcile the compiler's diagnostics against the surface.
//
// Run never reports a silent clean on a broken toolchain: a build that
// produces no inlining verdicts at all (every compiled function gets
// exactly one) is a format-skew error, not an empty finding list.
func Run(cfg Config) (*Report, error) {
	goBin := cfg.GoBin
	if goBin == "" {
		goBin = "go"
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = DefaultPatterns()
	}

	pkgs, err := listPackages(goBin, cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("optcheck: no packages match %v", patterns)
	}

	surface := NewSurface()
	args := []string{"build"}
	for _, p := range pkgs {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = p.Dir + "/" + f
		}
		if err := surface.AddPackage(cfg.Root, p.ImportPath, files); err != nil {
			return nil, err
		}
		args = append(args, "-gcflags="+p.ImportPath+"="+BuildFlags)
	}
	for _, p := range pkgs {
		args = append(args, p.ImportPath)
	}

	// The compiler prints every diagnostic to stderr; the go command
	// replays them from the build cache on unchanged inputs, so repeated
	// runs are cheap and CI can reuse its Go build cache.
	cmd := exec.Command(goBin, args...)
	cmd.Dir = cfg.Root
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("optcheck: go build failed: %w\n%s", err, stderr.String())
	}

	diags, err := ParseDiagnostics(&stderr)
	if err != nil {
		return nil, err
	}
	findings, stats := Check(surface, diags)
	if stats.CanInline+stats.CannotInline == 0 {
		return nil, fmt.Errorf("optcheck: the compiler emitted no inlining diagnostics for %d package(s) — "+
			"the -m output format has changed (toolchain skew) or the build flags were dropped; refusing to report a clean result", len(pkgs))
	}
	return &Report{Findings: findings, Stats: stats, Surface: surface}, nil
}

func listPackages(goBin, root string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command(goBin, args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("optcheck: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("optcheck: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
