package optcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The differential guard: three representative kernels in the shapes
// this repository actually ships (carried column-pointer walk, hoisted
// operand windows, stack scratch) must come out CLEAN under the full
// Run pipeline, while deliberately pessimized twins of the same
// kernels — re-indexed column pointers, escaping scratch, a bloated
// inline candidate — must each be flagged. Together the two halves
// prove the gate has signal in both directions: it neither cries wolf
// on the optimized forms nor sleeps through the regressions the sweep
// removed.

// goodKernels is the swept shape: the only surviving findings are the
// data-dependent bce residue of LowerSolve, and the test asserts
// nothing else appears.
const goodKernels = `package sparse

// LowerSolve in the swept shape: carried column pointer, windowed
// column, range loops. Only data-dependent checks remain.
//
//pgopt:noescape solve scratch stays on the caller's stack
func LowerSolve(colPtr []int, rowIdx []int, val, x []float64, n int) {
	x = x[:n]
	p := colPtr[0]
	for j, end := range colPtr[1 : n+1 : n+1] {
		xj := x[j] / val[p]
		x[j] = xj
		rows := rowIdx[p+1 : end]
		vals := val[p+1 : end]
		vals = vals[:len(rows)]
		for k, i := range rows {
			x[i] -= vals[k] * xj
		}
		p = end
	}
}

// Axpy in the swept shape: partner operand resliced to the ranged
// length, so the element access is check-free.
//
//pgopt:inline,noescape two calls per PCG iteration
func Axpy(y []float64, alpha float64, x []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale: trivially check-free.
//
//pgopt:inline,noescape called on the preconditioned residual
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}
`

// badKernels reintroduces exactly the pessimizations the sweep removed.
const badKernels = `package sparse

// LowerSolve with the pre-sweep column walk: colPtr[j] and colPtr[j+1]
// re-indexed every iteration, per-entry indexing in the inner loop.
func LowerSolve(colPtr []int, rowIdx []int, val, x []float64, n int) {
	for j := 0; j < n; j++ {
		p := colPtr[j]
		end := colPtr[j+1]
		xj := x[j] / val[p]
		x[j] = xj
		for q := p + 1; q < end; q++ {
			x[rowIdx[q]] -= val[q] * xj
		}
	}
}

// Axpy that heap-allocates its scratch despite the noescape contract.
//
//pgopt:noescape two calls per PCG iteration
func Axpy(y []float64, alpha float64, x []float64) []float64 {
	tmp := make([]float64, len(x))
	for i, v := range x {
		tmp[i] = y[i] + alpha*v
	}
	return tmp
}

// Scale bloated past the inline budget despite the inline contract.
//
//pgopt:inline called on the preconditioned residual
func Scale(x []float64, alpha float64) {
	var a, b, c, d float64
	for i := range x {
		x[i] *= alpha
		a += x[i]
		b += x[i] * x[i]
		c += x[i] * x[i] * x[i]
		d += x[i] * x[i] * x[i] * x[i]
		if a > b {
			a, b = b, a
		}
		if c > d {
			c, d = d, c
		}
		if a > d {
			a, d = d, a
		}
	}
	_ = a + b + c + d
}
`

func runScratch(t *testing.T, src string) *Report {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The scratch package sits at internal/sparse so policy.Hot arms the
	// implicit nobce contract, mirroring the real module.
	write("go.mod", "module example.com/scratch\n\ngo 1.22\n")
	write("internal/sparse/kernels.go", src)
	report, err := Run(Config{Root: root, Patterns: []string{"./internal/sparse"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return report
}

func TestGuardContractedKernelsAreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a scratch module; skipped in -short runs")
	}
	report := runScratch(t, goodKernels)
	// The tolerated findings are the data-dependent residue: per-element
	// IsInBounds only in LowerSolve (the gather through rowIdx and the
	// value loads a compiler cannot prove), plus the one-time
	// IsSliceInBounds window hoists that ARE the hint idiom. No
	// escape/inline/skew/directive finding may appear at all, and Scale
	// must be perfectly clean.
	for _, f := range report.Findings {
		if f.Rule != RuleBCE {
			t.Errorf("non-bce finding on contracted kernels: %+v", f)
		}
		if f.Message == "Found IsInBounds" && f.Func != "LowerSolve" {
			t.Errorf("per-element bounds check outside the data-dependent solve residue: %+v", f)
		}
		if f.Func == "Scale" {
			t.Errorf("Scale must compile check-free: %+v", f)
		}
	}
	if report.Stats.CanInline == 0 {
		t.Error("no positive inline verdicts parsed — toolchain output missing")
	}
}

func TestGuardPessimizedKernelsAreFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a scratch module; skipped in -short runs")
	}
	good := runScratch(t, goodKernels)
	bad := runScratch(t, badKernels)

	count := func(r *Report, rule, fn, msg string) int {
		n := 0
		for _, f := range r.Findings {
			if f.Rule == rule && (fn == "" || f.Func == fn) && (msg == "" || f.Message == msg) {
				n += f.Count
			}
		}
		return n
	}

	// The regressed column walk must keep strictly more PER-ELEMENT
	// checks (IsInBounds) than the swept shape. Total sites would be the
	// wrong axis: the hint idiom deliberately pays one-time
	// IsSliceInBounds window hoists to clear the inner loop, so the
	// inner-loop check count is what the sweep moved and what the
	// committed baseline pins per message.
	gb := count(good, RuleBCE, "LowerSolve", "Found IsInBounds")
	bb := count(bad, RuleBCE, "LowerSolve", "Found IsInBounds")
	if bb <= gb {
		t.Errorf("pessimized LowerSolve kept %d per-element bounds checks, swept %d — gate has no signal", bb, gb)
	}
	if n := count(bad, RuleEscape, "Axpy", ""); n == 0 {
		t.Errorf("escaping scratch in noescape Axpy not flagged: %+v", bad.Findings)
	}
	if n := count(bad, RuleInline, "Scale", ""); n == 0 {
		t.Errorf("uninlinable contracted Scale not flagged: %+v", bad.Findings)
	}

	// And the committed-baseline mechanics: a baseline snapshotted from
	// the good tree must fail the bad tree.
	base := FromFindings(good.Findings)
	delta := base.Split(bad.Findings)
	if len(delta.Fresh) == 0 {
		t.Fatal("baseline from the swept tree passes the regressed tree")
	}
}

func TestGuardEscapeDetailCarriesReasonChain(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a scratch module; skipped in -short runs")
	}
	bad := runScratch(t, badKernels)
	for _, f := range bad.Findings {
		if f.Rule == RuleEscape && f.Func == "Axpy" {
			joined := strings.Join(f.Detail, "\n")
			if !strings.Contains(joined, "flow:") && !strings.Contains(joined, "from ") {
				t.Errorf("escape finding lost the -m=2 reason chain: %+v", f)
			}
			return
		}
	}
	t.Fatal("no escape finding for Axpy")
}
