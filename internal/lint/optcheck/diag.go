package optcheck

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DiagKind classifies one compiler diagnostic line family.
type DiagKind int

const (
	DiagOther DiagKind = iota
	// DiagBoundsCheck is a `-d=ssa/check_bce/debug=1` site: the compiler
	// kept an IsInBounds or IsSliceInBounds check in the generated code.
	DiagBoundsCheck
	// DiagEscape is an `-m=2` escape: a value escapes to the heap, with
	// the full reason chain attached as Detail lines.
	DiagEscape
	// DiagMovedToHeap is the `moved to heap: x` form: a local variable's
	// storage itself was heap-moved.
	DiagMovedToHeap
	// DiagCanInline records a positive inlining decision for a function
	// declared at the diagnostic position.
	DiagCanInline
	// DiagCannotInline records a refused inlining decision, with the
	// compiler's reason in Message.
	DiagCannotInline
	// DiagInlineCall records a call site the compiler inlined.
	DiagInlineCall
)

func (k DiagKind) String() string {
	switch k {
	case DiagBoundsCheck:
		return "bounds-check"
	case DiagEscape:
		return "escape"
	case DiagMovedToHeap:
		return "moved-to-heap"
	case DiagCanInline:
		return "can-inline"
	case DiagCannotInline:
		return "cannot-inline"
	case DiagInlineCall:
		return "inline-call"
	}
	return "other"
}

// A Diag is one parsed compiler diagnostic.
type Diag struct {
	File    string // as printed by the compiler (cwd-relative when built from the module root)
	Line    int
	Col     int
	Kind    DiagKind
	Message string // first line, position prefix stripped
	// FuncName is the function the compiler named in an inlining
	// diagnostic ("can inline NAME …" / "cannot inline NAME: …"); empty
	// for the other kinds, whose attribution is positional.
	FuncName string
	// Detail carries the -m=2 escape reason chain ("flow:" / "from"
	// lines) attached to a DiagEscape.
	Detail []string
}

// ParseDiagnostics reads the stderr of a `go build -gcflags='-m=2
// -d=ssa/check_bce/debug=1'` invocation and returns the structured
// diagnostics. Lines it does not recognize ("leaking param", "does not
// escape", package headers, …) are classified DiagOther and kept, so
// callers can distinguish "the compiler said nothing interesting" from
// "the format changed under us" (see Stats and the skew tests).
//
// The -m=2 stream prints each escape twice — once with a trailing colon
// followed by the indented flow chain, once plain — and the parser
// folds the pair into a single DiagEscape carrying the chain.
func ParseDiagnostics(r io.Reader) ([]Diag, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var out []Diag
	// seen folds the duplicated escape forms: keyed pos + normalized
	// message, value is the index in out.
	seen := make(map[string]int)

	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, ln, col, msg, ok := splitDiagLine(line)
		if !ok {
			// A line without a position prefix: not part of the diagnostic
			// stream (linker chatter, build errors surface elsewhere).
			out = append(out, Diag{Kind: DiagOther, Message: line})
			continue
		}
		if strings.HasPrefix(msg, " ") {
			// Indented continuation: the -m=2 escape reason chain. Attach to
			// the escape this position opened.
			key := file + ":" + strconv.Itoa(ln) + ":" + strconv.Itoa(col)
			if i, ok := seen[key]; ok {
				out[i].Detail = append(out[i].Detail, strings.TrimRight(msg, " "))
			}
			continue
		}
		d := Diag{File: file, Line: ln, Col: col, Message: msg}
		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			d.Kind = DiagBoundsCheck
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
			d.Kind = DiagEscape
			d.Message = strings.TrimSuffix(msg, ":")
			key := file + ":" + strconv.Itoa(ln) + ":" + strconv.Itoa(col)
			if i, ok := seen[key]; ok && out[i].Message == d.Message {
				continue // plain duplicate of the explained form
			}
			seen[key] = len(out)
		case strings.HasPrefix(msg, "moved to heap: "):
			d.Kind = DiagMovedToHeap
		case strings.HasPrefix(msg, "can inline "):
			d.Kind = DiagCanInline
			d.FuncName = inlineFuncName(strings.TrimPrefix(msg, "can inline "))
		case strings.HasPrefix(msg, "cannot inline "):
			d.Kind = DiagCannotInline
			d.FuncName = inlineFuncName(strings.TrimPrefix(msg, "cannot inline "))
		case strings.HasPrefix(msg, "inlining call to "):
			d.Kind = DiagInlineCall
			d.FuncName = strings.TrimPrefix(msg, "inlining call to ")
		default:
			d.Kind = DiagOther
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("optcheck: reading compiler diagnostics: %w", err)
	}
	return out, nil
}

// inlineFuncName extracts the function name from the tail of a
// can/cannot-inline message: the name runs to " with cost" (can) or to
// the first ": " (cannot).
func inlineFuncName(rest string) string {
	if i := strings.Index(rest, " with cost "); i >= 0 {
		return rest[:i]
	}
	if i := strings.Index(rest, ": "); i >= 0 {
		return rest[:i]
	}
	return strings.TrimSuffix(rest, ":")
}

// splitDiagLine parses "path:line:col: message" (column optional —
// "path:line: message" also accepted). It refuses lines whose message
// would be empty.
func splitDiagLine(line string) (file string, ln, col int, msg string, ok bool) {
	// Scan for ": " separators from the left so Windows-style or message
	// text containing colons cannot confuse the position parse: the
	// position prefix is always the first run of path:num[:num]:.
	rest := line
	i := strings.Index(rest, ": ")
	for i >= 0 {
		prefix := rest[:i]
		if f, l, c, okp := splitPosn(prefix); okp {
			return f, l, c, rest[i+2:], true
		}
		j := strings.Index(rest[i+1:], ": ")
		if j < 0 {
			break
		}
		i = i + 1 + j
	}
	return "", 0, 0, "", false
}

// splitPosn parses "path/file.go:12:3" (column optional).
func splitPosn(posn string) (file string, line, col int, ok bool) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil && n > 0 {
			col = n
			file = file[:i]
		} else {
			return "", 0, 0, false
		}
	} else {
		return "", 0, 0, false
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil && n > 0 {
			line = n
			file = file[:i]
		}
	}
	if line == 0 {
		// Only one numeric suffix was present: it was the line.
		line, col = col, 0
	}
	if file == "" || !strings.HasSuffix(file, ".go") && !strings.HasPrefix(file, "<") {
		return "", 0, 0, false
	}
	return file, line, col, true
}

// Stats summarizes a diagnostic stream by kind — the skew sentinel. A
// healthy `-m=2 -d=ssa/check_bce/debug=1` build of any non-trivial
// package produces inlining decisions and escape analysis; if a future
// toolchain renames those message families this histogram goes to zero
// and RunPackages refuses to report a (false) clean bill.
type Stats struct {
	BoundsChecks  int
	Escapes       int
	MovedToHeap   int
	CanInline     int
	CannotInline  int
	InlineCalls   int
	Unrecognized  int
	TotalPosLines int
}

// Summarize computes the kind histogram of a parsed stream.
func Summarize(diags []Diag) Stats {
	var s Stats
	for _, d := range diags {
		if d.File != "" {
			s.TotalPosLines++
		}
		switch d.Kind {
		case DiagBoundsCheck:
			s.BoundsChecks++
		case DiagEscape:
			s.Escapes++
		case DiagMovedToHeap:
			s.MovedToHeap++
		case DiagCanInline:
			s.CanInline++
		case DiagCannotInline:
			s.CannotInline++
		case DiagInlineCall:
			s.InlineCalls++
		default:
			if d.File != "" {
				s.Unrecognized++
			}
		}
	}
	return s
}
