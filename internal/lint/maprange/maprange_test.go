package maprange_test

import (
	"testing"

	"powerrchol/internal/lint/linttest"
	"powerrchol/internal/lint/maprange"
)

func TestMapRange(t *testing.T) {
	linttest.Run(t, linttest.TestdataDir(t), maprange.Analyzer,
		"example.com/internal/order",
		"example.com/app",
	)
}
