// Package order is a fixture standing in for a determinism-critical
// kernel: ranging over a map here must be provably order-insensitive.
package order

import "sort"

func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `range over map is order-dependent`
		s += v // FP addition does not associate: order reaches the result
	}
	return s
}

func Clear(m map[int]float64) {
	for k := range m {
		delete(m, k) // the clear idiom is order-insensitive
	}
}

func Count(m map[int]float64) int {
	n := 0
	for range m {
		n++ // binds neither key nor value: every iteration identical
	}
	return n
}

func SortedKeys(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys) // collect-then-sort: determinized before use
	return keys
}

func UnsortedKeys(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `range over map is order-dependent`
		keys = append(keys, k)
	}
	return keys // first use is the return, not a sort: order leaks out
}

func MaxValue(m map[int]float64) float64 {
	best := 0.0
	//pglint:ordered-irrelevant max is commutative and associative; any visit order yields the same result
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func Unjustified(m map[int]float64) {
	//pglint:ordered-irrelevant // want `directive needs a reason`
	for k, v := range m {
		_ = k
		_ = v
	}
}
