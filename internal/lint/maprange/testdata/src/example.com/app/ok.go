// Package app is orchestration-layer code: maprange does not apply
// outside the numeric kernels.
package app

func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
