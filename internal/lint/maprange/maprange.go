// Package maprange flags for-range loops over maps in the numeric and
// ordering kernels.
//
// Go randomizes map iteration order per run, so any kernel whose output
// depends on the order a map is walked is nondeterministic even with a
// fixed seed — exactly the AMD supervariable-merge bug PR 1's determinism
// suite had to hunt down. In packages classified numeric by
// internal/lint/policy, ranging over a map is banned unless the loop is
// provably order-insensitive. Three shapes are recognized as proof:
//
//  1. the clear idiom: for k := range m { delete(m, k) }
//  2. count-only iteration that binds neither key nor value:
//     for range m { n++ }
//  3. collect-then-sort: the body is exactly `keys = append(keys, k)` and
//     the first use of keys after the loop is a sort.* / slices.Sort*
//     call.
//
// Anything else needs //pglint:ordered-irrelevant <reason> — a written
// justification of why order cannot reach the output.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"powerrchol/internal/lint/directive"
	"powerrchol/internal/lint/policy"
)

// DirectiveName is the suppression directive honored by this analyzer.
const DirectiveName = "ordered-irrelevant"

var Analyzer = &analysis.Analyzer{
	Name:     "maprange",
	Doc:      "flag order-dependent map iteration in numeric/ordering kernels; map order varies per run and breaks seed replayability",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !policy.Numeric(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := directive.New(pass)
	dirs.Validate(pass, DirectiveName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if strings.HasSuffix(pass.Fset.Position(rng.Pos()).Filename, "_test.go") {
			return true
		}
		if isClearIdiom(pass, rng) || isCountOnly(rng) || isCollectAndSort(pass, rng, stack) {
			return true
		}
		if _, ok := dirs.Allow(rng.Pos(), DirectiveName); ok {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map is order-dependent and map order varies run to run; sort the keys first or annotate //pglint:%s <reason>", DirectiveName)
		return true
	})
	return nil, nil
}

// isClearIdiom matches `for k := range m { delete(m, k) }` — the compiler
// recognized map-clear loop, trivially order-insensitive.
func isClearIdiom(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	es, ok := rng.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	return sameObject(pass, call.Args[0], rng.X) && sameObject(pass, call.Args[1], rng.Key)
}

// isCountOnly matches `for range m { ... }`: with neither key nor value
// bound, every iteration is identical, so order cannot matter.
func isCountOnly(rng *ast.RangeStmt) bool {
	return rng.Key == nil && rng.Value == nil
}

// isCollectAndSort matches the sanctioned determinization idiom: the body
// is exactly one append of the key into a slice, and the first use of
// that slice after the loop is a sort call.
func isCollectAndSort(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	} else if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if !sameObject(pass, call.Args[0], lhs) {
		return false
	}
	// second append arg must be the key, possibly through a conversion
	arg := call.Args[1]
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		arg = conv.Args[0]
	}
	if !sameObject(pass, arg, rng.Key) {
		return false
	}
	keys := objOf(pass, lhs)
	if keys == nil {
		return false
	}
	// find the enclosing function body
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	// first use of keys after the loop, with its ancestor path
	var firstUse *ast.Ident
	var path []ast.Node
	var cur []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			cur = cur[:len(cur)-1]
			return false
		}
		cur = append(cur, n)
		if id, ok := n.(*ast.Ident); ok && id.Pos() > rng.End() && objOf(pass, id) == keys {
			if firstUse == nil || id.Pos() < firstUse.Pos() {
				firstUse = id
				path = append([]ast.Node(nil), cur...)
			}
		}
		return true
	})
	if firstUse == nil {
		return false
	}
	// the first use must sit inside a sort.*/slices.Sort* call
	for _, n := range path {
		if call, ok := n.(*ast.CallExpr); ok && isSortCall(pass, call) {
			return true
		}
	}
	return false
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(obj.Name(), "Sort")
	}
	return false
}

// sameObject reports whether a and b are uses of the same variable (plain
// identifiers only — selector chains are deliberately not matched, keeping
// the proof conservative).
func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	oa, ob := objOf(pass, a), objOf(pass, b)
	return oa != nil && oa == ob
}

func objOf(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
