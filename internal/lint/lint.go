// Package lint aggregates the pglint analyzer suite.
//
// pglint is this repository's compile-time determinism and
// numerical-safety gate: five golang.org/x/tools/go/analysis analyzers
// enforcing the invariants the test suite can only sample — no ambient
// randomness or clock in the kernels, no map-order-dependent iteration,
// no exact float comparison, no sync.Pool scratch leaks, no severed error
// chains. Run it via `make lint`, which is `go vet -vettool=bin/pglint
// ./...`. Suppressions are per-line //pglint:<name> <reason> annotations;
// see internal/lint/directive for the grammar and DESIGN.md §9 for the
// full policy.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/bannedimport"
	"powerrchol/internal/lint/errwrapcheck"
	"powerrchol/internal/lint/floateq"
	"powerrchol/internal/lint/maprange"
	"powerrchol/internal/lint/poolleak"
)

// Analyzers returns the full pglint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bannedimport.Analyzer,
		maprange.Analyzer,
		floateq.Analyzer,
		poolleak.Analyzer,
		errwrapcheck.Analyzer,
	}
}
