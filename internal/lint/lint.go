// Package lint aggregates the pglint analyzer suite.
//
// pglint is this repository's compile-time determinism, numerical-safety
// and concurrency-contract gate: thirteen golang.org/x/tools/go/analysis
// analyzers enforcing the invariants the test suite can only sample — no
// ambient randomness or clock in the kernels, no map-order-dependent
// iteration, no exact float comparison, no sync.Pool scratch leaks or
// aliasing escapes, no severed error or context chains, no allocations
// in hot inner loops, no unterminated goroutines, mutex discipline on
// every CFG path, no atomic/plain access mixes, no determinism taint in
// contract-bearing results, and no library goroutine parked forever on
// an unprovable send. The first five (bannedimport, maprange, floateq,
// poolleak, errwrapcheck) work on the AST and CFG; the contract
// analyzers (ctxflow, hotalloc, goroleak, poolescape, lockcheck,
// detflow, sendblock) share the ssalite function IR, and the
// concurrency/determinism family additionally shares the cross-package
// function summaries of ssalite/summary, exported as analysis facts so
// lock, taint and blocking behavior is visible through package edges.
// Run it via `make lint`, which is `go vet -vettool=bin/pglint ./...`,
// or `make lint-sarif` for the SARIF + baseline view CI uploads.
// Suppressions are per-line //pglint:<name> <reason> annotations (one
// line may carry //pglint:a,b <reason> to cover two analyzers); see
// internal/lint/directive for the grammar, internal/lint/README.md for
// the catalogue, and DESIGN.md §9 for the full policy.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"powerrchol/internal/lint/atomicmix"
	"powerrchol/internal/lint/bannedimport"
	"powerrchol/internal/lint/ctxflow"
	"powerrchol/internal/lint/detflow"
	"powerrchol/internal/lint/errwrapcheck"
	"powerrchol/internal/lint/floateq"
	"powerrchol/internal/lint/goroleak"
	"powerrchol/internal/lint/hotalloc"
	"powerrchol/internal/lint/lockcheck"
	"powerrchol/internal/lint/maprange"
	"powerrchol/internal/lint/poolescape"
	"powerrchol/internal/lint/poolleak"
	"powerrchol/internal/lint/sendblock"
)

func init() {
	// ctxflow doubles as the suite's directive janitor: it needs the full
	// name set to flag misspelled suppressions (which silence nothing).
	ctxflow.KnownDirectives = DirectiveNames()
}

// Analyzers returns the full pglint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bannedimport.Analyzer,
		maprange.Analyzer,
		floateq.Analyzer,
		poolleak.Analyzer,
		errwrapcheck.Analyzer,
		ctxflow.Analyzer,
		hotalloc.Analyzer,
		goroleak.Analyzer,
		poolescape.Analyzer,
		lockcheck.Analyzer,
		atomicmix.Analyzer,
		detflow.Analyzer,
		sendblock.Analyzer,
	}
}

// DirectiveNames returns every suppression directive the suite honors,
// in the analyzer order of Analyzers.
func DirectiveNames() []string {
	return []string{
		bannedimport.DirectiveName,
		maprange.DirectiveName,
		floateq.DirectiveName,
		poolleak.DirectiveName,
		errwrapcheck.DirectiveName,
		ctxflow.DirectiveName,
		hotalloc.DirectiveName,
		goroleak.DirectiveName,
		poolescape.DirectiveName,
		lockcheck.DirectiveName,
		atomicmix.DirectiveName,
		detflow.DirectiveName,
		sendblock.DirectiveName,
	}
}
