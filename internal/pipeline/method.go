package pipeline

import "fmt"

// Method selects the solver pipeline. The root powerrchol package
// aliases this type (and its constants) so the public API is unchanged;
// the definition lives here because the pipeline registry — the single
// source of truth for what each method composes — is keyed by it.
type Method int

const (
	// MethodPowerRChol is the paper's contribution: Alg. 4 reordering +
	// LT-RChol (Alg. 3) preconditioned CG. The default.
	MethodPowerRChol Method = iota
	// MethodRChol is the original RChol baseline [3]: AMD reordering +
	// Alg. 1 preconditioned CG (ordering overridable via Options.Ordering).
	MethodRChol
	// MethodLTRChol is LT-RChol under a selectable ordering (defaults to
	// AMD, the Table 1 configuration).
	MethodLTRChol
	// MethodFeGRASS is the feGRASS-PCG baseline [11]: spectral sparsifier
	// (2%|V| off-tree edges) factorized completely under AMD.
	MethodFeGRASS
	// MethodFeGRASSIChol is the feGRASS-IChol baseline [9]: 50%|V|
	// off-tree edges recovered, incomplete Cholesky with drop tol 8.5e-6.
	MethodFeGRASSIChol
	// MethodAMG is the aggregation-AMG preconditioned CG inside
	// PowerRush [14].
	MethodAMG
	// MethodPowerRush is AMG-PCG plus the merge-small-resistors trick.
	MethodPowerRush
	// MethodDirect is a complete sparse Cholesky (AMD-ordered) solve.
	MethodDirect
	// MethodJacobi is diagonally preconditioned CG, a weak reference point.
	MethodJacobi
	// MethodSSOR is symmetric-successive-over-relaxation preconditioned
	// CG: zero setup cost, between Jacobi and the factorization methods.
	MethodSSOR
)

var methodNames = map[Method]string{
	MethodPowerRChol:   "powerrchol",
	MethodRChol:        "rchol",
	MethodLTRChol:      "lt-rchol",
	MethodFeGRASS:      "fegrass",
	MethodFeGRASSIChol: "fegrass-ichol",
	MethodAMG:          "amg",
	MethodPowerRush:    "powerrush",
	MethodDirect:       "direct",
	MethodJacobi:       "jacobi",
	MethodSSOR:         "ssor",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// MethodByName resolves the CLI spelling of a method.
func MethodByName(name string) (Method, error) {
	for m, s := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("powerrchol: unknown method %q", name)
}

// Ordering selects the fill-reducing permutation for the randomized and
// direct factorizations.
type Ordering int

const (
	// OrderDefault picks the method's paper configuration: Alg. 4 for
	// PowerRChol, AMD for RChol/LT-RChol/Direct/feGRASS.
	OrderDefault Ordering = iota
	// OrderAlg4 is the paper's LT-RChol-oriented reordering.
	OrderAlg4
	// OrderAMD is approximate minimum degree.
	OrderAMD
	// OrderNatural keeps the input order.
	OrderNatural
	// OrderRCM is reverse Cuthill-McKee.
	OrderRCM
	// OrderND is BFS-separator nested dissection.
	OrderND
)

func (o Ordering) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderAlg4:
		return "alg4"
	case OrderAMD:
		return "amd"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderND:
		return "nd"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Transform selects the optional sparsify/contract stage that runs
// before ordering and factorization. TransformDefault keeps each
// method's paper configuration (feGRASS sparsification for the feGRASS
// methods, resistor-merge contraction for PowerRush, none elsewhere);
// the other values override it, composing any transform with any
// factorizer — e.g. a feGRASS-sparsified LT-RChol, or PowerRush
// contraction over a randomized inner preconditioner.
type Transform int

const (
	// TransformDefault is the method's own paper configuration.
	TransformDefault Transform = iota
	// TransformNone disables the method's transform stage.
	TransformNone
	// TransformFeGRASS feeds the factorizer a feGRASS spectral
	// sparsifier of the system; PCG still iterates on the original.
	TransformFeGRASS
	// TransformMerge contracts small resistors (PowerRush's trick)
	// before every later stage; PCG iterates on the contracted system
	// and the solution is expanded back to the original nodes.
	TransformMerge
)

func (t Transform) String() string {
	switch t {
	case TransformDefault:
		return "default"
	case TransformNone:
		return "none"
	case TransformFeGRASS:
		return "fegrass"
	case TransformMerge:
		return "merge"
	}
	return fmt.Sprintf("Transform(%d)", int(t))
}

// TransformByName resolves the CLI spelling of a transform stage.
func TransformByName(name string) (Transform, error) {
	for _, t := range []Transform{TransformDefault, TransformNone, TransformFeGRASS, TransformMerge} {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("powerrchol: unknown transform %q", name)
}

// Attempt records one rung of the recovery ladder: which configuration
// ran, and how it ended. A trail of Attempts appears in Result.Attempts
// on success and in SolveError.Attempts when every rung failed.
type Attempt struct {
	Method     Method
	Ordering   Ordering
	Seed       uint64  // factorization seed used by this attempt
	Iterations int     // PCG iterations run (0 if factorization failed)
	Residual   float64 // best relative residual reached (0 if factorization failed)
	Err        string  // failure reason; "" for a successful attempt
}

func (a Attempt) String() string {
	state := "ok"
	if a.Err != "" {
		state = a.Err
	}
	return fmt.Sprintf("%v/%v seed=%d iters=%d res=%.3e: %s",
		a.Method, a.Ordering, a.Seed, a.Iterations, a.Residual, state)
}
