package pipeline

import (
	"fmt"
	"sort"

	"powerrchol/internal/fegrass"
)

// Spec is one registered method composition: which stages a method's
// plan is assembled from, and how it behaves under the recovery ladder
// and the prepared-solver front-end. The registry is the single source
// of truth both front-ends (and the pgsolve method table) derive from.
type Spec struct {
	Method Method
	// DefaultOrdering resolves OrderDefault for this method (the paper's
	// configuration). Ignored when Ordered is false.
	DefaultOrdering Ordering
	// DefaultTransform resolves TransformDefault for this method.
	DefaultTransform Transform
	// Ordered reports whether the method has an ordering stage at all;
	// the matrix-free preconditioners (AMG, Jacobi, SSOR) do not.
	Ordered bool
	// Ladder reports whether the method is randomized and therefore
	// subject to the reseed/escalation recovery ladder and the Attempt
	// trail. Deterministic methods run a single rung.
	Ladder bool
	// FactorName is the factorizer stage's display name for the method
	// table (rung-dependent for ladder methods, so stored here).
	FactorName string
	// Summary is the one-line description shown by `pgsolve -method list`.
	Summary string

	// newFactorizer builds the factorizer for one rung of this method's
	// plan. Ladder rungs override it with the rung's own variant/direct
	// escalation configuration (see Runner.factorizerFor).
	newFactorizer func(cfg Config) Factorizer
}

// specs is the method registry. Order of the table mirrors the Method
// constants; Methods() sorts by Method value, so the listing is stable.
var specs = map[Method]*Spec{
	MethodPowerRChol: {
		Method:           MethodPowerRChol,
		DefaultOrdering:  OrderAlg4,
		DefaultTransform: TransformNone,
		Ordered:          true,
		Ladder:           true,
		FactorName:       "lt-rchol",
		Summary:          "Alg. 4 reordering + LT-RChol preconditioned CG (the paper)",
	},
	MethodRChol: {
		Method:           MethodRChol,
		DefaultOrdering:  OrderAMD,
		DefaultTransform: TransformNone,
		Ordered:          true,
		Ladder:           true,
		FactorName:       "rchol",
		Summary:          "original RChol baseline: AMD + Alg. 1 preconditioned CG",
	},
	MethodLTRChol: {
		Method:           MethodLTRChol,
		DefaultOrdering:  OrderAMD,
		DefaultTransform: TransformNone,
		Ordered:          true,
		Ladder:           true,
		FactorName:       "lt-rchol",
		Summary:          "LT-RChol under a selectable ordering (Table 1 configuration)",
	},
	MethodFeGRASS: {
		Method:           MethodFeGRASS,
		DefaultOrdering:  OrderAMD,
		DefaultTransform: TransformFeGRASS,
		Ordered:          true,
		FactorName:       "cholesky",
		Summary:          "feGRASS sparsifier (2%|V| off-tree) factorized completely",
		newFactorizer:    func(Config) Factorizer { return cholFactorizer{} },
	},
	MethodFeGRASSIChol: {
		Method:           MethodFeGRASSIChol,
		DefaultOrdering:  OrderAMD,
		DefaultTransform: TransformFeGRASS,
		Ordered:          true,
		FactorName:       "ichol",
		Summary:          "feGRASS sparsifier (50%|V|) + threshold incomplete Cholesky",
		newFactorizer:    func(cfg Config) Factorizer { return icholFactorizer{dropTol: cfg.DropTol} },
	},
	MethodAMG: {
		Method:           MethodAMG,
		DefaultTransform: TransformNone,
		FactorName:       "amg",
		Summary:          "aggregation-AMG preconditioned CG (PowerRush's core)",
		newFactorizer:    func(Config) Factorizer { return amgFactorizer{} },
	},
	MethodPowerRush: {
		Method:           MethodPowerRush,
		DefaultTransform: TransformMerge,
		FactorName:       "amg",
		Summary:          "resistor-merge contraction + AMG-PCG on the contracted grid",
		newFactorizer:    func(Config) Factorizer { return amgFactorizer{} },
	},
	MethodDirect: {
		Method:           MethodDirect,
		DefaultOrdering:  OrderAMD,
		DefaultTransform: TransformNone,
		Ordered:          true,
		FactorName:       "cholesky",
		Summary:          "complete sparse Cholesky: exact solve, no iteration",
		newFactorizer:    func(Config) Factorizer { return cholFactorizer{} },
	},
	MethodJacobi: {
		Method:           MethodJacobi,
		DefaultTransform: TransformNone,
		FactorName:       "jacobi",
		Summary:          "diagonally preconditioned CG, the weak reference point",
		newFactorizer:    func(Config) Factorizer { return jacobiFactorizer{} },
	},
	MethodSSOR: {
		Method:           MethodSSOR,
		DefaultTransform: TransformNone,
		FactorName:       "ssor",
		Summary:          "symmetric-SOR preconditioned CG: zero setup cost",
		newFactorizer:    func(Config) Factorizer { return ssorFactorizer{} },
	},
}

// specFor resolves a method to its registered spec.
func specFor(m Method) (*Spec, error) {
	s, ok := specs[m]
	if !ok {
		return nil, fmt.Errorf("powerrchol: unknown method %v", m)
	}
	return s, nil
}

// MethodInfo is one row of the registry-derived method table.
type MethodInfo struct {
	Method    Method
	Name      string
	Ordering  Ordering  // default ordering (meaningful only when Ordered)
	Ordered   bool      // has an ordering stage
	Transform Transform // default transform stage
	Factor    string    // factorizer stage name
	Ladder    bool      // randomized; subject to the recovery ladder
	Prepared  bool      // supported by NewSolver (amortized front-end)
	Summary   string
}

// Methods returns the registry as a table, sorted by Method value, for
// CLIs and documentation. A method is Prepared unless its default plan
// contracts the unknowns (PowerRush).
func Methods() []MethodInfo {
	out := make([]MethodInfo, 0, len(specs))
	for _, s := range specs {
		out = append(out, MethodInfo{ //pglint:hotalloc registry table, built once per listing and bounded by len(specs)
			Method:    s.Method,
			Name:      s.Method.String(),
			Ordering:  s.DefaultOrdering,
			Ordered:   s.Ordered,
			Transform: s.DefaultTransform,
			Factor:    s.FactorName,
			Ladder:    s.Ladder,
			Prepared:  s.DefaultTransform != TransformMerge,
			Summary:   s.Summary,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// transformerFor resolves the configured transform stage for a plan.
// TransformDefault picks the spec's own stage; the recovery budget for
// feGRASS sparsification keeps the per-method paper defaults (2%|V|,
// 50%|V| for the IChol variant) unless overridden.
func transformerFor(spec *Spec, cfg Config) (Transformer, Transform, error) {
	t := cfg.Transform
	if t == TransformDefault {
		t = spec.DefaultTransform
	}
	switch t {
	case TransformNone:
		return identityTransformer{}, t, nil
	case TransformFeGRASS:
		frac := cfg.RecoverFrac
		if frac == 0 {
			if cfg.Method == MethodFeGRASSIChol {
				frac = fegrass.IcholRecoverFrac
			} else {
				frac = fegrass.DefaultRecoverFrac
			}
		}
		return fegrassTransformer{frac: frac}, t, nil
	case TransformMerge:
		return mergeTransformer{factor: cfg.MergeFactor}, t, nil
	}
	return nil, t, fmt.Errorf("powerrchol: unknown transform %v", cfg.Transform)
}
