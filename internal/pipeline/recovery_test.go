package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"powerrchol/internal/core"
	"powerrchol/internal/pcg"
)

// The ladder is plain data — attemptPlan lays every rung out up front —
// so its invariants are tested as table lookups, with no solver in the
// loop: reseeds come before escalation, the direct rung is always last,
// and attempt 0 never perturbs the deterministic tie-breaking.

func planString(plan []rung) string {
	s := ""
	for _, r := range plan {
		s += fmt.Sprintf("%v/%v seed=%d direct=%v; ", r.method, r.ordering, r.seed, r.direct)
	}
	return s
}

func TestAttemptPlanShapes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want []rung
	}{
		{
			name: "no retry is a single base rung",
			cfg:  Config{Method: MethodPowerRChol, Seed: 7},
			want: []rung{
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: 7},
			},
		},
		{
			name: "MaxAttempts 1 equals no retry",
			cfg:  Config{Method: MethodPowerRChol, Seed: 7, Retry: RetryPolicy{MaxAttempts: 1}},
			want: []rung{
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: 7},
			},
		},
		{
			name: "reseeds only without Escalate",
			cfg:  Config{Method: MethodPowerRChol, Seed: 7, Retry: RetryPolicy{MaxAttempts: 3}},
			want: []rung{
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: 7},
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: reseed(7, 1)},
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: reseed(7, 2)},
			},
		},
		{
			name: "full escalation ladder",
			cfg:  Config{Method: MethodPowerRChol, Seed: 7, Retry: RetryPolicy{MaxAttempts: 4, Escalate: true}},
			want: []rung{
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: 7},
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: reseed(7, 1)},
				{method: MethodRChol, ordering: OrderAMD, variant: core.VariantRChol, seed: reseed(7, 2)},
				{method: MethodDirect, ordering: OrderAMD, direct: true},
			},
		},
		{
			name: "escalation truncates to MaxAttempts",
			cfg:  Config{Method: MethodPowerRChol, Seed: 7, Retry: RetryPolicy{MaxAttempts: 2, Escalate: true}},
			want: []rung{
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: 7},
				{method: MethodPowerRChol, ordering: OrderAlg4, variant: core.VariantLT, seed: reseed(7, 1)},
			},
		},
		{
			name: "RChol base skips the redundant RChol rung",
			cfg:  Config{Method: MethodRChol, Seed: 9, Retry: RetryPolicy{MaxAttempts: 4, Escalate: true}},
			want: []rung{
				{method: MethodRChol, ordering: OrderAMD, variant: core.VariantRChol, seed: 9},
				{method: MethodRChol, ordering: OrderAMD, variant: core.VariantRChol, seed: reseed(9, 1)},
				{method: MethodDirect, ordering: OrderAMD, direct: true},
			},
		},
		{
			name: "explicit ordering survives the reseeds",
			cfg: Config{Method: MethodLTRChol, Ordering: OrderRCM, Seed: 5,
				Retry: RetryPolicy{MaxAttempts: 3, Escalate: true}},
			want: []rung{
				{method: MethodLTRChol, ordering: OrderRCM, variant: core.VariantLT, seed: 5},
				{method: MethodLTRChol, ordering: OrderRCM, variant: core.VariantLT, seed: reseed(5, 1)},
				{method: MethodRChol, ordering: OrderAMD, variant: core.VariantRChol, seed: reseed(5, 2)},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := attemptPlan(tc.cfg)
			if len(got) != len(tc.want) {
				t.Fatalf("plan has %d rungs, want %d:\n got: %s\nwant: %s",
					len(got), len(tc.want), planString(got), planString(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("rung %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestAttemptPlanInvariants sweeps the ladder methods × policies and
// checks the structural invariants that hold for every shape: the base
// rung leads, reseeds precede any method escalation, seeds never
// repeat, and the direct rung — when present — is deterministic and
// terminal.
func TestAttemptPlanInvariants(t *testing.T) {
	for _, m := range []Method{MethodPowerRChol, MethodRChol, MethodLTRChol} {
		for maxAttempts := 0; maxAttempts <= 6; maxAttempts++ {
			for _, esc := range []bool{false, true} {
				cfg := Config{Method: m, Seed: 101, Retry: RetryPolicy{MaxAttempts: maxAttempts, Escalate: esc}}
				plan := attemptPlan(cfg)
				name := fmt.Sprintf("%v max=%d escalate=%v", m, maxAttempts, esc)
				if len(plan) == 0 {
					t.Fatalf("%s: empty plan", name)
				}
				want := maxAttempts
				if want < 1 {
					want = 1
				}
				if len(plan) > want {
					t.Errorf("%s: %d rungs exceed MaxAttempts", name, len(plan))
				}
				if plan[0] != baseRung(cfg) {
					t.Errorf("%s: first rung %+v is not the base configuration", name, plan[0])
				}
				seeds := map[uint64]bool{}
				escalated := false
				for i, r := range plan {
					if r.direct {
						if i != len(plan)-1 {
							t.Errorf("%s: direct rung %d is not last: %s", name, i, planString(plan))
						}
						if r.seed != 0 || r.method != MethodDirect || r.ordering != OrderAMD {
							t.Errorf("%s: direct rung not deterministic AMD Cholesky: %+v", name, r)
						}
						continue
					}
					if seeds[r.seed] {
						t.Errorf("%s: seed %d repeats at rung %d", name, r.seed, i)
					}
					seeds[r.seed] = true
					if r.method != m {
						escalated = true
					} else if escalated {
						t.Errorf("%s: reseed of the base method after escalation at rung %d: %s",
							name, i, planString(plan))
					}
				}
			}
		}
	}
}

// TestOrderTieRngFirstAttemptIsNil: attempt 0 must keep the paper's
// deterministic counting-sort ties — a recovery-armed solve whose first
// attempt succeeds is bit-identical to a recovery-free solve.
func TestOrderTieRngFirstAttemptIsNil(t *testing.T) {
	if rng := orderTieRng(12345, 0); rng != nil {
		t.Fatal("attempt 0 must use nil tie-break RNG (deterministic ties)")
	}
	r1, r2 := orderTieRng(12345, 1), orderTieRng(12345, 1)
	if r1 == nil || r2 == nil {
		t.Fatal("retry attempts must shuffle ties")
	}
	if a, b := r1.Float64(), r2.Float64(); a != b {
		t.Fatalf("tie-break stream is not replayable: %g vs %g", a, b)
	}
}

// TestReseedStreamsDistinct: the golden-ratio stride must give distinct
// seeds across any plausible ladder depth, for adversarial base seeds
// included.
func TestReseedStreamsDistinct(t *testing.T) {
	for _, base := range []uint64{0, 1, 7, ^uint64(0), 0x9e3779b97f4a7c15} {
		seen := map[uint64]bool{}
		for k := 0; k < 64; k++ {
			s := reseed(base, k)
			if seen[s] {
				t.Fatalf("base %d: seed collision at attempt %d", base, k)
			}
			seen[s] = true
		}
		if reseed(base, 0) != base {
			t.Fatalf("attempt 0 must keep the caller's seed")
		}
	}
}

// TestRecoverableClassification pins which failures fall through to the
// next rung and which abort the ladder outright.
func TestRecoverableClassification(t *testing.T) {
	recover := []error{
		core.ErrBreakdown,
		pcg.ErrIndefinite,
		pcg.ErrStagnated,
		pcg.ErrDiverged,
		fmt.Errorf("wrapped: %w", core.ErrBreakdown),
	}
	for _, err := range recover {
		if !recoverable(err) {
			t.Errorf("%v should be recoverable", err)
		}
	}
	abort := []error{
		context.Canceled,
		context.DeadlineExceeded,
		errors.New("powerrchol: rhs has wrong length"),
		nil,
	}
	for _, err := range abort {
		if recoverable(err) {
			t.Errorf("%v should not be recoverable", err)
		}
	}
	if !ctxDone(fmt.Errorf("pcg: cancelled: %w", context.Canceled)) || ctxDone(core.ErrBreakdown) {
		t.Error("ctxDone misclassifies")
	}
}
