// Package pipeline is the staged setup layer shared by both solve
// front-ends of the powerrchol module: the one-shot Solve path and the
// prepared (amortized) Solver path. A solve setup is a plan — one or
// more rungs, each the composition of an optional Transformer (feGRASS
// sparsify, PowerRush resistor-merge contraction, identity), an Orderer
// (Alg. 4, AMD, RCM, ND, natural, with the heavy-node tie-break RNG on
// retry rungs) and a Factorizer (LT-RChol, RChol, complete Cholesky,
// IChol, AMG, Jacobi, SSOR). The recovery ladder (reseed → RChol/AMD →
// direct Cholesky) is plan rewriting: attemptPlan lays the rungs out up
// front and the Runner simply walks them, so both front-ends get the
// identical ladder, per-stage timings and Attempt trail from one piece
// of code.
//
// The registry (registry.go) maps each public Method to its default
// stage composition; Config.Transform overrides the transform stage
// independently of the method, which is what unlocks the compositions
// the paper's Table 2 hints at but the old per-method switch forbade —
// a feGRASS-sparsified LT-RChol, or PowerRush contraction over any
// inner preconditioner.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"powerrchol/internal/core"
	"powerrchol/internal/graph"
	"powerrchol/internal/pcg"
	"powerrchol/internal/sparse"
)

// Config is the pipeline-level view of the public Options: everything
// the setup stages need, with the method's registry spec resolving the
// OrderDefault / TransformDefault placeholders.
type Config struct {
	Method    Method
	Ordering  Ordering
	Transform Transform
	Seed      uint64

	Buckets     int     // LT-RChol counting-sort resolution (0 = default)
	Samples     int     // RChol-k samples per elimination (0/1 = paper)
	HeavyFactor float64 // Alg. 4 heavy-edge threshold (0 = default)
	RecoverFrac float64 // feGRASS off-tree recovery budget (0 = per-method default)
	DropTol     float64 // feGRASS-IChol drop tolerance (0 = default)
	MergeFactor float64 // PowerRush contraction threshold (0 = default)

	// Workers > 1 level-schedules the factor's triangular solves right
	// after factorization, so Apply can run them across goroutines
	// (bitwise identical to the serial solves).
	Workers int

	// CompactIndex selects the index width of factor storage. The
	// randomized factorizers build compact (int32) storage directly;
	// factorizations that build wide (complete Cholesky, IChol) convert
	// afterwards. IndexCompact fails past the 2^31 boundary, IndexAuto
	// falls back to wide. Index width never changes solve results.
	CompactIndex sparse.IndexMode

	Retry RetryPolicy

	// Prepared rejects plans that contract the unknowns: the amortized
	// Solver front-end solves in the original node space, so a
	// contraction-bearing plan must use the one-shot path.
	Prepared bool

	// FactorOpts and WrapPrecond intercept the per-attempt pipeline for
	// deterministic fault injection in tests; always nil in production.
	FactorOpts  func(attempt int, o core.Options) core.Options
	WrapPrecond func(attempt int, m pcg.Preconditioner) pcg.Preconditioner
}

// Setup is one rung's built preconditioner plus everything a front-end
// needs to run (or skip) the iteration phase.
type Setup struct {
	// Method and Ordering identify the rung that built this setup (the
	// requested method, or a ladder escalation).
	Method   Method
	Ordering Ordering
	// Sys is the system PCG iterates on: the input system, or the
	// contracted one when the plan carries a contraction.
	Sys *graph.SDDM
	// M is the preconditioner, already level-scheduled (Workers) and
	// hook-wrapped.
	M pcg.Preconditioner
	// Exact reports that M solves Sys exactly (complete Cholesky with no
	// sparsifying transform in the way): apply it once instead of
	// iterating.
	Exact bool
	// FactorNNZ is |L| (0 for the matrix-free preconditioners).
	FactorNNZ int
	// FactorIndexBytes is the factor's index-array footprint in bytes
	// (ColPtr + RowIdx) — the storage the compact index modes halve; 0
	// for the matrix-free preconditioners.
	FactorIndexBytes int
	// Fold and Expand map right-hand sides into and solutions out of the
	// transformed space; nil means identity.
	Fold   func(b []float64) []float64
	Expand func(x []float64) []float64
	// Reorder (transform + ordering) and Factorize are this rung's
	// per-stage setup timings.
	Reorder   time.Duration
	Factorize time.Duration
}

// Runner walks a plan: Next builds rungs until one factorizes, the
// front-end runs its iteration phase, and Succeed/FailSolve close the
// attempt out — FailSolve reporting whether another rung should run.
// The Attempt trail accumulates across both phases.
type Runner struct {
	sys       *graph.SDDM
	cfg       Config
	spec      *Spec
	transform Transformer
	plan      []rung
	next      int
	trail     []Attempt
	pending   Attempt // attempt record of the setup Next last returned
}

// Plan is a compiled setup plan: the method registry resolution,
// transform stage and recovery-ladder rung layout for one Config,
// independent of any particular system. Compiling once and stamping
// runners out of it amortizes the resolution across many systems — the
// Monte Carlo workload shape, where hundreds of perturbed samples share
// one solver configuration and fingerprint-identical samples additionally
// share whole prepared solvers. A Plan is immutable and safe for
// concurrent NewRunner calls.
type Plan struct {
	cfg       Config
	spec      *Spec
	transform Transformer
	rungs     []rung
}

// Compile resolves cfg against the method registry and lays the rungs
// out. It fails fast on an unknown method or transform, and on a
// contraction-bearing plan when cfg.Prepared is set.
func Compile(cfg Config) (*Plan, error) {
	spec, err := specFor(cfg.Method)
	if err != nil {
		return nil, err
	}
	transform, resolved, err := transformerFor(spec, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Prepared && resolved == TransformMerge {
		return nil, errContracts(cfg)
	}
	p := &Plan{cfg: cfg, spec: spec, transform: transform}
	if spec.Ladder {
		p.rungs = attemptPlan(cfg)
		return p, nil
	}
	ordering := cfg.Ordering
	if ordering == OrderDefault {
		ordering = spec.DefaultOrdering
	}
	p.rungs = []rung{{method: cfg.Method, ordering: ordering, seed: cfg.Seed}}
	return p, nil
}

// Rungs reports how many attempts the plan lays out (1 without
// recovery; the full ladder depth with it).
func (p *Plan) Rungs() int { return len(p.rungs) }

// NewRunner stamps a runner for sys out of the compiled plan. The
// runner starts at the first rung with an empty trail; the plan's rung
// slice is shared read-only across runners.
func (p *Plan) NewRunner(sys *graph.SDDM) *Runner {
	return &Runner{sys: sys, cfg: p.cfg, spec: p.spec, transform: p.transform, plan: p.rungs}
}

// NewRunner compiles cfg and stamps a runner for sys — the one-shot
// path. Callers preparing many systems with one configuration should
// Compile once and stamp runners from the plan instead.
func NewRunner(sys *graph.SDDM, cfg Config) (*Runner, error) {
	p, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return p.NewRunner(sys), nil
}

func errContracts(cfg Config) error {
	if cfg.Method == MethodPowerRush {
		return errors.New("powerrchol: MethodPowerRush contracts the system; use Solve instead of NewSolver")
	}
	return errors.New("powerrchol: TransformMerge contracts the system; use Solve instead of NewSolver")
}

// Ladder reports whether this plan is subject to the recovery ladder
// (and therefore to Attempt-trail recording and SolveError wrapping).
func (r *Runner) Ladder() bool { return r.spec.Ladder }

// Trail returns the Attempt trail recorded so far. The slice is shared;
// callers must not mutate it.
func (r *Runner) Trail() []Attempt { return r.trail }

// Next builds the next rung's setup, walking factorization failures
// down the ladder internally: a recoverable failure with rungs left
// falls through to the next rung, anything else (or a context
// cancellation, returned unwrapped) surfaces to the caller with the
// trail recorded.
func (r *Runner) Next(ctx context.Context) (*Setup, error) {
	for r.next < len(r.plan) {
		i := r.next
		r.next++
		setup, att, err := r.buildRung(ctx, i) //pglint:hotalloc per-attempt setup, bounded by Retry.MaxAttempts; the allocations are the product
		if err != nil {
			if ctxDone(err) {
				return nil, err
			}
			att.Err = err.Error()
			if r.spec.Ladder {
				r.trail = append(r.trail, att) //pglint:hotalloc one append per failed attempt, bounded by Retry.MaxAttempts
			}
			if r.next < len(r.plan) && recoverable(err) {
				continue
			}
			return nil, err
		}
		r.pending = att
		return setup, nil
	}
	return nil, errors.New("powerrchol: attempt plan exhausted")
}

// buildRung runs one rung's transform → order → factorize chain.
func (r *Runner) buildRung(ctx context.Context, i int) (*Setup, Attempt, error) {
	rg := r.plan[i]
	att := Attempt{Method: rg.method, Ordering: rg.ordering, Seed: rg.seed}
	if err := ctx.Err(); err != nil {
		// Diagnose the abort point like the stage-internal polls do — a
		// bare ctx error tells the user nothing about where setup stopped.
		return nil, att, fmt.Errorf("powerrchol: setup cancelled before %v attempt %d: %w", rg.method, i, err)
	}

	t0 := time.Now()
	tr, err := r.transform.Transform(ctx, r.sys)
	if err != nil {
		return nil, att, err
	}
	var perm []int
	if r.spec.Ordered {
		ord := OrdererFor(rg.ordering, r.cfg.HeavyFactor)
		perm = ord.Order(tr.Precond.G, orderTieRng(rg.seed, i))
	}
	reorder := time.Since(t0)

	t0 = time.Now()
	fac := r.factorizerFor(rg, i)
	m, nnz, err := fac.Factorize(ctx, tr.Precond, perm)
	if err != nil {
		return nil, att, err
	}
	if r.cfg.CompactIndex != sparse.IndexWide {
		// The randomized factorizers already built compact storage; this
		// converts the wide-building factorizations (Cholesky, IChol).
		if f, ok := m.(*core.Factor); ok && !f.IsCompact() {
			if cerr := f.CompactIndices(); cerr != nil {
				if r.cfg.CompactIndex == sparse.IndexCompact {
					return nil, att, cerr
				}
				// IndexAuto: the factor outgrew int32; stay wide.
			}
		}
	}
	factorize := time.Since(t0)

	if r.cfg.Workers > 1 {
		if f, ok := m.(*core.Factor); ok {
			f.Parallelize(r.cfg.Workers)
		}
	}
	idxBytes := 0
	if f, ok := m.(*core.Factor); ok {
		idxBytes = f.IndexBytes()
	}
	if r.cfg.WrapPrecond != nil {
		m = r.cfg.WrapPrecond(i, m)
	}
	return &Setup{
		Method:           rg.method,
		Ordering:         rg.ordering,
		Sys:              tr.Iterate,
		M:                m,
		Exact:            fac.Exact() && tr.Precond == tr.Iterate,
		FactorNNZ:        nnz,
		FactorIndexBytes: idxBytes,
		Fold:             tr.Fold,
		Expand:           tr.Expand,
		Reorder:          reorder,
		Factorize:        factorize,
	}, att, nil
}

// factorizerFor materializes the factorizer stage for one rung. Ladder
// rungs carry their own escalation configuration (reseeded variant or
// the direct Cholesky bottom rung); everything else uses the spec's
// fixed factorizer.
func (r *Runner) factorizerFor(rg rung, attempt int) Factorizer {
	if !r.spec.Ladder {
		return r.spec.newFactorizer(r.cfg)
	}
	if rg.direct {
		return cholFactorizer{ladder: true}
	}
	return randomizedFactorizer{
		variant: rg.variant,
		seed:    rg.seed,
		buckets: r.cfg.Buckets,
		samples: r.cfg.Samples,
		index:   r.cfg.CompactIndex,
		attempt: attempt,
		hook:    r.cfg.FactorOpts,
	}
}

// Succeed closes the pending attempt out as converged and returns the
// trail the caller should attach to its Result: nil when recovery never
// engaged (no failures and a single-attempt policy), so a plain solve
// keeps exactly the historical result shape.
func (r *Runner) Succeed(iters int, residual float64) []Attempt {
	if !r.spec.Ladder {
		return nil
	}
	att := r.pending
	att.Iterations = iters
	att.Residual = residual
	if len(r.trail) > 0 || r.cfg.Retry.MaxAttempts > 1 {
		r.trail = append(r.trail, att)
		return r.trail
	}
	return nil
}

// FailSolve records an iteration-phase failure against the pending
// attempt and reports whether the caller should request the next rung:
// true only when rungs remain and the failure is the recoverable kind
// (indefiniteness, stagnation, divergence — not cancellation, not a
// plain iteration-cap exit).
func (r *Runner) FailSolve(err error, iters int, residual float64) bool {
	if !r.spec.Ladder {
		return false
	}
	att := r.pending
	att.Err = err.Error()
	att.Iterations = iters
	att.Residual = residual
	r.trail = append(r.trail, att)
	return r.next < len(r.plan) && recoverable(err)
}
