// The recovery ladder, expressed as plan rewriting: a plan is a list of
// rungs — complete stage configurations — and recovery is nothing but
// "run the next rung". Reseeding and method escalation are computed up
// front by attemptPlan, so the Runner's execution loop contains no
// retry-specific control flow, and the ladder's shape can be tested as
// plain data (see recovery_test.go).
package pipeline

import (
	"context"
	"errors"

	"powerrchol/internal/core"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
)

// RetryPolicy governs the bounded recovery ladder of the randomized
// pipeline. A randomized factorization is only good in expectation: a bad
// draw, a near-singular grid or a stalled PCG run can fail a single
// attempt even though the next one would succeed. When MaxAttempts > 1,
// a failed attempt (factorization breakdown, indefinite preconditioner,
// detected stagnation or divergence) is retried with a reseeded
// factorization and, with Escalate, walked down the ladder
// LT-RChol → RChol → direct Cholesky. Recovery never changes the result
// of an attempt that succeeds: the first attempt is bitwise identical to
// a solve with recovery disabled.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of attempts, the first
	// included. 0 or 1 means a single attempt (no recovery).
	MaxAttempts int
	// Escalate lets the later attempts switch methods down the ladder
	// (LT-RChol → RChol → direct Cholesky) instead of only reseeding.
	Escalate bool
}

// rung is one step of the recovery ladder: a concrete factorization
// configuration for a solve attempt.
type rung struct {
	method   Method
	ordering Ordering
	variant  core.Variant
	direct   bool // complete Cholesky instead of a randomized factor
	seed     uint64
}

// reseed derives the factorization seed for retry attempt k (k = 0 is
// the caller's own seed). The golden-ratio stride gives splitmix64
// independent streams.
func reseed(seed uint64, k int) uint64 {
	return seed + uint64(k)*0x9e3779b97f4a7c15
}

// orderTieSalt decorrelates the ordering tie-break stream from the
// factorization's sampling stream when both derive from the same attempt
// seed ("order" in ASCII).
const orderTieSalt = 0x6f72646572

// orderTieRng derives the Alg. 4 tie-break generator for ladder attempt
// k. The first attempt is nil: it keeps the paper's deterministic
// counting-sort ties, so a single-attempt solve is bit-identical to the
// historical behaviour. Retry rungs shuffle ties on a seeded stream of
// their own, so a retry does not replay the exact elimination order that
// just failed — while staying fully replayable from Options.Seed.
func orderTieRng(seed uint64, attempt int) *rng.Rand {
	if attempt == 0 {
		return nil
	}
	return rng.New(seed ^ orderTieSalt)
}

// baseRung resolves the requested randomized method to its paper
// configuration (the exact logic Solve has always used).
func baseRung(cfg Config) rung {
	rg := rung{method: cfg.Method, ordering: cfg.Ordering, variant: core.VariantLT, seed: cfg.Seed}
	switch cfg.Method {
	case MethodPowerRChol:
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAlg4
		}
	case MethodRChol:
		rg.variant = core.VariantRChol
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAMD
		}
	case MethodLTRChol:
		if rg.ordering == OrderDefault {
			rg.ordering = OrderAMD
		}
	}
	return rg
}

// attemptPlan lays out the recovery ladder for the randomized pipeline,
// truncated to Retry.MaxAttempts. Without Escalate every retry is a
// reseed of the requested configuration. With Escalate the ladder is
// reseed → RChol (skipped if that is already the requested method) →
// direct Cholesky, the strongest and only deterministic rung.
func attemptPlan(cfg Config) []rung {
	max := cfg.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	base := baseRung(cfg)
	plan := []rung{base}
	if !cfg.Retry.Escalate {
		for k := 1; k < max; k++ {
			r := base
			r.seed = reseed(cfg.Seed, k)
			plan = append(plan, r)
		}
		return plan
	}
	r := base
	r.seed = reseed(cfg.Seed, 1)
	plan = append(plan, r)
	if base.variant != core.VariantRChol {
		plan = append(plan, rung{
			method: MethodRChol, ordering: OrderAMD,
			variant: core.VariantRChol, seed: reseed(cfg.Seed, 2),
		})
	}
	plan = append(plan, rung{method: MethodDirect, ordering: OrderAMD, direct: true})
	if len(plan) > max {
		plan = plan[:max]
	}
	return plan
}

// recoverable reports whether a failed attempt should fall through to
// the next ladder rung: factorization breakdown, an indefinite operator
// or preconditioner (including NaN propagation), and detected
// stagnation or divergence all qualify. Cancellation and plain
// running-out-of-iterations do not.
func recoverable(err error) bool {
	return errors.Is(err, core.ErrBreakdown) ||
		errors.Is(err, pcg.ErrIndefinite) ||
		errors.Is(err, pcg.ErrStagnated) ||
		errors.Is(err, pcg.ErrDiverged)
}

// ctxDone reports whether err is (or wraps) a context cancellation:
// never retried, never wrapped in a ladder error.
func ctxDone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
