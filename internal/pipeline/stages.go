// Stage interfaces and their concrete adapters. A solve setup is the
// composition Transform → Order → Factorize: the Transformer rewrites
// the system (spectral sparsification, resistor-merge contraction, or
// identity), the Orderer permutes the system the factorizer will see,
// and the Factorizer builds the preconditioner. Every adapter is a thin
// seam over the corresponding internal package; the composition logic —
// which stage runs on which system, what PCG iterates on, how solutions
// map back — lives in the Runner, once, instead of per method.
package pipeline

import (
	"context"

	"powerrchol/internal/amg"
	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/graph"
	"powerrchol/internal/ichol"
	"powerrchol/internal/merge"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// Orderer computes the fill-reducing permutation for the factorization
// stage. tie, when non-nil, seeds Alg. 4's heavy-node tie-break shuffle
// (retry rungs explore a different elimination order); every other
// ordering is fully deterministic and ignores it. A nil permutation
// means natural order.
type Orderer interface {
	Name() string
	Order(g *graph.Graph, tie *rng.Rand) []int
}

// OrdererFor returns the Orderer implementing o. heavyFactor tunes
// Alg. 4's heavy-edge threshold (<= 0 selects the paper's default); the
// other orderings ignore it. OrderDefault must be resolved by the
// caller (the registry holds each method's default) before calling.
func OrdererFor(o Ordering, heavyFactor float64) Orderer {
	switch o {
	case OrderAlg4:
		return alg4Orderer{heavy: heavyFactor}
	case OrderAMD:
		return funcOrderer{name: "amd", f: order.AMD}
	case OrderRCM:
		return funcOrderer{name: "rcm", f: order.RCM}
	case OrderND:
		return funcOrderer{name: "nd", f: order.ND}
	}
	return funcOrderer{name: "natural", f: nil}
}

type alg4Orderer struct{ heavy float64 }

func (alg4Orderer) Name() string { return "alg4" }
func (a alg4Orderer) Order(g *graph.Graph, tie *rng.Rand) []int {
	return order.Alg4(g, a.heavy, tie)
}

// funcOrderer adapts the deterministic ordering functions (AMD, RCM,
// ND); a nil f is the natural order.
type funcOrderer struct {
	name string
	f    func(*graph.Graph) []int
}

func (o funcOrderer) Name() string { return o.name }
func (o funcOrderer) Order(g *graph.Graph, _ *rng.Rand) []int {
	if o.f == nil {
		return nil
	}
	return o.f(g)
}

// Transformed is a Transformer's output: the system the ordering and
// factorization stages see (Precond), the system PCG iterates on
// (Iterate), and, when the transform changes the unknowns, the maps
// between original and transformed right-hand sides and solutions
// (nil = identity).
type Transformed struct {
	Precond *graph.SDDM
	Iterate *graph.SDDM
	Fold    func(b []float64) []float64
	Expand  func(x []float64) []float64
}

// Transformer is the optional sparsify/contract stage. Its cost is
// charged to the reorder phase of the timings, matching the paper's
// T_r/T_f/T_i split (sparsification has always been accounted there).
type Transformer interface {
	Name() string
	Transform(ctx context.Context, sys *graph.SDDM) (*Transformed, error)
}

type identityTransformer struct{}

func (identityTransformer) Name() string { return "none" }
func (identityTransformer) Transform(_ context.Context, sys *graph.SDDM) (*Transformed, error) {
	return &Transformed{Precond: sys, Iterate: sys}, nil
}

// fegrassTransformer builds the feGRASS spectral sparsifier: the
// factorizer sees the sparsified system, PCG iterates on the original.
type fegrassTransformer struct{ frac float64 }

func (fegrassTransformer) Name() string { return "fegrass" }
func (t fegrassTransformer) Transform(ctx context.Context, sys *graph.SDDM) (*Transformed, error) {
	sp, err := fegrass.SparsifyContext(ctx, sys, t.frac)
	if err != nil {
		return nil, err
	}
	return &Transformed{Precond: sp, Iterate: sys}, nil
}

// mergeTransformer contracts small resistors (PowerRush): every later
// stage, including PCG, runs on the contracted system; Fold/Expand map
// right-hand sides and solutions across the contraction.
type mergeTransformer struct{ factor float64 }

func (mergeTransformer) Name() string { return "merge" }
func (t mergeTransformer) Transform(_ context.Context, sys *graph.SDDM) (*Transformed, error) {
	c := merge.Contract(sys, t.factor)
	return &Transformed{Precond: c.System, Iterate: c.System, Fold: c.FoldRHS, Expand: c.Expand}, nil
}

// Factorizer builds the preconditioner from the (transformed) system
// and the permutation. nnz reports |L| (0 for the matrix-free
// preconditioners). Exact reports whether the result solves its input
// system exactly — the driver then applies it once instead of running
// PCG, provided the transform stage did not decouple the factorized
// system from the iterated one.
type Factorizer interface {
	Name() string
	Exact() bool
	Factorize(ctx context.Context, sys *graph.SDDM, perm []int) (m pcg.Preconditioner, nnz int, err error)
}

// randomizedFactorizer runs the randomized Cholesky variants (LT-RChol,
// RChol). hook, when non-nil, rewrites the factorization options of the
// attempt — the deterministic fault-injection seam used by the recovery
// tests; attempt is this rung's index in the plan.
type randomizedFactorizer struct {
	variant core.Variant
	seed    uint64
	buckets int
	samples int
	index   sparse.IndexMode
	attempt int
	hook    func(attempt int, o core.Options) core.Options
}

func (f randomizedFactorizer) Name() string {
	return f.variant.String()
}
func (randomizedFactorizer) Exact() bool { return false }
func (f randomizedFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, perm []int) (pcg.Preconditioner, int, error) {
	copt := core.Options{
		Variant:      f.variant,
		Buckets:      f.buckets,
		Seed:         f.seed,
		Samples:      f.samples,
		CompactIndex: f.index,
		Ctx:          ctx,
	}
	if f.hook != nil {
		copt = f.hook(f.attempt, copt)
	}
	fac, err := core.Factorize(sys, perm, copt)
	if err != nil {
		return nil, 0, err
	}
	return fac, fac.NNZ(), nil
}

// cholFactorizer is the complete sparse Cholesky: an exact solve of the
// system it factorizes. ladder marks the direct rung of a recovery
// ladder, which keeps the PCG phase (matching the historical escalation
// behaviour) instead of the one-shot direct apply.
type cholFactorizer struct{ ladder bool }

func (cholFactorizer) Name() string  { return "cholesky" }
func (f cholFactorizer) Exact() bool { return !f.ladder }
func (cholFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, perm []int) (pcg.Preconditioner, int, error) {
	fac, err := chol.FactorizeContext(ctx, sys.ToCSC(), perm)
	if err != nil {
		return nil, 0, err
	}
	return fac, fac.NNZ(), nil
}

// icholFactorizer is the threshold incomplete Cholesky behind the
// feGRASS-IChol baseline.
type icholFactorizer struct{ dropTol float64 }

func (icholFactorizer) Name() string { return "ichol" }
func (icholFactorizer) Exact() bool  { return false }
func (f icholFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, perm []int) (pcg.Preconditioner, int, error) {
	fac, err := ichol.FactorizeContext(ctx, sys.ToCSC(), perm, ichol.Options{DropTol: f.dropTol})
	if err != nil {
		return nil, 0, err
	}
	return fac, fac.NNZ(), nil
}

// amgFactorizer builds the aggregation-AMG hierarchy (PowerRush's
// core). It ignores the permutation: AMG coarsening is ordering-free.
type amgFactorizer struct{}

func (amgFactorizer) Name() string { return "amg" }
func (amgFactorizer) Exact() bool  { return false }
func (amgFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, _ []int) (pcg.Preconditioner, int, error) {
	p, err := amg.NewContext(ctx, sys.ToCSC(), amg.Options{})
	if err != nil {
		return nil, 0, err
	}
	return p, 0, nil
}

// jacobiFactorizer is the diagonal preconditioner.
type jacobiFactorizer struct{}

func (jacobiFactorizer) Name() string { return "jacobi" }
func (jacobiFactorizer) Exact() bool  { return false }
func (jacobiFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, _ []int) (pcg.Preconditioner, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	m, err := pcg.NewJacobi(sys.ToCSC())
	if err != nil {
		return nil, 0, err
	}
	return m, 0, nil
}

// ssorFactorizer is the symmetric-SOR preconditioner.
type ssorFactorizer struct{}

func (ssorFactorizer) Name() string { return "ssor" }
func (ssorFactorizer) Exact() bool  { return false }
func (ssorFactorizer) Factorize(ctx context.Context, sys *graph.SDDM, _ []int) (pcg.Preconditioner, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	m, err := pcg.NewSSOR(sys.ToCSC(), 0)
	if err != nil {
		return nil, 0, err
	}
	return m, 0, nil
}
