// Package testmat provides small deterministic matrix and graph
// generators plus dense reference algorithms shared by the test suites of
// the solver packages. Nothing here is used on hot paths.
package testmat

import (
	"fmt"
	"math"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

// RandomConnectedGraph returns a connected graph on n nodes: a random
// spanning tree plus `extra` additional random edges, weights in
// (0.1, 10.1).
func RandomConnectedGraph(r *rng.Rand, n, extra int) *graph.Graph {
	g := graph.New(n, n+extra)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, r.Intn(i), 0.1+r.Float64()*10)
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.1+r.Float64()*10)
		}
	}
	return g.Coalesce()
}

// RandomSDDM returns a nonsingular random SDDM on a connected graph, with
// sparse positive slack.
func RandomSDDM(r *rng.Rand, n, extra int) *graph.SDDM {
	g := RandomConnectedGraph(r, n, extra)
	d := make([]float64, n)
	for i := range d {
		if r.Float64() < 0.3 {
			d[i] = r.Float64() * 5
		}
	}
	d[r.Intn(n)] += 1
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		panic(err)
	}
	return s
}

// Grid2D returns the nx×ny 5-point grid graph with unit weights.
func Grid2D(nx, ny int) *graph.Graph {
	g := graph.New(nx*ny, 2*nx*ny)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				g.MustAddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < ny {
				g.MustAddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

// GridSDDM returns the 2-D grid Laplacian grounded at the four corners
// (slack 1), a standard well-conditioned SPD test matrix.
func GridSDDM(nx, ny int) *graph.SDDM {
	g := Grid2D(nx, ny)
	d := make([]float64, nx*ny)
	d[0] = 1
	d[nx-1] = 1
	d[nx*(ny-1)] = 1
	d[nx*ny-1] = 1
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		panic(err)
	}
	return s
}

// PathSDDM returns the path graph 0-1-…-(n-1) with the given uniform edge
// weight and slack 1 at node 0.
func PathSDDM(n int, w float64) *graph.SDDM {
	g := graph.New(n, n-1)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, w)
	}
	d := make([]float64, n)
	d[0] = 1
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		panic(err)
	}
	return s
}

// DenseCholesky factorizes an SPD dense matrix in place, returning the
// lower factor, or an error on a non-positive pivot.
func DenseCholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("testmat: non-positive pivot %g at %d", d, j)
		}
		l[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / l[j][j]
		}
	}
	return l, nil
}

// DenseSolveSPD solves A·x = b for dense SPD A via Cholesky.
func DenseSolveSPD(a [][]float64, b []float64) ([]float64, error) {
	l, err := DenseCholesky(a)
	if err != nil {
		return nil, err
	}
	n := len(b)
	x := append([]float64(nil), b...)
	for i := 0; i < n; i++ { // forward
		for k := 0; k < i; k++ {
			x[i] -= l[i][k] * x[k]
		}
		x[i] /= l[i][i]
	}
	for i := n - 1; i >= 0; i-- { // backward with Lᵀ
		for k := i + 1; k < n; k++ {
			x[i] -= l[k][i] * x[k]
		}
		x[i] /= l[i][i]
	}
	return x, nil
}

// MaxAbsDiff returns the maximum absolute element-wise difference of two
// equally-sized dense matrices.
func MaxAbsDiff(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := range a[i] {
			d := math.Abs(a[i][j] - b[i][j])
			if d > m {
				m = d
			}
		}
	}
	return m
}
