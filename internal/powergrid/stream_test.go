package powergrid

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Streaming-ingest suite for netlists: ParseSystemFile's multi-pass
// path must produce a System byte-identical to Parse + BuildSystem —
// same node interning, same float accumulation order, same assembled
// matrix bits.

func assertSameSystem(t *testing.T, what string, want, got *System) {
	t.Helper()
	if got.Sys.N() != want.Sys.N() {
		t.Fatalf("%s: %d unknowns, want %d", what, got.Sys.N(), want.Sys.N())
	}
	aw, ag := want.Sys.ToCSC(), got.Sys.ToCSC()
	for j := range aw.ColPtr {
		if ag.ColPtr[j] != aw.ColPtr[j] {
			t.Fatalf("%s: ColPtr[%d] = %d, want %d", what, j, ag.ColPtr[j], aw.ColPtr[j])
		}
	}
	for p := range aw.RowIdx {
		if ag.RowIdx[p] != aw.RowIdx[p] {
			t.Fatalf("%s: RowIdx[%d] = %d, want %d", what, p, ag.RowIdx[p], aw.RowIdx[p])
		}
		if math.Float64bits(ag.Val[p]) != math.Float64bits(aw.Val[p]) {
			t.Fatalf("%s: matrix value bits differ at %d: %x vs %x", what, p,
				math.Float64bits(ag.Val[p]), math.Float64bits(aw.Val[p]))
		}
	}
	for i := range want.B {
		if math.Float64bits(got.B[i]) != math.Float64bits(want.B[i]) {
			t.Fatalf("%s: rhs bits differ at %d: %g vs %g", what, i, got.B[i], want.B[i])
		}
	}
	if len(got.Unknown) != len(want.Unknown) {
		t.Fatalf("%s: %d unknown mappings, want %d", what, len(got.Unknown), len(want.Unknown))
	}
	for i := range want.Unknown {
		if got.Unknown[i] != want.Unknown[i] {
			t.Fatalf("%s: Unknown[%d] = %d, want %d", what, i, got.Unknown[i], want.Unknown[i])
		}
	}
	if len(got.Fixed) != len(want.Fixed) {
		t.Fatalf("%s: %d pinned nodes, want %d", what, len(got.Fixed), len(want.Fixed))
	}
	for node, v := range want.Fixed {
		if gv, ok := got.Fixed[node]; !ok || math.Float64bits(gv) != math.Float64bits(v) {
			t.Fatalf("%s: pinned node %d = %g (present %v), want %g", what, node, gv, ok, v)
		}
	}
}

// TestParseSystemFileMatchesInMemory runs both ingest paths over a
// generated grid netlist — thousands of elements in generator order —
// and over a small hand-written netlist that interleaves resistors,
// loads and sources (the pattern that would expose any accumulation-
// order drift between the streaming passes and BuildSystem).
func TestParseSystemFileMatchesInMemory(t *testing.T) {
	g, err := Generate(smallSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.ToNetlist().Write(&buf); err != nil {
		t.Fatal(err)
	}
	sources := map[string]string{
		"generated grid": buf.String(),
		// Node b carries resistor and current contributions on both
		// sides of a source card; file order differs from element-kind
		// order, so a single-pass fill would change the float sums.
		"interleaved": `* interleaved elements
R1 a b 2.0
I1 b 0 0.001
R2 b c 3.0
V1 c 0 1.8
I2 a 0 0.0005
R3 a c 5.0
C1 a 0 1e-12
.end
`,
	}
	for what, src := range sources {
		nl, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Fatalf("%s: Parse: %v", what, err)
		}
		want, err := nl.BuildSystem()
		if err != nil {
			t.Fatalf("%s: BuildSystem: %v", what, err)
		}

		path := filepath.Join(t.TempDir(), "grid.sp")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		got, gotNL, err := ParseSystemFile(path)
		if err != nil {
			t.Fatalf("%s: ParseSystemFile: %v", what, err)
		}
		assertSameSystem(t, what, want, got)

		// The streaming netlist interns the identical node table.
		if gotNL.NumNodes() != nl.NumNodes() {
			t.Fatalf("%s: %d nodes, want %d", what, gotNL.NumNodes(), nl.NumNodes())
		}
		for i := 0; i < nl.NumNodes(); i++ {
			if gotNL.NodeName(i) != nl.NodeName(i) {
				t.Fatalf("%s: node %d named %q, want %q", what, i, gotNL.NodeName(i), nl.NodeName(i))
			}
		}
	}
}

// TestParseSystemFileErrors: the streaming path must reject what the
// in-memory path rejects.
func TestParseSystemFileErrors(t *testing.T) {
	for name, src := range map[string]string{
		"malformed":       "R1 a b not_a_num\n",
		"conflicting pin": "V1 a 0 1.0\nV2 a 0 2.0\nR1 a b 1\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.sp")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ParseSystemFile(path); err == nil {
			t.Errorf("%s: streaming parse accepted bad netlist", name)
		}
	}
	if _, _, err := ParseSystemFile(filepath.Join(t.TempDir(), "absent.sp")); err == nil {
		t.Errorf("missing file accepted")
	}
}
