package powergrid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"powerrchol/internal/pcg"
)

func smallSpec(seed uint64) Spec {
	return Spec{Name: "test", NX: 16, NY: 16, Layers: 3, Seed: seed}
}

func TestGenerateProducesConnectedSDDM(t *testing.T) {
	f := func(seed uint64, nxRaw, nyRaw, lRaw uint8) bool {
		spec := Spec{
			NX:     int(nxRaw%20) + 4,
			NY:     int(nyRaw%20) + 4,
			Layers: int(lRaw%4) + 1,
			Seed:   seed,
		}
		g, err := Generate(spec)
		if err != nil {
			t.Log(err)
			return false
		}
		if !g.Sys.G.Connected() {
			t.Logf("disconnected grid for %+v", spec)
			return false
		}
		// some slack must exist (the pads)
		var slack float64
		for _, d := range g.Sys.D {
			slack += d
		}
		return slack > 0 && len(g.PadNodes) > 0 && len(g.B) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolvedGridIsPhysical(t *testing.T) {
	g, err := Generate(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcg.Solve(g.Sys.ToCSC(), g.B, nil, pcg.Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v", err)
	}
	v := res.X
	// all voltages within (0, Vdd]
	for i, vi := range v {
		if vi <= 0 || vi > g.Spec.Vdd+1e-9 {
			t.Fatalf("voltage %g at node %d outside (0, Vdd]", vi, i)
		}
	}
	rep := g.IRDrop(v)
	if rep.WorstDrop < 0 || rep.WorstDrop > g.Spec.Vdd {
		t.Fatalf("worst drop %g unphysical", rep.WorstDrop)
	}
	if rep.AvgDrop > rep.WorstDrop {
		t.Fatalf("avg drop %g exceeds worst %g", rep.AvgDrop, rep.WorstDrop)
	}
	// Kirchhoff: current delivered by pads equals total load current.
	if math.Abs(rep.PadCurrent-rep.TotalLoad) > 1e-6*(1+rep.TotalLoad) {
		t.Fatalf("current balance violated: pads %g vs loads %g",
			rep.PadCurrent, rep.TotalLoad)
	}
	if g.Residual(v) > 1e-9 {
		t.Fatalf("Residual reports %g for a converged solve", g.Residual(v))
	}
}

func TestZeroLoadMeansNoDrop(t *testing.T) {
	spec := smallSpec(2)
	spec.LoadFrac = -1 // negative => no node passes the load coin flip
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcg.Solve(g.Sys.ToCSC(), g.B, nil, pcg.Options{Tol: 1e-13, MaxIter: 5000})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v", err)
	}
	for i, v := range res.X {
		if math.Abs(v-g.Spec.Vdd) > 1e-6 {
			t.Fatalf("no-load grid should sit at Vdd; node %d at %g", i, v)
		}
	}
}

func TestNetlistRoundTrip(t *testing.T) {
	g, err := Generate(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	nl := g.ToNetlist()
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl2.Resistors) != len(nl.Resistors) ||
		len(nl2.Currents) != len(nl.Currents) ||
		len(nl2.VSources) != len(nl.VSources) {
		t.Fatalf("element counts changed in round trip")
	}
	// Solving the parsed netlist must reproduce the direct solve.
	sys, err := nl2.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pcg.Solve(g.Sys.ToCSC(), g.B, nil, pcg.Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !direct.Converged {
		t.Fatal("direct solve failed")
	}
	parsed, err := pcg.Solve(sys.Sys.ToCSC(), sys.B, nil, pcg.Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !parsed.Converged {
		t.Fatal("netlist solve failed")
	}
	// match by node name
	byName := map[string]float64{}
	for i, u := range sys.Unknown {
		byName[nl2.NodeName(u)] = parsed.X[i]
	}
	for i := 0; i < g.N(); i++ {
		want := direct.X[i]
		got, ok := byName[g.NodeName(i)]
		if !ok {
			t.Fatalf("node %s missing from netlist solution", g.NodeName(i))
		}
		// The netlist routes pads through an explicit _vdd node instead of
		// a Norton fold, which is the same circuit; voltages must agree.
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("node %s: netlist %g vs direct %g", g.NodeName(i), got, want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"R1 a b\n",           // missing value
		"R1 a b -5\n",        // negative resistance
		"X1 a b 1.0\n",       // unknown element
		"R1 a b not_a_num\n", // bad number
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseHandlesCommentsAndCards(t *testing.T) {
	src := `* comment
R1 a b 2.0
I1 a 0 0.001
V1 b 0 1.8
.op
.end
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Resistors) != 1 || len(nl.Currents) != 1 || len(nl.VSources) != 1 {
		t.Fatalf("parsed %d/%d/%d elements",
			len(nl.Resistors), len(nl.Currents), len(nl.VSources))
	}
	sys, err := nl.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	// single unknown "a": (v_a - 1.8)/2 + 0.001 = 0 => v_a = 1.798
	if sys.Sys.N() != 1 {
		t.Fatalf("%d unknowns, want 1", sys.Sys.N())
	}
	res, err := pcg.Solve(sys.Sys.ToCSC(), sys.B, nil, pcg.Options{Tol: 1e-14, MaxIter: 10})
	if err != nil || !res.Converged {
		t.Fatal("1-node solve failed")
	}
	if math.Abs(res.X[0]-1.798) > 1e-9 {
		t.Fatalf("v_a = %.12g, want 1.798", res.X[0])
	}
}

func TestBuildSystemConflictingSources(t *testing.T) {
	src := "V1 a 0 1.0\nV2 a 0 2.0\nR1 a b 1\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.BuildSystem(); err == nil {
		t.Fatal("conflicting sources accepted")
	}
}

func TestGridStatisticsLookLikePG(t *testing.T) {
	// power grids are low-degree meshes with a few very heavy (via)
	// edges; the Alg. 4 heavy-node rule depends on this shape.
	g, err := Generate(Spec{NX: 32, NY: 32, Layers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	degs := g.Sys.G.Degrees()
	maxDeg := 0
	for _, d := range degs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 8 {
		t.Errorf("max degree %d; expected a low-degree mesh", maxDeg)
	}
	avg := g.Sys.G.AvgWeight()
	heavy := 0
	for _, e := range g.Sys.G.Edges {
		if e.W > 10*avg {
			heavy++
		}
	}
	if heavy == 0 {
		t.Error("no heavy (via) edges found; Alg. 4's rule would never fire")
	}
	if heavy == g.Sys.G.M() {
		t.Error("all edges heavy; weight profile wrong")
	}
}

func TestGenerateRejectsTinyLattice(t *testing.T) {
	if _, err := Generate(Spec{NX: 1, NY: 5}); err == nil {
		t.Fatal("1-wide lattice accepted")
	}
}
