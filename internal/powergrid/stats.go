package powergrid

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// GridStats summarizes a generated grid's electrical structure — the
// numbers a designer would sanity-check before a signoff run, and the
// properties (degree profile, weight spread) that drive solver behaviour.
type GridStats struct {
	Nodes, Resistors int
	NodesPerLayer    []int
	WireRes          []float64 // per-layer representative wire resistance
	Pads, Loads      int
	TotalLoad        float64 // A
	MinWeight        float64
	MedianWeight     float64
	MaxWeight        float64
	MaxDegree        int
}

// Stats computes the summary.
func (g *Grid) Stats() GridStats {
	st := GridStats{
		Nodes:     g.N(),
		Resistors: g.Sys.G.M(),
		Pads:      len(g.PadNodes),
		WireRes:   append([]float64(nil), g.Spec.WireRes...),
	}
	st.NodesPerLayer = make([]int, g.Spec.Layers)
	for _, l := range g.Layer {
		st.NodesPerLayer[l]++
	}
	for _, a := range g.LoadAmps {
		if a != 0 {
			st.Loads++
			st.TotalLoad += a
		}
	}
	weights := make([]float64, 0, g.Sys.G.M())
	for _, e := range g.Sys.G.Edges {
		weights = append(weights, e.W)
	}
	if len(weights) > 0 {
		sort.Float64s(weights)
		st.MinWeight = weights[0]
		st.MedianWeight = weights[len(weights)/2]
		st.MaxWeight = weights[len(weights)-1]
	}
	for _, d := range g.Sys.G.Degrees() {
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	return st
}

// WriteReport renders a human-readable summary.
func (st GridStats) WriteReport(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes %d, resistors %d, pads %d, loads %d (%.3f A total)\n",
		st.Nodes, st.Resistors, st.Pads, st.Loads, st.TotalLoad)
	fmt.Fprintf(&sb, "conductance min/median/max: %.3g / %.3g / %.3g S (spread %.0fx)\n",
		st.MinWeight, st.MedianWeight, st.MaxWeight, st.MaxWeight/st.MedianWeight)
	fmt.Fprintf(&sb, "max node degree %d\n", st.MaxDegree)
	for l, n := range st.NodesPerLayer {
		fmt.Fprintf(&sb, "  layer %d: %6d nodes, wire %.3g ohm/seg\n", l, n, st.WireRes[l])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// DropHistogram bins the IR drop of the bottom-layer nodes of solution v
// into `bins` equal-width buckets between 0 and the worst drop, returning
// bucket upper bounds and counts — the standard IR-drop signoff histogram.
func (g *Grid) DropHistogram(v []float64, bins int) (bounds []float64, counts []int) {
	if bins < 1 {
		bins = 10
	}
	var drops []float64
	worst := 0.0
	for i := range v {
		if g.Layer[i] != 0 {
			continue
		}
		d := g.Spec.Vdd - v[i]
		if d < 0 {
			d = 0
		}
		drops = append(drops, d)
		if d > worst {
			worst = d
		}
	}
	bounds = make([]float64, bins)
	counts = make([]int, bins)
	if worst == 0 {
		if len(drops) > 0 {
			counts[0] = len(drops)
		}
		return bounds, counts
	}
	for i := range bounds {
		bounds[i] = worst * float64(i+1) / float64(bins)
	}
	for _, d := range drops {
		k := int(d / worst * float64(bins))
		if k >= bins {
			k = bins - 1
		}
		counts[k]++
	}
	return bounds, counts
}
