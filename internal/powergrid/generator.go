// Package powergrid models on-chip power delivery networks: a synthetic
// multi-layer grid generator shaped like the IBM/THU power-grid
// benchmarks, an IBM-SPICE-subset netlist reader/writer, MNA system
// assembly, and IR-drop reporting. The generator stands in for the
// benchmark downloads the paper uses (see DESIGN.md §3): the solvers only
// ever see the SDDM and right-hand side.
package powergrid

import (
	"fmt"
	"math"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

// Spec describes a synthetic power grid in the style of the IBM PG
// benchmarks: alternating horizontal/vertical metal layers with
// geometrically increasing stripe pitch, via resistors between layers,
// C4 pads on the top layer, and current-source loads on the bottom layer.
type Spec struct {
	Name   string
	NX, NY int // bottom-layer lattice dimensions
	Layers int // number of metal layers (>= 1)

	// WireRes is the per-segment wire resistance per layer (Ω). If nil, a
	// default profile is used where upper (thicker) layers have lower
	// resistance: 1.0 / 2^l.
	WireRes []float64
	// ViaRes is the via resistance between adjacent layers (Ω). These are
	// the "small resistors" PowerRush merges; default 0.01.
	ViaRes float64
	// PadRes is the package resistance at each C4 pad (Ω); default 0.05.
	PadRes float64
	// PadPitch places a pad every PadPitch-th node along top-layer
	// stripes; default 8.
	PadPitch int
	// Vdd is the supply voltage; default 1.8.
	Vdd float64
	// LoadFrac is the fraction of bottom-layer nodes drawing current;
	// default 0.3.
	LoadFrac float64
	// LoadMax is the maximum per-node load current (A); default 1e-3.
	LoadMax float64
	// MissingFrac randomly removes this fraction of wire segments
	// (connectivity is repaired afterwards); default 0.05.
	MissingFrac float64
	// ShortFrac is the fraction of wire segments that are "shorts":
	// very-low-resistance segments from irregular layout, the small
	// resistors that PowerRush merges and the Alg. 4 heavy rule targets.
	// Default 0.02; set negative for none.
	ShortFrac float64
	// ShortFactor divides a short segment's resistance; default 500.
	ShortFactor float64
	Seed        uint64
}

func (s *Spec) setDefaults() error {
	if s.NX < 2 || s.NY < 2 {
		return fmt.Errorf("powergrid: lattice %dx%d too small", s.NX, s.NY)
	}
	if s.Layers < 1 {
		s.Layers = 1
	}
	if s.WireRes == nil {
		s.WireRes = make([]float64, s.Layers)
		for l := range s.WireRes {
			s.WireRes[l] = 1.0 / float64(int(1)<<l)
		}
	}
	if len(s.WireRes) != s.Layers {
		return fmt.Errorf("powergrid: WireRes has %d entries for %d layers", len(s.WireRes), s.Layers)
	}
	if s.ViaRes == 0 {
		s.ViaRes = 0.01
	}
	if s.PadRes == 0 {
		s.PadRes = 0.05
	}
	if s.PadPitch == 0 {
		s.PadPitch = 8
	}
	if s.Vdd == 0 {
		s.Vdd = 1.8
	}
	if s.LoadFrac == 0 {
		s.LoadFrac = 0.3
	}
	if s.LoadMax == 0 {
		s.LoadMax = 1e-3
	}
	if s.ShortFrac == 0 {
		s.ShortFrac = 0.02
	}
	if s.ShortFactor == 0 {
		s.ShortFactor = 500
	}
	return nil
}

// Grid is a generated power grid with its assembled MNA system
// G·v = b, where v are node voltages.
type Grid struct {
	Spec Spec
	Sys  *graph.SDDM
	B    []float64

	// node metadata, indexed by system node id
	Layer []int8
	X, Y  []int32

	PadNodes  []int
	LoadAmps  []float64 // per-node load current (0 for non-load nodes)
	nameCache []string
}

// N returns the number of unknown nodes.
func (g *Grid) N() int { return g.Sys.N() }

// NodeName renders the IBM-style node name n{layer}_{x}_{y}.
func (g *Grid) NodeName(i int) string {
	if g.nameCache == nil {
		g.nameCache = make([]string, g.N())
	}
	if g.nameCache[i] == "" {
		g.nameCache[i] = fmt.Sprintf("n%d_%d_%d", g.Layer[i], g.X[i], g.Y[i])
	}
	return g.nameCache[i]
}

// stripePitch returns the stripe spacing of layer l: 1, 2, 4, 8, … —
// upper layers route fewer, thicker stripes, as in the IBM benchmarks.
func stripePitch(l int) int {
	return 1 << l
}

// Generate builds the grid described by spec.
func Generate(spec Spec) (*Grid, error) {
	if err := spec.setDefaults(); err != nil {
		return nil, err
	}
	r := rng.New(spec.Seed ^ 0x9e3779b97f4a7c15)

	// Enumerate nodes. Layer l is horizontal when l is even (stripes are
	// rows y ≡ 0 mod pitch), vertical when odd (columns x ≡ 0 mod pitch).
	type key struct{ l, x, y int32 }
	id := make(map[key]int)
	var layerOf []int8
	var xs, ys []int32
	addNode := func(l, x, y int) int {
		k := key{int32(l), int32(x), int32(y)}
		if n, ok := id[k]; ok {
			return n
		}
		n := len(layerOf)
		id[k] = n
		layerOf = append(layerOf, int8(l))
		xs = append(xs, int32(x))
		ys = append(ys, int32(y))
		return n
	}
	horizontal := func(l int) bool { return l%2 == 0 }
	// A single-layer grid routes both directions (a plain mesh); with two
	// or more layers, each layer routes one direction, as in real chips.
	bothDirs := spec.Layers == 1
	for l := 0; l < spec.Layers; l++ {
		p := stripePitch(l)
		if horizontal(l) || bothDirs {
			for y := 0; y < spec.NY; y += p {
				for x := 0; x < spec.NX; x++ {
					addNode(l, x, y)
				}
			}
		} else {
			for x := 0; x < spec.NX; x += p {
				for y := 0; y < spec.NY; y++ {
					addNode(l, x, y)
				}
			}
		}
	}
	n := len(layerOf)
	g := graph.New(n, 4*n)

	// Wire segments along stripes, with random dropout. Dropped edges are
	// remembered so connectivity can be repaired.
	type edge struct {
		u, v int
		w    float64
	}
	var dropped []edge
	addWire := func(u, v int, res float64) {
		if spec.ShortFrac > 0 && r.Float64() < spec.ShortFrac {
			res /= spec.ShortFactor
		}
		if spec.MissingFrac > 0 && r.Float64() < spec.MissingFrac {
			dropped = append(dropped, edge{u, v, 1 / res})
			return
		}
		g.MustAddEdge(u, v, 1/res)
	}
	for l := 0; l < spec.Layers; l++ {
		p := stripePitch(l)
		res := spec.WireRes[l]
		if horizontal(l) || bothDirs {
			for y := 0; y < spec.NY; y += p {
				for x := 0; x+1 < spec.NX; x++ {
					addWire(id[key{int32(l), int32(x), int32(y)}],
						id[key{int32(l), int32(x + 1), int32(y)}], res)
				}
			}
		}
		if !horizontal(l) || bothDirs {
			for x := 0; x < spec.NX; x += p {
				for y := 0; y+1 < spec.NY; y++ {
					addWire(id[key{int32(l), int32(x), int32(y)}],
						id[key{int32(l), int32(x), int32(y + 1)}], res)
				}
			}
		}
	}
	// Vias wherever a node exists on two adjacent layers. Iterate by node
	// index, not over the id map: map order is randomized per run, and the
	// edge insertion order (and later RNG consumption order) must be
	// deterministic for a given Seed.
	viaW := 1 / spec.ViaRes
	for u := 0; u < n; u++ {
		if int(layerOf[u])+1 < spec.Layers {
			if v, ok := id[key{int32(layerOf[u]) + 1, xs[u], ys[u]}]; ok {
				g.MustAddEdge(u, v, viaW)
			}
		}
	}

	// Repair connectivity using the dropped wires (dropout may sever
	// stripe ends).
	uf := newUnionFind(n)
	for _, e := range g.Edges {
		uf.union(e.U, e.V)
	}
	for _, e := range dropped {
		if uf.union(e.u, e.v) {
			g.MustAddEdge(e.u, e.v, e.w)
		}
	}

	// C4 pads on the top layer: Norton equivalent of Vdd through PadRes.
	top := spec.Layers - 1
	d := make([]float64, n)
	b := make([]float64, n)
	padW := 1 / spec.PadRes
	var pads []int
	for u := 0; u < n; u++ {
		if int(layerOf[u]) != top {
			continue
		}
		if int(xs[u])%spec.PadPitch == 0 && int(ys[u])%spec.PadPitch == 0 {
			d[u] += padW
			b[u] += padW * spec.Vdd
			pads = append(pads, u)
		}
	}
	if len(pads) == 0 {
		// tiny grids: ground one top-layer corner
		u := id[key{int32(top), 0, 0}]
		d[u] += padW
		b[u] += padW * spec.Vdd
		pads = append(pads, u)
	}

	// Current loads on bottom-layer nodes. Node-index order matters here:
	// it fixes which RNG draw lands on which node.
	loads := make([]float64, n)
	for u := 0; u < n; u++ {
		if layerOf[u] != 0 {
			continue
		}
		if r.Float64() < spec.LoadFrac {
			amps := r.Float64() * spec.LoadMax
			loads[u] = amps
			b[u] -= amps
		}
	}

	sys, err := graph.NewSDDM(g, d)
	if err != nil {
		return nil, fmt.Errorf("powergrid: assembling system: %w", err)
	}
	return &Grid{
		Spec: spec, Sys: sys, B: b,
		Layer: layerOf, X: xs, Y: ys,
		PadNodes: pads, LoadAmps: loads,
	}, nil
}

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[rb] = ra
	return true
}

// IRDropReport summarizes a DC solution of the grid.
type IRDropReport struct {
	WorstDrop  float64
	WorstNode  int
	AvgDrop    float64
	TotalLoad  float64 // A
	PadCurrent float64 // A, must balance TotalLoad
}

// IRDrop analyzes a voltage solution v of Sys·v = B.
func (g *Grid) IRDrop(v []float64) IRDropReport {
	rep := IRDropReport{WorstNode: -1}
	var sum float64
	count := 0
	for i := range v {
		if g.Layer[i] != 0 {
			continue // report drops at the loads' layer
		}
		drop := g.Spec.Vdd - v[i]
		sum += drop
		count++
		if drop > rep.WorstDrop {
			rep.WorstDrop = drop
			rep.WorstNode = i
		}
	}
	if count > 0 {
		rep.AvgDrop = sum / float64(count)
	}
	for _, a := range g.LoadAmps {
		rep.TotalLoad += a
	}
	padW := 1 / g.Spec.PadRes
	for _, p := range g.PadNodes {
		rep.PadCurrent += (g.Spec.Vdd - v[p]) * padW
	}
	return rep
}

// Residual returns ‖Sys·v - B‖₂ / ‖B‖₂ for a candidate solution.
func (g *Grid) Residual(v []float64) float64 {
	y := make([]float64, g.N())
	g.Sys.MulVec(y, v)
	var num, den float64
	for i := range y {
		diff := y[i] - g.B[i]
		num += diff * diff
		den += g.B[i] * g.B[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
