package powergrid

import "fmt"

// Real IBM benchmark netlists contain BOTH supply networks in one file: a
// VDD net sourcing the load currents and a GND net sinking them. After
// Dirichlet reduction of the ideal sources the two nets are independent
// blocks of one (block-diagonal) SDDM, which all solvers in this
// repository handle without special cases — a useful robustness exercise
// for orderings and sparsifiers on disconnected graphs.

// GenerateDual builds a VDD grid and a matching GND grid (same geometry,
// mirrored load currents, GND pads at 0 V) and merges them into a single
// netlist with `vdd_`/`gnd_` node-name prefixes, as in the IBM files.
func GenerateDual(spec Spec) (*Netlist, error) {
	vddGrid, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	gndSpec := spec
	gndSpec.Seed ^= 0x5eed
	gndGrid, err := Generate(gndSpec)
	if err != nil {
		return nil, err
	}

	nl := NewNetlist()
	addNet := func(prefix string, g *Grid, supply float64, loadSign float64) {
		ids := make([]int, g.N())
		for i := range ids {
			ids[i] = nl.Node(prefix + g.NodeName(i))
		}
		for _, e := range g.Sys.G.Edges {
			nl.Resistors = append(nl.Resistors, Resistor{
				A: ids[e.U], B: ids[e.V], Ohms: 1 / e.W,
			})
		}
		supplyNode := nl.Node(prefix + "_net")
		for _, p := range g.PadNodes {
			nl.Resistors = append(nl.Resistors, Resistor{
				A: ids[p], B: supplyNode, Ohms: g.Spec.PadRes,
			})
		}
		nl.VSources = append(nl.VSources, VoltageSource{Node: supplyNode, Volts: supply})
		for i, amps := range g.LoadAmps {
			if amps != 0 {
				nl.Currents = append(nl.Currents, CurrentSource{Node: ids[i], Amps: loadSign * amps})
			}
		}
	}
	// VDD net: loads draw current out (positive Amps = flow to ground).
	addNet("vdd_", vddGrid, spec.vddOrDefault(), +1)
	// GND net: the same currents return, raising ground nodes above 0.
	addNet("gnd_", gndGrid, 0, -1)
	return nl, nil
}

func (s Spec) vddOrDefault() float64 {
	if s.Vdd == 0 {
		return 1.8
	}
	return s.Vdd
}

// NetOf reports which net a node of a dual netlist belongs to, based on
// the name prefix convention of GenerateDual.
func NetOf(name string) (string, error) {
	switch {
	case len(name) >= 4 && name[:4] == "vdd_":
		return "vdd", nil
	case len(name) >= 4 && name[:4] == "gnd_":
		return "gnd", nil
	}
	return "", fmt.Errorf("powergrid: node %q belongs to no known net", name)
}
