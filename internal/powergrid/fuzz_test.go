package powergrid

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the netlist parser with arbitrary input: it must
// never panic, and anything it accepts must survive a write/parse round
// trip with identical element counts.
func FuzzParse(f *testing.F) {
	f.Add("R1 a b 1.0\nI1 a 0 0.001\nV1 b 0 1.8\n.op\n.end\n")
	f.Add("* comment only\n")
	f.Add("C1 x 0 1e-12\nR2 x y 3\n")
	f.Add("R1 a b -1\n")
	f.Add("X unknown element 5\n")
	f.Add("R1 a\n")
	f.Add("")
	f.Add("r1 0 0 1\niX 0 n 2\nv2 0 q 3\n")
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			t.Fatalf("Write failed on accepted netlist: %v", err)
		}
		nl2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\nwritten: %q", err, src, buf.String())
		}
		if len(nl2.Resistors) != len(nl.Resistors) ||
			len(nl2.Currents) != len(nl.Currents) ||
			len(nl2.VSources) != len(nl.VSources) ||
			len(nl2.Capacitors) != len(nl.Capacitors) {
			t.Fatalf("element counts changed in round trip for %q", src)
		}
	})
}

// FuzzReadSolution: the solution parser must never panic and must reject
// duplicates consistently.
func FuzzReadSolution(f *testing.F) {
	f.Add("n1 1.5\nn2 1.6\n")
	f.Add("* comment\nn1 1.5\n")
	f.Add("n1 xx\n")
	f.Add("n1 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		sol, err := ReadSolution(strings.NewReader(src))
		if err != nil {
			return
		}
		for name := range sol {
			if strings.ContainsAny(name, " \t\n") {
				t.Fatalf("accepted a node name with whitespace: %q", name)
			}
		}
	})
}
