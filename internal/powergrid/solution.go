package powergrid

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Solution file I/O in the IBM power-grid benchmark format: one
// "<nodename> <voltage>" pair per line. The benchmarks ship golden
// .solution files in this format; emitting it lets downstream tooling
// diff solver output directly.

// WriteSolution writes node voltages sorted by node name (the benchmark
// convention). names[i] labels voltage v[i].
func WriteSolution(w io.Writer, names []string, v []float64) error {
	if len(names) != len(v) {
		return fmt.Errorf("powergrid: %d names for %d voltages", len(names), len(v))
	}
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, i := range idx {
		if _, err := fmt.Fprintf(bw, "%s  %.12e\n", names[i], v[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSolution parses a solution file into a name → voltage map.
func ReadSolution(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	out := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("powergrid: solution line %d: want `<node> <voltage>`, got %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("powergrid: solution line %d: bad voltage %q", lineNo, f[1])
		}
		if _, dup := out[f[0]]; dup {
			return nil, fmt.Errorf("powergrid: solution line %d: duplicate node %q", lineNo, f[0])
		}
		out[f[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CompareSolutions returns the maximum absolute voltage difference over
// the union of the two solutions; nodes missing from either side count as
// an error.
func CompareSolutions(a, b map[string]float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("powergrid: solutions have %d vs %d nodes", len(a), len(b))
	}
	var maxDiff float64
	//pglint:ordered-irrelevant max over |Δv| is commutative; only the node named in a missing-node error varies with order
	for name, va := range a {
		vb, ok := b[name]
		if !ok {
			return 0, fmt.Errorf("powergrid: node %q missing from second solution", name)
		}
		d := va - vb
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}
