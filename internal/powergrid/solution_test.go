package powergrid

import (
	"strings"
	"testing"
)

func TestSolutionRoundTrip(t *testing.T) {
	names := []string{"n0_2_1", "n0_0_0", "n1_5_5"}
	v := []float64{1.795, 1.8, 1.79999}
	var sb strings.Builder
	if err := WriteSolution(&sb, names, v); err != nil {
		t.Fatal(err)
	}
	// sorted by name: n0_0_0 first
	if !strings.HasPrefix(sb.String(), "n0_0_0") {
		t.Fatalf("output not name-sorted:\n%s", sb.String())
	}
	got, err := ReadSolution(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if diff := got[name] - v[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: %g, want %g", name, got[name], v[i])
		}
	}
}

func TestWriteSolutionValidatesLengths(t *testing.T) {
	if err := WriteSolution(&strings.Builder{}, []string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReadSolutionRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"n1 1.0 extra\n",
		"n1 notanumber\n",
		"n1 1.0\nn1 2.0\n", // duplicate
	} {
		if _, err := ReadSolution(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// comments and blanks are fine
	got, err := ReadSolution(strings.NewReader("* header\n\nn1  1.5\n# trailer\n"))
	if err != nil || got["n1"] != 1.5 {
		t.Fatalf("comment handling broken: %v %v", got, err)
	}
}

func TestCompareSolutions(t *testing.T) {
	a := map[string]float64{"x": 1.0, "y": 2.0}
	b := map[string]float64{"x": 1.1, "y": 2.0}
	d, err := CompareSolutions(a, b)
	if err != nil || d < 0.0999 || d > 0.1001 {
		t.Fatalf("diff %g, err %v", d, err)
	}
	if _, err := CompareSolutions(a, map[string]float64{"x": 1}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := CompareSolutions(a, map[string]float64{"x": 1, "z": 2}); err == nil {
		t.Fatal("missing node accepted")
	}
}
