package powergrid

import (
	"strings"
	"testing"

	"powerrchol/internal/pcg"
)

func TestStatsAreConsistent(t *testing.T) {
	g, err := Generate(smallSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Nodes != g.N() || st.Resistors != g.Sys.G.M() {
		t.Fatalf("counts wrong: %+v", st)
	}
	total := 0
	for _, n := range st.NodesPerLayer {
		total += n
	}
	if total != st.Nodes {
		t.Fatalf("layer counts sum to %d, want %d", total, st.Nodes)
	}
	if !(st.MinWeight <= st.MedianWeight && st.MedianWeight <= st.MaxWeight) {
		t.Fatalf("weight quantiles not ordered: %+v", st)
	}
	if st.Pads == 0 || st.Loads == 0 || st.TotalLoad <= 0 {
		t.Fatalf("pads/loads missing: %+v", st)
	}
	var sb strings.Builder
	if err := st.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "layer 0") {
		t.Fatalf("report missing layers:\n%s", sb.String())
	}
}

func TestDropHistogram(t *testing.T) {
	g, err := Generate(smallSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcg.Solve(g.Sys.ToCSC(), g.B, nil, pcg.Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	bounds, counts := g.DropHistogram(res.X, 8)
	if len(bounds) != 8 || len(counts) != 8 {
		t.Fatalf("histogram shape %d/%d", len(bounds), len(counts))
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	bottom := 0
	for _, l := range g.Layer {
		if l == 0 {
			bottom++
		}
	}
	if sum != bottom {
		t.Fatalf("histogram covers %d nodes, want %d", sum, bottom)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", bounds)
		}
	}
	// all-at-Vdd corner case
	flat := make([]float64, g.N())
	for i := range flat {
		flat[i] = g.Spec.Vdd
	}
	_, counts = g.DropHistogram(flat, 4)
	if counts[0] != bottom {
		t.Fatalf("flat histogram: %v", counts)
	}
}
