package powergrid

import (
	"math"
	"testing"

	"powerrchol/internal/pcg"
)

func TestGenerateDualSolvesBothNets(t *testing.T) {
	spec := smallSpec(40)
	nl, err := GenerateDual(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := nl.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	// two independent nets: graph must be disconnected (two components)
	if sys.Sys.G.Connected() {
		t.Fatal("dual-net system is connected; nets are shorted together")
	}
	res, err := pcg.Solve(sys.Sys.ToCSC(), sys.B, nil, pcg.Options{Tol: 1e-11, MaxIter: 20000})
	if err != nil || !res.Converged {
		t.Fatalf("dual-net solve failed: %v", err)
	}
	// VDD nodes must sag below 1.8; GND nodes must bounce above 0.
	var vddMin, gndMax = math.Inf(1), math.Inf(-1)
	for i, u := range sys.Unknown {
		net, err := NetOf(nl.NodeName(u))
		if err != nil {
			t.Fatal(err)
		}
		v := res.X[i]
		switch net {
		case "vdd":
			if v > 1.8+1e-9 {
				t.Fatalf("vdd node above supply: %g", v)
			}
			if v < vddMin {
				vddMin = v
			}
		case "gnd":
			if v < -1e-9 {
				t.Fatalf("gnd node below ground: %g", v)
			}
			if v > gndMax {
				gndMax = v
			}
		}
	}
	if vddMin >= 1.8 {
		t.Fatal("no IR drop on the vdd net")
	}
	if gndMax <= 0 {
		t.Fatal("no ground bounce on the gnd net")
	}
	t.Logf("worst vdd sag %.4f V, worst ground bounce %.4f V", 1.8-vddMin, gndMax)
}

func TestNetOf(t *testing.T) {
	if n, err := NetOf("vdd_n0_1_2"); err != nil || n != "vdd" {
		t.Fatal(n, err)
	}
	if n, err := NetOf("gnd__net"); err != nil || n != "gnd" {
		t.Fatal(n, err)
	}
	if _, err := NetOf("n0_1_2"); err == nil {
		t.Fatal("unknown prefix accepted")
	}
}
