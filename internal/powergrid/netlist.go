package powergrid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"powerrchol/internal/graph"
)

// Netlist is the IBM power-grid-benchmark SPICE subset: resistors,
// DC current loads and ideal voltage sources, all referenced to the
// ground node "0".
type Netlist struct {
	names []string
	index map[string]int

	Resistors  []Resistor
	Currents   []CurrentSource
	VSources   []VoltageSource
	Capacitors []Capacitor
}

// Capacitor connects a node to ground (or two nodes); it is ignored in DC
// analysis and consumed by transient analysis.
type Capacitor struct {
	A, B   int // node indices; -1 is ground
	Farads float64
}

// Resistor connects two nodes (ground allowed on either side).
type Resistor struct {
	A, B int // node indices; -1 is ground
	Ohms float64
}

// CurrentSource draws Amps from Node to ground (a load).
type CurrentSource struct {
	Node int
	Amps float64
}

// VoltageSource pins Node to Volts against ground (an ideal supply).
type VoltageSource struct {
	Node  int
	Volts float64
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{index: make(map[string]int)}
}

// Node interns a node name and returns its index; "0" and "gnd" return -1.
func (nl *Netlist) Node(name string) int {
	if name == "0" || strings.EqualFold(name, "gnd") {
		return -1
	}
	if i, ok := nl.index[name]; ok {
		return i
	}
	i := len(nl.names)
	nl.names = append(nl.names, name)
	nl.index[name] = i
	return i
}

// NodeName returns the interned name of node i.
func (nl *Netlist) NodeName(i int) string { return nl.names[i] }

// NumNodes returns the number of named (non-ground) nodes.
func (nl *Netlist) NumNodes() int { return len(nl.names) }

// Parse reads the IBM power-grid SPICE subset: lines starting with R/r
// (resistor), I/i (current load), V/v (voltage source); comment lines
// (*), .op and .end cards are ignored.
func Parse(r io.Reader) (*Netlist, error) {
	nl := NewNetlist()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, ".") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return nil, fmt.Errorf("powergrid: line %d: expected 4 fields, got %q", lineNo, line)
		}
		val, err := parseSpiceNumber(f[3])
		if err != nil {
			return nil, fmt.Errorf("powergrid: line %d: bad value %q: %w", lineNo, f[3], err)
		}
		switch line[0] {
		case 'R', 'r':
			if val <= 0 {
				return nil, fmt.Errorf("powergrid: line %d: non-positive resistance %g", lineNo, val)
			}
			nl.Resistors = append(nl.Resistors, Resistor{A: nl.Node(f[1]), B: nl.Node(f[2]), Ohms: val})
		case 'I', 'i':
			n := nl.Node(f[1])
			if n == -1 {
				n = nl.Node(f[2])
				val = -val
			}
			nl.Currents = append(nl.Currents, CurrentSource{Node: n, Amps: val})
		case 'V', 'v':
			n := nl.Node(f[1])
			if n == -1 {
				n = nl.Node(f[2])
				val = -val
			}
			nl.VSources = append(nl.VSources, VoltageSource{Node: n, Volts: val})
		case 'C', 'c':
			if val < 0 {
				return nil, fmt.Errorf("powergrid: line %d: negative capacitance %g", lineNo, val)
			}
			nl.Capacitors = append(nl.Capacitors, Capacitor{A: nl.Node(f[1]), B: nl.Node(f[2]), Farads: val})
		default:
			return nil, fmt.Errorf("powergrid: line %d: unsupported element %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parseSpiceNumber(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// Write emits the netlist in the IBM benchmark format.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	name := func(i int) string {
		if i == -1 {
			return "0"
		}
		return nl.names[i]
	}
	if _, err := fmt.Fprintf(bw, "* synthetic power grid netlist (%d nodes)\n", len(nl.names)); err != nil {
		return err
	}
	for i, r := range nl.Resistors {
		fmt.Fprintf(bw, "R%d %s %s %.10g\n", i, name(r.A), name(r.B), r.Ohms)
	}
	for i, c := range nl.Currents {
		fmt.Fprintf(bw, "I%d %s 0 %.10g\n", i, name(c.Node), c.Amps)
	}
	for i, c := range nl.Capacitors {
		fmt.Fprintf(bw, "C%d %s %s %.10g\n", i, name(c.A), name(c.B), c.Farads)
	}
	for i, v := range nl.VSources {
		fmt.Fprintf(bw, "V%d %s 0 %.10g\n", i, name(v.Node), v.Volts)
	}
	fmt.Fprintln(bw, ".op")
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// System is an assembled MNA system for the unknown (non-source) nodes.
type System struct {
	Sys *graph.SDDM
	B   []float64
	// Unknown[i] is the netlist node index of system unknown i.
	Unknown []int
	// Fixed[nodeIdx] holds voltages of source-pinned nodes.
	Fixed map[int]float64
}

// BuildSystem assembles G·v = b by nodal analysis: ideal voltage-source
// nodes are eliminated (Dirichlet reduction: their resistive couplings
// move to the right-hand side), resistors to ground and sources
// contribute to the diagonal slack, and current loads fill b.
func (nl *Netlist) BuildSystem() (*System, error) {
	fixed := make(map[int]float64)
	for _, v := range nl.VSources {
		//pglint:float-exact duplicate-source check: two cards pinning one node conflict unless they parsed to the identical voltage
		if prev, ok := fixed[v.Node]; ok && prev != v.Volts {
			return nil, fmt.Errorf("powergrid: node %s pinned to both %g and %g",
				nl.names[v.Node], prev, v.Volts)
		}
		fixed[v.Node] = v.Volts
	}
	// map netlist node -> unknown index
	unk := make([]int, nl.NumNodes())
	var unknown []int
	for i := range unk {
		if _, pinned := fixed[i]; pinned {
			unk[i] = -1
		} else {
			unk[i] = len(unknown)
			unknown = append(unknown, i)
		}
	}
	n := len(unknown)
	g := graph.New(n, len(nl.Resistors))
	d := make([]float64, n)
	b := make([]float64, n)
	for _, r := range nl.Resistors {
		w := 1 / r.Ohms
		a, c := r.A, r.B
		switch {
		case a == -1 && c == -1:
			continue // both grounded: no effect
		case a == -1, c == -1:
			node := a
			if node == -1 {
				node = c
			}
			if u := unk[node]; u >= 0 {
				d[u] += w // resistor to ground
			}
		default:
			ua, uc := unk[a], unk[c]
			switch {
			case ua >= 0 && uc >= 0:
				if ua != uc {
					g.MustAddEdge(ua, uc, w)
				}
			case ua >= 0: // c pinned
				d[ua] += w
				b[ua] += w * fixed[c]
			case uc >= 0: // a pinned
				d[uc] += w
				b[uc] += w * fixed[a]
			}
		}
	}
	for _, cs := range nl.Currents {
		if u := unk[cs.Node]; u >= 0 {
			b[u] -= cs.Amps
		}
	}
	sys, err := graph.NewSDDM(g.Coalesce(), d)
	if err != nil {
		return nil, err
	}
	return &System{Sys: sys, B: b, Unknown: unknown, Fixed: fixed}, nil
}

// ToNetlist renders a generated Grid as a netlist: wire and via segments
// become resistors, loads become current sources, and each pad becomes a
// pad resistor to a shared supply node pinned by one voltage source.
func (g *Grid) ToNetlist() *Netlist {
	nl := NewNetlist()
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = nl.Node(g.NodeName(i))
	}
	for _, e := range g.Sys.G.Edges {
		nl.Resistors = append(nl.Resistors, Resistor{A: ids[e.U], B: ids[e.V], Ohms: 1 / e.W})
	}
	vddNode := nl.Node("_vdd")
	for _, p := range g.PadNodes {
		nl.Resistors = append(nl.Resistors, Resistor{A: ids[p], B: vddNode, Ohms: g.Spec.PadRes})
	}
	nl.VSources = append(nl.VSources, VoltageSource{Node: vddNode, Volts: g.Spec.Vdd})
	for i, amps := range g.LoadAmps {
		if amps != 0 {
			nl.Currents = append(nl.Currents, CurrentSource{Node: ids[i], Amps: amps})
		}
	}
	return nl
}
