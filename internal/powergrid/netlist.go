package powergrid

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"powerrchol/internal/graph"
)

// Netlist is the IBM power-grid-benchmark SPICE subset: resistors,
// DC current loads and ideal voltage sources, all referenced to the
// ground node "0".
type Netlist struct {
	names []string
	index map[string]int

	Resistors  []Resistor
	Currents   []CurrentSource
	VSources   []VoltageSource
	Capacitors []Capacitor
}

// Capacitor connects a node to ground (or two nodes); it is ignored in DC
// analysis and consumed by transient analysis.
type Capacitor struct {
	A, B   int // node indices; -1 is ground
	Farads float64
}

// Resistor connects two nodes (ground allowed on either side).
type Resistor struct {
	A, B int // node indices; -1 is ground
	Ohms float64
}

// CurrentSource draws Amps from Node to ground (a load).
type CurrentSource struct {
	Node int
	Amps float64
}

// VoltageSource pins Node to Volts against ground (an ideal supply).
type VoltageSource struct {
	Node  int
	Volts float64
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{index: make(map[string]int)}
}

// Node interns a node name and returns its index; "0" and "gnd" return -1.
func (nl *Netlist) Node(name string) int {
	if name == "0" || strings.EqualFold(name, "gnd") {
		return -1
	}
	if i, ok := nl.index[name]; ok {
		return i
	}
	i := len(nl.names)
	nl.names = append(nl.names, name)
	nl.index[name] = i
	return i
}

// NodeName returns the interned name of node i.
func (nl *Netlist) NodeName(i int) string { return nl.names[i] }

// NumNodes returns the number of named (non-ground) nodes.
func (nl *Netlist) NumNodes() int { return len(nl.names) }

// elementSink receives the typed elements of one netlist scan in file
// order. Any handler may be nil to skip that element kind.
type elementSink struct {
	onResistor func(Resistor) error
	onCurrent  func(CurrentSource) error
	onVoltage  func(VoltageSource) error
	onCap      func(Capacitor) error
}

// scan parses the IBM power-grid SPICE subset — lines starting with R/r
// (resistor), I/i (current load), V/v (voltage source), C/c (capacitor);
// comment lines (*), .op and .end cards are ignored — delivering each
// element to the sink in file order. Node names are interned through
// nl.Node with exactly the historical call pattern, so repeated scans of
// the same stream (the two-pass ingest) assign identical node indices.
func (nl *Netlist) scan(r io.Reader, sink elementSink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, ".") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return fmt.Errorf("powergrid: line %d: expected 4 fields, got %q", lineNo, line)
		}
		val, err := parseSpiceNumber(f[3])
		if err != nil {
			return fmt.Errorf("powergrid: line %d: bad value %q: %w", lineNo, f[3], err)
		}
		switch line[0] {
		case 'R', 'r':
			if val <= 0 {
				return fmt.Errorf("powergrid: line %d: non-positive resistance %g", lineNo, val)
			}
			el := Resistor{A: nl.Node(f[1]), B: nl.Node(f[2]), Ohms: val}
			if sink.onResistor != nil {
				err = sink.onResistor(el)
			}
		case 'I', 'i':
			n := nl.Node(f[1])
			if n == -1 {
				n = nl.Node(f[2])
				val = -val
			}
			if sink.onCurrent != nil {
				err = sink.onCurrent(CurrentSource{Node: n, Amps: val})
			}
		case 'V', 'v':
			n := nl.Node(f[1])
			if n == -1 {
				n = nl.Node(f[2])
				val = -val
			}
			if sink.onVoltage != nil {
				err = sink.onVoltage(VoltageSource{Node: n, Volts: val})
			}
		case 'C', 'c':
			if val < 0 {
				return fmt.Errorf("powergrid: line %d: negative capacitance %g", lineNo, val)
			}
			if sink.onCap != nil {
				err = sink.onCap(Capacitor{A: nl.Node(f[1]), B: nl.Node(f[2]), Farads: val})
			}
		default:
			return fmt.Errorf("powergrid: line %d: unsupported element %q", lineNo, line)
		}
		if err != nil {
			return err
		}
	}
	return sc.Err()
}

// Parse reads the IBM power-grid SPICE subset: lines starting with R/r
// (resistor), I/i (current load), V/v (voltage source); comment lines
// (*), .op and .end cards are ignored.
func Parse(r io.Reader) (*Netlist, error) {
	nl := NewNetlist()
	err := nl.scan(r, elementSink{
		onResistor: func(el Resistor) error { nl.Resistors = append(nl.Resistors, el); return nil },
		onCurrent:  func(el CurrentSource) error { nl.Currents = append(nl.Currents, el); return nil },
		onVoltage:  func(el VoltageSource) error { nl.VSources = append(nl.VSources, el); return nil },
		onCap:      func(el Capacitor) error { nl.Capacitors = append(nl.Capacitors, el); return nil },
	})
	if err != nil {
		return nil, err
	}
	return nl, nil
}

func parseSpiceNumber(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// Write emits the netlist in the IBM benchmark format.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	name := func(i int) string {
		if i == -1 {
			return "0"
		}
		return nl.names[i]
	}
	if _, err := fmt.Fprintf(bw, "* synthetic power grid netlist (%d nodes)\n", len(nl.names)); err != nil {
		return err
	}
	for i, r := range nl.Resistors {
		fmt.Fprintf(bw, "R%d %s %s %.10g\n", i, name(r.A), name(r.B), r.Ohms)
	}
	for i, c := range nl.Currents {
		fmt.Fprintf(bw, "I%d %s 0 %.10g\n", i, name(c.Node), c.Amps)
	}
	for i, c := range nl.Capacitors {
		fmt.Fprintf(bw, "C%d %s %s %.10g\n", i, name(c.A), name(c.B), c.Farads)
	}
	for i, v := range nl.VSources {
		fmt.Fprintf(bw, "V%d %s 0 %.10g\n", i, name(v.Node), v.Volts)
	}
	fmt.Fprintln(bw, ".op")
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// System is an assembled MNA system for the unknown (non-source) nodes.
type System struct {
	Sys *graph.SDDM
	B   []float64
	// Unknown[i] is the netlist node index of system unknown i.
	Unknown []int
	// Fixed[nodeIdx] holds voltages of source-pinned nodes.
	Fixed map[int]float64
}

// pinVoltage records one voltage source into the pinned-node map,
// rejecting conflicting pins of the same node.
func (nl *Netlist) pinVoltage(fixed map[int]float64, v VoltageSource) error {
	//pglint:float-exact duplicate-source check: two cards pinning one node conflict unless they parsed to the identical voltage
	if prev, ok := fixed[v.Node]; ok && prev != v.Volts {
		return fmt.Errorf("powergrid: node %s pinned to both %g and %g",
			nl.names[v.Node], prev, v.Volts)
	}
	fixed[v.Node] = v.Volts
	return nil
}

// sysAccum accumulates the nodal-analysis system element by element:
// the Dirichlet reduction shared by BuildSystem (in-memory element
// slices) and ParseSystemFile (streaming). Feeding elements in the same
// order through either front-end yields identical systems.
type sysAccum struct {
	fixed   map[int]float64
	unk     []int // netlist node -> unknown index; -1 for pinned nodes
	unknown []int
	g       *graph.Graph
	d, b    []float64
}

// newSysAccum builds the unknown-index map from the pinned-node set and
// sizes the accumulation arrays. resistorCap reserves edge capacity.
func newSysAccum(numNodes, resistorCap int, fixed map[int]float64) *sysAccum {
	unk := make([]int, numNodes)
	var unknown []int
	for i := range unk {
		if _, pinned := fixed[i]; pinned {
			unk[i] = -1
		} else {
			unk[i] = len(unknown)
			unknown = append(unknown, i)
		}
	}
	n := len(unknown)
	return &sysAccum{
		fixed:   fixed,
		unk:     unk,
		unknown: unknown,
		g:       graph.New(n, resistorCap),
		d:       make([]float64, n),
		b:       make([]float64, n),
	}
}

// resistor folds one resistor into the system: an edge between two
// unknowns, diagonal slack for a grounded end, and a right-hand-side
// contribution for a source-pinned end.
func (sa *sysAccum) resistor(r Resistor) {
	w := 1 / r.Ohms
	a, c := r.A, r.B
	switch {
	case a == -1 && c == -1:
		return // both grounded: no effect
	case a == -1, c == -1:
		node := a
		if node == -1 {
			node = c
		}
		if u := sa.unk[node]; u >= 0 {
			sa.d[u] += w // resistor to ground
		}
	default:
		ua, uc := sa.unk[a], sa.unk[c]
		switch {
		case ua >= 0 && uc >= 0:
			if ua != uc {
				sa.g.MustAddEdge(ua, uc, w)
			}
		case ua >= 0: // c pinned
			sa.d[ua] += w
			sa.b[ua] += w * sa.fixed[c]
		case uc >= 0: // a pinned
			sa.d[uc] += w
			sa.b[uc] += w * sa.fixed[a]
		}
	}
}

// current folds one current load into the right-hand side.
func (sa *sysAccum) current(cs CurrentSource) {
	if u := sa.unk[cs.Node]; u >= 0 {
		sa.b[u] -= cs.Amps
	}
}

// finish coalesces the edge list and wraps the system.
func (sa *sysAccum) finish() (*System, error) {
	sys, err := graph.NewSDDM(sa.g.Coalesce(), sa.d)
	if err != nil {
		return nil, err
	}
	return &System{Sys: sys, B: sa.b, Unknown: sa.unknown, Fixed: sa.fixed}, nil
}

// BuildSystem assembles G·v = b by nodal analysis: ideal voltage-source
// nodes are eliminated (Dirichlet reduction: their resistive couplings
// move to the right-hand side), resistors to ground and sources
// contribute to the diagonal slack, and current loads fill b.
func (nl *Netlist) BuildSystem() (*System, error) {
	fixed := make(map[int]float64)
	for _, v := range nl.VSources {
		if err := nl.pinVoltage(fixed, v); err != nil {
			return nil, err
		}
	}
	sa := newSysAccum(nl.NumNodes(), len(nl.Resistors), fixed)
	for _, r := range nl.Resistors {
		sa.resistor(r)
	}
	for _, cs := range nl.Currents {
		sa.current(cs)
	}
	return sa.finish()
}

// ParseSystemFile assembles the MNA system straight from a netlist file
// in two streaming passes: the first interns node names, counts
// resistors and collects the voltage-source pins; the second folds
// resistors and current loads directly into the system arrays. The
// element slices Parse materializes (one struct per card, held
// alongside the assembled system) are never built, so peak ingest
// memory is the system plus the name table. The result is identical to
// Parse followed by BuildSystem — same element order through the same
// accumulation code.
//
// The returned Netlist carries the interned node names (for NodeName
// lookups against System.Unknown) but empty element slices.
func ParseSystemFile(path string) (*System, *Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	nl := NewNetlist()
	fixed := make(map[int]float64)
	resistors := 0
	err = nl.scan(f, elementSink{
		onResistor: func(Resistor) error { resistors++; return nil },
		onVoltage:  func(v VoltageSource) error { return nl.pinVoltage(fixed, v) },
	})
	if err != nil {
		return nil, nil, err
	}

	// Fill in two more passes — resistors, then current loads — because
	// BuildSystem folds every resistor into b before any load, and a
	// single file-order pass would interleave the float accumulations
	// and change the result's last bits.
	sa := newSysAccum(nl.NumNodes(), resistors, fixed)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	err = nl.scan(f, elementSink{
		onResistor: func(r Resistor) error { sa.resistor(r); return nil },
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	err = nl.scan(f, elementSink{
		onCurrent: func(cs CurrentSource) error { sa.current(cs); return nil },
	})
	if err != nil {
		return nil, nil, err
	}
	sys, err := sa.finish()
	if err != nil {
		return nil, nil, err
	}
	return sys, nl, nil
}

// ToNetlist renders a generated Grid as a netlist: wire and via segments
// become resistors, loads become current sources, and each pad becomes a
// pad resistor to a shared supply node pinned by one voltage source.
func (g *Grid) ToNetlist() *Netlist {
	nl := NewNetlist()
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = nl.Node(g.NodeName(i))
	}
	for _, e := range g.Sys.G.Edges {
		nl.Resistors = append(nl.Resistors, Resistor{A: ids[e.U], B: ids[e.V], Ohms: 1 / e.W})
	}
	vddNode := nl.Node("_vdd")
	for _, p := range g.PadNodes {
		nl.Resistors = append(nl.Resistors, Resistor{A: ids[p], B: vddNode, Ohms: g.Spec.PadRes})
	}
	nl.VSources = append(nl.VSources, VoltageSource{Node: vddNode, Volts: g.Spec.Vdd})
	for i, amps := range g.LoadAmps {
		if amps != 0 {
			nl.Currents = append(nl.Currents, CurrentSource{Node: ids[i], Amps: amps})
		}
	}
	return nl
}
