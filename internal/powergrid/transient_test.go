package powergrid

import (
	"math"
	"strings"
	"testing"

	"powerrchol/internal/pcg"
)

// cgStepSolver wraps plain CG as a StepSolve for tests (the examples use
// the PowerRChol facade; tests avoid the import cycle).
func cgStepSolver(t *testing.T, g *Grid, ts TransientSpec) StepSolve {
	t.Helper()
	sys, _, err := g.TransientSystem(ts)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.ToCSC()
	return func(b []float64) ([]float64, int, error) {
		res, err := pcg.Solve(a, b, nil, pcg.Options{Tol: 1e-12, MaxIter: 20000})
		if err != nil {
			return nil, 0, err
		}
		return res.X, res.Iterations, nil
	}
}

func TestTransientSystemAddsOnlyDiagonal(t *testing.T) {
	g, err := Generate(smallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	ts := TransientSpec{Seed: 1}
	sys, caps, err := g.TransientSystem(ts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.G != g.Sys.G {
		t.Fatal("transient system must share the conductance graph")
	}
	if len(caps) != g.N() {
		t.Fatalf("caps length %d", len(caps))
	}
	h := 1e-11 // default TimeStep
	for i := range caps {
		if caps[i] <= 0 {
			t.Fatalf("node %d has no capacitance", i)
		}
		want := g.Sys.D[i] + caps[i]/h
		if math.Abs(sys.D[i]-want) > 1e-9*want {
			t.Fatalf("D'[%d] = %g, want %g", i, sys.D[i], want)
		}
	}
}

func TestTransientNoLoadsStaysAtVdd(t *testing.T) {
	spec := smallSpec(6)
	spec.LoadFrac = -1
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := TransientSpec{Steps: 10, SurgeStep: -1, Seed: 2}
	res, err := g.RunTransient(ts, cgStepSolver(t, g, ts))
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := res.PeakDrop()
	if peak > 1e-6 {
		t.Fatalf("unloaded grid drooped %g V", peak)
	}
}

func TestTransientApproachesDCSteadyState(t *testing.T) {
	// With the surge disabled and every load forced permanently on
	// (duty = period), the waveform must settle to the static solution.
	g, err := Generate(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	ts := TransientSpec{Steps: 400, SurgeStep: -1, Seed: 3, TimeStep: 1e-10}
	solve := cgStepSolver(t, g, ts)
	// force always-on loads by solving the same spec but overriding the
	// waveform: surge at every step is equivalent; instead run DC and
	// compare the tail of a run whose loads are always on via duty=period.
	// Simplest: use SurgeStep semantics — set surge at each step by
	// wrapping the waveform is not exposed, so instead exploit that with
	// Steps*TimeStep >> RC the pseudo-random switching averages out and
	// the final drop must be bounded by the DC all-on drop.
	res, err := g.RunTransient(ts, solve)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := pcg.Solve(g.Sys.ToCSC(), g.B, nil, pcg.Options{Tol: 1e-12, MaxIter: 20000})
	if err != nil || !dc.Converged {
		t.Fatal("dc solve failed")
	}
	dcWorst := 0.0
	for i, v := range dc.X {
		if g.Layer[i] == 0 {
			if d := g.Spec.Vdd - v; d > dcWorst {
				dcWorst = d
			}
		}
	}
	peak, _ := res.PeakDrop()
	if peak > dcWorst*1.05+1e-9 {
		t.Fatalf("transient peak %g exceeds DC all-on drop %g", peak, dcWorst)
	}
	if peak <= 0 {
		t.Fatal("loaded transient produced no droop at all")
	}
}

func TestTransientSurgeIsThePeak(t *testing.T) {
	g, err := Generate(smallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := TransientSpec{Steps: 40, Seed: 4} // surge defaults to step 20
	res, err := g.RunTransient(ts, cgStepSolver(t, g, ts))
	if err != nil {
		t.Fatal(err)
	}
	_, at := res.PeakDrop()
	// backward Euler reaches the surge's full effect at the surge step
	if at+1 != ts.Steps/2 && at != ts.Steps/2 && at-1 != ts.Steps/2 {
		t.Fatalf("peak at step %d, surge at %d", at+1, ts.Steps/2)
	}
	if len(res.Times) != ts.Steps || len(res.WorstDrop) != ts.Steps {
		t.Fatalf("waveform lengths %d/%d", len(res.Times), len(res.WorstDrop))
	}
	if res.TotalIters == 0 {
		t.Fatal("iteration accounting missing")
	}
}

func TestTransientLargerCapsSmoothTheWaveform(t *testing.T) {
	g, err := Generate(smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	peaks := map[string]float64{}
	for name, cap := range map[string]float64{"small": 1e-16, "large": 2e-12} {
		ts := TransientSpec{Steps: 30, Seed: 5, CapBase: cap, DecapFrac: -1}
		res, err := g.RunTransient(ts, cgStepSolver(t, g, ts))
		if err != nil {
			t.Fatal(err)
		}
		peaks[name], _ = res.PeakDrop()
	}
	if peaks["large"] >= peaks["small"] {
		t.Fatalf("more capacitance should damp the droop: %v", peaks)
	}
}

func TestNetlistCapacitors(t *testing.T) {
	src := "R1 a b 1\nC1 a 0 1e-12\nV1 b 0 1.8\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Capacitors) != 1 || nl.Capacitors[0].Farads != 1e-12 {
		t.Fatalf("capacitor not parsed: %+v", nl.Capacitors)
	}
	var sb strings.Builder
	if err := nl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl2.Capacitors) != 1 {
		t.Fatal("capacitor lost in round trip")
	}
	if _, err := Parse(strings.NewReader("C1 a 0 -1e-12\n")); err == nil {
		t.Fatal("negative capacitance accepted")
	}
}

func TestTransientRejectsBadSpec(t *testing.T) {
	g, err := Generate(smallSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.TransientSystem(TransientSpec{TimeStep: -1}); err == nil {
		t.Fatal("negative time step accepted")
	}
}
