package powergrid

import (
	"context"
	"fmt"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

// Transient analysis extends the static solver to RC power grids: with
// node capacitances C (ground caps plus decoupling caps), backward Euler
// at step size h turns C·dv/dt + G·v = i(t) into
//
//	(G + C/h)·v_{t+1} = (C/h)·v_t + i(t+1),
//
// whose matrix is again an SDDM (capacitance only adds diagonal slack)
// and is factorized ONCE for all time steps — the workload that rewards
// PowerRChol's cheap, strong preconditioner the most.

// TransientSpec configures a transient run over a generated Grid.
type TransientSpec struct {
	// CapBase is the ground capacitance per node (F); default 1e-15.
	CapBase float64
	// DecapFrac is the fraction of bottom-layer nodes carrying a
	// decoupling capacitor; default 0.05.
	DecapFrac float64
	// DecapValue is the decap size (F); default 5e-13.
	DecapValue float64
	// TimeStep is the backward-Euler step h (s); default 1e-11.
	TimeStep float64
	// Steps is the number of time steps; default 50.
	Steps int
	// SurgeStep, if >= 0, turns every load on simultaneously at this step
	// (a di/dt surge event). Default Steps/2; set negative to disable.
	SurgeStep int
	// Seed drives the per-load switching waveforms.
	Seed uint64
}

func (ts *TransientSpec) setDefaults() error {
	if ts.CapBase == 0 {
		ts.CapBase = 1e-15
	}
	if ts.DecapFrac == 0 {
		ts.DecapFrac = 0.05
	}
	if ts.DecapValue == 0 {
		ts.DecapValue = 5e-13
	}
	if ts.TimeStep == 0 {
		ts.TimeStep = 1e-11
	}
	if ts.TimeStep < 0 || ts.CapBase < 0 || ts.DecapValue < 0 {
		return fmt.Errorf("powergrid: negative transient parameter")
	}
	if ts.Steps == 0 {
		ts.Steps = 50
	}
	if ts.SurgeStep == 0 {
		ts.SurgeStep = ts.Steps / 2
	}
	return nil
}

// TransientResult records one waveform point per time step.
type TransientResult struct {
	Times      []float64 // s
	WorstDrop  []float64 // V, bottom layer
	AvgDrop    []float64 // V, bottom layer
	TotalIters int       // PCG iterations summed over all steps
	FinalV     []float64
}

// PeakDrop returns the largest worst-case drop over the run and its step.
func (tr *TransientResult) PeakDrop() (float64, int) {
	peak, at := 0.0, -1
	for i, d := range tr.WorstDrop {
		if d > peak {
			peak, at = d, i
		}
	}
	return peak, at
}

// StepSolve solves one backward-Euler system A'·v = b and reports the
// iteration count. Implementations wrap a prepared solver (e.g.
// powerrchol.Solver) so the factorization is reused across steps.
type StepSolve func(b []float64) (v []float64, iters int, err error)

// TransientSystem assembles the backward-Euler matrix G + C/h as an SDDM
// and returns it with the per-node capacitance vector. The returned
// system shares the Grid's graph (capacitance is purely diagonal).
func (g *Grid) TransientSystem(ts TransientSpec) (*graph.SDDM, []float64, error) {
	if err := ts.setDefaults(); err != nil {
		return nil, nil, err
	}
	n := g.N()
	caps := make([]float64, n)
	r := rng.New(ts.Seed ^ 0xc0ffee)
	for i := 0; i < n; i++ {
		caps[i] = ts.CapBase
		if g.Layer[i] == 0 && r.Float64() < ts.DecapFrac {
			caps[i] += ts.DecapValue
		}
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = g.Sys.D[i] + caps[i]/ts.TimeStep
	}
	sys, err := graph.NewSDDM(g.Sys.G, d)
	if err != nil {
		return nil, nil, err
	}
	return sys, caps, nil
}

// LoadWaveform returns the load current of node i at time step t: loads
// switch with a pseudo-random period/phase each, and all switch on at the
// surge step. Deterministic in the spec's seed.
type loadWaveform struct {
	period []int32
	phase  []int32
	duty   []int32
	spec   TransientSpec
}

func (g *Grid) newWaveform(ts TransientSpec) *loadWaveform {
	n := g.N()
	w := &loadWaveform{
		period: make([]int32, n),
		phase:  make([]int32, n),
		duty:   make([]int32, n),
		spec:   ts,
	}
	r := rng.New(ts.Seed ^ 0xdeadbeef)
	for i := 0; i < n; i++ {
		if g.LoadAmps[i] == 0 {
			continue
		}
		w.period[i] = int32(4 + r.Intn(12))
		w.phase[i] = int32(r.Intn(int(w.period[i])))
		w.duty[i] = int32(1 + r.Intn(int(w.period[i])-1))
	}
	return w
}

func (w *loadWaveform) active(i, step int) bool {
	if step == w.spec.SurgeStep {
		return true
	}
	p := w.period[i]
	if p == 0 {
		return false
	}
	return (int32(step)+w.phase[i])%p < w.duty[i]
}

// RunTransient integrates the grid for ts.Steps backward-Euler steps from
// the DC operating point of the unloaded grid (all nodes at Vdd), using
// solve for the per-step linear systems.
func (g *Grid) RunTransient(ts TransientSpec, solve StepSolve) (*TransientResult, error) {
	return g.RunTransientContext(context.Background(), ts, solve)
}

// RunTransientContext is RunTransient under a context: the step loop
// polls ctx before every solve, so a cancelled or expired ctx aborts the
// integration within one step (plus whatever cancellation latency the
// StepSolve itself has).
func (g *Grid) RunTransientContext(ctx context.Context, ts TransientSpec, solve StepSolve) (*TransientResult, error) {
	if err := ts.setDefaults(); err != nil {
		return nil, err
	}
	n := g.N()
	_, caps, err := g.TransientSystem(ts)
	if err != nil {
		return nil, err
	}
	wave := g.newWaveform(ts)

	v := make([]float64, n)
	for i := range v {
		v[i] = g.Spec.Vdd // unloaded operating point
	}
	b := make([]float64, n)
	padW := 1 / g.Spec.PadRes
	res := &TransientResult{}

	for step := 1; step <= ts.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("powergrid: transient cancelled before step %d: %w", step, err)
		}
		for i := 0; i < n; i++ {
			b[i] = caps[i] / ts.TimeStep * v[i]
		}
		for _, p := range g.PadNodes {
			b[p] += padW * g.Spec.Vdd
		}
		for i, amps := range g.LoadAmps {
			if amps != 0 && wave.active(i, step) {
				b[i] -= amps
			}
		}
		vNew, iters, err := solve(b)
		if err != nil {
			return nil, fmt.Errorf("powergrid: transient step %d: %w", step, err)
		}
		v = vNew
		res.TotalIters += iters

		worst, sum, count := 0.0, 0.0, 0
		for i := 0; i < n; i++ {
			if g.Layer[i] != 0 {
				continue
			}
			drop := g.Spec.Vdd - v[i]
			sum += drop
			count++
			if drop > worst {
				worst = drop
			}
		}
		res.Times = append(res.Times, float64(step)*ts.TimeStep)
		res.WorstDrop = append(res.WorstDrop, worst)
		if count > 0 {
			res.AvgDrop = append(res.AvgDrop, sum/float64(count))
		} else {
			res.AvgDrop = append(res.AvgDrop, 0)
		}
	}
	res.FinalV = v
	return res, nil
}
