package amg

import (
	"context"
	"errors"
	"testing"

	"powerrchol/internal/testmat"
)

// TestCancelledContextAbortsSetup: a pre-cancelled context must stop
// NewContext before the coarsening hierarchy is built.
func TestCancelledContextAbortsSetup(t *testing.T) {
	a := testmat.GridSDDM(32, 32).ToCSC()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewContext(ctx, a, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCancelContextVariantsAgree: nil and background contexts must
// build the same hierarchy the plain New entry point builds.
func TestCancelContextVariantsAgree(t *testing.T) {
	a := testmat.GridSDDM(32, 32).ToCSC()
	ref, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		p, err := NewContext(ctx, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Levels() != ref.Levels() {
			t.Fatalf("context variant changed level count: %d vs %d", p.Levels(), ref.Levels())
		}
		if p.OperatorComplexity() != ref.OperatorComplexity() {
			t.Fatalf("context variant changed operator complexity: %g vs %g",
				p.OperatorComplexity(), ref.OperatorComplexity())
		}
	}
}
