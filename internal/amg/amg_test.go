package amg

import (
	"math"
	"testing"

	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestVCycleSolvesGrid(t *testing.T) {
	r := rng.New(3)
	s := testmat.GridSDDM(32, 32)
	a := s.ToCSC()
	p, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	res, err := pcg.Solve(a, b, p, pcg.Options{Tol: 1e-8, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("AMG-PCG did not converge: %g", res.Residual)
	}
	if res.Iterations > 60 {
		t.Errorf("AMG-PCG took %d iterations on a 32x32 grid", res.Iterations)
	}
	t.Logf("32x32 grid: %d levels, opcomplexity %.2f, %d iterations",
		p.Levels(), p.OperatorComplexity(), res.Iterations)
}

func TestHierarchyCoarsens(t *testing.T) {
	s := testmat.GridSDDM(40, 40)
	p, err := New(s.ToCSC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() < 3 {
		t.Errorf("only %d levels on a 1600-node grid", p.Levels())
	}
	if oc := p.OperatorComplexity(); oc > 3 {
		t.Errorf("operator complexity %.2f too high", oc)
	}
	// each level must be strictly smaller
	for i := 1; i < len(p.levels); i++ {
		if p.levels[i].a.Cols >= p.levels[i-1].a.Cols {
			t.Errorf("level %d did not shrink: %d -> %d",
				i, p.levels[i-1].a.Cols, p.levels[i].a.Cols)
		}
	}
}

func TestAggregateCoversAllNodes(t *testing.T) {
	r := rng.New(9)
	s := testmat.RandomSDDM(r, 200, 400)
	a := s.ToCSC()
	agg, nc := aggregate(a, 0.25)
	if nc <= 0 || nc >= a.Cols {
		t.Fatalf("aggregate count %d out of range (n=%d)", nc, a.Cols)
	}
	seen := make([]bool, nc)
	for i, v := range agg {
		if v < 0 || v >= nc {
			t.Fatalf("node %d in aggregate %d, out of range", i, v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("aggregate %d empty", i)
		}
	}
}

func TestGalerkinPreservesSymmetryAndRowSums(t *testing.T) {
	r := rng.New(11)
	s := testmat.RandomSDDM(r, 80, 160)
	a := s.ToCSC()
	agg, nc := aggregate(a, 0.25)
	ac := galerkin(a, agg, nc)
	if !ac.IsSymmetric(1e-10) {
		t.Fatal("Galerkin operator not symmetric")
	}
	// Row sums are preserved under piecewise-constant PᵀAP: Σ_ij Ac = Σ_ij A,
	// and each coarse row sum is the sum of its fine rows' sums.
	fine := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			fine[a.RowIdx[p]] += a.Val[p]
		}
	}
	wantCoarse := make([]float64, nc)
	for i, v := range agg {
		wantCoarse[v] += fine[i]
	}
	gotCoarse := make([]float64, nc)
	for j := 0; j < nc; j++ {
		for p := ac.ColPtr[j]; p < ac.ColPtr[j+1]; p++ {
			gotCoarse[ac.RowIdx[p]] += ac.Val[p]
		}
	}
	for i := range wantCoarse {
		if math.Abs(gotCoarse[i]-wantCoarse[i]) > 1e-9 {
			t.Fatalf("coarse row sum %d: got %g, want %g", i, gotCoarse[i], wantCoarse[i])
		}
	}
}

func TestApplyIsLinearAndSPD(t *testing.T) {
	r := rng.New(17)
	s := testmat.GridSDDM(12, 12)
	a := s.ToCSC()
	p, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	x := make([]float64, n)
	y := make([]float64, n)
	zx := make([]float64, n)
	zy := make([]float64, n)
	zs := make([]float64, n)
	sum := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
		y[i] = r.Float64() - 0.5
		sum[i] = x[i] + y[i]
	}
	p.Apply(zx, x)
	p.Apply(zy, y)
	p.Apply(zs, sum)
	for i := range zs {
		if math.Abs(zs[i]-zx[i]-zy[i]) > 1e-9 {
			t.Fatalf("V-cycle is not linear at %d: %g vs %g", i, zs[i], zx[i]+zy[i])
		}
	}
	// SPD: x'M⁻¹x > 0 and symmetry y'M⁻¹x == x'M⁻¹y
	if sparse.Dot(x, zx) <= 0 {
		t.Fatal("V-cycle not positive definite")
	}
	lhs := sparse.Dot(y, zx)
	rhs := sparse.Dot(x, zy)
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("V-cycle not symmetric: %g vs %g", lhs, rhs)
	}
}

func TestSmallMatrixGoesStraightToDense(t *testing.T) {
	s := testmat.GridSDDM(4, 4) // 16 nodes < CoarsestSize
	a := s.ToCSC()
	p, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() != 1 {
		t.Fatalf("expected a single (dense) level, got %d", p.Levels())
	}
	// Apply must then be an exact solve.
	r := rng.New(1)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	x := make([]float64, s.N())
	p.Apply(x, b)
	y := make([]float64, s.N())
	a.MulVec(y, x)
	sparse.Axpy(y, -1, b)
	if rel := sparse.Norm2(y) / sparse.Norm2(b); rel > 1e-10 {
		t.Fatalf("dense fallback residual %g", rel)
	}
}

func TestRejectsNonSquare(t *testing.T) {
	if _, err := New(sparse.NewCSC(2, 3, 0), Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSmoothedAggregationConvergesFaster(t *testing.T) {
	r := rng.New(21)
	s := testmat.GridSDDM(48, 48)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	iters := map[bool]int{}
	for _, sa := range []bool{false, true} {
		p, err := New(a, Options{SmoothedAggregation: sa})
		if err != nil {
			t.Fatal(err)
		}
		res, err := pcg.Solve(a, b, p, pcg.Options{Tol: 1e-10, MaxIter: 500})
		if err != nil || !res.Converged {
			t.Fatalf("sa=%v: %v", sa, err)
		}
		iters[sa] = res.Iterations
		t.Logf("sa=%v: %d levels, opcomplexity %.2f, %d iterations",
			sa, p.Levels(), p.OperatorComplexity(), res.Iterations)
	}
	if iters[true] > iters[false] {
		t.Errorf("smoothed aggregation did not reduce iterations: %v", iters)
	}
}

func TestSmoothedProlongationPreservesConstants(t *testing.T) {
	// SA prolongation must keep the constant vector in its range:
	// P·1 = (I − ωD⁻¹A)·P₀·1 = 1 − ωD⁻¹·A·1, and for a pure Laplacian
	// A·1 = 0, so P·1 = 1 exactly.
	g := testmat.Grid2D(12, 12)
	l := g.LaplacianCSC()
	agg, nc := aggregate(l, 0.25)
	p := smoothProlongation(l, agg, nc)
	ones := make([]float64, nc)
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, l.Rows)
	p.MulVec(out, ones)
	for i, v := range out {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("P·1 at %d = %g, want 1", i, v)
		}
	}
}

func TestGalerkinPMatchesDense(t *testing.T) {
	r := rng.New(31)
	s := testmat.RandomSDDM(r, 30, 60)
	a := s.ToCSC()
	agg, nc := aggregate(a, 0.25)
	p := smoothProlongation(a, agg, nc)
	pt := p.Transpose()
	ac := galerkinP(a, p, pt)
	// dense check: Ac == Pᵀ A P
	ad := a.Dense()
	pd := p.Dense()
	want := make([][]float64, nc)
	for i := range want {
		want[i] = make([]float64, nc)
	}
	n := a.Rows
	for c := 0; c < nc; c++ {
		for d := 0; d < nc; d++ {
			var sum float64
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					sum += pd[i][c] * ad[i][j] * pd[j][d]
				}
			}
			want[c][d] = sum
		}
	}
	got := ac.Dense()
	if diff := testmat.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("galerkinP differs from dense PᵀAP by %g", diff)
	}
}
