// Package amg implements an aggregation-based algebraic multigrid
// preconditioner, the solver core of the PowerRush simulator [14] the
// paper benchmarks against. The hierarchy is built by greedy strength-
// based aggregation with piecewise-constant (unsmoothed) prolongation and
// Galerkin coarsening; one symmetric Gauss-Seidel sweep smooths before
// and after each coarse-grid correction, keeping the V-cycle symmetric
// positive definite so it is a valid PCG preconditioner.
package amg

import (
	"context"
	"fmt"
	"math"
	"sync"

	"powerrchol/internal/sparse"
)

// Options configure the hierarchy construction.
type Options struct {
	// StrengthTheta: edge (i,j) is a strong connection when
	// |a_ij| >= theta·max_k |a_ik|. 0 means 0.25.
	StrengthTheta float64
	// CoarsestSize stops coarsening once a level is this small; the
	// coarsest system is solved densely. 0 means 64.
	CoarsestSize int
	// MaxLevels bounds the hierarchy depth. 0 means 30.
	MaxLevels int
	// Smoothings is the number of pre- and post-smoothing sweeps. 0 means 1.
	Smoothings int
	// SmoothedAggregation applies one damped-Jacobi smoothing step to the
	// piecewise-constant prolongation, P = (I − ω·D⁻¹·A)·P₀ with ω = 2/3.
	// This is the classic SA-AMG upgrade: denser coarse operators, but a
	// markedly better approximation of smooth error on mesh problems.
	SmoothedAggregation bool
}

type level struct {
	a   *sparse.CSC
	agg []int // fine node -> coarse aggregate (len = n of this level)
	nc  int   // number of aggregates
	// Smoothed-aggregation prolongation and its transpose; nil means the
	// piecewise-constant prolongation implied by agg.
	p, pt *sparse.CSC
}

// scratch holds one V-cycle's worth of work vectors: a residual per
// level plus the coarse-grid right-hand side and correction per level.
// Each Apply call checks one out of a pool so concurrent callers never
// share state.
type scratch struct {
	r  [][]float64 // r[l]: residual on level l, length n_l
	cr [][]float64 // cr[l]: restricted residual, length nc_l
	cx [][]float64 // cx[l]: coarse correction, length nc_l
}

// Preconditioner is a V-cycle AMG preconditioner implementing
// pcg.Preconditioner. After New returns, the hierarchy is read-only and
// Apply is safe for concurrent use by multiple goroutines.
type Preconditioner struct {
	levels  []*level
	coarseL [][]float64 // dense Cholesky factor of the coarsest matrix
	coarseN int
	sweeps  int
	pool    sync.Pool // of *scratch
}

func (p *Preconditioner) getScratch() *scratch {
	//pglint:pool-escapes checkout helper: Apply owns the scratch and returns it via putScratch on its only exit
	if s, ok := p.pool.Get().(*scratch); ok {
		//pglint:poolescape checkout helper: ownership transfers to Apply, which recycles via putScratch on its only exit
		return s
	}
	s := &scratch{
		r:  make([][]float64, len(p.levels)),
		cr: make([][]float64, len(p.levels)),
		cx: make([][]float64, len(p.levels)),
	}
	for i, lv := range p.levels {
		s.r[i] = make([]float64, lv.a.Cols)
		s.cr[i] = make([]float64, lv.nc)
		s.cx[i] = make([]float64, lv.nc)
	}
	return s
}

// Levels reports the hierarchy depth (including the coarsest level).
func (p *Preconditioner) Levels() int { return len(p.levels) + 1 }

// OperatorComplexity is Σ nnz(A_l) / nnz(A_0), the standard AMG setup
// quality metric.
func (p *Preconditioner) OperatorComplexity() float64 {
	if len(p.levels) == 0 {
		return 1
	}
	total := 0
	for _, l := range p.levels {
		total += l.a.NNZ()
	}
	total += p.coarseN * p.coarseN
	return float64(total) / float64(p.levels[0].a.NNZ())
}

// New builds the AMG hierarchy for the SPD matrix a (both triangles
// stored).
func New(a *sparse.CSC, opt Options) (*Preconditioner, error) {
	return NewContext(context.Background(), a, opt)
}

// NewContext is New under a context: ctx is polled once per coarsening
// level (each level's aggregation + Galerkin product is the unit of work
// worth interrupting), and a cancelled or expired context aborts the
// hierarchy construction with an error wrapping ctx.Err(). A nil ctx
// means never cancelled.
func NewContext(ctx context.Context, a *sparse.CSC, opt Options) (*Preconditioner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("amg: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	if opt.StrengthTheta == 0 {
		opt.StrengthTheta = 0.25
	}
	if opt.CoarsestSize == 0 {
		opt.CoarsestSize = 64
	}
	if opt.MaxLevels == 0 {
		opt.MaxLevels = 30
	}
	if opt.Smoothings == 0 {
		opt.Smoothings = 1
	}

	p := &Preconditioner{sweeps: opt.Smoothings}
	cur := a
	for len(p.levels) < opt.MaxLevels-1 && cur.Cols > opt.CoarsestSize {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("amg: setup cancelled at level %d: %w", len(p.levels), err)
		}
		agg, nc := aggregate(cur, opt.StrengthTheta)
		if nc >= cur.Cols { // no coarsening progress; stop
			break
		}
		lv := &level{a: cur, agg: agg, nc: nc}
		if opt.SmoothedAggregation {
			lv.p = smoothProlongation(cur, agg, nc)
			lv.pt = lv.p.Transpose()
			cur = galerkinP(cur, lv.p, lv.pt)
		} else {
			cur = galerkin(cur, agg, nc)
		}
		p.levels = append(p.levels, lv)
	}
	// dense Cholesky of the coarsest level
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("amg: setup cancelled before coarsest solve: %w", err)
	}
	p.coarseN = cur.Cols
	l, err := denseCholesky(cur.Dense())
	if err != nil {
		return nil, fmt.Errorf("amg: coarsest-level factorization: %w", err)
	}
	p.coarseL = l
	return p, nil
}

// denseCholesky factorizes the (small) coarsest-level matrix.
func denseCholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("amg: non-positive coarse pivot %g at %d", d, j)
		}
		l[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / l[j][j]
		}
	}
	return l, nil
}

// aggregate forms aggregates greedily: an unaggregated node whose strong
// neighbors are all unaggregated seeds a new aggregate; leftovers join the
// strongest neighboring aggregate.
func aggregate(a *sparse.CSC, theta float64) ([]int, int) {
	n := a.Cols
	// strongest off-diagonal magnitude per column
	maxOff := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowIdx[p]; i != j {
				if v := math.Abs(a.Val[p]); v > maxOff[j] {
					maxOff[j] = v
				}
			}
		}
	}
	strong := func(j, p int) bool {
		i := a.RowIdx[p]
		return i != j && math.Abs(a.Val[p]) >= theta*maxOff[j]
	}

	agg := make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	nc := 0
	// pass 1: roots with fully-free strong neighborhoods
	for j := 0; j < n; j++ {
		if agg[j] != -1 {
			continue
		}
		free := true
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if strong(j, p) && agg[a.RowIdx[p]] != -1 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[j] = nc
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if strong(j, p) {
				agg[a.RowIdx[p]] = nc
			}
		}
		nc++
	}
	// pass 2: attach leftovers to the strongest adjacent aggregate
	for j := 0; j < n; j++ {
		if agg[j] != -1 {
			continue
		}
		best, bestW := -1, 0.0
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i == j || agg[i] == -1 {
				continue
			}
			if v := math.Abs(a.Val[p]); v > bestW {
				bestW = v
				best = agg[i]
			}
		}
		if best >= 0 {
			agg[j] = best
		} else {
			agg[j] = nc // isolated node: its own aggregate
			nc++
		}
	}
	return agg, nc
}

// galerkin computes A_c = Pᵀ·A·P for the piecewise-constant prolongation
// implied by agg.
func galerkin(a *sparse.CSC, agg []int, nc int) *sparse.CSC {
	coo := sparse.NewCOO(nc, nc, a.NNZ())
	for j := 0; j < a.Cols; j++ {
		cj := agg[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			coo.Add(agg[a.RowIdx[p]], cj, a.Val[p])
		}
	}
	return coo.ToCSC().DropZeros(0)
}

// Apply runs one V-cycle on the residual r from a zero initial guess:
// z = V(0, r). The cycle is symmetric (forward GS pre-smoothing, backward
// GS post-smoothing), so Apply is an SPD operator. Apply is safe for
// concurrent use: all per-cycle work vectors come from a pool.
func (p *Preconditioner) Apply(z, r []float64) {
	s := p.getScratch()
	p.cycle(0, z, r, s)
	p.pool.Put(s)
}

func (p *Preconditioner) cycle(li int, x, b []float64, sc *scratch) {
	if li == len(p.levels) {
		p.coarseSolve(x, b)
		return
	}
	lv := p.levels[li]
	a := lv.a
	r, cr, cx := sc.r[li], sc.cr[li], sc.cx[li]
	sparse.Zero(x)
	for s := 0; s < p.sweeps; s++ {
		gaussSeidelForward(a, x, b)
	}
	// residual r = b - A x
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	// restrict: cr = Pᵀ r
	if lv.pt != nil {
		lv.pt.MulVec(cr, r)
	} else {
		sparse.Zero(cr)
		for i, ai := range lv.agg {
			cr[ai] += r[i]
		}
	}
	p.cycle(li+1, cx, cr, sc)
	// prolong and correct: x += P cx
	if lv.p != nil {
		lv.p.MulVecAdd(x, 1, cx)
	} else {
		for i, ai := range lv.agg {
			x[i] += cx[ai]
		}
	}
	for s := 0; s < p.sweeps; s++ {
		gaussSeidelBackward(a, x, b)
	}
}

func (p *Preconditioner) coarseSolve(x, b []float64) {
	n := p.coarseN
	l := p.coarseL
	copy(x, b)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= l[i][k] * x[k]
		}
		x[i] /= l[i][i]
	}
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= l[k][i] * x[k]
		}
		x[i] /= l[i][i]
	}
}

// gaussSeidelForward performs one forward Gauss-Seidel sweep on A·x = b.
// A is CSC with sorted columns; by symmetry column i doubles as row i.
func gaussSeidelForward(a *sparse.CSC, x, b []float64) {
	for i := 0; i < a.Cols; i++ {
		s := b[i]
		d := 0.0
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			j := a.RowIdx[p]
			if j == i {
				d = a.Val[p]
			} else {
				s -= a.Val[p] * x[j]
			}
		}
		if d != 0 {
			x[i] = s / d
		}
	}
}

func gaussSeidelBackward(a *sparse.CSC, x, b []float64) {
	for i := a.Cols - 1; i >= 0; i-- {
		s := b[i]
		d := 0.0
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			j := a.RowIdx[p]
			if j == i {
				d = a.Val[p]
			} else {
				s -= a.Val[p] * x[j]
			}
		}
		if d != 0 {
			x[i] = s / d
		}
	}
}

// smoothProlongation builds the smoothed-aggregation prolongation
// P = (I − ω·D⁻¹·A)·P₀ with ω = 2/3, where P₀ is the piecewise-constant
// (indicator) prolongation of agg.
func smoothProlongation(a *sparse.CSC, agg []int, nc int) *sparse.CSC {
	const omega = 2.0 / 3.0
	n := a.Cols
	invD := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if a.RowIdx[p] == j && a.Val[p] != 0 {
				invD[j] = 1 / a.Val[p]
			}
		}
	}
	// members[c]: fine nodes of aggregate c (columns of P₀)
	counts := make([]int, nc+1)
	for _, c := range agg {
		counts[c+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	members := make([]int, n)
	next := append([]int(nil), counts[:nc]...)
	for i, c := range agg {
		members[next[c]] = i
		next[c]++
	}

	coo := sparse.NewCOO(n, nc, 4*n)
	x := make([]float64, n)
	var touched []int
	for c := 0; c < nc; c++ {
		touched = touched[:0]
		// column = P₀[:,c] − ω·D⁻¹·A·P₀[:,c]
		for _, i := range members[counts[c]:counts[c+1]] {
			x[i] += 1
			touched = append(touched, i)
			for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
				r := a.RowIdx[p]
				if x[r] == 0 && r != i {
					touched = append(touched, r)
				}
				x[r] -= omega * invD[r] * a.Val[p]
			}
		}
		for _, i := range touched {
			if x[i] != 0 {
				coo.Add(i, c, x[i])
				x[i] = 0
			}
		}
	}
	return coo.ToCSC()
}

// galerkinP computes Ac = Pᵀ·A·P for a general sparse prolongation.
func galerkinP(a, p, pt *sparse.CSC) *sparse.CSC {
	nc := p.Cols
	coo := sparse.NewCOO(nc, nc, 8*nc)
	w := make([]float64, a.Rows) // W[:,c] = A·P[:,c]
	out := make([]float64, nc)   // Ac[:,c] = Pᵀ·W[:,c]
	var wTouched, outTouched []int
	for c := 0; c < nc; c++ {
		wTouched = wTouched[:0]
		for q := p.ColPtr[c]; q < p.ColPtr[c+1]; q++ {
			j := p.RowIdx[q]
			v := p.Val[q]
			for r := a.ColPtr[j]; r < a.ColPtr[j+1]; r++ {
				i := a.RowIdx[r]
				if w[i] == 0 {
					wTouched = append(wTouched, i)
				}
				w[i] += a.Val[r] * v
			}
		}
		outTouched = outTouched[:0]
		for _, i := range wTouched {
			wi := w[i]
			w[i] = 0
			if wi == 0 {
				continue
			}
			// column i of Pᵀ = row i of P
			for q := pt.ColPtr[i]; q < pt.ColPtr[i+1]; q++ {
				rc := pt.RowIdx[q]
				if out[rc] == 0 {
					outTouched = append(outTouched, rc)
				}
				out[rc] += pt.Val[q] * wi
			}
		}
		for _, rc := range outTouched {
			if out[rc] != 0 {
				coo.Add(rc, c, out[rc])
				out[rc] = 0
			}
		}
	}
	return coo.ToCSC()
}
