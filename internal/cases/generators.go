package cases

import (
	"math"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

// Synthetic analogs of the SuiteSparse matrices in the paper's Table 4.
// Each generator reproduces the *class* of its original — power-law social
// network, co-authorship clique union, 2-D/3-D mesh, planar proximity
// graph — which is what differentiates solver behaviour (see DESIGN.md §3).

// barabasiAlbert grows a preferential-attachment graph: each new node
// attaches m edges to existing nodes with probability proportional to
// degree. Produces the heavy-tailed degree distribution of the com-*
// social networks.
func barabasiAlbert(n, m int, r *rng.Rand) *graph.Graph {
	if m < 1 {
		m = 1
	}
	g := graph.New(n, n*m)
	// target list: node ids repeated once per incident edge (degree-
	// proportional sampling by uniform choice from this list)
	targets := make([]int32, 0, 2*n*m)
	// seed clique of m+1 nodes
	seed := m + 1
	if seed > n {
		seed = n
	}
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.MustAddEdge(i, j, 0.5+r.Float64())
			targets = append(targets, int32(i), int32(j))
		}
	}
	attached := make([]int, 0, m)
	for v := seed; v < n; v++ {
		attached = attached[:0]
	sample:
		for len(attached) < m {
			u := int(targets[r.Intn(len(targets))])
			if u == v {
				continue
			}
			for _, a := range attached {
				if a == u {
					continue sample
				}
			}
			attached = append(attached, u)
		}
		for _, u := range attached {
			g.MustAddEdge(u, v, 0.5+r.Float64())
			targets = append(targets, int32(u), int32(v))
		}
	}
	return g.Coalesce()
}

// cliqueUnion models co-paper graphs: overlapping author cliques produce
// very high average degree (coPapersDBLP has nnz/|V| ≈ 57).
func cliqueUnion(n, groups, groupSize int, r *rng.Rand) *graph.Graph {
	g := graph.New(n, groups*groupSize*groupSize/2)
	members := make([]int, 0, 2*groupSize)
	for k := 0; k < groups; k++ {
		sz := 2 + r.Intn(2*groupSize-2)
		// localized membership (authors cluster) plus a few outsiders
		base := r.Intn(n)
		members = members[:0]
		for j := 0; j < sz; j++ {
			var v int
			if r.Float64() < 0.8 {
				v = (base + r.Intn(groupSize*4)) % n
			} else {
				v = r.Intn(n)
			}
			members = append(members, v)
		}
		w := 0.5 + r.Float64()
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] != members[j] {
					g.MustAddEdge(members[i], members[j], w)
				}
			}
		}
	}
	connect(g, r)
	return g.Coalesce()
}

// grid2dW returns an nx×ny 5-point grid with mildly random weights.
func grid2dW(nx, ny int, r *rng.Rand) *graph.Graph {
	g := graph.New(nx*ny, 2*nx*ny)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				g.MustAddEdge(id(x, y), id(x+1, y), 0.5+r.Float64())
			}
			if y+1 < ny {
				g.MustAddEdge(id(x, y), id(x, y+1), 0.5+r.Float64())
			}
		}
	}
	return g
}

// triangulated adds one diagonal per cell to a 2-D grid, modeling FEM
// triangulations (thermal2, NACA0015).
func triangulated(nx, ny int, r *rng.Rand) *graph.Graph {
	g := grid2dW(nx, ny, r)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y+1 < ny; y++ {
		for x := 0; x+1 < nx; x++ {
			if r.Float64() < 0.5 {
				g.MustAddEdge(id(x, y), id(x+1, y+1), 0.3+r.Float64())
			} else {
				g.MustAddEdge(id(x+1, y), id(x, y+1), 0.3+r.Float64())
			}
		}
	}
	return g
}

// grid3d returns an n×n×nz 7-point grid (fe_tooth, fe_ocean analogs).
func grid3d(nx, ny, nz int, r *rng.Rand) *graph.Graph {
	g := graph.New(nx*ny*nz, 3*nx*ny*nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					g.MustAddEdge(id(x, y, z), id(x+1, y, z), 0.5+r.Float64())
				}
				if y+1 < ny {
					g.MustAddEdge(id(x, y, z), id(x, y+1, z), 0.5+r.Float64())
				}
				if z+1 < nz {
					g.MustAddEdge(id(x, y, z), id(x, y, z+1), 0.5+r.Float64())
				}
			}
		}
	}
	return g
}

// gridLongRange is a grid with a sprinkling of random long-range edges
// (G3_circuit analog: a circuit mesh with global nets).
func gridLongRange(nx, ny int, extraFrac float64, r *rng.Rand) *graph.Graph {
	g := grid2dW(nx, ny, r)
	n := nx * ny
	extra := int(extraFrac * float64(n))
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.2+r.Float64())
		}
	}
	return g
}

// planarProximity models census-tract adjacency graphs (mo2010, oh2010):
// a jittered grid where each node connects to nearby nodes.
func planarProximity(nx, ny int, r *rng.Rand) *graph.Graph {
	g := grid2dW(nx, ny, r)
	id := func(x, y int) int { return y*nx + x }
	// irregular extra adjacencies to 2-hop neighbors
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+2 < nx && r.Float64() < 0.3 {
				g.MustAddEdge(id(x, y), id(x+2, y), 0.2+0.5*r.Float64())
			}
			if y+1 < ny && x+1 < nx && r.Float64() < 0.4 {
				g.MustAddEdge(id(x, y), id(x+1, y+1), 0.2+0.5*r.Float64())
			}
		}
	}
	return g
}

// connect stitches graph components together with random edges so every
// generator yields a single component.
func connect(g *graph.Graph, r *rng.Rand) {
	n := g.N
	comp := make([]int, n)
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	for _, e := range g.Edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			comp[rv] = ru
		}
	}
	root := find(0)
	for v := 1; v < n; v++ {
		if rv := find(v); rv != root {
			g.MustAddEdge(v, r.Intn(v), 0.5+r.Float64())
			comp[rv] = root
		}
	}
}

// withSlack wraps a graph as a nonsingular SDDM: a fraction of nodes is
// grounded with slack proportional to its weighted degree, mimicking how
// the Table 4 SDDMs carry their diagonal surplus.
func withSlack(g *graph.Graph, frac, strength float64, r *rng.Rand) *graph.SDDM {
	wd := g.WeightedDegrees()
	d := make([]float64, g.N)
	grounded := false
	for i := range d {
		if r.Float64() < frac {
			d[i] = strength * wd[i]
			grounded = true
		}
	}
	if !grounded && g.N > 0 {
		d[0] = strength * (wd[0] + 1)
	}
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		panic(err) // generators produce valid weights by construction
	}
	return s
}

// randomRHS builds a deterministic right-hand side with entries in
// [-1, 1), scaled so ‖b‖∞ = 1.
func randomRHS(n int, r *rng.Rand) []float64 {
	b := make([]float64, n)
	var m float64
	for i := range b {
		b[i] = 2*r.Float64() - 1
		if a := math.Abs(b[i]); a > m {
			m = a
		}
	}
	if m > 0 {
		for i := range b {
			b[i] /= m
		}
	}
	return b
}
