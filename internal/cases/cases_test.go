package cases

import (
	"testing"

	"powerrchol/internal/pcg"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("expected 28 cases, got %d", len(all))
	}
	for i, c := range all {
		if c.ID != i+1 {
			t.Errorf("case %d has ID %d", i, c.ID)
		}
		if c.Name == "" || c.Build == nil {
			t.Errorf("case %d incomplete: %+v", i, c)
		}
	}
	pg := PowerGrid()
	if len(pg) != 16 || pg[0].Name != "ibmpg3" || pg[15].Name != "thupg10" {
		t.Errorf("power-grid registry wrong: %d cases", len(pg))
	}
	t4 := Table4()
	if len(t4) != 12 || t4[0].Name != "com-Youtube" || t4[11].Name != "oh2010" {
		t.Errorf("table-4 registry wrong: %d cases", len(t4))
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("thupg1")
	if err != nil || c.ID != 7 {
		t.Fatalf("ByName(thupg1) = %+v, %v", c, err)
	}
	if _, err := ByName("doesnotexist"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestEveryCaseBuildsAndIsWellFormed(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			p, err := c.Build(0.12) // tiny instances for test speed
			if err != nil {
				t.Fatal(err)
			}
			if p.Sys.N() == 0 || len(p.B) != p.Sys.N() {
				t.Fatalf("malformed problem: n=%d len(b)=%d", p.Sys.N(), len(p.B))
			}
			if !p.Sys.G.Connected() {
				t.Fatal("disconnected system")
			}
			var slack float64
			for _, d := range p.Sys.D {
				slack += d
			}
			if slack <= 0 {
				t.Fatal("singular system: no slack")
			}
			if err := p.Sys.ToCSC().Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCasesAreDeterministic(t *testing.T) {
	c, err := ByName("com-DBLP")
	if err != nil {
		t.Fatal(err)
	}
	p1, err1 := c.Build(0.1)
	p2, err2 := c.Build(0.1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1.Sys.N() != p2.Sys.N() || p1.Sys.G.M() != p2.Sys.G.M() {
		t.Fatal("same scale produced different problems")
	}
	for i := range p1.B {
		if p1.B[i] != p2.B[i] {
			t.Fatal("rhs not deterministic")
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	c, _ := ByName("ecology2")
	small, err := c.Build(0.1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.Build(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if large.Sys.N() <= small.Sys.N() {
		t.Fatalf("scale 0.2 (%d nodes) not larger than 0.1 (%d nodes)",
			large.Sys.N(), small.Sys.N())
	}
}

func TestPowerLawCasesHaveHeavyTail(t *testing.T) {
	c, _ := ByName("com-Youtube")
	p, err := c.Build(0.15)
	if err != nil {
		t.Fatal(err)
	}
	degs := p.Sys.G.Degrees()
	maxDeg, sum := 0, 0
	for _, d := range degs {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(len(degs))
	if float64(maxDeg) < 8*avg {
		t.Errorf("max degree %d vs avg %.1f: not heavy-tailed", maxDeg, avg)
	}
}

func TestCoPapersIsDense(t *testing.T) {
	cop, _ := ByName("coPapersDBLP")
	yt, _ := ByName("com-Youtube")
	p1, err := cop.Build(0.15)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := yt.Build(0.15)
	if err != nil {
		t.Fatal(err)
	}
	r1 := float64(p1.NNZ()) / float64(p1.Sys.N())
	r2 := float64(p2.NNZ()) / float64(p2.Sys.N())
	if r1 < 2*r2 {
		t.Errorf("coPapersDBLP density %.1f not well above com-Youtube %.1f", r1, r2)
	}
}

func TestSmallCaseSolvable(t *testing.T) {
	c, _ := ByName("ibmpg3")
	p, err := c.Build(0.12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pcg.Solve(p.Sys.ToCSC(), p.B, nil, pcg.Options{Tol: 1e-6, MaxIter: 5000})
	if err != nil || !res.Converged {
		t.Fatalf("tiny ibmpg3 not solvable: %v", err)
	}
}
