// Package cases registers the 28 benchmark problems of the paper's
// evaluation: 16 power-grid cases standing in for the IBM (ibmpg3-8) and
// THU (thupg1-10) benchmarks, and 12 synthetic analogs of the SuiteSparse
// matrices used in Table 4. Every case is deterministic in its seed and
// scales with a single linear factor so the full suite runs anywhere from
// unit-test size to benchmark size.
package cases

import (
	"fmt"
	"math"

	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/rng"
)

// Problem is one ready-to-solve benchmark instance.
type Problem struct {
	Name string
	Sys  *graph.SDDM
	B    []float64
}

// NNZ returns the nonzero count of the assembled matrix.
func (p *Problem) NNZ() int { return p.Sys.NNZ() }

// Case is a named, scalable benchmark generator. ID follows the paper's
// numbering: 1-16 are the power-grid cases of Tables 1-3, 17-28 the
// Table 4 cases.
type Case struct {
	ID    int
	Name  string
	Kind  string // "powergrid" or "sdd-analog"
	Build func(scale float64) (*Problem, error)
}

// pgSides holds the default lattice side per power-grid case at scale 1,
// chosen so relative sizes track the paper's |V| column while the largest
// case stays laptop-sized (see DESIGN.md §3 on size scaling).
var pgSides = []struct {
	name   string
	side   int
	layers int
}{
	{"ibmpg3", 48, 4},
	{"ibmpg4", 50, 4},
	{"ibmpg5", 54, 4},
	{"ibmpg6", 66, 4},
	{"ibmpg7", 62, 4},
	{"ibmpg8", 66, 4},
	{"thupg1", 105, 5},
	{"thupg2", 145, 5},
	{"thupg3", 168, 5},
	{"thupg4", 188, 5},
	{"thupg5", 217, 5},
	{"thupg6", 238, 5},
	{"thupg7", 262, 5},
	{"thupg8", 300, 5},
	{"thupg9", 342, 5},
	{"thupg10", 368, 5},
}

// PowerGrid returns cases 1-16.
func PowerGrid() []Case {
	cs := make([]Case, len(pgSides))
	for i, pg := range pgSides {
		pg := pg
		id := i + 1
		cs[i] = Case{
			ID:   id,
			Name: pg.name,
			Kind: "powergrid",
			Build: func(scale float64) (*Problem, error) {
				side := scaledSide(pg.side, scale)
				g, err := powergrid.Generate(powergrid.Spec{
					Name:   pg.name,
					NX:     side,
					NY:     side,
					Layers: pg.layers,
					// sparse C4 pads, as on real dies: conditioning (and
					// PCG iteration counts) track the paper's benchmarks
					PadPitch: 48,
					Seed:     uint64(1000 + id),
				})
				if err != nil {
					return nil, err
				}
				return &Problem{Name: pg.name, Sys: g.Sys, B: g.B}, nil
			},
		}
	}
	return cs
}

func scaledSide(base int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	s := int(math.Round(float64(base) * scale))
	if s < 6 {
		s = 6
	}
	return s
}

func scaledN(base int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	// node counts scale with the square of the linear factor so that
	// scale has the same meaning for meshes and graphs
	n := int(math.Round(float64(base) * scale * scale))
	if n < 30 {
		n = 30
	}
	return n
}

// Table4 returns cases 17-28: analogs of the SuiteSparse problems.
func Table4() []Case {
	type spec struct {
		name  string
		build func(scale float64, r *rng.Rand) *graph.SDDM
	}
	specs := []spec{
		{"com-Youtube", func(sc float64, r *rng.Rand) *graph.SDDM {
			// heavy-tailed social graph; light regularization everywhere
			g := barabasiAlbert(scaledN(40000, sc), 3, r)
			return withSlack(g, 1.0, 1e-3, r)
		}},
		{"com-Amazon", func(sc float64, r *rng.Rand) *graph.SDDM {
			g := barabasiAlbert(scaledN(24000, sc), 3, r)
			return withSlack(g, 1.0, 1e-3, r)
		}},
		{"com-DBLP", func(sc float64, r *rng.Rand) *graph.SDDM {
			g := barabasiAlbert(scaledN(24000, sc), 4, r)
			return withSlack(g, 1.0, 1e-3, r)
		}},
		{"coPapersDBLP", func(sc float64, r *rng.Rand) *graph.SDDM {
			n := scaledN(12000, sc)
			g := cliqueUnion(n, n/2, 10, r)
			return withSlack(g, 1.0, 1e-3, r)
		}},
		{"ecology2", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(180, sc)
			return withSlack(grid2dW(side, side, r), 0.02, 0.5, r)
		}},
		{"thermal2", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(190, sc)
			return withSlack(triangulated(side, side, r), 0.02, 0.5, r)
		}},
		{"G3_circuit", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(220, sc)
			return withSlack(gridLongRange(side, side, 0.02, r), 0.02, 0.5, r)
		}},
		{"NACA0015", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(180, sc)
			return withSlack(triangulated(side, side, r), 0.02, 0.5, r)
		}},
		{"fe_tooth", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(26, sc)
			return withSlack(grid3d(side, side, side/2+2, r), 0.02, 0.5, r)
		}},
		{"fe_ocean", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(32, sc)
			return withSlack(grid3d(side, side, side/3+2, r), 0.02, 0.5, r)
		}},
		{"mo2010", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(140, sc)
			return withSlack(planarProximity(side, side, r), 0.02, 0.5, r)
		}},
		{"oh2010", func(sc float64, r *rng.Rand) *graph.SDDM {
			side := scaledSide(145, sc)
			return withSlack(planarProximity(side, side, r), 0.02, 0.5, r)
		}},
	}
	cs := make([]Case, len(specs))
	for i, sp := range specs {
		sp := sp
		id := 17 + i
		cs[i] = Case{
			ID:   id,
			Name: sp.name,
			Kind: "sdd-analog",
			Build: func(scale float64) (*Problem, error) {
				r := rng.New(uint64(7000 + id))
				sys := sp.build(scale, r)
				if !sys.G.Connected() {
					return nil, fmt.Errorf("cases: %s generator produced a disconnected graph", sp.name)
				}
				return &Problem{Name: sp.name, Sys: sys, B: randomRHS(sys.N(), r)}, nil
			},
		}
	}
	return cs
}

// All returns the full 28-case suite in paper order.
func All() []Case {
	return append(PowerGrid(), Table4()...)
}

// ByName finds a case by its paper name.
func ByName(name string) (Case, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("cases: unknown case %q", name)
}
