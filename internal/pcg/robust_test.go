package pcg

import (
	"context"
	"errors"
	"math"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// Robustness unit tests for the detection and cancellation machinery:
// stagnation, divergence, best-iterate tracking, context aborts, and
// non-finite right-hand sides. The corresponding end-to-end ladder tests
// live in the repository root's recovery_test.go.

// noisePrecond returns deterministic pseudo-random directions with
// rᵀz > 0: formally a valid step for CG's guards, useless for progress.
// It is a local copy of internal/faultinject's ModeStagnate (pcg cannot
// import faultinject — faultinject imports pcg).
type noisePrecond struct {
	seed  uint64
	calls int
}

func (p *noisePrecond) Apply(z, r []float64) {
	rnd := rng.New(p.seed + uint64(p.calls)*0x9e3779b97f4a7c15)
	p.calls++
	dot := 0.0
	for i := range z {
		z[i] = rnd.Float64() - 0.5
		dot += z[i] * r[i]
	}
	if dot < 0 {
		for i := range z {
			z[i] = -z[i]
		}
	}
}

func TestStagnationDetected(t *testing.T) {
	s := testmat.GridSDDM(20, 20)
	a := s.ToCSC()
	r := rng.New(3)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	res, err := Solve(a, b, &noisePrecond{seed: 5}, Options{
		Tol: 1e-10, MaxIter: 500, StagnationWindow: 25, StagnationFactor: 0.5,
	})
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("got %v, want ErrStagnated", err)
	}
	if res == nil || res.X == nil {
		t.Fatal("stagnated solve must return the best iterate")
	}
	if res.Iterations <= 25 {
		t.Fatalf("stagnation fired after %d iterations, before the window could fill", res.Iterations)
	}
	if res.BestIteration == 0 || res.BestIteration > res.Iterations {
		t.Fatalf("BestIteration = %d out of range (ran %d)", res.BestIteration, res.Iterations)
	}
	// The reported residual must be the best in the history.
	for _, h := range res.History {
		if res.Residual > h {
			t.Fatalf("reported residual %g is worse than history entry %g", res.Residual, h)
		}
	}
}

func TestStagnationDoesNotFireOnHealthyRun(t *testing.T) {
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	r := rng.New(6)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	plain, err := Solve(a, b, nil, Options{Tol: 1e-10, MaxIter: 2000})
	if err != nil || !plain.Converged {
		t.Fatalf("baseline: %v", err)
	}
	guarded, err := Solve(a, b, nil, Options{
		Tol: 1e-10, MaxIter: 2000,
		StagnationWindow: 50, DivergenceFactor: 1e4,
	})
	if err != nil || !guarded.Converged {
		t.Fatalf("detection aborted a healthy run: %v", err)
	}
	if plain.Iterations != guarded.Iterations {
		t.Fatalf("detection changed iterations: %d vs %d", plain.Iterations, guarded.Iterations)
	}
	for i := range plain.X {
		if math.Float64bits(plain.X[i]) != math.Float64bits(guarded.X[i]) {
			t.Fatalf("detection changed the solution at %d", i)
		}
	}
}

func TestDivergenceDetected(t *testing.T) {
	s := testmat.GridSDDM(20, 20)
	a := s.ToCSC()
	r := rng.New(3)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	// The noise preconditioner makes the 2-norm residual bounce; any
	// bounce above 1+ε of the best trips an aggressive guard.
	res, err := Solve(a, b, &noisePrecond{seed: 5}, Options{
		Tol: 1e-10, MaxIter: 500, DivergenceFactor: 1.0001,
	})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("got %v, want ErrDiverged", err)
	}
	if res == nil || res.X == nil {
		t.Fatal("diverged solve must return the best iterate")
	}
}

func TestCancelBeforeStart(t *testing.T) {
	s := testmat.GridSDDM(10, 10)
	a := s.ToCSC()
	b := make([]float64, s.N())
	b[0] = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(a, b, nil, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled solve must still return a result shell")
	}
}

func TestCancelMidIteration(t *testing.T) {
	s := testmat.GridSDDM(30, 30)
	a := s.ToCSC()
	r := rng.New(9)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	iterations := 0
	// Cancel from inside the operator after a few products: the loop's
	// per-iteration check must stop the solve on the next iteration.
	mul := func(y, x []float64) {
		iterations++
		if iterations == 5 {
			cancel()
		}
		a.MulVec(y, x)
	}
	res, err := SolveOp(a.Rows, mul, b, nil, Options{Tol: 1e-14, MaxIter: 10000, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res.Iterations < 4 || res.Iterations > 6 {
		t.Fatalf("cancelled after %d iterations, want ~5 (prompt abort)", res.Iterations)
	}
}

func TestNonFiniteRHSRejected(t *testing.T) {
	s := testmat.GridSDDM(5, 5)
	a := s.ToCSC()
	b := make([]float64, s.N())
	b[3] = math.NaN()
	if _, err := Solve(a, b, nil, Options{}); err == nil {
		t.Fatal("NaN rhs accepted")
	}
	b[3] = math.Inf(1)
	if _, err := Solve(a, b, nil, Options{}); err == nil {
		t.Fatal("Inf rhs accepted")
	}
}

func TestBestIterateOnCapReturnsBest(t *testing.T) {
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	r := rng.New(14)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	res, err := Solve(a, b, &noisePrecond{seed: 8}, Options{Tol: 1e-12, MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("noise preconditioner should not converge in 40 iterations")
	}
	best := math.Inf(1)
	for _, h := range res.History {
		if h < best {
			best = h
		}
	}
	if res.Residual != best {
		t.Fatalf("capped run returned residual %g, best seen was %g", res.Residual, best)
	}
	// And the X actually achieves that residual.
	y := make([]float64, a.Rows)
	a.MulVec(y, res.X)
	num, den := 0.0, 0.0
	for i := range y {
		d := b[i] - y[i]
		num += d * d
		den += b[i] * b[i]
	}
	got := math.Sqrt(num) / math.Sqrt(den)
	if math.Abs(got-res.Residual)/res.Residual > 1e-10 {
		t.Fatalf("returned X has residual %g, result claims %g", got, res.Residual)
	}
}
