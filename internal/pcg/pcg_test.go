package pcg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestSolveMatchesDenseReference(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%25) + 2
		s := testmat.RandomSDDM(r, n, 2*n)
		a := s.ToCSC()
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}
		res, err := Solve(a, b, nil, Options{Tol: 1e-12, MaxIter: 10 * n})
		if err != nil || !res.Converged {
			return false
		}
		want, err := testmat.DenseSolveSPD(a.Dense(), b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJacobiPreconditionerReducesIterations(t *testing.T) {
	// A badly-scaled diagonal makes plain CG crawl; Jacobi fixes scaling.
	r := rng.New(4)
	n := 120
	s := testmat.RandomSDDM(r, n, 2*n)
	a := s.ToCSC()
	// rescale: A <- S·A·S with wildly varying S would break SDDM form, so
	// instead inflate slack on a few rows to spread the spectrum.
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	plain, err := Solve(a, b, nil, Options{Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := Solve(a, b, j, Options{Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !prec.Converged {
		t.Fatalf("convergence: plain=%v prec=%v", plain.Converged, prec.Converged)
	}
	if prec.Iterations > plain.Iterations+5 {
		t.Errorf("Jacobi (%d iters) much worse than plain CG (%d iters)",
			prec.Iterations, plain.Iterations)
	}
}

func TestHistoryMonotoneEnough(t *testing.T) {
	r := rng.New(8)
	s := testmat.GridSDDM(16, 16)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	res, err := Solve(a, b, nil, Options{Tol: 1e-8, MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
	if res.History[len(res.History)-1] != res.Residual {
		t.Error("last history entry != final residual")
	}
}

func TestZeroRHS(t *testing.T) {
	s := testmat.GridSDDM(4, 4)
	a := s.ToCSC()
	res, err := Solve(a, make([]float64, s.N()), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestIndefiniteDetected(t *testing.T) {
	// -I is symmetric negative definite.
	c := sparse.NewCOO(3, 3, 3)
	for i := 0; i < 3; i++ {
		c.Add(i, i, -1)
	}
	a := c.ToCSC()
	_, err := Solve(a, []float64{1, 2, 3}, nil, Options{})
	if !errors.Is(err, ErrIndefinite) {
		t.Fatalf("got %v, want ErrIndefinite", err)
	}
}

func TestMaxIterRespected(t *testing.T) {
	r := rng.New(12)
	s := testmat.GridSDDM(40, 40)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	res, err := Solve(a, b, nil, Options{Tol: 1e-14, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("expected exactly 3 non-converged iterations, got %d (conv=%v)",
			res.Iterations, res.Converged)
	}
}

func TestRHSLengthValidated(t *testing.T) {
	s := testmat.GridSDDM(3, 3)
	if _, err := Solve(s.ToCSC(), make([]float64, 5), nil, Options{}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestNewJacobiRejectsZeroDiagonal(t *testing.T) {
	c := sparse.NewCOO(2, 2, 1)
	c.Add(0, 0, 1) // row 1 has empty diagonal
	if _, err := NewJacobi(c.ToCSC()); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}
