package pcg

import (
	"math"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestSSORSolves(t *testing.T) {
	r := rng.New(2)
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	m, err := NewSSOR(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	res, err := Solve(a, b, m, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil || !res.Converged {
		t.Fatalf("SSOR-PCG failed: %v", err)
	}
	plain, err := Solve(a, b, nil, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= plain.Iterations {
		t.Fatalf("SSOR (%d) no better than plain CG (%d)", res.Iterations, plain.Iterations)
	}
	t.Logf("24x24 grid: plain %d iters, SSOR %d iters", plain.Iterations, res.Iterations)
}

// SSOR must be a symmetric positive definite operator or CG theory breaks.
func TestSSORIsSymmetricPositiveDefinite(t *testing.T) {
	r := rng.New(4)
	s := testmat.RandomSDDM(r, 50, 100)
	a := s.ToCSC()
	for _, omega := range []float64{0.5, 1.0, 1.2, 1.8} {
		m, err := NewSSOR(a, omega)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 50)
		y := make([]float64, 50)
		zx := make([]float64, 50)
		zy := make([]float64, 50)
		for i := range x {
			x[i] = r.Float64() - 0.5
			y[i] = r.Float64() - 0.5
		}
		m.Apply(zx, x)
		m.Apply(zy, y)
		if sparse.Dot(x, zx) <= 0 {
			t.Fatalf("omega=%g: not positive definite", omega)
		}
		lhs := sparse.Dot(y, zx)
		rhs := sparse.Dot(x, zy)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("omega=%g: not symmetric: %g vs %g", omega, lhs, rhs)
		}
	}
}

// For omega=1 SSOR is symmetric Gauss-Seidel: M = (D+L) D⁻¹ (D+Lᵀ).
// Verify M⁻¹ against an explicit dense construction.
func TestSSOROmegaOneMatchesDenseSGS(t *testing.T) {
	r := rng.New(9)
	s := testmat.RandomSDDM(r, 12, 20)
	a := s.ToCSC()
	n := 12
	m, err := NewSSOR(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dense := a.Dense()
	// build M = (D+L) D^-1 (D+L)^T densely
	dl := make([][]float64, n) // D + L
	for i := range dl {
		dl[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			dl[i][j] = dense[i][j]
		}
	}
	mm := make([][]float64, n)
	for i := range mm {
		mm[i] = make([]float64, n)
		for j := range mm[i] {
			var sum float64
			for k := 0; k < n; k++ {
				sum += dl[i][k] / dense[k][k] * dl[j][k]
			}
			mm[i][j] = sum
		}
	}
	rr := make([]float64, n)
	for i := range rr {
		rr[i] = r.Float64() - 0.5
	}
	z := make([]float64, n)
	m.Apply(z, rr)
	want, err := testmat.DenseSolveSPD(mm, rr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(z[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("z[%d] = %g, want %g", i, z[i], want[i])
		}
	}
}

func TestNewSSORValidates(t *testing.T) {
	s := testmat.GridSDDM(3, 3)
	a := s.ToCSC()
	if _, err := NewSSOR(a, 2.5); err == nil {
		t.Error("omega out of range accepted")
	}
	if _, err := NewSSOR(sparse.NewCSC(2, 3, 0), 1); err == nil {
		t.Error("non-square accepted")
	}
	c := sparse.NewCOO(2, 2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	if _, err := NewSSOR(c.ToCSC(), 1); err == nil {
		t.Error("non-positive diagonal accepted")
	}
}
