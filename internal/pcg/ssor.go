package pcg

import (
	"fmt"
	"sync"

	"powerrchol/internal/sparse"
)

// SSOR is the symmetric successive over-relaxation preconditioner
//
//	M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + Lᵀ) · ω/(2−ω)
//
// for A = L + D + Lᵀ. A classic matrix-free power-grid baseline: no
// setup cost at all (beyond a copy of A), but condition-number reduction
// far weaker than a Cholesky-based preconditioner — a useful extra point
// between Jacobi and the factorization methods.
type SSOR struct {
	a     *sparse.CSC
	omega float64
	diag  []float64
	pool  sync.Pool // of []float64, length a.Rows
}

// NewSSOR builds the preconditioner; omega must lie in (0, 2), with 0
// meaning 1.2 (a robust default for mesh-like SDDMs).
func NewSSOR(a *sparse.CSC, omega float64) (*SSOR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("pcg: SSOR needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if omega == 0 {
		omega = 1.2
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("pcg: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diag()
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("pcg: non-positive diagonal %g at %d", v, i)
		}
	}
	return &SSOR{a: a, omega: omega, diag: d}, nil
}

// Apply computes z = M⁻¹·r via one forward and one backward sweep. By
// symmetry of A, row i of the strict lower triangle is read from column i
// (entries with index > i), so no transpose copy is needed. Apply is safe
// for concurrent use: the sweep buffer is drawn from a pool per call.
func (s *SSOR) Apply(z, r []float64) {
	w, ok := s.pool.Get().([]float64)
	if !ok || len(w) != s.a.Rows {
		w = make([]float64, s.a.Rows)
	}
	defer s.pool.Put(w)
	a, om := s.a, s.omega
	n := a.Rows
	// Hoisted operand windows and a carried column-pointer walk (see
	// sparse/trisolve.go) leave only the data-dependent scatter/gather
	// bounds-checked; the sweep arithmetic is order-identical.
	w = w[:n]
	z = z[:n]
	diag := s.diag[:n]
	colPtr, rowIdx, val := a.ColPtr, a.RowIdx, a.Val
	// forward: (D/ω + L)·w = r, traversing columns ascending and
	// scattering column i's below-diagonal entries after w[i] is final.
	copy(w, r)
	p := colPtr[0]
	for i, end := range colPtr[1 : n+1 : n+1] {
		w[i] *= om / diag[i]
		wi := w[i]
		rows := rowIdx[p:end]
		vals := val[p:end]
		vals = vals[:len(rows)]
		for k, j := range rows {
			if j > i {
				w[j] -= vals[k] * wi
			}
		}
		p = end
	}
	// scale by D/ω · (2-ω)/ω  =>  overall (2−ω)/ω · D
	for i := range w {
		w[i] *= (2 - om) / om * diag[i]
	}
	// backward: (D/ω + Lᵀ)·z = w, gathering column i's below-diagonal
	// entries (= row i of Lᵀ) from already-final z[j], j > i.
	end := colPtr[n]
	for i := n - 1; i >= 0; i-- {
		p := colPtr[i]
		sum := w[i]
		rows := rowIdx[p:end]
		vals := val[p:end]
		vals = vals[:len(rows)]
		for k, j := range rows {
			if j > i {
				sum -= vals[k] * z[j]
			}
		}
		z[i] = sum * om / diag[i]
		end = p
	}
}
