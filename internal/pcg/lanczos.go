package pcg

import (
	"errors"
	"fmt"
	"math"

	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// ConditionEstimate estimates κ(M⁻¹A) — the quantity that governs PCG
// convergence — by running `iters` steps of preconditioned CG on a random
// right-hand side and extracting the extreme eigenvalues of the
// associated Lanczos tridiagonal (built from the CG α/β coefficients).
// The Ritz values converge to the extreme eigenvalues from the inside, so
// the returned estimate is a (usually tight) lower bound on κ.
func ConditionEstimate(a *sparse.CSC, m Preconditioner, iters int, seed uint64) (float64, error) {
	mul := func(y, x []float64) { a.MulVec(y, x) }
	return ConditionEstimateOp(a.Rows, mul, m, iters, seed)
}

// ConditionEstimateOp is ConditionEstimate for an implicit operator
// y = A·x, for callers that keep the system in a non-CSC representation
// (e.g. compact-index storage).
func ConditionEstimateOp(n int, mul func(y, x []float64), m Preconditioner, iters int, seed uint64) (float64, error) {
	if n == 0 {
		return 1, nil
	}
	if iters <= 0 {
		iters = 30
	}
	if iters > n {
		iters = n
	}
	if m == nil {
		m = Identity{}
	}
	r := make([]float64, n)
	rnd := rng.New(seed ^ 0xa5a5a5a5)
	for i := range r {
		r[i] = rnd.Float64() - 0.5
	}
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.Apply(z, r)
	copy(p, z)
	rz := sparse.Dot(r, z)
	// NaN fails every ordered comparison, so test non-finiteness explicitly
	// or a poisoned preconditioner sails through the definiteness guard.
	if math.IsNaN(rz) || math.IsInf(rz, 0) {
		return 0, fmt.Errorf("pcg: non-finite r'z=%g in ConditionEstimate", rz)
	}
	if rz <= 0 {
		return 0, errors.New("pcg: preconditioner not positive definite in ConditionEstimate")
	}

	rz0 := rz
	var alphas, betas []float64
	for k := 0; k < iters; k++ {
		mul(ap, p)
		pap := sparse.Dot(p, ap)
		if math.IsNaN(pap) || math.IsInf(pap, 0) {
			return 0, fmt.Errorf("pcg: non-finite curvature p'Ap=%g in ConditionEstimate", pap)
		}
		if pap <= 0 {
			return 0, fmt.Errorf("pcg: operator not positive definite (p'Ap=%g)", pap)
		}
		alpha := rz / pap
		sparse.Axpy(r, -alpha, ap)
		m.Apply(z, r)
		rzNew := sparse.Dot(r, z)
		alphas = append(alphas, alpha)
		// Stop once the residual reaches rounding level: Lanczos vectors
		// past this point are numerical noise and produce spurious Ritz
		// values (machine-epsilon² relative to the starting residual).
		// Non-finite rz means the recurrence has collapsed (near-singular
		// operator): truncate to the coefficients gathered so far.
		if rzNew <= 1e-28*rz0 || rzNew <= 0 ||
			math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			break
		}
		beta := rzNew / rz
		betas = append(betas, beta)
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}

	// Lanczos tridiagonal from the CG coefficients:
	//   T[j,j]   = 1/α_j + β_{j-1}/α_{j-1}
	//   T[j,j+1] = sqrt(β_j)/α_j
	k := len(alphas)
	diag := make([]float64, k)
	off := make([]float64, k-1)
	for j := 0; j < k; j++ {
		diag[j] = 1 / alphas[j]
		if j > 0 {
			diag[j] += betas[j-1] / alphas[j-1]
		}
		if j < k-1 {
			off[j] = math.Sqrt(betas[j]) / alphas[j]
		}
	}
	lo, hi := tridiagExtremes(diag, off)
	if lo <= 0 {
		return 0, errors.New("pcg: non-positive Ritz value in ConditionEstimate")
	}
	return hi / lo, nil
}

// tridiagExtremes returns the smallest and largest eigenvalues of the
// symmetric tridiagonal (diag, off) by Sturm-sequence bisection.
func tridiagExtremes(diag, off []float64) (lo, hi float64) {
	n := len(diag)
	if n == 1 {
		return diag[0], diag[0]
	}
	// Gershgorin bounds
	gLo, gHi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		radius := 0.0
		if i > 0 {
			radius += math.Abs(off[i-1])
		}
		if i < n-1 {
			radius += math.Abs(off[i])
		}
		if v := diag[i] - radius; v < gLo {
			gLo = v
		}
		if v := diag[i] + radius; v > gHi {
			gHi = v
		}
	}
	// count(x) = number of eigenvalues < x, via the Sturm LDLᵀ recurrence
	count := func(x float64) int {
		c := 0
		d := 1.0
		for i := 0; i < n; i++ {
			e := 0.0
			if i > 0 {
				e = off[i-1]
			}
			d = diag[i] - x - e*e/d
			if d == 0 {
				d = 1e-300
			}
			if d < 0 {
				c++
			}
		}
		return c
	}
	bisect := func(target int) float64 {
		a, b := gLo, gHi
		for iter := 0; iter < 200 && b-a > 1e-12*(math.Abs(a)+math.Abs(b)+1); iter++ {
			mid := 0.5 * (a + b)
			if count(mid) < target {
				a = mid
			} else {
				b = mid
			}
		}
		return 0.5 * (a + b)
	}
	return bisect(1), bisect(n) // first and last eigenvalue
}
