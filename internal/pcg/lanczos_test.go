package pcg

import (
	"math"
	"testing"

	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func TestConditionEstimateDiagonal(t *testing.T) {
	// For a diagonal matrix the condition number is exactly max/min.
	n := 50
	c := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(i+1)) // eigenvalues 1..50
	}
	a := c.ToCSC()
	kappa, err := ConditionEstimate(a, nil, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kappa-50)/50 > 0.05 {
		t.Fatalf("κ estimate %g, want ~50", kappa)
	}
}

func TestConditionEstimateJacobiImproves(t *testing.T) {
	// Jacobi normalizes a badly scaled diagonal-dominant matrix; the
	// preconditioned κ must drop dramatically.
	n := 80
	c := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%5))
		c.Add(i, i, 2*scale)
		if i+1 < n {
			c.Add(i, i+1, -0.5*math.Min(scale, math.Pow(10, float64((i+1)%5))))
			c.Add(i+1, i, -0.5*math.Min(scale, math.Pow(10, float64((i+1)%5))))
		}
	}
	a := c.ToCSC()
	plain, err := ConditionEstimate(a, nil, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := ConditionEstimate(a, j, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prec > plain/10 {
		t.Fatalf("Jacobi κ %g not much below plain κ %g", prec, plain)
	}
}

func TestConditionEstimateGrid(t *testing.T) {
	// κ of a 2-D grid Laplacian grows like n²; just check it is sane and
	// larger than a well-conditioned matrix's.
	s := testmat.GridSDDM(20, 20)
	kappa, err := ConditionEstimate(s.ToCSC(), nil, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 10 || kappa > 1e7 {
		t.Fatalf("grid κ estimate %g out of plausible range", kappa)
	}
}

func TestTridiagExtremes(t *testing.T) {
	// 2x2 [[2,1],[1,2]] has eigenvalues 1 and 3.
	lo, hi := tridiagExtremes([]float64{2, 2}, []float64{1})
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Fatalf("eigenvalues (%g, %g), want (1, 3)", lo, hi)
	}
	// 1x1
	lo, hi = tridiagExtremes([]float64{5}, nil)
	if lo != 5 || hi != 5 {
		t.Fatalf("1x1 eigenvalues (%g, %g)", lo, hi)
	}
	// Toeplitz tridiag(-1, 2, -1) of size 5: λ_k = 2-2cos(kπ/6)
	d := []float64{2, 2, 2, 2, 2}
	e := []float64{-1, -1, -1, -1}
	lo, hi = tridiagExtremes(d, e)
	wantLo := 2 - 2*math.Cos(math.Pi/6)
	wantHi := 2 - 2*math.Cos(5*math.Pi/6)
	if math.Abs(lo-wantLo) > 1e-9 || math.Abs(hi-wantHi) > 1e-9 {
		t.Fatalf("eigenvalues (%g, %g), want (%g, %g)", lo, hi, wantLo, wantHi)
	}
}

func TestConditionEstimateRejectsIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2, 2)
	c.Add(0, 0, -1)
	c.Add(1, 1, -1)
	if _, err := ConditionEstimate(c.ToCSC(), nil, 10, 1); err == nil {
		t.Fatal("negative definite matrix accepted")
	}
}

func TestConditionEstimateSingularLaplacian(t *testing.T) {
	// An ungrounded path-graph Laplacian: row sums are exactly zero, so
	// the matrix is singular (nullspace = constants). The estimate must
	// not panic or return garbage — either an error or a huge κ (the
	// smallest Ritz value approaches the zero eigenvalue from above).
	const n = 50
	c := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		d := 0.0
		if i > 0 {
			c.Add(i, i-1, -1)
			d++
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
			d++
		}
		c.Add(i, i, d)
	}
	kappa, err := ConditionEstimate(c.ToCSC(), nil, n, 7)
	if err == nil {
		if math.IsNaN(kappa) || math.IsInf(kappa, 0) {
			t.Fatalf("singular system produced non-finite estimate %g", kappa)
		}
		if kappa < 1e2 {
			t.Fatalf("singular system reported a benign κ = %g", kappa)
		}
	}
}

// nanPrecond poisons the preconditioned residual with NaN.
type nanPrecond struct{}

func (nanPrecond) Apply(z, r []float64) {
	copy(z, r)
	z[0] = math.NaN()
}

func TestConditionEstimateRejectsNaNPreconditioner(t *testing.T) {
	c := sparse.NewCOO(3, 3, 3)
	for i := 0; i < 3; i++ {
		c.Add(i, i, 1)
	}
	if _, err := ConditionEstimate(c.ToCSC(), nanPrecond{}, 10, 1); err == nil {
		t.Fatal("NaN-producing preconditioner accepted")
	}
}
