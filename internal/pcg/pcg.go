// Package pcg implements the preconditioned conjugate gradient method,
// the outer iteration of every solver in the paper's evaluation.
package pcg

import (
	"errors"
	"fmt"
	"math"

	"powerrchol/internal/sparse"
)

// Preconditioner applies z = M⁻¹·r. Implementations must be symmetric
// positive definite for CG theory to hold.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is diagonal scaling z_i = r_i / d_i.
type Jacobi struct{ InvDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from the diagonal of a.
func NewJacobi(a *sparse.CSC) (*Jacobi, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("pcg: non-positive diagonal %g at %d", v, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{InvDiag: inv}, nil
}

// Apply scales the residual by the inverse diagonal.
func (j *Jacobi) Apply(z, r []float64) {
	for i, v := range r {
		z[i] = v * j.InvDiag[i]
	}
}

// Options control the iteration.
type Options struct {
	Tol     float64 // relative residual ‖b-Ax‖₂/‖b‖₂ target; default 1e-6
	MaxIter int     // default 500, the paper's divergence cutoff
	// Workers > 1 runs the dense vector kernels (dot, axpy, norm) across
	// that many goroutines above sparse.ParThreshold. The reductions use
	// deterministic blocked summation, so results are reproducible for a
	// fixed Workers value but may differ in the last bits from the serial
	// (Workers <= 1) path. The matrix-vector product is the caller's
	// closure and parallelizes independently.
	Workers int
}

// Result reports the outcome of a solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	History    []float64 // relative residual after each iteration
}

// ErrIndefinite is returned when pᵀAp or rᵀz becomes non-positive,
// indicating a non-SPD operator or preconditioner.
var ErrIndefinite = errors.New("pcg: operator or preconditioner is not positive definite")

// Solve runs PCG on A·x = b from a zero initial guess. A must be
// symmetric positive definite, stored with both triangles.
func Solve(a *sparse.CSC, b []float64, m Preconditioner, opt Options) (*Result, error) {
	mul := func(y, x []float64) { a.MulVec(y, x) }
	return SolveOp(a.Rows, mul, b, m, opt)
}

// SolveFrom is Solve starting from the initial guess x0 (which is not
// modified). Warm starts pay off when consecutive right-hand sides are
// close, e.g. across transient time steps.
func SolveFrom(a *sparse.CSC, b, x0 []float64, m Preconditioner, opt Options) (*Result, error) {
	mul := func(y, x []float64) { a.MulVec(y, x) }
	return solveOp(a.Rows, mul, b, x0, m, opt)
}

// SolveOp is Solve for an implicit operator y = A·x.
func SolveOp(n int, mul func(y, x []float64), b []float64, m Preconditioner, opt Options) (*Result, error) {
	return solveOp(n, mul, b, nil, m, opt)
}

func solveOp(n int, mul func(y, x []float64), b, x0 []float64, m Preconditioner, opt Options) (*Result, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	if m == nil {
		m = Identity{}
	}
	if len(b) != n {
		return nil, fmt.Errorf("pcg: rhs has length %d, want %d", len(b), n)
	}
	if x0 != nil && len(x0) != n {
		return nil, fmt.Errorf("pcg: initial guess has length %d, want %d", len(x0), n)
	}

	nw := opt.Workers

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	bnorm := sparse.Norm2Par(b, nw)
	if bnorm == 0 {
		return &Result{X: x, Converged: true}, nil
	}
	if x0 != nil {
		copy(x, x0)
		mul(ap, x) // r = b - A·x0
		sparse.AxpyPar(r, -1, ap, nw)
		if rel := sparse.Norm2Par(r, nw) / bnorm; rel < opt.Tol {
			return &Result{X: x, Converged: true, Residual: rel}, nil
		}
	}

	res := &Result{}
	m.Apply(z, r)
	copy(p, z)
	rz := sparse.DotPar(r, z, nw)
	if rz <= 0 || math.IsNaN(rz) {
		return nil, fmt.Errorf("%w: r'z = %g at start", ErrIndefinite, rz)
	}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		mul(ap, p)
		pap := sparse.DotPar(p, ap, nw)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, fmt.Errorf("%w: p'Ap = %g at iteration %d", ErrIndefinite, pap, iter)
		}
		alpha := rz / pap
		sparse.AxpyPar(x, alpha, p, nw)
		sparse.AxpyPar(r, -alpha, ap, nw)

		rel := sparse.Norm2Par(r, nw) / bnorm
		res.History = append(res.History, rel)
		res.Iterations = iter
		res.Residual = rel
		if rel < opt.Tol {
			res.Converged = true
			break
		}

		m.Apply(z, r)
		rzNew := sparse.DotPar(r, z, nw)
		if rzNew <= 0 || math.IsNaN(rzNew) {
			return nil, fmt.Errorf("%w: r'z = %g at iteration %d", ErrIndefinite, rzNew, iter)
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.X = x
	return res, nil
}
