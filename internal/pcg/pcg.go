// Package pcg implements the preconditioned conjugate gradient method,
// the outer iteration of every solver in the paper's evaluation.
package pcg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"powerrchol/internal/sparse"
)

// Preconditioner applies z = M⁻¹·r. Implementations must be symmetric
// positive definite for CG theory to hold.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is diagonal scaling z_i = r_i / d_i.
type Jacobi struct{ InvDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from the diagonal of a.
func NewJacobi(a *sparse.CSC) (*Jacobi, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("pcg: non-positive diagonal %g at %d", v, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{InvDiag: inv}, nil
}

// Apply scales the residual by the inverse diagonal. Both operands are
// resliced to the residual's length up front so the element accesses
// carry no bounds checks (pgoptcheck rule bce).
//
//pgopt:noescape,inline one diagonal scaling per PCG iteration
func (j *Jacobi) Apply(z, r []float64) {
	z = z[:len(r)]
	inv := j.InvDiag[:len(r)]
	for i, v := range r {
		z[i] = v * inv[i]
	}
}

// Options control the iteration.
type Options struct {
	Tol     float64 // relative residual ‖b-Ax‖₂/‖b‖₂ target; default 1e-6
	MaxIter int     // default 500, the paper's divergence cutoff
	// Workers > 1 runs the dense vector kernels (dot, axpy, norm) across
	// that many goroutines above sparse.ParThreshold. The reductions use
	// deterministic blocked summation, so results are reproducible for a
	// fixed Workers value but may differ in the last bits from the serial
	// (Workers <= 1) path. The matrix-vector product is the caller's
	// closure and parallelizes independently.
	Workers int

	// Ctx, when non-nil, is checked once per iteration; on cancellation
	// the solve stops and returns the best iterate found so far with an
	// error wrapping ctx.Err(). Nil means never cancelled.
	Ctx context.Context

	// StagnationWindow > 0 enables stagnation detection: the solve stops
	// with ErrStagnated when the best relative residual fails to shrink
	// by at least a factor StagnationFactor over StagnationWindow
	// consecutive iterations. The detector never alters the iteration
	// arithmetic — a run that would have converged is bitwise unchanged.
	StagnationWindow int
	// StagnationFactor is the required residual reduction per window;
	// 0 means 0.5 (the best residual must at least halve every window).
	StagnationFactor float64
	// DivergenceFactor > 0 enables divergence detection: the solve stops
	// with ErrDiverged when the current relative residual exceeds
	// DivergenceFactor times the best residual seen so far.
	DivergenceFactor float64
}

// Result reports the outcome of a solve. On convergence X is the final
// iterate; on any early stop (iteration cap, stagnation, divergence,
// cancellation) X is the BEST iterate seen — the one with the smallest
// relative residual, reported in Residual and BestIteration — not the
// last, which on a failing run can be arbitrarily worse.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64 // relative residual of X
	Converged  bool
	History    []float64 // relative residual after each iteration
	// BestIteration is the iteration that produced X when the solve
	// stopped early (0 on a converged run: X is simply the final iterate).
	BestIteration int
}

// ErrIndefinite is returned when pᵀAp or rᵀz becomes non-positive,
// indicating a non-SPD operator or preconditioner.
var ErrIndefinite = errors.New("pcg: operator or preconditioner is not positive definite")

// ErrStagnated is returned when stagnation detection is enabled and the
// residual stops improving; the Result still carries the best iterate.
var ErrStagnated = errors.New("pcg: residual stagnated")

// ErrDiverged is returned when divergence detection is enabled and the
// residual grows past the guard factor; the Result still carries the
// best iterate.
var ErrDiverged = errors.New("pcg: residual diverged")

// Solve runs PCG on A·x = b from a zero initial guess. A must be
// symmetric positive definite, stored with both triangles.
func Solve(a *sparse.CSC, b []float64, m Preconditioner, opt Options) (*Result, error) {
	mul := func(y, x []float64) { a.MulVec(y, x) }
	return SolveOp(a.Rows, mul, b, m, opt)
}

// SolveFrom is Solve starting from the initial guess x0 (which is not
// modified). Warm starts pay off when consecutive right-hand sides are
// close, e.g. across transient time steps.
func SolveFrom(a *sparse.CSC, b, x0 []float64, m Preconditioner, opt Options) (*Result, error) {
	mul := func(y, x []float64) { a.MulVec(y, x) }
	return solveOp(a.Rows, mul, b, x0, m, opt)
}

// SolveOp is Solve for an implicit operator y = A·x.
func SolveOp(n int, mul func(y, x []float64), b []float64, m Preconditioner, opt Options) (*Result, error) {
	return solveOp(n, mul, b, nil, m, opt)
}

// SolveFromOp is SolveFrom for an implicit operator y = A·x: a warm
// start without requiring the system in CSC form.
func SolveFromOp(n int, mul func(y, x []float64), b, x0 []float64, m Preconditioner, opt Options) (*Result, error) {
	return solveOp(n, mul, b, x0, m, opt)
}

func solveOp(n int, mul func(y, x []float64), b, x0 []float64, m Preconditioner, opt Options) (*Result, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	if m == nil {
		m = Identity{}
	}
	if len(b) != n {
		return nil, fmt.Errorf("pcg: rhs has length %d, want %d", len(b), n)
	}
	if x0 != nil && len(x0) != n {
		return nil, fmt.Errorf("pcg: initial guess has length %d, want %d", len(x0), n)
	}

	nw := opt.Workers
	stagFactor := opt.StagnationFactor
	if stagFactor == 0 {
		stagFactor = 0.5
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	bnorm := sparse.Norm2Par(b, nw)
	if math.IsNaN(bnorm) || math.IsInf(bnorm, 0) {
		return nil, fmt.Errorf("pcg: right-hand side contains non-finite values")
	}
	if bnorm == 0 {
		return &Result{X: x, Converged: true}, nil
	}
	if x0 != nil {
		copy(x, x0)
		mul(ap, x) // r = b - A·x0
		sparse.AxpyPar(r, -1, ap, nw)
		if rel := sparse.Norm2Par(r, nw) / bnorm; rel < opt.Tol {
			return &Result{X: x, Converged: true, Residual: rel}, nil
		}
	}

	res := &Result{}
	m.Apply(z, r)
	copy(p, z)
	rz := sparse.DotPar(r, z, nw)
	if rz <= 0 || math.IsNaN(rz) {
		return nil, fmt.Errorf("%w: r'z = %g at start", ErrIndefinite, rz)
	}

	// Best-iterate tracking: an early-stopped run (cap, stagnation,
	// divergence, cancellation) hands back the iterate with the smallest
	// residual rather than whatever the last step produced. winBest is a
	// ring buffer of best-so-far values used by the stagnation window.
	best := math.Inf(1)
	bestIter := 0
	var bestX []float64
	var winBest []float64
	if opt.StagnationWindow > 0 {
		winBest = make([]float64, opt.StagnationWindow)
	}
	// finishBest points the result at the best iterate for early stops.
	finishBest := func() {
		if bestX != nil {
			res.X = bestX
			res.Residual = best
			res.BestIteration = bestIter
		} else {
			res.X = x
		}
	}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				finishBest()
				return res, fmt.Errorf("pcg: solve cancelled at iteration %d: %w", iter, err)
			}
		}
		mul(ap, p)
		pap := sparse.DotPar(p, ap, nw)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, fmt.Errorf("%w: p'Ap = %g at iteration %d", ErrIndefinite, pap, iter)
		}
		alpha := rz / pap
		sparse.AxpyPar(x, alpha, p, nw)
		sparse.AxpyPar(r, -alpha, ap, nw)

		rel := sparse.Norm2Par(r, nw) / bnorm
		res.History = append(res.History, rel)
		res.Iterations = iter
		res.Residual = rel
		if rel < best {
			best, bestIter = rel, iter
			if bestX == nil {
				bestX = make([]float64, n)
			}
			copy(bestX, x)
		}
		if rel < opt.Tol {
			res.Converged = true
			break
		}
		if opt.DivergenceFactor > 0 && rel > opt.DivergenceFactor*best {
			finishBest()
			return res, fmt.Errorf("%w: relative residual %.3e at iteration %d exceeds %g× the best %.3e",
				ErrDiverged, rel, iter, opt.DivergenceFactor, best)
		}
		if w := opt.StagnationWindow; w > 0 {
			if iter > w && best > stagFactor*winBest[iter%w] {
				finishBest()
				return res, fmt.Errorf("%w: best relative residual improved only %.3e → %.3e over the last %d iterations (need a factor %g)",
					ErrStagnated, winBest[iter%w], best, w, stagFactor)
			}
			winBest[iter%w] = best
		}

		m.Apply(z, r)
		rzNew := sparse.DotPar(r, z, nw)
		if rzNew <= 0 || math.IsNaN(rzNew) {
			return nil, fmt.Errorf("%w: r'z = %g at iteration %d", ErrIndefinite, rzNew, iter)
		}
		beta := rzNew / rz
		rz = rzNew
		zp := z[:len(p)]
		for i, pv := range p {
			p[i] = zp[i] + beta*pv
		}
	}
	if res.Converged {
		res.X = x
		res.BestIteration = res.Iterations
	} else {
		finishBest()
	}
	return res, nil
}
