package serve

import (
	"bytes"
	"testing"
)

// Fuzz targets for the service's untrusted-input boundary (wired into
// `make fuzz`). The contract for arbitrary bytes: return an error or a
// valid value, never panic, and never allocate proportionally to a
// number the input merely declared — the byte limits passed here are
// deliberately tiny so the OOM-hardening is what the fuzzer exercises.

func FuzzDecodeSolveRequest(f *testing.F) {
	f.Add([]byte(`{"grid":"ab12","b":[1,2,3]}`))
	f.Add([]byte(`{"grid":"1","nodes":[0,2],"values":[1.5,-2]}`))
	f.Add([]byte(`{"grid":"ffffffffffffffff","b":[0.1],"return":[0],"timeout_ms":100}`))
	f.Add([]byte(`{"grid":"`))
	f.Add([]byte(`{"grid":"1","b":[1e999]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSolveRequest(bytes.NewReader(data), 1<<12)
		if err != nil {
			return
		}
		// A decoded request must materialize against any grid size
		// without panicking, and its invariants must hold.
		if len(req.Nodes) != 0 && len(req.Nodes) != len(req.Values) {
			t.Fatalf("decoder passed mismatched nodes/values: %d vs %d", len(req.Nodes), len(req.Values))
		}
		for _, n := range []int{1, 7, 100} {
			b, err := req.RHS(n)
			if err != nil {
				continue
			}
			if len(b) != n {
				t.Fatalf("RHS(%d) returned %d entries", n, len(b))
			}
			_ = req.CheckReturn(n)
		}
	})
}

func FuzzDecodeSystemRequest(f *testing.F) {
	f.Add([]byte(`{"n":3,"edges":[[0,1,2.0],[1,2,1.5]],"d":[0.1,0,0]}`))
	f.Add([]byte(`{"n":2,"edges":[[0,1,1]]}`))
	f.Add([]byte(`{"n":1000000000,"edges":[]}`))
	f.Add([]byte(`{"n":2,"edges":[[0,0,1]]}`))
	f.Add([]byte(`{"n":`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxNodes = 64
		sys, err := DecodeSystemRequest(bytes.NewReader(data), 1<<12, maxNodes)
		if err != nil {
			return
		}
		if sys.N() < 1 || sys.N() > maxNodes {
			t.Fatalf("decoder passed n=%d past cap %d", sys.N(), maxNodes)
		}
		// The system must be internally consistent: every edge in range
		// with positive weight, D non-negative and length n.
		if len(sys.D) != sys.N() {
			t.Fatalf("D length %d != n %d", len(sys.D), sys.N())
		}
		for _, e := range sys.G.Edges {
			if e.U < 0 || e.U >= sys.N() || e.V < 0 || e.V >= sys.N() || e.U == e.V || !(e.W > 0) {
				t.Fatalf("invalid edge %+v for n=%d", e, sys.N())
			}
		}
		for i, d := range sys.D {
			if d < 0 || !isFinite(d) {
				t.Fatalf("invalid D[%d]=%g", i, d)
			}
		}
	})
}
