package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(3, 10)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := g.Inflight(); got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
	// A fourth acquire must queue, not fail: give it a short deadline.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire err = %v, want DeadlineExceeded", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestGateShedsPastQueueBound(t *testing.T) {
	g := NewGate(1, 2)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Fill the wait queue with two blocked acquirers.
	var wg sync.WaitGroup
	waitCtx, cancelWaiters := context.WithCancel(ctx)
	defer cancelWaiters()
	started := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			_ = g.Acquire(waitCtx)
		}()
	}
	<-started
	<-started
	// Wait for both waiters to be counted in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for g.Queued() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() < 2 {
		t.Fatalf("queued = %d, want 2", g.Queued())
	}
	// The next acquire exceeds maxQueue and is shed without blocking.
	if err := g.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire err = %v, want ErrOverloaded", err)
	}
	cancelWaiters()
	wg.Wait()
}

func TestGateRetryAfterBounds(t *testing.T) {
	g := NewGate(2, 100)
	if d := g.RetryAfter(); d < time.Second || d > 30*time.Second {
		t.Fatalf("idle RetryAfter = %v, want within [1s, 30s]", d)
	}
}
