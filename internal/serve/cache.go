package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"powerrchol"
	"powerrchol/internal/session"
)

// Prepared is one cached unit of serving state: the prepared solver and
// its micro-batcher (both owned by the shared session layer — this
// package consumes the RHS-stream machinery, it no longer implements
// it). The solver is immutable and safe for concurrent use; the batcher
// serializes batch windows against it.
type Prepared struct {
	Solver *powerrchol.Solver
	// Batch is attached by the server right after a successful build
	// (before the cache publishes the entry) and stopped on eviction.
	Batch *session.Batcher
	bytes int64
}

// MemoryBytes reports the eviction weight of this entry.
func (p *Prepared) MemoryBytes() int64 { return p.bytes }

// Cache is the fingerprint-keyed prepared-solver LRU, bounded by a byte
// budget measured with Solver.MemoryBytes. Builds are single-flight: the
// first request for a key builds while later ones wait on the entry,
// so a thundering herd on a cold grid costs one factorization, not N.
//
// Eviction drops the cache's reference and stops the entry's batcher;
// requests already holding the *Prepared keep using it safely (the
// solver is immutable — memory is reclaimed when the last request
// drops it). The newest entry is always admitted even when it alone
// exceeds the budget: a cache that cannot hold the working solver would
// rebuild it per request, which is strictly worse than being over
// budget.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[uint64]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// onEvict runs outside the cache lock for every evicted or
	// invalidated entry (the batcher stop).
	onEvict func(*Prepared)
}

type cacheEntry struct {
	key   uint64
	elem  *list.Element
	ready chan struct{} // closed when val/err are set
	val   *Prepared
	err   error
}

// NewCache builds a cache with the given byte budget. onEvict may be
// nil.
func NewCache(budget int64, onEvict func(*Prepared)) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[uint64]*cacheEntry),
		lru:     list.New(),
		onEvict: onEvict,
	}
}

// GetOrBuild returns the entry for key, building it with build on a
// miss. Concurrent callers for the same key share one build. The build
// runs on the calling goroutine; its context is the caller's — a
// cancelled build fails all current waiters but leaves the cache clean,
// so the next request simply rebuilds. The returned bool reports a hit.
func (c *Cache) GetOrBuild(ctx context.Context, key uint64, build func(context.Context) (*Prepared, int64, error)) (*Prepared, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			// The build this entry represented failed; the builder
			// already removed it. Report the failure to waiters.
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	val, bytes, err := build(ctx)
	if err != nil {
		e.err = err
		close(e.ready)
		c.mu.Lock()
		c.removeLocked(e)
		c.mu.Unlock()
		return nil, false, err
	}
	val.bytes = bytes
	e.val = val
	close(e.ready)

	c.mu.Lock()
	c.used += bytes
	evicted := c.shedLocked(c.budget, e)
	c.mu.Unlock()
	c.runEvictions(evicted)
	return val, false, nil
}

// Invalidate removes the entry for key if it still holds p — the
// poisoned-solver path: a solve-time numerical failure drops the entry
// so the next request rebuilds, without racing a concurrent rebuild
// that already replaced it.
func (c *Cache) Invalidate(key uint64, p *Prepared) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.val != p {
		c.mu.Unlock()
		return
	}
	c.removeLocked(e)
	c.mu.Unlock()
	c.evictions.Add(1)
	c.runEvictions([]*Prepared{p})
}

// ShedTo evicts least-recently-used entries until the cache holds at
// most target bytes — the degradation ladder's memory rung.
func (c *Cache) ShedTo(target int64) {
	c.mu.Lock()
	evicted := c.shedLocked(target, nil)
	c.mu.Unlock()
	c.runEvictions(evicted)
}

// Clear evicts everything (shutdown).
func (c *Cache) Clear() { c.ShedTo(-1) }

// shedLocked evicts LRU entries until used ≤ target, never evicting
// keep (the entry just inserted) or entries still building. Returns the
// evicted values for the out-of-lock callbacks.
func (c *Cache) shedLocked(target int64, keep *cacheEntry) []*Prepared {
	var out []*Prepared
	// Bound the walk by the entry count: building entries are skipped by
	// rotating them to the front, and without the bound a list of only
	// building entries would rotate forever.
	for attempts := c.lru.Len(); c.used > target && c.lru.Len() > 0 && attempts > 0; attempts-- {
		elem := c.lru.Back()
		e := elem.Value.(*cacheEntry)
		if e == keep {
			break
		}
		select {
		case <-e.ready:
		default:
			// Still building: it carries no accounted bytes yet and a
			// waiter holds it. Skip — it is also necessarily the most
			// recent insert on its LRU path.
			c.lru.MoveToFront(elem)
			continue
		}
		c.removeLocked(e)
		c.evictions.Add(1)
		if e.val != nil {
			out = append(out, e.val) //pglint:hotalloc eviction batch, bounded by cache entry count
		}
	}
	return out
}

func (c *Cache) removeLocked(e *cacheEntry) {
	if _, ok := c.entries[e.key]; !ok {
		return
	}
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	if e.val != nil {
		c.used -= e.val.bytes
	}
}

func (c *Cache) runEvictions(evicted []*Prepared) {
	if c.onEvict == nil {
		return
	}
	for _, p := range evicted {
		c.onEvict(p)
	}
}

// UsedBytes reports the accounted bytes of ready entries.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the entry count (building entries included).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Budget reports the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Hits, Misses and Evictions report the lifetime counters.
func (c *Cache) Hits() int64      { return c.hits.Load() }
func (c *Cache) Misses() int64    { return c.misses.Load() }
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
