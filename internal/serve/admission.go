// Package serve is the long-lived solve service behind cmd/pgserved: an
// HTTP front-end that ingests power grids once, caches prepared solvers
// in a fingerprint-keyed, memory-budgeted LRU, and aggregates concurrent
// single-RHS requests into micro-batched SolveBatchContext windows.
//
// The robustness layer is the point, and it is built from composable
// pieces so each is testable in isolation:
//
//   - Gate (admission.go): a bounded queue in front of a bounded worker
//     pool. Excess load is shed immediately with 429 + Retry-After —
//     never an unbounded goroutine pile-up.
//   - Cache (cache.go): prepared-solver LRU weighed by
//     Solver.MemoryBytes against a byte budget, with single-flight
//     builds and poisoned-entry invalidation.
//   - Batcher (batch.go): per-solver micro-batching with a max-delay /
//     max-width window; every response stays bitwise identical to a
//     one-shot Solve.
//   - the degradation ladder (degrade.go): under pressure the service
//     sheds batch width, evicts cache, and downgrades retry rungs
//     before it starts refusing traffic.
//   - Server (server.go): per-request deadlines through the existing
//     ctx-cancellation paths, per-request panic isolation, and clean
//     drain-on-shutdown with health/readiness endpoints.
package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports that the admission queue is full: the request
// was shed without waiting. Maps to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: admission queue full, request shed")

// ErrDraining reports that the server is shutting down and no longer
// admits work. Maps to 503 Service Unavailable.
var ErrDraining = errors.New("serve: server is draining")

// Gate is admission control: at most maxInflight requests hold a slot
// concurrently, at most maxQueue more wait for one, and everything past
// that is shed immediately. The two bounds make the service's goroutine
// and memory profile independent of offered load — the defining property
// the soak test asserts under 2× overload.
type Gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	maxQueue int64
}

// NewGate builds a gate with the given concurrency and queue bounds
// (both must be ≥ 1).
func NewGate(maxInflight, maxQueue int) *Gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	g := &Gate{slots: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
	for i := 0; i < maxInflight; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// Acquire admits the request or rejects it. It returns ErrOverloaded
// without blocking when the wait queue is full; otherwise it waits for a
// slot until ctx is done. On success the caller must call Release
// exactly once.
func (g *Gate) Acquire(ctx context.Context) error {
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return ErrOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case <-g.slots:
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns an admitted request's slot.
func (g *Gate) Release() {
	g.inflight.Add(-1)
	g.slots <- struct{}{}
}

// Queued reports the number of requests currently waiting for a slot.
func (g *Gate) Queued() int64 { return g.queued.Load() }

// Inflight reports the number of requests currently holding a slot.
func (g *Gate) Inflight() int64 { return g.inflight.Load() }

// Capacity reports the slot count.
func (g *Gate) Capacity() int { return cap(g.slots) }

// MaxQueue reports the wait-queue bound.
func (g *Gate) MaxQueue() int { return int(g.maxQueue) }

// RetryAfter suggests how long a shed client should back off: one drain
// interval per queued request ahead of it, clamped to [1s, 30s]. It is
// deliberately coarse — the point is to spread retries, not to promise a
// slot.
func (g *Gate) RetryAfter() time.Duration {
	waiting := g.queued.Load()
	per := time.Second
	d := time.Duration(1+waiting/int64(cap(g.slots))) * per
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
