package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePrepared builds a Prepared with no solver — cache behaviour is
// independent of what the entries hold.
func fakePrepared() *Prepared { return &Prepared{} }

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(1<<20, nil)
	var builds atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*Prepared, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.GetOrBuild(context.Background(), 42, func(context.Context) (*Prepared, int64, error) {
				builds.Add(1)
				<-gate
				return fakePrepared(), 100, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = p
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", got)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different instance", i)
		}
	}
	if c.Hits()+c.Misses() != waiters {
		t.Fatalf("hits+misses = %d, want %d", c.Hits()+c.Misses(), waiters)
	}
	if c.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses())
	}
}

func TestCacheFailedBuildIsRetriable(t *testing.T) {
	c := NewCache(1<<20, nil)
	boom := errors.New("factorization breakdown")
	_, _, err := c.GetOrBuild(context.Background(), 7, func(context.Context) (*Prepared, int64, error) {
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed build left %d entries", c.Len())
	}
	p, hit, err := c.GetOrBuild(context.Background(), 7, func(context.Context) (*Prepared, int64, error) {
		return fakePrepared(), 10, nil
	})
	if err != nil || hit || p == nil {
		t.Fatalf("rebuild: p=%v hit=%v err=%v", p, hit, err)
	}
}

func TestCacheEvictsLRUWithinBudget(t *testing.T) {
	var evicted []*Prepared
	c := NewCache(250, func(p *Prepared) { evicted = append(evicted, p) })
	build := func(key uint64) *Prepared {
		p, _, err := c.GetOrBuild(context.Background(), key, func(context.Context) (*Prepared, int64, error) {
			return fakePrepared(), 100, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := build(1)
	build(2)
	// Touch 1 so 2 becomes the LRU victim.
	if _, hit, _ := c.GetOrBuild(context.Background(), 1, nil); !hit {
		t.Fatal("expected hit on key 1")
	}
	build(3) // 300 bytes > 250: evicts key 2
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2", c.Len())
	}
	if c.UsedBytes() != 200 {
		t.Fatalf("used = %d, want 200", c.UsedBytes())
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %d entries, want 1", len(evicted))
	}
	if evicted[0] == p1 {
		t.Fatal("evicted the recently-touched entry, not the LRU one")
	}
	if _, hit, _ := c.GetOrBuild(context.Background(), 1, nil); !hit {
		t.Fatal("key 1 should have survived")
	}
}

func TestCacheAdmitsOversizedNewest(t *testing.T) {
	c := NewCache(100, nil)
	p, _, err := c.GetOrBuild(context.Background(), 1, func(context.Context) (*Prepared, int64, error) {
		return fakePrepared(), 1000, nil
	})
	if err != nil || p == nil {
		t.Fatalf("oversized build rejected: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (newest always admitted)", c.Len())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1<<20, nil)
	p, _, _ := c.GetOrBuild(context.Background(), 5, func(context.Context) (*Prepared, int64, error) {
		return fakePrepared(), 10, nil
	})
	// Invalidating with a stale pointer is a no-op.
	c.Invalidate(5, fakePrepared())
	if c.Len() != 1 {
		t.Fatal("stale invalidate removed a live entry")
	}
	c.Invalidate(5, p)
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("invalidate left len=%d used=%d", c.Len(), c.UsedBytes())
	}
}

func TestCacheShedToAndClear(t *testing.T) {
	c := NewCache(1<<20, nil)
	for key := uint64(1); key <= 4; key++ {
		_, _, err := c.GetOrBuild(context.Background(), key, func(context.Context) (*Prepared, int64, error) {
			return fakePrepared(), 100, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.ShedTo(200)
	if c.UsedBytes() > 200 {
		t.Fatalf("used = %d after ShedTo(200)", c.UsedBytes())
	}
	c.Clear()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("Clear left len=%d used=%d", c.Len(), c.UsedBytes())
	}
}

func TestCacheCancelledWaiter(t *testing.T) {
	c := NewCache(1<<20, nil)
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.GetOrBuild(context.Background(), 9, func(context.Context) (*Prepared, int64, error) {
			<-gate
			return fakePrepared(), 10, nil
		})
	}()
	// Wait until the builder has registered the entry.
	for c.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrBuild(ctx, 9, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	close(gate)
	<-done
}
