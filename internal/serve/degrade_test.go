package serve

import (
	"testing"
	"time"

	"powerrchol"
)

func TestClassifyLadder(t *testing.T) {
	cases := []struct {
		name string
		snap LoadSnapshot
		want Level
	}{
		{"idle", LoadSnapshot{Queued: 0, MaxQueue: 100}, LevelNormal},
		{"light", LoadSnapshot{Queued: 40, MaxQueue: 100}, LevelNormal},
		{"elevated", LoadSnapshot{Queued: 50, MaxQueue: 100}, LevelElevated},
		{"high", LoadSnapshot{Queued: 75, MaxQueue: 100}, LevelHigh},
		{"critical", LoadSnapshot{Queued: 95, MaxQueue: 100}, LevelCritical},
		{"full", LoadSnapshot{Queued: 100, MaxQueue: 100}, LevelCritical},
		{"cache over budget raises to high", LoadSnapshot{Queued: 0, MaxQueue: 100, CacheBytes: 2 << 20, CacheBudget: 1 << 20}, LevelHigh},
		{"cache pressure does not mask critical", LoadSnapshot{Queued: 95, MaxQueue: 100, CacheBytes: 2 << 20, CacheBudget: 1 << 20}, LevelCritical},
		{"zero budget ignores cache", LoadSnapshot{Queued: 0, MaxQueue: 100, CacheBytes: 2 << 20}, LevelNormal},
	}
	for _, tc := range cases {
		if got := Classify(tc.snap); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLevelAdmit(t *testing.T) {
	for _, l := range []Level{LevelNormal, LevelElevated, LevelHigh} {
		if !l.Admit() {
			t.Errorf("%v should admit", l)
		}
	}
	if LevelCritical.Admit() {
		t.Error("critical should refuse")
	}
}

func TestBatchKnobsDegrade(t *testing.T) {
	w, d := LevelNormal.BatchKnobs(32, 2*time.Millisecond)
	if w != 32 || d != 2*time.Millisecond {
		t.Errorf("normal knobs = (%d, %v)", w, d)
	}
	w, d = LevelElevated.BatchKnobs(32, 2*time.Millisecond)
	if w != 16 || d != time.Millisecond {
		t.Errorf("elevated knobs = (%d, %v), want (16, 1ms)", w, d)
	}
	w, d = LevelHigh.BatchKnobs(32, 2*time.Millisecond)
	if w != 1 || d != 0 {
		t.Errorf("high knobs = (%d, %v), want (1, 0)", w, d)
	}
	// Width never collapses below 1.
	if w, _ := LevelElevated.BatchKnobs(1, time.Millisecond); w != 1 {
		t.Errorf("elevated width from 1 = %d, want 1", w)
	}
}

func TestCacheTargetAndRetry(t *testing.T) {
	if got := LevelNormal.CacheTarget(100); got != 100 {
		t.Errorf("normal target = %d", got)
	}
	if got := LevelHigh.CacheTarget(100); got != 50 {
		t.Errorf("high target = %d, want 50", got)
	}
	base := powerrchol.RetryPolicy{MaxAttempts: 3, Escalate: true}
	if got := LevelElevated.RetryFor(base); got != base {
		t.Errorf("elevated retry = %+v, want unchanged", got)
	}
	if got := LevelHigh.RetryFor(base); got != (powerrchol.RetryPolicy{}) {
		t.Errorf("high retry = %+v, want zero", got)
	}
}
