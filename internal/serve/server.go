package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/session"
)

// Config parameterizes a Server. The zero value is usable: every knob
// has a production-shaped default applied by withDefaults.
type Config struct {
	// Options is the solver configuration every prepared solver is built
	// with. The degradation ladder may downgrade its Retry policy for
	// builds that happen under pressure.
	Options powerrchol.Options

	// CacheBudgetBytes bounds the prepared-solver cache, measured with
	// Solver.MemoryBytes. Default 256 MiB.
	CacheBudgetBytes int64
	// MaxGrids bounds the ingested-grid store. Default 64.
	MaxGrids int

	// MaxInflight bounds concurrently executing solve requests; MaxQueue
	// bounds how many more may wait for a slot. Defaults 8 and 64.
	MaxInflight int
	MaxQueue    int

	// BatchWindow and MaxBatch shape micro-batching: a window closes at
	// MaxBatch right-hand sides or after BatchWindow, whichever first.
	// Defaults 2ms and 32.
	BatchWindow time.Duration
	MaxBatch    int

	// DefaultTimeout is the per-request deadline when the client sends
	// none; MaxTimeout clamps client-requested deadlines. Defaults 30s
	// and 2m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxRequestBytes bounds a solve request body; MaxIngestBytes bounds
	// a grid ingest body. Defaults 8 MiB and 256 MiB.
	MaxRequestBytes int64
	MaxIngestBytes  int64
	// MaxNodes caps the declared node count of an ingested grid before
	// any size-n allocation. Default 4Mi nodes.
	MaxNodes int

	// MaxStudySteps and MaxStudySamples clamp how much work one
	// POST /v1/study request may schedule (transient steps, Monte Carlo
	// samples). Defaults 200 and 64.
	MaxStudySteps   int
	MaxStudySamples int
}

func (c Config) withDefaults() Config {
	if c.CacheBudgetBytes <= 0 {
		c.CacheBudgetBytes = 256 << 20
	}
	if c.MaxGrids <= 0 {
		c.MaxGrids = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = 256 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 4 << 20
	}
	if c.MaxStudySteps <= 0 {
		c.MaxStudySteps = 200
	}
	if c.MaxStudySamples <= 0 {
		c.MaxStudySamples = 64
	}
	return c
}

// Server is the solve service: the composable robustness pieces wired
// together behind an http.Handler. Construct with New, mount Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	gate  *Gate
	cache *Cache
	met   metrics

	// ctx is the server's lifetime context: batch dispatchers and cache
	// builds run under it, so cancelling it (Shutdown's last step) tears
	// down every background goroutine.
	ctx    context.Context
	cancel context.CancelFunc

	draining atomic.Bool
	active   atomic.Int64 // requests inside a handler (drain barrier)

	gridsMu sync.Mutex
	grids   map[uint64]*graph.SDDM
}

// New builds a server whose background goroutines live under ctx.
// Callers own the ctx; Shutdown also cancels the derived lifetime.
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:    cfg,
		gate:   NewGate(cfg.MaxInflight, cfg.MaxQueue),
		ctx:    sctx,
		cancel: cancel,
		grids:  make(map[uint64]*graph.SDDM),
	}
	s.cache = NewCache(cfg.CacheBudgetBytes, func(p *Prepared) {
		if p.Batch == nil {
			return
		}
		// Stop waits for the in-flight window; detach it from the
		// evicting request's latency path.
		go p.Batch.Stop() //pglint:goroleak Stop blocks only on the current batch window draining, then returns; bounded by the window's solve deadline
	})
	return s
}

// Handler returns the service mux. All handlers run behind the panic
// guard: a panicking request is isolated to a 500, never a crashed
// process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/grids", s.handleIngest)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/study", s.handleStudy)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return s.recoverPanics(mux)
}

func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.active.Add(1)
		defer s.active.Add(-1)
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p), 0)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// level classifies current pressure and applies the memory rung of the
// ladder (shedding the cache toward the degraded target is idempotent
// and cheap when already under it).
func (s *Server) level() Level {
	l := Classify(LoadSnapshot{
		Queued:      s.gate.Queued(),
		MaxQueue:    s.gate.MaxQueue(),
		CacheBytes:  s.cache.UsedBytes(),
		CacheBudget: s.cache.Budget(),
	})
	if target := l.CacheTarget(s.cache.Budget()); s.cache.UsedBytes() > target {
		s.cache.ShedTo(target)
	}
	return l
}

// batchKnobs is the Batcher callback: it re-reads the ladder per window
// so batching narrows under pressure without restarting dispatchers.
func (s *Server) batchKnobs() (int, time.Duration) {
	return s.level().BatchKnobs(s.cfg.MaxBatch, s.cfg.BatchWindow)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error(), s.gate.RetryAfter())
		return
	}
	sys, err := DecodeSystemRequest(r.Body, s.cfg.MaxIngestBytes, s.cfg.MaxNodes)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrRequestTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err.Error(), 0)
		return
	}
	fp := powerrchol.FingerprintSystem(sys)
	s.gridsMu.Lock()
	if _, ok := s.grids[fp]; !ok {
		if len(s.grids) >= s.cfg.MaxGrids {
			s.gridsMu.Unlock()
			httpError(w, http.StatusInsufficientStorage,
				fmt.Sprintf("serve: grid store full (%d grids)", s.cfg.MaxGrids), 0)
			return
		}
		s.grids[fp] = sys
	}
	s.gridsMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"grid":  FormatFingerprint(fp),
		"n":     sys.N(),
		"edges": sys.G.M(),
	})
}

// SolveResponse is the wire form of a successful solve.
type SolveResponse struct {
	Grid       string    `json:"grid"`
	Solver     string    `json:"solver"`
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Converged  bool      `json:"converged"`
	BatchWidth int       `json:"batch_width"`
	CacheHit   bool      `json:"cache_hit"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error(), s.gate.RetryAfter())
		s.met.refused.Add(1)
		return
	}
	level := s.level()
	if !level.Admit() {
		httpError(w, http.StatusServiceUnavailable, "serve: refusing traffic under critical load", s.gate.RetryAfter())
		s.met.refused.Add(1)
		return
	}

	req, err := DecodeSolveRequest(r.Body, s.cfg.MaxRequestBytes)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrRequestTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err.Error(), 0)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if err := s.gate.Acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			s.met.shed.Add(1)
			httpError(w, http.StatusTooManyRequests, err.Error(), s.gate.RetryAfter())
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			httpError(w, http.StatusGatewayTimeout, "serve: deadline expired while queued", 0)
		default: // client went away
			httpError(w, http.StatusServiceUnavailable, err.Error(), 0)
		}
		return
	}
	defer s.gate.Release()
	s.met.admitted.Add(1)
	start := time.Now()

	gridFP, _ := ParseFingerprint(req.Grid) // validated by the decoder
	s.gridsMu.Lock()
	sys := s.grids[gridFP]
	s.gridsMu.Unlock()
	if sys == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("serve: unknown grid %s", req.Grid), 0)
		return
	}
	b, err := req.RHS(sys.N())
	if err == nil {
		err = req.CheckReturn(sys.N())
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	res, width, hit, err := s.solve(ctx, level, gridFP, sys, b)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			httpError(w, http.StatusGatewayTimeout, "serve: solve deadline expired", 0)
		case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error(), 0)
		default:
			s.met.solveErrs.Add(1)
			httpError(w, http.StatusUnprocessableEntity, err.Error(), 0)
		}
		return
	}
	s.met.lat.record(time.Since(start))

	x := res.X
	if len(req.Return) > 0 {
		x = make([]float64, len(req.Return))
		for i, u := range req.Return {
			x[i] = res.X[u]
		}
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Grid:       req.Grid,
		Solver:     FormatFingerprint(powerrchol.Fingerprint(sys, s.cfg.Options)),
		X:          x,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
		BatchWidth: width,
		CacheHit:   hit,
	})
}

// solve resolves the prepared solver for sys and runs b through its
// micro-batcher. A numeric solve failure invalidates the cache entry (a
// poisoned factor must not serve further traffic) and rebuilds once; a
// batcher stopped by concurrent eviction falls back to a direct solve on
// the still-valid solver.
func (s *Server) solve(ctx context.Context, level Level, gridFP uint64, sys *graph.SDDM, b []float64) (*powerrchol.Result, int, bool, error) {
	// The cache key is the fingerprint of the *base* configuration: the
	// ladder's retry downgrade changes how a build recovers from setup
	// faults, not which logical solver it produces, and keying on the
	// degraded options would duplicate entries across pressure levels.
	key := powerrchol.Fingerprint(sys, s.cfg.Options)
	// The retry loop runs at most twice: the first pass, plus one rebuild
	// after a poisoned-entry invalidation. The per-pass allocations below
	// are annotated against that bound.
	for attempt := 0; ; attempt++ {
		//pglint:hotalloc resolve-or-build of the cached solver, at most twice per request (rebuild-once)
		p, hit, err := s.cache.GetOrBuild(ctx, key, func(bctx context.Context) (*Prepared, int64, error) {
			opt := s.cfg.Options
			opt.Retry = level.RetryFor(opt.Retry)
			solver, err := powerrchol.NewSolverContext(bctx, sys, opt)
			if err != nil {
				return nil, 0, err
			}
			batch := session.NewBatcher(session.Wrap(solver), s.batchKnobs, func(width int) {
				s.met.batches.Add(1)
				s.met.batched.Add(int64(width))
			})
			batch.Start(s.ctx)
			return &Prepared{Solver: solver, Batch: batch}, int64(solver.MemoryBytes()), nil
		})
		if err != nil {
			return nil, 0, false, err
		}
		//pglint:hotalloc one request envelope per submit, at most twice per request (rebuild-once)
		res, width, err := p.Batch.Submit(ctx, b)
		if errors.Is(err, session.ErrBatcherStopped) {
			// Concurrent eviction stopped the batcher after we resolved
			// the entry; the solver itself is still valid.
			res, err := p.Solver.SolveContext(ctx, b)
			if err == nil {
				return res, 1, hit, nil
			}
			if ctx.Err() != nil || attempt > 0 {
				return nil, 0, hit, err
			}
			s.met.rebuilds.Add(1)
			continue
		}
		if err == nil {
			return res, width, hit, nil
		}
		if ctx.Err() != nil {
			return nil, 0, hit, err
		}
		// Numeric failure: drop the poisoned entry so the next request
		// re-factorizes, and retry this request once on the rebuild.
		//pglint:hotalloc poisoned-entry eviction, at most once per request
		s.cache.Invalidate(key, p)
		if attempt > 0 {
			return nil, 0, hit, err
		}
		s.met.rebuilds.Add(1)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	if l := s.level(); !l.Admit() {
		httpError(w, http.StatusServiceUnavailable, "pressure "+l.String(), s.gate.RetryAfter())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the service's observability state.
func (s *Server) Stats() Stats {
	st := s.met.snapshot()
	st.CacheHits = s.cache.Hits()
	st.CacheMisses = s.cache.Misses()
	st.CacheEvictions = s.cache.Evictions()
	st.CacheEntries = s.cache.Len()
	st.CacheBytes = s.cache.UsedBytes()
	st.CacheBudget = s.cache.Budget()
	st.Queued = s.gate.Queued()
	st.Inflight = s.gate.Inflight()
	st.MaxInflight = s.gate.Capacity()
	st.MaxQueue = s.gate.MaxQueue()
	st.Level = s.level().String()
	st.Draining = s.draining.Load()
	s.gridsMu.Lock()
	st.Grids = len(s.grids)
	s.gridsMu.Unlock()
	return st
}

// Shutdown drains the server: new work is refused immediately, in-flight
// requests run to completion (or until ctx gives up on them), then the
// cache is cleared — stopping every batcher — and the lifetime context
// is cancelled so no background goroutine survives.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	drainErr := s.awaitQuiet(ctx)
	s.cache.Clear()
	s.cancel()
	return drainErr
}

// awaitQuiet polls until no request is inside a handler.
func (s *Server) awaitQuiet(ctx context.Context) error {
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain abandoned with %d active requests: %w", s.active.Load(), ctx.Err())
		case <-ticker.C:
		}
	}
	return nil
}

func httpError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds()+0.5)))
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
