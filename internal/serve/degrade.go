package serve

import (
	"time"

	"powerrchol"
)

// The graceful-degradation ladder. Overload is a spectrum, and the
// service walks down it in deliberate steps instead of falling over:
// first it gives up latency-smoothing (narrower, faster micro-batch
// windows), then it gives up memory and setup resilience (cache shrinks,
// retry ladders are cut for new builds), and only at the top of the
// scale does it refuse traffic outright. Every step is a pure function
// of a LoadSnapshot, so the ladder is table-testable without a server.

// Level is the service's pressure classification.
type Level int

const (
	// LevelNormal: full batching window, full cache budget, full retry
	// ladder.
	LevelNormal Level = iota
	// LevelElevated: the admission queue is filling; micro-batch windows
	// narrow so queued work drains with less added latency.
	LevelElevated
	// LevelHigh: the queue is mostly full or the cache is over budget;
	// batching is cut to the bone, the cache sheds to half budget, and
	// new solver builds run without retry rungs.
	LevelHigh
	// LevelCritical: the queue is effectively full; new traffic is
	// refused with 503 + Retry-After until pressure subsides, and
	// readiness goes false so load balancers route elsewhere.
	LevelCritical
)

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelElevated:
		return "elevated"
	case LevelHigh:
		return "high"
	case LevelCritical:
		return "critical"
	}
	return "unknown"
}

// LoadSnapshot is the instantaneous load picture Classify reads.
type LoadSnapshot struct {
	Queued      int64 // requests waiting for a slot
	MaxQueue    int   // wait-queue bound
	CacheBytes  int64 // prepared-solver bytes currently cached
	CacheBudget int64 // configured cache budget
}

// Queue-occupancy thresholds of the ladder, as fractions of MaxQueue.
const (
	elevatedFrac = 0.50
	highFrac     = 0.75
	criticalFrac = 0.95
)

// Classify maps a load snapshot onto the ladder. Queue occupancy drives
// the main classification; a cache past its byte budget raises the level
// to at least LevelHigh (the level whose remedy is eviction), because
// memory pressure is as real as queue pressure but never shows up in
// queue depth.
func Classify(s LoadSnapshot) Level {
	level := LevelNormal
	if s.MaxQueue > 0 {
		occ := float64(s.Queued) / float64(s.MaxQueue)
		switch {
		case occ >= criticalFrac:
			level = LevelCritical
		case occ >= highFrac:
			level = LevelHigh
		case occ >= elevatedFrac:
			level = LevelElevated
		}
	}
	if s.CacheBudget > 0 && s.CacheBytes > s.CacheBudget && level < LevelHigh {
		level = LevelHigh
	}
	return level
}

// Admit reports whether new solve traffic is accepted at this level.
// Only LevelCritical refuses — everything below it degrades instead.
func (l Level) Admit() bool { return l < LevelCritical }

// BatchKnobs degrades the micro-batching parameters: under pressure the
// window narrows (less latency added to queued work) and the width
// shrinks (smaller trisolve bursts, faster slot turnover). The returned
// values never fall below 1 request / 0 delay, which degenerates to
// solo solves — micro-batching is an optimization, and optimizations
// are the first thing the ladder sheds.
func (l Level) BatchKnobs(width int, window time.Duration) (int, time.Duration) {
	switch l {
	case LevelElevated:
		return max(1, width/2), window / 2
	case LevelHigh, LevelCritical:
		return 1, 0
	}
	return width, window
}

// CacheTarget is the byte budget the cache should shed to at this
// level: full budget normally, half at LevelHigh and above.
func (l Level) CacheTarget(budget int64) int64 {
	if l >= LevelHigh {
		return budget / 2
	}
	return budget
}

// RetryFor degrades the recovery policy used for new solver builds:
// at LevelHigh and above the ladder is cut to a single attempt — a
// breakdown then fails fast instead of burning queue time on reseeds,
// and the (recorded) failure is cheap to retry once pressure subsides.
// Existing cache entries keep whatever policy they were built with.
func (l Level) RetryFor(base powerrchol.RetryPolicy) powerrchol.RetryPolicy {
	if l >= LevelHigh {
		return powerrchol.RetryPolicy{}
	}
	return base
}
