package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"powerrchol"
)

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// ingestTestGrid posts the standard test grid and returns its wire
// fingerprint and size.
func ingestTestGrid(t *testing.T, url string, nx, ny int) (string, int) {
	t.Helper()
	sys := testSystem(nx, ny)
	edges := make([][3]float64, 0, sys.G.M())
	for _, e := range sys.G.Edges {
		edges = append(edges, [3]float64{float64(e.U), float64(e.V), e.W})
	}
	resp, body := postJSON(t, url+"/v1/grids", SystemRequest{N: sys.N(), Edges: edges, D: sys.D})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Grid string `json:"grid"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Grid, out.N
}

func TestServerSolveRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 10, 10)

	b := testRHS(n, 55)
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.X) != n || !out.Converged {
		t.Fatalf("bad response: len(x)=%d converged=%v", len(out.X), out.Converged)
	}

	// Referee: one-shot Solve with the same options on the same grid.
	ref, err := powerrchol.Solve(testSystem(10, 10), b, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// JSON round-trips float64 exactly (Go encodes the shortest
	// representation that parses back to the same bits), so the wire
	// answer must still be bitwise identical to the referee.
	for i := range ref.X {
		if math.Float64bits(out.X[i]) != math.Float64bits(ref.X[i]) {
			t.Fatalf("X[%d] = %g differs from one-shot referee %g", i, out.X[i], ref.X[i])
		}
	}

	// Second request hits the prepared-solver cache.
	resp2, body2 := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: b})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve status %d", resp2.StatusCode)
	}
	var out2 SolveResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("second request missed the solver cache")
	}
}

func TestServerSparseRHSAndReturn(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 8, 8)

	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Grid: grid, Nodes: []int{0, n - 1}, Values: []float64{1, -1}, Return: []int{0, n - 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.X) != 2 {
		t.Fatalf("return filter gave %d values, want 2", len(out.X))
	}
	b := make([]float64, n)
	b[0], b[n-1] = 1, -1
	ref, err := powerrchol.Solve(testSystem(8, 8), b, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.X[0]) != math.Float64bits(ref.X[0]) ||
		math.Float64bits(out.X[1]) != math.Float64bits(ref.X[n-1]) {
		t.Fatal("returned node values differ from referee")
	}
}

func TestServerErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions(), MaxRequestBytes: 4 << 10})
	grid, n := ingestTestGrid(t, ts.URL, 6, 6)

	cases := []struct {
		name string
		req  SolveRequest
		want int
	}{
		{"unknown grid", SolveRequest{Grid: "beef", B: testRHS(n, 1)}, http.StatusNotFound},
		{"bad rhs length", SolveRequest{Grid: grid, B: testRHS(n + 3, 1)}, http.StatusBadRequest},
		{"no rhs", SolveRequest{Grid: grid}, http.StatusBadRequest},
		{"return out of range", SolveRequest{Grid: grid, B: testRHS(n, 1), Return: []int{n}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Oversized body → 413.
	resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: testRHS(4096, 1)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestServerHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 6, 6)
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: testRHS(n, 9)})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Admitted < 1 || st.Grids != 1 || st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Errorf("stats look wrong: %+v", st)
	}
	if st.Level != "normal" || st.Draining {
		t.Errorf("idle server not normal/serving: %+v", st)
	}
}

func TestServerDrainRefusesNewWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Options: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	grid, n := ingestTestGrid(t, ts.URL, 6, 6)
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: testRHS(n, 3)})

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: grid, B: testRHS(n, 3)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", ready.StatusCode)
	}
}

func TestServerPanicIsolation(t *testing.T) {
	// A handler panic must produce a 500, not kill the process or poison
	// later requests. Reach the panic guard through a handler that
	// panics: the stats path with a nil-map write is not available, so
	// mount a panicking route behind the same middleware.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{Options: testOptions()})
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(s.recoverPanics(mux))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", resp.StatusCode)
	}
	if s.Stats().Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", s.Stats().Panics)
	}
	// The server still works after the panic.
	resp2, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatal("second panic not isolated")
	}
}

// TestServerConcurrentMixedGrids drives several grids and RHS shapes
// concurrently; every response must match its one-shot referee bitwise.
func TestServerConcurrentMixedGrids(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions(), MaxInflight: 4, MaxQueue: 64})
	type gridInfo struct {
		fp string
		nx int
		n  int
	}
	grids := make([]gridInfo, 0, 3)
	for _, nx := range []int{6, 8, 10} {
		fp, n := ingestTestGrid(t, ts.URL, nx, nx)
		grids = append(grids, gridInfo{fp: fp, nx: nx, n: n})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := grids[i%len(grids)]
			b := testRHS(g.n, uint64(i))
			resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Grid: g.fp, B: b})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("req %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out SolveResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- err
				return
			}
			ref, err := powerrchol.Solve(testSystem(g.nx, g.nx), b, testOptions())
			if err != nil {
				errs <- err
				return
			}
			for j := range ref.X {
				if math.Float64bits(out.X[j]) != math.Float64bits(ref.X[j]) {
					errs <- fmt.Errorf("req %d: X[%d] differs from referee", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
