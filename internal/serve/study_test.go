package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func postStudy(t *testing.T, url string, req StudyRequest) (*http.Response, StudyResponse, []byte) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/study", req)
	var out StudyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("study response: %v (%s)", err, body)
		}
	}
	return resp, out, body
}

func TestStudyTransientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 10, 10)

	resp, out, body := postStudy(t, ts.URL, StudyRequest{
		Grid: grid, Kind: "transient",
		B:     testRHS(n, 3),
		Steps: 12,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Kind != "transient" || out.Steps != 12 {
		t.Fatalf("bad response: %+v", out)
	}
	if out.Preparations != 1 {
		t.Fatalf("transient study spent %d preparations, want 1", out.Preparations)
	}
	if out.WaveFP == "" || out.TotalIterations < out.Steps {
		t.Fatalf("implausible study result: %+v", out)
	}

	// Same request again: the fingerprint must be bitwise stable.
	resp2, out2, _ := postStudy(t, ts.URL, StudyRequest{
		Grid: grid, Kind: "transient", B: testRHS(n, 3), Steps: 12,
	})
	if resp2.StatusCode != http.StatusOK || out2.WaveFP != out.WaveFP {
		t.Fatalf("transient study not reproducible: %q vs %q", out2.WaveFP, out.WaveFP)
	}
}

func TestStudyMonteCarloRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 10, 10)

	req := StudyRequest{
		Grid: grid, Kind: "mc",
		B:       testRHS(n, 4),
		Samples: 8, Seed: 11, FailProb: 0.5, FailCandidates: 2, LoadSigma: 0.1,
	}
	resp, out, body := postStudy(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Samples != 8 || out.Groups < 1 || out.Groups > 4 {
		t.Fatalf("bad mc response: %+v", out)
	}
	// The mc study has no known supply, so it adds one reference solve.
	if out.Preparations != out.Groups+1 {
		t.Fatalf("preparations %d, want groups+reference = %d", out.Preparations, out.Groups+1)
	}
	if out.ReuseHits != out.Samples-out.Groups {
		t.Fatalf("reuse accounting: %+v", out)
	}
	if len(out.Quantiles) == 0 || out.StatsFP == "" {
		t.Fatalf("missing statistics: %+v", out)
	}
	if got := s.Stats().Studies; got != 1 {
		t.Fatalf("studies counter %d, want 1", got)
	}

	resp2, out2, _ := postStudy(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK || out2.StatsFP != out.StatsFP {
		t.Fatalf("mc study not reproducible: %q vs %q", out2.StatsFP, out.StatsFP)
	}
}

// TestStudyBounds: client-requested work above the server clamp runs at
// the clamp, visibly.
func TestStudyBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions(), MaxStudySteps: 5, MaxStudySamples: 3})
	grid, n := ingestTestGrid(t, ts.URL, 8, 8)

	resp, out, body := postStudy(t, ts.URL, StudyRequest{
		Grid: grid, Kind: "transient", B: testRHS(n, 5), Steps: 500,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Steps != 5 {
		t.Fatalf("steps %d, want clamped to 5", out.Steps)
	}

	resp, out, body = postStudy(t, ts.URL, StudyRequest{
		Grid: grid, Kind: "mc", B: testRHS(n, 5), Samples: 100, LoadSigma: 0.1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Samples != 3 {
		t.Fatalf("samples %d, want clamped to 3", out.Samples)
	}
}

func TestStudyRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 8, 8)

	cases := []struct {
		name string
		req  StudyRequest
		want int
	}{
		{"unknown kind", StudyRequest{Grid: grid, Kind: "dc", B: testRHS(n, 1)}, http.StatusBadRequest},
		{"no rhs", StudyRequest{Grid: grid, Kind: "mc"}, http.StatusBadRequest},
		{"bad prob", StudyRequest{Grid: grid, Kind: "mc", B: testRHS(n, 1), FailProb: 2}, http.StatusBadRequest},
		{"negative sigma via NaN guard", StudyRequest{Grid: grid, Kind: "mc", B: testRHS(n, 1), LoadSigma: -1}, http.StatusBadRequest},
		{"unknown grid", StudyRequest{Grid: "deadbeef", Kind: "mc", B: testRHS(n, 1)}, http.StatusNotFound},
		{"wrong rhs length", StudyRequest{Grid: grid, Kind: "transient", B: testRHS(n+1, 1)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _, body := postStudy(t, ts.URL, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestStudyRefusedWhileDraining: the drain barrier covers studies.
func TestStudyRefusedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Options: testOptions()})
	grid, n := ingestTestGrid(t, ts.URL, 8, 8)
	s.draining.Store(true)
	defer s.draining.Store(false)

	body, _ := json.Marshal(StudyRequest{Grid: grid, Kind: "transient", B: testRHS(n, 1)})
	resp, err := http.Post(ts.URL+"/v1/study", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining study status %d, want 503", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drain") {
		t.Fatalf("unexpected error body: %s", buf.String())
	}
}
