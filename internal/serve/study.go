package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"powerrchol/internal/workload"
)

// POST /v1/study runs a bounded workload study against an ingested
// grid: a step-response transient ("transient") or a Monte Carlo
// perturbation ensemble ("mc"), both from internal/workload. A study is
// many solves behind one request, so it is admitted like a solve (gate
// slot, drain barrier) but refused earlier on the degradation ladder:
// at LevelHigh and above the server keeps its capacity for single
// solves, which shed load per-request rather than per-hundred-solves.
// Steps and samples are clamped server-side (Config.MaxStudySteps,
// Config.MaxStudySamples) so a single request can never schedule
// unbounded work.

// StudyRequest is the wire form of one study call. The right-hand side
// takes the same two shapes as a solve request (dense `b`, or sparse
// `nodes`/`values`).
type StudyRequest struct {
	Grid string `json:"grid"`
	// Kind selects the study: "transient" or "mc".
	Kind string `json:"kind"`

	B      []float64 `json:"b,omitempty"`
	Nodes  []int     `json:"nodes,omitempty"`
	Values []float64 `json:"values,omitempty"`

	// Transient knobs (defaults: 50 steps, dt 1e-11 s, cap 1e-15 F).
	Steps int     `json:"steps,omitempty"`
	Dt    float64 `json:"dt,omitempty"`
	Cap   float64 `json:"cap,omitempty"`

	// Monte Carlo knobs (defaults: 32 samples; sigmas 0 = channel off).
	Samples        int     `json:"samples,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	ResistorSigma  float64 `json:"resistor_sigma,omitempty"`
	FailCandidates int     `json:"fail_candidates,omitempty"`
	FailProb       float64 `json:"fail_prob,omitempty"`
	LoadSigma      float64 `json:"load_sigma,omitempty"`
	Threshold      float64 `json:"threshold,omitempty"`

	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// DecodeStudyRequest parses and validates a study request from r,
// reading at most maxBytes. Step and sample counts are clamped to the
// server bounds rather than rejected: a client asking for more work
// than the server allows gets the bounded study, with the clamp visible
// in the response counts.
func DecodeStudyRequest(r io.Reader, maxBytes int64, maxSteps, maxSamples int) (*StudyRequest, error) {
	var req StudyRequest
	if err := decodeJSON(r, maxBytes, &req); err != nil {
		return nil, err
	}
	if req.Grid == "" {
		return nil, errors.New("serve: missing grid fingerprint")
	}
	if _, err := ParseFingerprint(req.Grid); err != nil {
		return nil, err
	}
	if req.Kind != "transient" && req.Kind != "mc" {
		return nil, fmt.Errorf("serve: unknown study kind %q (want transient or mc)", req.Kind)
	}
	// RHS shape/content checks are shared with the solve decoder via the
	// same field layout.
	sr := SolveRequest{Grid: req.Grid, B: req.B, Nodes: req.Nodes, Values: req.Values}
	dense := len(sr.B) > 0
	sparse := len(sr.Nodes) > 0 || len(sr.Values) > 0
	switch {
	case dense && sparse:
		return nil, errors.New("serve: request has both dense b and sparse nodes/values")
	case !dense && !sparse:
		return nil, errors.New("serve: request has no right-hand side")
	}
	if sparse && len(sr.Nodes) != len(sr.Values) {
		return nil, fmt.Errorf("serve: nodes/values length mismatch: %d vs %d", len(sr.Nodes), len(sr.Values))
	}
	for _, u := range sr.Nodes {
		if u < 0 {
			return nil, fmt.Errorf("serve: negative node index %d", u)
		}
	}
	for _, v := range sr.B {
		if !isFinite(v) {
			return nil, errors.New("serve: non-finite value in b")
		}
	}
	for _, v := range sr.Values {
		if !isFinite(v) {
			return nil, errors.New("serve: non-finite value in values")
		}
	}
	for _, v := range []float64{req.Dt, req.Cap, req.ResistorSigma, req.FailProb, req.LoadSigma, req.Threshold} {
		if !isFinite(v) || v < 0 {
			return nil, errors.New("serve: study parameters must be finite and non-negative")
		}
	}
	if req.FailProb > 1 {
		return nil, fmt.Errorf("serve: fail_prob %g outside [0,1]", req.FailProb)
	}
	if req.Steps < 0 || req.Samples < 0 || req.FailCandidates < 0 {
		return nil, errors.New("serve: negative study count")
	}
	if req.TimeoutMillis < 0 {
		return nil, fmt.Errorf("serve: negative timeout_ms %d", req.TimeoutMillis)
	}
	// Apply the workload defaults here so the server bound clamps them
	// too (a server configured below the default still wins).
	if req.Steps == 0 {
		req.Steps = 50
	}
	if req.Steps > maxSteps {
		req.Steps = maxSteps
	}
	if req.Samples == 0 {
		req.Samples = 32
	}
	if req.Samples > maxSamples {
		req.Samples = maxSamples
	}
	return &req, nil
}

// rhs materializes the study's right-hand side for an n-node grid.
func (req *StudyRequest) rhs(n int) ([]float64, error) {
	sr := SolveRequest{B: req.B, Nodes: req.Nodes, Values: req.Values}
	return sr.RHS(n)
}

// StudyResponse is the wire form of a completed study. Exactly one of
// the per-kind sections is populated.
type StudyResponse struct {
	Grid string `json:"grid"`
	Kind string `json:"kind"`

	Preparations    int `json:"preparations"`
	TotalIterations int `json:"total_iterations"`

	// Transient section.
	Steps    int     `json:"steps,omitempty"`
	Peak     float64 `json:"peak,omitempty"`
	PeakStep int     `json:"peak_step,omitempty"`
	WaveFP   string  `json:"wave_fp,omitempty"`

	// Monte Carlo section.
	Samples   int                 `json:"samples,omitempty"`
	Groups    int                 `json:"groups,omitempty"`
	ReuseHits int                 `json:"reuse_hits,omitempty"`
	Quantiles []workload.Quantile `json:"quantiles,omitempty"`
	StatsFP   string              `json:"stats_fp,omitempty"`

	SetupMicros int64 `json:"setup_us"`
	SolveMicros int64 `json:"solve_us"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error(), s.gate.RetryAfter())
		s.met.refused.Add(1)
		return
	}
	level := s.level()
	if level >= LevelHigh {
		httpError(w, http.StatusServiceUnavailable,
			"serve: refusing studies under "+level.String()+" load", s.gate.RetryAfter())
		s.met.refused.Add(1)
		return
	}

	req, err := DecodeStudyRequest(r.Body, s.cfg.MaxRequestBytes, s.cfg.MaxStudySteps, s.cfg.MaxStudySamples)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrRequestTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err.Error(), 0)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if err := s.gate.Acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			s.met.shed.Add(1)
			httpError(w, http.StatusTooManyRequests, err.Error(), s.gate.RetryAfter())
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			httpError(w, http.StatusGatewayTimeout, "serve: deadline expired while queued", 0)
		default: // client went away
			httpError(w, http.StatusServiceUnavailable, err.Error(), 0)
		}
		return
	}
	defer s.gate.Release()
	s.met.admitted.Add(1)
	s.met.studies.Add(1)
	start := time.Now()

	gridFP, _ := ParseFingerprint(req.Grid) // validated by the decoder
	s.gridsMu.Lock()
	sys := s.grids[gridFP]
	s.gridsMu.Unlock()
	if sys == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("serve: unknown grid %s", req.Grid), 0)
		return
	}
	b, err := req.rhs(sys.N())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	// Studies run the base options with the ladder's retry downgrade:
	// every preparation a study spends is a build that would otherwise
	// retry expensively under pressure.
	opt := s.cfg.Options
	opt.Retry = level.RetryFor(opt.Retry)

	resp := StudyResponse{Grid: req.Grid, Kind: req.Kind}
	switch req.Kind {
	case "transient":
		tr, err := workload.SystemTransient(ctx, sys, b, workload.StepStudySpec{
			Cap: req.Cap, TimeStep: req.Dt, Steps: req.Steps,
		}, opt)
		if err != nil {
			s.studyError(w, err)
			return
		}
		resp.Preparations = tr.Preparations
		resp.TotalIterations = tr.TotalIterations
		resp.Steps = tr.Steps
		resp.Peak = tr.Peak
		resp.PeakStep = tr.PeakStep
		resp.WaveFP = FormatFingerprint(tr.WaveFP)
		resp.SetupMicros = tr.SetupTime.Microseconds()
		resp.SolveMicros = tr.SolveTime.Microseconds()
	case "mc":
		mc, err := workload.MonteCarlo(ctx, sys, b, workload.MCSpec{
			Samples:        req.Samples,
			Seed:           req.Seed,
			ResistorSigma:  req.ResistorSigma,
			FailCandidates: req.FailCandidates,
			FailProb:       req.FailProb,
			LoadSigma:      req.LoadSigma,
			DropThreshold:  req.Threshold,
		}, opt)
		if err != nil {
			s.studyError(w, err)
			return
		}
		resp.Preparations = mc.Preparations
		resp.TotalIterations = mc.TotalIterations
		resp.Samples = mc.Samples
		resp.Groups = mc.Groups
		resp.ReuseHits = mc.ReuseHits
		resp.Peak = mc.Peak
		resp.Quantiles = mc.Quantiles
		resp.StatsFP = FormatFingerprint(mc.StatsFP)
		resp.SetupMicros = mc.SetupTime.Microseconds()
		resp.SolveMicros = mc.SolveTime.Microseconds()
	}
	s.met.lat.record(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// studyError maps a failed study to the same status taxonomy as a
// failed solve.
func (s *Server) studyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		httpError(w, http.StatusGatewayTimeout, "serve: study deadline expired", 0)
	case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error(), 0)
	default:
		s.met.solveErrs.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error(), 0)
	}
}
