package serve

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestDecodeSolveRequestDense(t *testing.T) {
	req, err := DecodeSolveRequest(strings.NewReader(`{"grid":"ab12","b":[1,2,3]}`), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := req.RHS(3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("b = %v", b)
	}
	if _, err := req.RHS(4); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDecodeSolveRequestSparse(t *testing.T) {
	req, err := DecodeSolveRequest(strings.NewReader(`{"grid":"1","nodes":[0,2,0],"values":[1,5,2]}`), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := req.RHS(3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 3 || b[1] != 0 || b[2] != 5 {
		t.Fatalf("sparse RHS = %v, want [3 0 5] (duplicates accumulate)", b)
	}
	if _, err := req.RHS(2); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestDecodeSolveRequestRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"missing grid", `{"b":[1]}`},
		{"bad fingerprint", `{"grid":"xyzzy!","b":[1]}`},
		{"fingerprint too long", `{"grid":"00000000000000000","b":[1]}`},
		{"no rhs", `{"grid":"1"}`},
		{"both rhs forms", `{"grid":"1","b":[1],"nodes":[0],"values":[1]}`},
		{"length mismatch", `{"grid":"1","nodes":[0,1],"values":[1]}`},
		{"negative node", `{"grid":"1","nodes":[-1],"values":[1]}`},
		{"overflowing b", `{"grid":"1","b":[1e999]}`},
		{"unknown field", `{"grid":"1","b":[1],"bogus":true}`},
		{"trailing garbage", `{"grid":"1","b":[1]} extra`},
		{"negative timeout", `{"grid":"1","b":[1],"timeout_ms":-5}`},
		{"negative return", `{"grid":"1","b":[1],"return":[-2]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeSolveRequest(strings.NewReader(tc.body), 1<<20); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDecodeSolveRequestSizeLimit(t *testing.T) {
	body := `{"grid":"1","b":[1,2,3,4,5,6,7,8]}`
	if _, err := DecodeSolveRequest(strings.NewReader(body), int64(len(body))); err != nil {
		t.Fatalf("body exactly at limit rejected: %v", err)
	}
	_, err := DecodeSolveRequest(strings.NewReader(body), int64(len(body))-1)
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("oversized body err = %v, want ErrRequestTooLarge", err)
	}
}

func TestDecodeSystemRequest(t *testing.T) {
	sys, err := DecodeSystemRequest(strings.NewReader(
		`{"n":3,"edges":[[0,1,2.0],[1,2,1.5]],"d":[0.1,0,0]}`), 1<<20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 3 || sys.G.M() != 2 {
		t.Fatalf("n=%d m=%d", sys.N(), sys.G.M())
	}
	if sys.D[0] != 0.1 {
		t.Fatalf("D = %v", sys.D)
	}
}

func TestDecodeSystemRequestRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"zero n", `{"n":0,"edges":[]}`},
		{"declared n over cap", `{"n":1000000000,"edges":[]}`},
		{"self loop", `{"n":2,"edges":[[0,0,1]]}`},
		{"out of range", `{"n":2,"edges":[[0,5,1]]}`},
		{"fractional endpoint", `{"n":2,"edges":[[0.5,1,1]]}`},
		{"zero weight", `{"n":2,"edges":[[0,1,0]]}`},
		{"negative weight", `{"n":2,"edges":[[0,1,-1]]}`},
		{"d length mismatch", `{"n":3,"edges":[[0,1,1]],"d":[1]}`},
		{"negative d", `{"n":2,"edges":[[0,1,1]],"d":[-1,0]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeSystemRequest(strings.NewReader(tc.body), 1<<20, 100); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDecodeSystemRequestDeclaredSizeIsCapped is the OOM-hardening
// property: a tiny body declaring a huge n must be rejected by the
// maxNodes cap before any size-n allocation.
func TestDecodeSystemRequestDeclaredSizeIsCapped(t *testing.T) {
	_, err := DecodeSystemRequest(strings.NewReader(`{"n":1073741824,"edges":[]}`), 1<<20, 1<<20)
	if err == nil {
		t.Fatal("gigantic declared n accepted")
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	for _, fp := range []uint64{0, 1, 0xdeadbeef, math.MaxUint64} {
		got, err := ParseFingerprint(FormatFingerprint(fp))
		if err != nil || got != fp {
			t.Fatalf("round trip %x: got %x err %v", fp, got, err)
		}
	}
}
