package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"powerrchol/internal/graph"
)

// Request decoding is the service's untrusted-input boundary, so it is
// hardened the same way the matrix readers are: byte-bounded reads
// (io.LimitReader), declared sizes capped before any allocation keyed on
// them, and every float checked finite. Both decoders are fuzz targets
// (see fuzz_test.go / `make fuzz`): for arbitrary input they must return
// an error or a valid value, never panic, and never allocate
// proportionally to a number the attacker merely declared.

// ErrRequestTooLarge reports a request body that exceeded the configured
// byte limit. Maps to 413 Request Entity Too Large.
var ErrRequestTooLarge = errors.New("serve: request body exceeds size limit")

// SolveRequest is the wire form of one solve call.
//
// The right-hand side comes in one of two shapes: a dense vector `b` of
// length n, or a sparse current-injection list `nodes`/`values` — the
// natural form for power-grid workloads, where only a handful of nodes
// source or sink current. Exactly one shape must be present.
type SolveRequest struct {
	// Grid selects the ingested grid by its hexadecimal system
	// fingerprint (as returned by POST /v1/grids).
	Grid string `json:"grid"`

	// B is the dense right-hand side (length must equal the grid size).
	B []float64 `json:"b,omitempty"`

	// Nodes/Values give the sparse right-hand side: Values[i] is added
	// at node Nodes[i]. Duplicate nodes accumulate.
	Nodes  []int     `json:"nodes,omitempty"`
	Values []float64 `json:"values,omitempty"`

	// Return optionally restricts the response to these node indices of
	// the solution (empty = full vector).
	Return []int `json:"return,omitempty"`

	// TimeoutMillis optionally tightens the per-request deadline below
	// the server default. Values above the server maximum are clamped.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// DecodeSolveRequest parses and validates a solve request from r,
// reading at most maxBytes. It performs the structural checks that need
// no grid (shape, finiteness, non-negative indices); RHS validates the
// grid-dependent bounds.
func DecodeSolveRequest(r io.Reader, maxBytes int64) (*SolveRequest, error) {
	var req SolveRequest
	if err := decodeJSON(r, maxBytes, &req); err != nil {
		return nil, err
	}
	if req.Grid == "" {
		return nil, errors.New("serve: missing grid fingerprint")
	}
	if _, err := ParseFingerprint(req.Grid); err != nil {
		return nil, err
	}
	dense := len(req.B) > 0
	sparse := len(req.Nodes) > 0 || len(req.Values) > 0
	switch {
	case dense && sparse:
		return nil, errors.New("serve: request has both dense b and sparse nodes/values")
	case !dense && !sparse:
		return nil, errors.New("serve: request has no right-hand side")
	}
	if sparse {
		if len(req.Nodes) != len(req.Values) {
			return nil, fmt.Errorf("serve: nodes/values length mismatch: %d vs %d", len(req.Nodes), len(req.Values))
		}
		for _, u := range req.Nodes {
			if u < 0 {
				return nil, fmt.Errorf("serve: negative node index %d", u)
			}
		}
	}
	for _, v := range req.B {
		if !isFinite(v) {
			return nil, errors.New("serve: non-finite value in b")
		}
	}
	for _, v := range req.Values {
		if !isFinite(v) {
			return nil, errors.New("serve: non-finite value in values")
		}
	}
	for _, u := range req.Return {
		if u < 0 {
			return nil, fmt.Errorf("serve: negative return index %d", u)
		}
	}
	if req.TimeoutMillis < 0 {
		return nil, fmt.Errorf("serve: negative timeout_ms %d", req.TimeoutMillis)
	}
	return &req, nil
}

// RHS materializes the request's right-hand side as a dense length-n
// vector, validating the grid-dependent bounds.
func (req *SolveRequest) RHS(n int) ([]float64, error) {
	if len(req.B) > 0 {
		if len(req.B) != n {
			return nil, fmt.Errorf("serve: b has %d entries, grid has %d nodes", len(req.B), n)
		}
		out := make([]float64, n)
		copy(out, req.B)
		return out, nil
	}
	out := make([]float64, n)
	for i, u := range req.Nodes {
		if u >= n {
			return nil, fmt.Errorf("serve: node index %d out of range [0,%d)", u, n)
		}
		out[u] += req.Values[i]
	}
	return out, nil
}

// CheckReturn validates the Return indices against the grid size.
func (req *SolveRequest) CheckReturn(n int) error {
	for _, u := range req.Return {
		if u >= n {
			return fmt.Errorf("serve: return index %d out of range [0,%d)", u, n)
		}
	}
	return nil
}

// SystemRequest is the wire form of a grid ingest: the SDDM system in
// coordinate form. Edge weights are conductances (positive); d is the
// optional diagonal excess (grounded nodes), zero-filled when absent.
type SystemRequest struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"`
	D     []float64    `json:"d,omitempty"`
}

// DecodeSystemRequest parses and validates a grid ingest from r, reading
// at most maxBytes, and builds the SDDM system. maxNodes caps the
// declared node count before any size-n allocation happens — a request
// declaring n=10^9 with a tiny body is rejected on the declaration, not
// trusted with a 8 GB allocation.
func DecodeSystemRequest(r io.Reader, maxBytes int64, maxNodes int) (*graph.SDDM, error) {
	var req SystemRequest
	if err := decodeJSON(r, maxBytes, &req); err != nil {
		return nil, err
	}
	if req.N < 1 {
		return nil, fmt.Errorf("serve: invalid node count %d", req.N)
	}
	if maxNodes > 0 && req.N > maxNodes {
		return nil, fmt.Errorf("serve: node count %d exceeds server limit %d", req.N, maxNodes)
	}
	// Edge and diagonal lengths are bounded by the byte limit already
	// (they were physically decoded), so only their contents need checks.
	if len(req.D) > 0 && len(req.D) != req.N {
		return nil, fmt.Errorf("serve: d has %d entries, n is %d", len(req.D), req.N)
	}
	g := graph.New(req.N, len(req.Edges))
	for i, e := range req.Edges {
		uf, vf, w := e[0], e[1], e[2]
		u, v := int(uf), int(vf)
		if float64(u) != uf || float64(v) != vf { //pglint:float-exact integer-valuedness check on wire endpoints, not a rounding comparison
			return nil, fmt.Errorf("serve: edge %d has non-integer endpoints", i)
		}
		if err := g.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("serve: edge %d: %w", i, err)
		}
	}
	// graph.NewSDDM validates D (non-negative, finite, length n when
	// non-nil) and zero-fills it when absent.
	sys, err := graph.NewSDDM(g, req.D)
	if err != nil {
		return nil, fmt.Errorf("serve: invalid system: %w", err)
	}
	return sys, nil
}

// ParseFingerprint parses the hexadecimal fingerprint form used on the
// wire (as produced by FormatFingerprint).
func ParseFingerprint(s string) (uint64, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("serve: malformed fingerprint %q", s)
	}
	fp, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: malformed fingerprint %q", s)
	}
	return fp, nil
}

// FormatFingerprint renders a fingerprint in its wire form.
func FormatFingerprint(fp uint64) string {
	return strconv.FormatUint(fp, 16)
}

// decodeJSON decodes exactly one JSON value from at most maxBytes of r
// into dst, rejecting unknown fields and trailing garbage. The limit is
// enforced with one spare byte so "hit the limit" and "body is exactly
// the limit" are distinguishable.
func decodeJSON(r io.Reader, maxBytes int64, dst any) error {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	lr := &io.LimitedReader{R: r, N: maxBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if lr.N <= 0 {
			return ErrRequestTooLarge
		}
		return fmt.Errorf("serve: invalid request body: %w", err)
	}
	if lr.N <= 0 {
		return ErrRequestTooLarge
	}
	// Reject trailing content after the value.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("serve: trailing data after request body")
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
