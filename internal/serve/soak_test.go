package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerrchol"
	"powerrchol/internal/core"
	"powerrchol/internal/faultinject"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
)

// The chaos/soak suite: fault injection, hostile clients, and overload
// at once, with a bitwise referee. The default duration keeps plain
// `go test` fast; CI's soak job stretches it with -soak (see `make
// soak`). Requests are driven through the Handler in-process — the same
// code path an HTTP listener exercises, without per-request TCP noise
// drowning the race detector's schedule space.
var soakFor = flag.Duration("soak", 1500*time.Millisecond, "duration of each soak scenario")

func ingestViaHandler(t *testing.T, h http.Handler, nx int) (string, int) {
	t.Helper()
	sys := testSystem(nx, nx)
	edges := make([][3]float64, 0, sys.G.M())
	for _, e := range sys.G.Edges {
		edges = append(edges, [3]float64{float64(e.U), float64(e.V), e.W})
	}
	body, err := json.Marshal(SystemRequest{N: sys.N(), Edges: edges, D: sys.D})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/grids", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Grid string `json:"grid"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out.Grid, out.N
}

func solveViaHandlerCtx(ctx context.Context, h http.Handler, grid string, b []float64, timeoutMS int64) (int, []byte) {
	body, _ := json.Marshal(SolveRequest{Grid: grid, B: b, TimeoutMillis: timeoutMS})
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func solveViaHandler(h http.Handler, grid string, b []float64, timeoutMS int64) (int, []byte) {
	return solveViaHandlerCtx(context.Background(), h, grid, b, timeoutMS)
}

// soakReferee precomputes the one-shot answers served responses must
// match bit-for-bit: powerrchol.Solve on the same system with the same
// options is the ground truth the prepared/batched/recovered service
// path must reproduce exactly.
func soakReferee(t *testing.T, nx int, opt powerrchol.Options, nRHS int) [][]float64 {
	t.Helper()
	sys := testSystem(nx, nx)
	refs := make([][]float64, nRHS)
	for i := range refs {
		res, err := powerrchol.Solve(sys, testRHS(sys.N(), uint64(1000+i)), opt)
		if err != nil {
			t.Fatalf("referee %d: %v", i, err)
		}
		refs[i] = res.X
	}
	return refs
}

func checkBitwise(x, ref []float64) error {
	if len(x) != len(ref) {
		return fmt.Errorf("length %d vs %d", len(x), len(ref))
	}
	for j := range ref {
		if math.Float64bits(x[j]) != math.Float64bits(ref[j]) {
			return fmt.Errorf("X[%d]: %g != referee %g", j, x[j], ref[j])
		}
	}
	return nil
}

// runSoak drives the chaos mix against cfg for the soak duration and
// enforces the three invariants: bitwise-correct 200s against refs, no
// stuck client, no leaked goroutine after shutdown.
func runSoak(t *testing.T, cfg Config, refs [][]float64, nx int) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	handler := s.Handler()
	grid, n := ingestViaHandler(t, handler, nx)
	nRHS := len(refs)

	var (
		wg       sync.WaitGroup
		ok       atomic.Int64
		rejected atomic.Int64
		failures = make(chan error, 256)
	)
	deadline := time.Now().Add(*soakFor)

	// Honest clients: solve and verify bitwise.
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(7000 + c))
			for time.Now().Before(deadline) {
				i := r.Intn(nRHS)
				status, body := solveViaHandler(handler, grid, testRHS(n, uint64(1000+i)), 0)
				switch status {
				case http.StatusOK:
					var out SolveResponse
					if err := json.Unmarshal(body, &out); err != nil {
						failures <- err
						return
					}
					if err := checkBitwise(out.X, refs[i]); err != nil {
						failures <- fmt.Errorf("client %d rhs %d: %w", c, i, err)
						return
					}
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout, http.StatusUnprocessableEntity:
					// Shed, refused, timed out, or caught a poisoned solve
					// mid-heal — legal under chaos; correctness is claimed
					// for the 200s.
					rejected.Add(1)
				default:
					failures <- fmt.Errorf("client %d: unexpected status %d: %s", c, status, body)
					return
				}
			}
		}(c)
	}

	// Cancelled clients: hang up at random points mid-request.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(8000 + c))
			for time.Now().Before(deadline) {
				rctx, rcancel := context.WithTimeout(context.Background(),
					time.Duration(1+r.Intn(2000))*time.Microsecond)
				solveViaHandlerCtx(rctx, handler, grid, testRHS(n, uint64(1000+r.Intn(nRHS))), 0)
				rcancel()
			}
		}(c)
	}
	// Deadline clients: honest requests with 1ms budgets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			solveViaHandler(handler, grid, testRHS(n, 1001), 1)
		}
	}()
	// Garbage clients: malformed bodies, unknown grids, bad indices.
	wg.Add(1)
	go func() {
		defer wg.Done()
		garbage := []string{
			`{"grid":`,
			`{"grid":"ffff","b":[1]}`,
			`{"grid":"` + grid + `"}`,
			`{"grid":"` + grid + `","nodes":[999999],"values":[1]}`,
		}
		for i := 0; time.Now().Before(deadline); i++ {
			req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader([]byte(garbage[i%len(garbage)])))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code == http.StatusOK {
				failures <- fmt.Errorf("garbage request %d returned 200", i)
				return
			}
		}
	}()

	// Join with a stuck-request watchdog.
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(*soakFor + 60*time.Second):
		t.Fatal("soak clients stuck: did not finish after deadline")
	}
	close(failures)
	for err := range failures {
		t.Error(err)
	}
	if ok.Load() == 0 {
		t.Fatal("soak made no successful solves")
	}
	st := s.Stats()
	t.Logf("soak: %d bitwise-verified ok, %d rejected; admitted=%d shed=%d timeouts=%d solve_errs=%d rebuilds=%d batches=%d batched=%d",
		ok.Load(), rejected.Load(), st.Admitted, st.Shed, st.Timeouts, st.SolveErrs, st.Rebuilds, st.Batches, st.BatchedRHS)

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	waitGoroutines(t, base, 4)
}

// TestSoakSetupFaultRecovery is chaos scenario A: every factorization's
// first attempt is sabotaged with a negative pivot and the recovery
// ladder rides over it. The referee runs one-shot Solve with the
// identical options (hooks included), so it walks the same ladder —
// bitwise equality proves the service's prepared/batched path adds
// nothing on top of recovery.
func TestSoakSetupFaultRecovery(t *testing.T) {
	opt := testOptions()
	opt.Retry = powerrchol.RetryPolicy{MaxAttempts: 3}
	opt.Hooks = &powerrchol.FaultHooks{
		FactorOpts: func(attempt int, o core.Options) core.Options {
			if attempt == 0 {
				o.PivotPerturb = faultinject.NegativePivot(30)
			}
			return o
		},
	}
	const nx, nRHS = 12, 6
	refs := soakReferee(t, nx, opt, nRHS)
	runSoak(t, Config{
		Options:     opt,
		MaxInflight: 4,
		MaxQueue:    32,
		BatchWindow: time.Millisecond,
		MaxBatch:    8,
	}, refs, nx)
}

// TestSoakTransientPrecondCorruption is chaos scenario B: the first
// solver build gets a preconditioner that silently goes bad after a few
// dozen applies (NaN corruption, unbounded from there on — a poisoned
// factor). The service must detect the failure, invalidate the cache
// entry, rebuild — the corruption budget is spent, so the rebuild is
// clean — and keep serving. The referee is a clean one-shot Solve: both
// the pre-corruption responses (the injector passes through untouched
// before its window) and the post-heal responses must match it bitwise.
func TestSoakTransientPrecondCorruption(t *testing.T) {
	var corrupted atomic.Bool
	opt := testOptions()
	opt.Hooks = &powerrchol.FaultHooks{
		WrapPrecond: func(attempt int, m pcg.Preconditioner) pcg.Preconditioner {
			if corrupted.CompareAndSwap(false, true) {
				return &faultinject.Preconditioner{Inner: m, Mode: faultinject.ModeNaN, After: 40}
			}
			return m
		},
	}
	clean := testOptions()
	const nx, nRHS = 12, 6
	refs := soakReferee(t, nx, clean, nRHS)
	runSoak(t, Config{
		Options:     opt,
		MaxInflight: 4,
		MaxQueue:    32,
		BatchWindow: time.Millisecond,
		MaxBatch:    8,
	}, refs, nx)
	if !corrupted.Load() {
		t.Fatal("the corrupting wrapper never ran")
	}
}

// TestSoakOverloadSheds drives the gate far past capacity with a tiny
// queue: the service must shed (429) rather than queue unboundedly, keep
// answering correctly for admitted requests, and still wind down leak
// free.
func TestSoakOverloadSheds(t *testing.T) {
	opt := testOptions()
	const nx, nRHS = 12, 6
	refs := soakReferee(t, nx, opt, nRHS)

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, Config{
		Options:     opt,
		MaxInflight: 1,
		MaxQueue:    2,
		BatchWindow: time.Millisecond,
		MaxBatch:    4,
	})
	handler := s.Handler()
	grid, n := ingestViaHandler(t, handler, nx)

	var wg sync.WaitGroup
	var ok, shed, refused atomic.Int64
	deadline := time.Now().Add(*soakFor)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(9000 + c))
			for time.Now().Before(deadline) {
				i := r.Intn(nRHS)
				status, body := solveViaHandler(handler, grid, testRHS(n, uint64(1000+i)), 0)
				switch status {
				case http.StatusOK:
					var out SolveResponse
					if json.Unmarshal(body, &out) == nil && checkBitwise(out.X, refs[i]) == nil {
						ok.Add(1)
					} else {
						t.Errorf("admitted request answered wrong")
						return
					}
				case http.StatusTooManyRequests:
					// Queue overflow: the gate shed it.
					shed.Add(1)
				case http.StatusServiceUnavailable:
					// Critical pressure: the ladder refused it before the
					// gate. Both are load-shedding; both carry Retry-After.
					refused.Add(1)
				case http.StatusGatewayTimeout:
				default:
					t.Errorf("unexpected status %d", status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request was served under overload")
	}
	if shed.Load()+refused.Load() == 0 {
		t.Fatal("16 clients against 1 slot + 2 queue never shed — admission control inert")
	}
	t.Logf("overload: %d ok, %d shed (429), %d refused (503)", ok.Load(), shed.Load(), refused.Load())
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	waitGoroutines(t, base, 4)
}
